// anyopt_bench — the perf-trajectory toolchain over the machine-readable
// `BENCH_*.json` records the bench binaries write (bench/support).
//
//   anyopt_bench trajectory [DIR]        one-line summary per record in DIR
//                                        (default bench/records), sorted by
//                                        bench name
//   anyopt_bench diff A.json B.json      field-by-field comparison with
//                                        noise thresholds; exit 1 when any
//                                        field moved beyond its threshold
//   anyopt_bench check LATEST COMMITTED  CI regression gate: exit 1 only
//                                        when LATEST is WORSE than COMMITTED
//                                        beyond the thresholds (faster /
//                                        smaller never fails)
//   anyopt_bench explain NONCE [LOG]     reconstruct one experiment's
//                                        history from a provenance flight
//                                        log (default provenance.jsonl)
//
// Thresholds (apply to diff and check):
//   --wall-tol=F        relative wall-clock tolerance (default 0.15)
//   --events-budget=N   absolute sim-event slack (default 0 = exact)
//   --rss-tol=F         relative peak-RSS tolerance (default 0.25)
//   --rss-budget-kb=N   absolute peak-RSS slack on top (default 16384)
//   --qps-tol=F         relative serve-QPS tolerance (default 0.15)
//   --ttm-tol=F         relative time-to-mitigate tolerance (default 0 =
//                       exact; the search is deterministic)
//
// Wall time is noisy, so it gets a wide relative band; simulated event
// counts are deterministic, so they default to exact — an unexplained event
// delta means the workload changed and the committed record must be
// regenerated deliberately, not absorbed silently.
//
// Field presence.  A record claiming schema 3 MUST carry `peak_rss_kb` and
// the required `bytes.*` keys — a missing one is a malformed record and
// diff/check hard-fail (exit 2) rather than silently reading it as zero
// (zero vs a real footprint used to manufacture spurious RSS regressions).
// OPTIONAL fields (`bytes.snapshot`, `bytes.rib`, `bytes.census_shards`,
// the `serve` and `scale` blocks) and fields absent from pre-schema-3
// records are "not comparable": when either side lacks one, the comparison
// is skipped with a note, never judged against zero.  When both sides carry
// a `scale` block (bench_scale's 5k→75k sweep), each size present in both
// is judged per point — peak RSS under --rss-tol/--rss-budget-kb and census
// wall under --wall-tol — so a memory regression at 75k ASes fails `check`
// even when the headline fields stayed flat.  An `agility` block
// (bench_agility's attack sweep) is likewise judged per point, matched by
// intensity: a point the committed record mitigated must stay mitigated, its
// time-to-mitigate may not grow beyond --ttm-tol, and the overlay path's
// event count may not grow beyond --events-budget — faster mitigation and
// fewer events always pass (the asymmetric gate again).
//
// Exit codes: 0 ok, 1 regression/difference/not-found, 2 usage or I/O.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/json.h"

namespace {

using anyopt::Result;
using anyopt::json::Value;

int usage() {
  std::fprintf(
      stderr,
      "usage: anyopt_bench trajectory [DIR]\n"
      "       anyopt_bench diff A.json B.json [thresholds]\n"
      "       anyopt_bench check LATEST.json COMMITTED.json [thresholds]\n"
      "       anyopt_bench explain NONCE [LOG.jsonl]\n"
      "thresholds: --wall-tol=F --events-budget=N --rss-tol=F"
      " --rss-budget-kb=N --qps-tol=F --ttm-tol=F\n");
  return 2;
}

/// Comparison thresholds shared by `diff` and `check`.
struct Thresholds {
  double wall_tol = 0.15;
  std::uint64_t events_budget = 0;
  double rss_tol = 0.25;
  std::int64_t rss_budget_kb = 16384;
  double qps_tol = 0.15;
  double ttm_tol = 0.0;
};

/// Pulls the threshold flags out of argv (anywhere) and returns the
/// remaining positional arguments.  Unknown `--` flags are an error.
bool parse_args(int argc, char** argv, Thresholds& thresholds,
                std::vector<std::string>& positional) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--wall-tol=", 0) == 0) {
      thresholds.wall_tol = std::strtod(argv[i] + 11, nullptr);
    } else if (arg.rfind("--events-budget=", 0) == 0) {
      thresholds.events_budget = std::strtoull(argv[i] + 16, nullptr, 10);
    } else if (arg.rfind("--rss-tol=", 0) == 0) {
      thresholds.rss_tol = std::strtod(argv[i] + 10, nullptr);
    } else if (arg.rfind("--rss-budget-kb=", 0) == 0) {
      thresholds.rss_budget_kb = std::strtoll(argv[i] + 16, nullptr, 10);
    } else if (arg.rfind("--qps-tol=", 0) == 0) {
      thresholds.qps_tol = std::strtod(argv[i] + 10, nullptr);
    } else if (arg.rfind("--ttm-tol=", 0) == 0) {
      thresholds.ttm_tol = std::strtod(argv[i] + 10, nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "anyopt_bench: unknown flag %s\n", argv[i]);
      return false;
    } else {
      positional.emplace_back(arg);
    }
  }
  return true;
}

Result<std::string> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return anyopt::Error::not_found("cannot open " + path);
  }
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

/// The `bytes.*` keys every schema-3 record must carry.  `bytes.snapshot`
/// (the serve layer's live-snapshot high-water mark) is deliberately NOT
/// here: only benches that build query snapshots emit it.
constexpr const char* kRequiredBytesKeys[] = {
    "sim_scratch", "overlay_pages", "resolve_cache", "store_index",
    "pool_queue"};

/// One loaded BENCH_*.json record.  Absent numeric fields read as zero so
/// `trajectory` degrades gracefully on older (schema < 3) records, but each
/// judged field also carries a presence flag: `diff`/`check` consult the
/// flag instead of comparing a real measurement against a phantom zero.
/// Strict field-whitelist validation lives in tests/bench_records_test.
struct BenchRecord {
  std::string path;
  std::uint64_t schema = 0;
  std::string bench;
  std::string git_commit;
  bool dirty = false;
  std::uint64_t threads = 0;
  double wall_s = 0;
  std::int64_t peak_rss_kb = 0;
  std::uint64_t sim_runs = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t campaign_experiments = 0;
  double cache_hit_rate = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t overlay_forks = 0;
  std::int64_t bytes_sim_scratch = 0;
  std::int64_t bytes_total = 0;  ///< sum of the bytes.* high-water marks
  bool has_wall = false;         ///< "wall_s" present
  bool has_events = false;       ///< "sim_events" present
  bool has_rss = false;          ///< "peak_rss_kb" present
  bool has_bytes = false;        ///< "bytes" object present
  std::vector<std::string> missing_bytes;  ///< required bytes.* keys absent
  bool has_serve = false;        ///< optional "serve" block present
  double serve_qps = 0;
  std::uint64_t serve_queries = 0;
  /// One point of bench_scale's 5k→75k sweep (the optional "scale" block).
  struct ScalePoint {
    std::uint64_t ases = 0;
    double census_s = 0;
    std::int64_t peak_rss_kb = 0;
  };
  bool has_scale = false;        ///< optional "scale" block present
  std::vector<ScalePoint> scale_points;
  /// One point of bench_agility's attack sweep (the optional "agility"
  /// block), matched across records by intensity.
  struct AgilityPoint {
    double intensity = 0;
    bool mitigated = false;
    double ttm_s = 0;  ///< time_to_mitigate_s (-1 when unmitigated)
    std::uint64_t sim_events_overlay = 0;
  };
  bool has_agility = false;      ///< optional "agility" block present
  std::vector<AgilityPoint> agility_points;
};

std::uint64_t u64_field(const Value& object, std::string_view key) {
  const Value* value = object.find(key);
  return value != nullptr ? value->as_u64() : 0;
}

double number_field(const Value& object, std::string_view key) {
  const Value* value = object.find(key);
  return value != nullptr && value->is_number() ? value->number_value : 0.0;
}

Result<BenchRecord> load_record(const std::string& path) {
  Result<std::string> text = slurp(path);
  if (!text.ok()) return text.error();
  Result<Value> doc = anyopt::json::parse(text.value());
  if (!doc.ok()) {
    return anyopt::Error::parse(path + ": " + doc.error().message);
  }
  const Value& root = doc.value();
  if (!root.is_object() || root.find("bench") == nullptr) {
    return anyopt::Error::parse(path + ": not a bench record");
  }
  BenchRecord record;
  record.path = path;
  record.schema = u64_field(root, "schema");
  if (const Value* v = root.find("bench"); v != nullptr) {
    record.bench = v->string_value;
  }
  // Schema 2 carried a single "git" describe string; 3 splits it.
  if (const Value* v = root.find("git_commit"); v != nullptr) {
    record.git_commit = v->string_value;
  } else if (const Value* v2 = root.find("git"); v2 != nullptr) {
    record.git_commit = v2->string_value;
  }
  if (const Value* v = root.find("dirty"); v != nullptr) {
    record.dirty = v->bool_value;
  }
  record.threads = u64_field(root, "threads");
  record.wall_s = number_field(root, "wall_s");
  record.peak_rss_kb = static_cast<std::int64_t>(u64_field(root, "peak_rss_kb"));
  record.sim_runs = u64_field(root, "sim_runs");
  record.sim_events = u64_field(root, "sim_events");
  record.campaign_experiments = u64_field(root, "campaign_experiments");
  record.cache_hit_rate = number_field(root, "resolve_cache_hit_rate");
  record.store_hits = u64_field(root, "store_hits");
  record.overlay_forks = u64_field(root, "overlay_forks");
  record.has_wall = root.find("wall_s") != nullptr;
  record.has_events = root.find("sim_events") != nullptr;
  record.has_rss = root.find("peak_rss_kb") != nullptr;
  if (const Value* bytes = root.find("bytes");
      bytes != nullptr && bytes->is_object()) {
    record.has_bytes = true;
    record.bytes_sim_scratch =
        static_cast<std::int64_t>(u64_field(*bytes, "sim_scratch"));
    for (const auto& [name, value] : bytes->members) {
      (void)name;
      record.bytes_total += static_cast<std::int64_t>(value.as_u64());
    }
    for (const char* key : kRequiredBytesKeys) {
      if (bytes->find(key) == nullptr) record.missing_bytes.push_back(key);
    }
  }
  if (const Value* serve = root.find("serve");
      serve != nullptr && serve->is_object()) {
    record.has_serve = true;
    record.serve_qps = number_field(*serve, "qps");
    record.serve_queries = u64_field(*serve, "queries");
  }
  if (const Value* scale = root.find("scale");
      scale != nullptr && scale->is_object()) {
    record.has_scale = true;
    if (const Value* points = scale->find("points");
        points != nullptr && points->is_array()) {
      for (const Value& point : points->items) {
        if (!point.is_object()) continue;
        BenchRecord::ScalePoint parsed;
        parsed.ases = u64_field(point, "ases");
        parsed.census_s = number_field(point, "census_s");
        parsed.peak_rss_kb =
            static_cast<std::int64_t>(u64_field(point, "peak_rss_kb"));
        record.scale_points.push_back(parsed);
      }
    }
  }
  if (const Value* agility = root.find("agility");
      agility != nullptr && agility->is_object()) {
    record.has_agility = true;
    if (const Value* points = agility->find("points");
        points != nullptr && points->is_array()) {
      for (const Value& point : points->items) {
        if (!point.is_object()) continue;
        BenchRecord::AgilityPoint parsed;
        parsed.intensity = number_field(point, "intensity");
        if (const Value* m = point.find("mitigated"); m != nullptr) {
          parsed.mitigated = m->bool_value;
        }
        parsed.ttm_s = number_field(point, "time_to_mitigate_s");
        parsed.sim_events_overlay = u64_field(point, "sim_events_overlay");
        record.agility_points.push_back(parsed);
      }
    }
  }
  return record;
}

/// `diff`/`check` precondition: a record that CLAIMS schema 3 must carry
/// `peak_rss_kb` and every required `bytes.*` key.  Reading such a hole as
/// zero would compare a real footprint against nothing and manufacture a
/// spurious regression (or mask a real one), so a missing key is a
/// malformed record, not a skippable field.  Pre-schema-3 records are
/// exempt — their absent fields take the skip-with-note path instead.
bool require_schema3_fields(const BenchRecord& record) {
  if (record.schema < 3) return true;
  bool ok = true;
  if (!record.has_rss) {
    std::fprintf(stderr,
                 "anyopt_bench: %s claims schema %" PRIu64
                 " but has no peak_rss_kb — malformed record\n",
                 record.path.c_str(), record.schema);
    ok = false;
  }
  if (!record.has_bytes) {
    std::fprintf(stderr,
                 "anyopt_bench: %s claims schema %" PRIu64
                 " but has no bytes section — malformed record\n",
                 record.path.c_str(), record.schema);
    ok = false;
  } else {
    for (const std::string& key : record.missing_bytes) {
      std::fprintf(stderr,
                   "anyopt_bench: %s claims schema %" PRIu64
                   " but is missing bytes.%s — malformed record\n",
                   record.path.c_str(), record.schema, key.c_str());
      ok = false;
    }
  }
  return ok;
}

int cmd_trajectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    std::fprintf(stderr, "anyopt_bench: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  std::vector<BenchRecord> records;
  for (const auto& entry : it) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") {
      continue;
    }
    Result<BenchRecord> record = load_record(entry.path().string());
    if (!record.ok()) {
      std::fprintf(stderr, "anyopt_bench: %s\n",
                   record.error().message.c_str());
      return 2;
    }
    records.push_back(std::move(record).value());
  }
  if (records.empty()) {
    std::printf("no bench records in %s\n", dir.c_str());
    return 0;
  }
  std::sort(records.begin(), records.end(),
            [](const BenchRecord& a, const BenchRecord& b) {
              return a.bench < b.bench;
            });
  std::printf("%-22s %-12s %3s %8s %8s %12s %8s %5s %10s\n", "bench", "git",
              "thr", "wall_s", "rss_mb", "sim_events", "expts", "hit%",
              "scratch_mb");
  for (const BenchRecord& r : records) {
    std::printf("%-22s %-12s %3" PRIu64 " %8.3f %8.1f %12" PRIu64
                " %8" PRIu64 " %5.1f %10.1f\n",
                r.bench.c_str(),
                (r.git_commit + (r.dirty ? "*" : "")).c_str(), r.threads,
                r.wall_s, static_cast<double>(r.peak_rss_kb) / 1024.0,
                r.sim_events, r.campaign_experiments,
                r.cache_hit_rate * 100.0,
                static_cast<double>(r.bytes_sim_scratch) / (1024.0 * 1024.0));
  }
  std::printf("(%zu records; git* = built from a dirty tree)\n",
              records.size());
  return 0;
}

/// Relative change b vs a, safe at a == 0.
double rel(double a, double b) {
  return a != 0.0 ? (b - a) / a : (b != 0.0 ? HUGE_VAL : 0.0);
}

struct FieldVerdict {
  bool flagged = false;  ///< beyond threshold (symmetric, for diff)
  bool worse = false;    ///< beyond threshold in the bad direction (check)
};

FieldVerdict judge_wall(double a, double b, const Thresholds& t) {
  const double r = rel(a, b);
  return {std::fabs(r) > t.wall_tol, r > t.wall_tol};
}

FieldVerdict judge_events(std::uint64_t a, std::uint64_t b,
                          const Thresholds& t) {
  const std::uint64_t delta = a > b ? a - b : b - a;
  return {delta > t.events_budget, b > a && delta > t.events_budget};
}

FieldVerdict judge_rss(std::int64_t a, std::int64_t b, const Thresholds& t) {
  const double slack = static_cast<double>(a) * t.rss_tol +
                       static_cast<double>(t.rss_budget_kb);
  const double delta = static_cast<double>(b) - static_cast<double>(a);
  return {std::fabs(delta) > slack, delta > slack};
}

/// Serve throughput: higher is better, so the bad direction is a drop.
FieldVerdict judge_qps(double a, double b, const Thresholds& t) {
  const double r = rel(a, b);
  return {std::fabs(r) > t.qps_tol, r < -t.qps_tol};
}

/// Time-to-mitigate: lower is better; the search is deterministic, so the
/// default tolerance is exact.  Callers only compare points both sides
/// mitigated (an unmitigated point renders ttm as -1, not a duration).
FieldVerdict judge_ttm(double a, double b, const Thresholds& t) {
  const double r = rel(a, b);
  return {std::fabs(r) > t.ttm_tol, r > t.ttm_tol};
}

void print_row(const char* name, double a, double b, bool flagged) {
  std::printf("  %-14s %14.3f -> %14.3f  (%+.1f%%)%s\n", name, a, b,
              rel(a, b) * 100.0, flagged ? "  !" : "");
}

/// Skip-with-note for a field absent on one side: the comparison is
/// meaningless (zero is not a measurement), so it neither flags nor fails.
void print_skip(const char* name, const BenchRecord& a, const BenchRecord& b,
                bool a_has, bool b_has) {
  const char* where = !a_has && !b_has ? "both records"
                      : !a_has         ? a.path.c_str()
                                       : b.path.c_str();
  std::printf("  %-14s skipped — absent in %s, not comparable\n", name,
              where);
}

int cmd_diff(const std::string& path_a, const std::string& path_b,
             const Thresholds& thresholds) {
  Result<BenchRecord> ra = load_record(path_a);
  Result<BenchRecord> rb = load_record(path_b);
  if (!ra.ok() || !rb.ok()) {
    std::fprintf(stderr, "anyopt_bench: %s\n",
                 (!ra.ok() ? ra : rb).error().message.c_str());
    return 2;
  }
  const BenchRecord& a = ra.value();
  const BenchRecord& b = rb.value();
  if (a.bench != b.bench) {
    std::fprintf(stderr, "anyopt_bench: records are different benches (%s vs %s)\n",
                 a.bench.c_str(), b.bench.c_str());
    return 2;
  }
  if (!require_schema3_fields(a) || !require_schema3_fields(b)) return 2;
  std::printf("%s: %s%s (%s) vs %s%s (%s)\n", a.bench.c_str(),
              a.git_commit.c_str(), a.dirty ? "*" : "", path_a.c_str(),
              b.git_commit.c_str(), b.dirty ? "*" : "", path_b.c_str());
  bool different = false;
  if (a.has_wall && b.has_wall) {
    const FieldVerdict wall = judge_wall(a.wall_s, b.wall_s, thresholds);
    print_row("wall_s", a.wall_s, b.wall_s, wall.flagged);
    different |= wall.flagged;
  } else {
    print_skip("wall_s", a, b, a.has_wall, b.has_wall);
  }
  if (a.has_events && b.has_events) {
    const FieldVerdict events =
        judge_events(a.sim_events, b.sim_events, thresholds);
    print_row("sim_events", static_cast<double>(a.sim_events),
              static_cast<double>(b.sim_events), events.flagged);
    different |= events.flagged;
  } else {
    print_skip("sim_events", a, b, a.has_events, b.has_events);
  }
  if (a.has_rss && b.has_rss) {
    const FieldVerdict rss =
        judge_rss(a.peak_rss_kb, b.peak_rss_kb, thresholds);
    print_row("peak_rss_kb", static_cast<double>(a.peak_rss_kb),
              static_cast<double>(b.peak_rss_kb), rss.flagged);
    different |= rss.flagged;
  } else {
    print_skip("peak_rss_kb", a, b, a.has_rss, b.has_rss);
  }
  if (a.has_serve && b.has_serve) {
    const FieldVerdict qps = judge_qps(a.serve_qps, b.serve_qps, thresholds);
    print_row("serve_qps", a.serve_qps, b.serve_qps, qps.flagged);
    different |= qps.flagged;
  } else if (a.has_serve || b.has_serve) {
    print_skip("serve_qps", a, b, a.has_serve, b.has_serve);
  }
  if (a.has_scale && b.has_scale) {
    for (const auto& pa : a.scale_points) {
      const auto it = std::find_if(
          b.scale_points.begin(), b.scale_points.end(),
          [&](const auto& pb) { return pb.ases == pa.ases; });
      if (it == b.scale_points.end()) continue;  // size not in both sweeps
      const std::string rss_name = "rss_kb@" + std::to_string(pa.ases);
      const std::string wall_name = "census_s@" + std::to_string(pa.ases);
      const FieldVerdict rss =
          judge_rss(pa.peak_rss_kb, it->peak_rss_kb, thresholds);
      const FieldVerdict wall =
          judge_wall(pa.census_s, it->census_s, thresholds);
      print_row(rss_name.c_str(), static_cast<double>(pa.peak_rss_kb),
                static_cast<double>(it->peak_rss_kb), rss.flagged);
      print_row(wall_name.c_str(), pa.census_s, it->census_s, wall.flagged);
      different |= rss.flagged || wall.flagged;
    }
  } else if (a.has_scale || b.has_scale) {
    print_skip("scale", a, b, a.has_scale, b.has_scale);
  }
  if (a.has_agility && b.has_agility) {
    for (const auto& pa : a.agility_points) {
      const auto it = std::find_if(
          b.agility_points.begin(), b.agility_points.end(),
          [&](const auto& pb) { return pb.intensity == pa.intensity; });
      if (it == b.agility_points.end()) continue;  // not in both sweeps
      char suffix[32];
      std::snprintf(suffix, sizeof suffix, "@x%g", pa.intensity);
      if (pa.mitigated != it->mitigated) {
        std::printf("  mitigated%-5s %14s -> %14s  !\n", suffix,
                    pa.mitigated ? "true" : "false",
                    it->mitigated ? "true" : "false");
        different = true;
      } else if (pa.mitigated) {
        const FieldVerdict ttm = judge_ttm(pa.ttm_s, it->ttm_s, thresholds);
        print_row(("ttm_s" + std::string(suffix)).c_str(), pa.ttm_s,
                  it->ttm_s, ttm.flagged);
        different |= ttm.flagged;
      }
      const FieldVerdict events = judge_events(
          pa.sim_events_overlay, it->sim_events_overlay, thresholds);
      print_row(("ov_events" + std::string(suffix)).c_str(),
                static_cast<double>(pa.sim_events_overlay),
                static_cast<double>(it->sim_events_overlay), events.flagged);
      different |= events.flagged;
    }
  } else if (a.has_agility || b.has_agility) {
    print_skip("agility", a, b, a.has_agility, b.has_agility);
  }
  print_row("experiments", static_cast<double>(a.campaign_experiments),
            static_cast<double>(b.campaign_experiments), false);
  print_row("bytes_total", static_cast<double>(a.bytes_total),
            static_cast<double>(b.bytes_total), false);
  std::printf("%s (wall tol %.0f%%, events budget %" PRIu64
              ", rss tol %.0f%% + %" PRId64 " kb, qps tol %.0f%%)\n",
              different ? "DIFFERS" : "within thresholds",
              thresholds.wall_tol * 100.0, thresholds.events_budget,
              thresholds.rss_tol * 100.0, thresholds.rss_budget_kb,
              thresholds.qps_tol * 100.0);
  return different ? 1 : 0;
}

int cmd_check(const std::string& latest_path,
              const std::string& committed_path,
              const Thresholds& thresholds) {
  Result<BenchRecord> rl = load_record(latest_path);
  Result<BenchRecord> rc = load_record(committed_path);
  if (!rl.ok() || !rc.ok()) {
    std::fprintf(stderr, "anyopt_bench: %s\n",
                 (!rl.ok() ? rl : rc).error().message.c_str());
    return 2;
  }
  const BenchRecord& latest = rl.value();
  const BenchRecord& committed = rc.value();
  if (latest.bench != committed.bench) {
    std::fprintf(stderr,
                 "anyopt_bench: records are different benches (%s vs %s)\n",
                 latest.bench.c_str(), committed.bench.c_str());
    return 2;
  }
  if (!require_schema3_fields(latest) || !require_schema3_fields(committed)) {
    return 2;
  }
  // The gate is asymmetric: only WORSE fails.  An improvement prints a
  // reminder to regenerate the committed record but still exits 0.
  int failures = 0;
  const auto report = [&](const char* name, double committed_value,
                          double latest_value, FieldVerdict verdict) {
    if (verdict.worse) {
      ++failures;
      std::printf("REGRESSION %-12s %14.3f -> %14.3f  (%+.1f%%)\n", name,
                  committed_value, latest_value,
                  rel(committed_value, latest_value) * 100.0);
    } else if (verdict.flagged) {
      std::printf("improved   %-12s %14.3f -> %14.3f  (%+.1f%%)"
                  " — consider regenerating the committed record\n",
                  name, committed_value, latest_value,
                  rel(committed_value, latest_value) * 100.0);
    } else {
      std::printf("ok         %-12s %14.3f -> %14.3f\n", name,
                  committed_value, latest_value);
    }
  };
  const auto skipped = [&](const char* name, bool latest_has,
                           bool committed_has) {
    const char* where = !latest_has && !committed_has ? "both records"
                        : !latest_has ? latest.path.c_str()
                                      : committed.path.c_str();
    std::printf("skipped    %-12s absent in %s — not comparable\n", name,
                where);
  };
  std::printf("%s: latest %s%s vs committed %s%s\n", latest.bench.c_str(),
              latest.git_commit.c_str(), latest.dirty ? "*" : "",
              committed.git_commit.c_str(), committed.dirty ? "*" : "");
  if (latest.has_wall && committed.has_wall) {
    report("wall_s", committed.wall_s, latest.wall_s,
           judge_wall(committed.wall_s, latest.wall_s, thresholds));
  } else {
    skipped("wall_s", latest.has_wall, committed.has_wall);
  }
  if (latest.has_events && committed.has_events) {
    report("sim_events", static_cast<double>(committed.sim_events),
           static_cast<double>(latest.sim_events),
           judge_events(committed.sim_events, latest.sim_events, thresholds));
  } else {
    skipped("sim_events", latest.has_events, committed.has_events);
  }
  if (latest.has_rss && committed.has_rss) {
    report("peak_rss_kb", static_cast<double>(committed.peak_rss_kb),
           static_cast<double>(latest.peak_rss_kb),
           judge_rss(committed.peak_rss_kb, latest.peak_rss_kb, thresholds));
  } else {
    skipped("peak_rss_kb", latest.has_rss, committed.has_rss);
  }
  if (latest.has_serve && committed.has_serve) {
    report("serve_qps", committed.serve_qps, latest.serve_qps,
           judge_qps(committed.serve_qps, latest.serve_qps, thresholds));
  } else if (latest.has_serve || committed.has_serve) {
    skipped("serve_qps", latest.has_serve, committed.has_serve);
  }
  // bench_scale's sweep is gated per size: a peak-RSS or wall regression at
  // any committed point (notably 75k ASes) fails the gate under the same
  // --rss-tol/--rss-budget-kb/--wall-tol thresholds as the headline fields.
  if (latest.has_scale && committed.has_scale) {
    for (const auto& point : committed.scale_points) {
      const auto it = std::find_if(
          latest.scale_points.begin(), latest.scale_points.end(),
          [&](const auto& p) { return p.ases == point.ases; });
      if (it == latest.scale_points.end()) {
        std::printf("skipped    rss_kb@%-5" PRIu64
                    " size absent in %s — not comparable\n",
                    point.ases, latest.path.c_str());
        continue;
      }
      const std::string rss_name = "rss_kb@" + std::to_string(point.ases);
      const std::string wall_name = "census_s@" + std::to_string(point.ases);
      report(rss_name.c_str(), static_cast<double>(point.peak_rss_kb),
             static_cast<double>(it->peak_rss_kb),
             judge_rss(point.peak_rss_kb, it->peak_rss_kb, thresholds));
      report(wall_name.c_str(), point.census_s, it->census_s,
             judge_wall(point.census_s, it->census_s, thresholds));
    }
  } else if (latest.has_scale || committed.has_scale) {
    skipped("scale", latest.has_scale, committed.has_scale);
  }
  // bench_agility's attack sweep is gated per intensity, asymmetrically:
  // a point the committed record mitigated must STAY mitigated (losing a
  // working playbook is the one regression no tolerance excuses), its
  // time-to-mitigate may not grow beyond --ttm-tol, and the overlay event
  // count may not grow beyond --events-budget.  Newly-mitigated points,
  // faster mitigation and fewer events are improvements and pass.
  if (latest.has_agility && committed.has_agility) {
    for (const auto& point : committed.agility_points) {
      const auto it = std::find_if(
          latest.agility_points.begin(), latest.agility_points.end(),
          [&](const auto& p) { return p.intensity == point.intensity; });
      char suffix[32];
      std::snprintf(suffix, sizeof suffix, "@x%g", point.intensity);
      if (it == latest.agility_points.end()) {
        std::printf("skipped    agility%-5s intensity absent in %s"
                    " — not comparable\n",
                    suffix, latest.path.c_str());
        continue;
      }
      if (point.mitigated && !it->mitigated) {
        ++failures;
        std::printf("REGRESSION mitigated%-5s true -> false"
                    " (committed playbook no longer restores the SLO)\n",
                    suffix);
      } else if (!point.mitigated && it->mitigated) {
        std::printf("improved   mitigated%-5s false -> true"
                    " — consider regenerating the committed record\n",
                    suffix);
      }
      if (point.mitigated && it->mitigated) {
        report(("ttm_s" + std::string(suffix)).c_str(), point.ttm_s,
               it->ttm_s, judge_ttm(point.ttm_s, it->ttm_s, thresholds));
      }
      report(("ov_events" + std::string(suffix)).c_str(),
             static_cast<double>(point.sim_events_overlay),
             static_cast<double>(it->sim_events_overlay),
             judge_events(point.sim_events_overlay, it->sim_events_overlay,
                          thresholds));
    }
  } else if (latest.has_agility || committed.has_agility) {
    skipped("agility", latest.has_agility, committed.has_agility);
  }
  if (failures > 0) {
    std::printf("CHECK FAILED: %d regression(s) beyond thresholds\n",
                failures);
    return 1;
  }
  std::printf("check passed\n");
  return 0;
}

/// Pretty-prints one provenance line (already parsed).
void print_trace(const Value& trace) {
  std::printf("  [ordinal %" PRIu64 " attempt %" PRIu64 "] %s:",
              u64_field(trace, "ordinal"), u64_field(trace, "attempt"),
              trace.find("path") != nullptr
                  ? trace.find("path")->string_value.c_str()
                  : "?");
  if (const std::uint64_t events = u64_field(trace, "sim_events");
      events > 0) {
    std::printf(" %" PRIu64 " events,", events);
  }
  std::printf(" cache %" PRIu64 "/%" PRIu64 " hit/miss,",
              u64_field(trace, "cache_hits"), u64_field(trace, "cache_misses"));
  std::printf(" probes %" PRIu64 " sent / %" PRIu64 " lost / %" PRIu64
              " retries,",
              u64_field(trace, "probes_sent"), u64_field(trace, "probes_lost"),
              u64_field(trace, "retries"));
  std::printf(" %" PRIu64 "/%" PRIu64 " reachable",
              u64_field(trace, "reachable"), u64_field(trace, "targets"));
  const Value* round_failed = trace.find("round_failed");
  if (round_failed != nullptr && round_failed->bool_value) {
    std::printf(", ROUND FAILED");
  }
  const Value* degraded = trace.find("degraded");
  if (degraded != nullptr && degraded->bool_value) {
    std::printf(", degraded (%" PRIu64 " targets dropped)",
                u64_field(trace, "targets_dropped"));
  }
  const Value* storm = trace.find("storm");
  if (storm != nullptr && storm->bool_value) std::printf(", loss storm");
  if (const std::uint64_t suppressed =
          u64_field(trace, "announce_suppressed");
      suppressed > 0) {
    std::printf(", %" PRIu64 " announce(s) suppressed", suppressed);
  }
  if (const std::uint64_t flaps = u64_field(trace, "flap_events"); flaps > 0) {
    std::printf(", %" PRIu64 " flap event(s)", flaps);
  }
  std::printf(", %.3f ms\n", number_field(trace, "duration_ms"));
}

int cmd_explain(const std::string& nonce_text, const std::string& log_path) {
  char* end = nullptr;
  const std::uint64_t nonce = std::strtoull(nonce_text.c_str(), &end, 16);
  if (end == nonce_text.c_str() || *end != '\0') {
    std::fprintf(stderr, "anyopt_bench: bad nonce %s (expected hex)\n",
                 nonce_text.c_str());
    return 2;
  }
  Result<std::string> text = slurp(log_path);
  if (!text.ok()) {
    std::fprintf(stderr, "anyopt_bench: %s\n", text.error().message.c_str());
    return 2;
  }
  std::size_t matches = 0;
  std::string_view remaining = text.value();
  std::size_t line_number = 0;
  while (!remaining.empty()) {
    ++line_number;
    const std::size_t newline = remaining.find('\n');
    const std::string_view line = remaining.substr(0, newline);
    remaining = newline == std::string_view::npos
                    ? std::string_view{}
                    : remaining.substr(newline + 1);
    if (line.empty()) continue;
    Result<Value> doc = anyopt::json::parse(line);
    if (!doc.ok()) {
      std::fprintf(stderr, "anyopt_bench: %s line %zu: %s\n",
                   log_path.c_str(), line_number,
                   doc.error().message.c_str());
      return 2;
    }
    const Value* trace_nonce = doc.value().find("nonce");
    if (trace_nonce == nullptr || !trace_nonce->is_string()) continue;
    if (std::strtoull(trace_nonce->string_value.c_str(), nullptr, 16) !=
        nonce) {
      continue;
    }
    if (matches == 0) {
      std::printf("nonce %016" PRIx64 " in %s:\n", nonce, log_path.c_str());
    }
    ++matches;
    print_trace(doc.value());
  }
  if (matches == 0) {
    std::printf("nonce %016" PRIx64 ": no provenance records in %s\n", nonce,
                log_path.c_str());
    return 1;
  }
  std::printf("%zu record(s)\n", matches);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Thresholds thresholds;
  std::vector<std::string> args;
  if (!parse_args(argc, argv, thresholds, args)) return usage();
  if (args.empty()) return usage();
  const std::string& command = args[0];
  if (command == "trajectory") {
    if (args.size() > 2) return usage();
    return cmd_trajectory(args.size() == 2 ? args[1] : "bench/records");
  }
  if (command == "diff") {
    if (args.size() != 3) return usage();
    return cmd_diff(args[1], args[2], thresholds);
  }
  if (command == "check") {
    if (args.size() != 3) return usage();
    return cmd_check(args[1], args[2], thresholds);
  }
  if (command == "explain") {
    if (args.size() < 2 || args.size() > 3) return usage();
    return cmd_explain(args[1],
                       args.size() == 3 ? args[2] : "provenance.jsonl");
  }
  return usage();
}
