// anyoptd — the what-if prediction daemon.
//
// Loads one immutable query snapshot (world + discovered preference tables
// + RTT matrix; warm-started from a persistent result store when given
// one) and answers line-oriented JSON queries over a local AF_UNIX socket
// with a lock-free read path (see serve/service.h).
//
//   anyoptd --socket=/tmp/anyopt.sock --store=results.aopt --scale=small
//   anyoptd --oneshot --scale=small < requests.jsonl > responses.jsonl
//
// Flags:
//   --socket=PATH       AF_UNIX socket to listen on (daemon mode)
//   --oneshot           answer requests from stdin on stdout, then exit
//                       (the scriptable mode; also what the smoke tests
//                       and bit-identity comparisons drive)
//   --store=FILE        persistent result store to warm-start from (and,
//                       unless --store-read-only, to flush fresh results
//                       into); a daemon restarted over a warm store serves
//                       bit-identical answers
//   --store-read-only   never write the store file (multiple daemons may
//                       share one store; see measure/store.h)
//   --seed=N            world seed (default 1897, the paper environment)
//   --scale=paper|small world size (default paper)
//   --ases=N            serve a scaled world of ~N ASes (up to 75,000;
//                       overrides --scale — see docs/SCALING.md for the
//                       per-AS memory budget)
//   --threads=N         build-campaign workers AND connection workers
//   --metrics           print the telemetry summary on exit
//
// Protocol (one JSON object per line; see serve/protocol.h):
//   {"op":"predict","sites":[3,1,12],"clients":[0,17],"detail":true}
//   {"op":"score","sites":[3,1,12]}
//   {"op":"info"}
//   {"op":"reload"}        rebuild the snapshot (picks up store growth)
//                          and atomically swap it in

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "netbase/telemetry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace {

using anyopt::Result;
using anyopt::serve::Server;
using anyopt::serve::ServerOptions;
using anyopt::serve::Service;
using anyopt::serve::Snapshot;
using anyopt::serve::SnapshotOptions;

int usage() {
  std::fprintf(stderr,
               "usage: anyoptd (--socket=PATH | --oneshot)\n"
               "               [--store=FILE] [--store-read-only]\n"
               "               [--seed=N] [--scale=paper|small] [--ases=N]\n"
               "               [--threads=N] [--metrics]\n");
  return 2;
}

struct Args {
  std::string socket_path;
  bool oneshot = false;
  bool metrics = false;
  SnapshotOptions snapshot;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      args.socket_path = arg + 9;
    } else if (std::strcmp(arg, "--oneshot") == 0) {
      args.oneshot = true;
    } else if (std::strncmp(arg, "--store=", 8) == 0) {
      args.snapshot.store_path = arg + 8;
    } else if (std::strcmp(arg, "--store-read-only") == 0) {
      args.snapshot.store_read_only = true;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.snapshot.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      if (std::strcmp(arg + 8, "small") == 0) {
        args.snapshot.test_scale = true;
      } else if (std::strcmp(arg + 8, "paper") == 0) {
        args.snapshot.test_scale = false;
      } else {
        std::fprintf(stderr, "anyoptd: unknown scale \"%s\"\n", arg + 8);
        return false;
      }
    } else if (std::strncmp(arg, "--ases=", 7) == 0) {
      args.snapshot.ases =
          static_cast<std::size_t>(std::strtoul(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.snapshot.threads =
          static_cast<std::size_t>(std::strtoul(arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--metrics") == 0) {
      args.metrics = true;
    } else {
      std::fprintf(stderr, "anyoptd: unknown flag \"%s\"\n", arg);
      return false;
    }
  }
  // Exactly one of --oneshot / --socket: oneshot with an empty socket
  // path, or a socket path without oneshot.
  return args.oneshot == args.socket_path.empty();
}

int run_oneshot(Service& service) {
  char* line = nullptr;
  std::size_t cap = 0;
  ssize_t n = 0;
  while ((n = ::getline(&line, &cap, stdin)) >= 0) {
    std::string_view view(line, static_cast<std::size_t>(n));
    while (!view.empty() && (view.back() == '\n' || view.back() == '\r')) {
      view.remove_suffix(1);
    }
    if (view.empty()) continue;
    const std::string response = service.handle_line(view);
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  std::free(line);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  anyopt::telemetry::set_enabled(true);

  std::fprintf(stderr, "[anyoptd] building snapshot (seed %llu, %s scale%s)\n",
               static_cast<unsigned long long>(args.snapshot.seed),
               args.snapshot.test_scale ? "test" : "paper",
               args.snapshot.store_path.empty() ? "" : ", store-warmed");
  Result<std::shared_ptr<Snapshot>> snapshot =
      Snapshot::build(args.snapshot);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "anyoptd: %s\n", snapshot.error().message.c_str());
    return 1;
  }

  Service service;
  const SnapshotOptions snapshot_options = args.snapshot;
  service.set_reloader([snapshot_options] {
    return Snapshot::build(snapshot_options);
  });
  service.publish(std::move(snapshot).value());
  std::fprintf(stderr, "[anyoptd] snapshot ready (%zu experiments run)\n",
               service.current()->experiments_run());

  int rc = 0;
  if (args.oneshot) {
    rc = run_oneshot(service);
  } else {
    Server server(service, ServerOptions{.socket_path = args.socket_path,
                                         .threads = args.snapshot.threads});
    std::fprintf(stderr, "[anyoptd] listening on %s\n",
                 args.socket_path.c_str());
    const anyopt::Status served = server.serve();
    if (!served.ok()) {
      std::fprintf(stderr, "anyoptd: %s\n", served.error().message.c_str());
      rc = 1;
    }
  }

  if (args.metrics) {
    const std::string summary =
        anyopt::telemetry::Registry::global().summary();
    std::fwrite(summary.data(), 1, summary.size(), stderr);
  }
  return rc;
}
