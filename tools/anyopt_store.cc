// anyopt_store — inspect, verify, diff and compact persistent result
// stores (the `--store=FILE` files the bench binaries and campaigns write).
//
//   anyopt_store inspect FILE         header, per-kind record tallies
//   anyopt_store verify FILE          full CRC scan; exit 1 on any damage
//   anyopt_store diff FILE_A FILE_B   compare persisted results by key
//   anyopt_store compact FILE         drop superseded records, re-encode
//
// `verify` is the integrity oracle: a clean exit 0 means every record's
// CRC holds and the file ends on a record boundary; any bad CRC or torn
// tail exits 1 and names the offset.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/store_io.h"
#include "measure/store.h"

namespace {

using anyopt::Result;
using anyopt::measure::Census;
using anyopt::measure::RecordInfo;
using anyopt::measure::RecordKind;
using anyopt::measure::ResultStore;

const char* kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kCensus: return "census";
    case RecordKind::kRttRow: return "rtt-row";
    case RecordKind::kTable: return "table";
    case RecordKind::kRib: return "rib";
  }
  return "unknown";
}

int usage() {
  std::fprintf(stderr,
               "usage: anyopt_store <inspect|verify|compact> FILE\n"
               "       anyopt_store diff FILE_A FILE_B\n");
  return 2;
}

/// Latest-wins view of a store's log: the last record per (kind, key).
std::map<std::pair<std::uint8_t, std::uint64_t>, RecordInfo> live_records(
    const ResultStore& store) {
  std::map<std::pair<std::uint8_t, std::uint64_t>, RecordInfo> live;
  for (const RecordInfo& info : store.records()) {
    live[{static_cast<std::uint8_t>(info.kind), info.key}] = info;
  }
  return live;
}

int cmd_inspect(const std::string& path) {
  Result<std::unique_ptr<ResultStore>> store = ResultStore::open_existing(path);
  if (!store.ok()) {
    std::fprintf(stderr, "anyopt_store: %s\n", store.error().message.c_str());
    return 1;
  }
  const ResultStore& s = *store.value();
  std::printf("store %s\n", s.path().c_str());
  std::printf("  schema version      %u\n", ResultStore::kSchemaVersion);
  std::printf("  topology fingerprint %016" PRIx64 "\n", s.fingerprint());
  if (s.recovered_tail_bytes() > 0) {
    std::printf("  torn tail recovered %zu bytes\n", s.recovered_tail_bytes());
  }
  const auto log = s.records();
  const auto live = live_records(s);
  std::map<std::uint8_t, std::pair<std::size_t, std::size_t>> by_kind;
  for (const RecordInfo& info : log) {
    ++by_kind[static_cast<std::uint8_t>(info.kind)].first;
  }
  for (const auto& [key, info] : live) {
    ++by_kind[key.first].second;
  }
  std::printf("  records             %zu (%zu live)\n", log.size(),
              live.size());
  for (const auto& [kind, counts] : by_kind) {
    std::printf("    %-8s %zu (%zu live)\n",
                kind_name(static_cast<RecordKind>(kind)), counts.first,
                counts.second);
  }
  return 0;
}

int cmd_verify(const std::string& path) {
  Result<ResultStore::VerifyReport> report = ResultStore::verify_file(path);
  if (!report.ok()) {
    std::fprintf(stderr, "anyopt_store: %s\n", report.error().message.c_str());
    return 1;
  }
  std::printf("%s: %zu records scanned\n", path.c_str(),
              report.value().records);
  for (const std::string& problem : report.value().problems) {
    std::printf("  PROBLEM: %s\n", problem.c_str());
  }
  if (!report.value().clean()) {
    std::printf("VERIFY FAILED: %zu bad CRC, %zu torn tail bytes\n",
                report.value().bad_crc, report.value().torn_tail_bytes);
    return 1;
  }
  std::printf("clean\n");
  return 0;
}

bool census_equal(const Census& a, const Census& b) {
  return a.site_of_target == b.site_of_target &&
         a.attachment_of_target == b.attachment_of_target &&
         a.rtt_ms == b.rtt_ms;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  Result<std::unique_ptr<ResultStore>> a = ResultStore::open_existing(path_a);
  Result<std::unique_ptr<ResultStore>> b = ResultStore::open_existing(path_b);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "anyopt_store: %s\n",
                 (!a.ok() ? a : b).error().message.c_str());
    return 1;
  }
  const std::unique_ptr<ResultStore>& sa = a.value();
  const std::unique_ptr<ResultStore>& sb = b.value();
  if (sa->fingerprint() != sb->fingerprint()) {
    std::printf("fingerprints differ: %016" PRIx64 " vs %016" PRIx64 "\n",
                sa->fingerprint(), sb->fingerprint());
  }
  const auto live_a = live_records(*sa);
  const auto live_b = live_records(*sb);
  std::size_t only_a = 0;
  std::size_t only_b = 0;
  std::size_t differ = 0;
  std::size_t same = 0;
  for (const auto& [key, info] : live_a) {
    const auto it = live_b.find(key);
    if (it == live_b.end()) {
      ++only_a;
      continue;
    }
    bool equal = false;
    if (info.kind == RecordKind::kCensus) {
      // Delta bases differ between files; compare decoded censuses, not
      // raw payload bytes.
      Result<Census> ca = sa->read_census_at(info);
      Result<Census> cb = sb->read_census_at(it->second);
      equal = ca.ok() && cb.ok() && census_equal(ca.value(), cb.value());
    } else {
      const auto pa = sa->find_payload(info.kind, info.key);
      const auto pb = sb->find_payload(info.kind, info.key);
      equal = pa.has_value() && pb.has_value() && *pa == *pb;
    }
    if (equal) {
      ++same;
    } else {
      ++differ;
      std::printf("  differs: %s key %016" PRIx64 "\n", kind_name(info.kind),
                  info.key);
    }
  }
  for (const auto& [key, info] : live_b) {
    if (live_a.find(key) == live_a.end()) ++only_b;
  }
  std::printf("%zu same, %zu differ, %zu only in %s, %zu only in %s\n", same,
              differ, only_a, path_a.c_str(), only_b, path_b.c_str());
  return differ == 0 ? 0 : 1;
}

int cmd_compact(const std::string& path) {
  Result<std::unique_ptr<ResultStore>> source =
      ResultStore::open_existing(path);
  if (!source.ok()) {
    std::fprintf(stderr, "anyopt_store: %s\n",
                 source.error().message.c_str());
    return 1;
  }
  std::unique_ptr<ResultStore> src = std::move(source).value();
  const std::string tmp = path + ".compact";
  std::remove(tmp.c_str());
  Result<std::unique_ptr<ResultStore>> dest_result =
      ResultStore::open(tmp, src->fingerprint());
  if (!dest_result.ok()) {
    std::fprintf(stderr, "anyopt_store: %s\n",
                 dest_result.error().message.c_str());
    return 1;
  }
  std::unique_ptr<ResultStore> dest = std::move(dest_result).value();
  // Re-put every live record in log order.  Censuses are decoded and
  // re-encoded, so the compacted store picks a fresh delta base; other
  // kinds are copied payload-for-payload.
  std::size_t dropped = 0;
  const auto log = src->records();
  const auto live = live_records(*src);
  for (const RecordInfo& info : log) {
    const auto it = live.find({static_cast<std::uint8_t>(info.kind), info.key});
    if (it == live.end() || it->second.offset != info.offset) {
      ++dropped;  // superseded by a later record of the same key
      continue;
    }
    anyopt::Status status;
    if (info.kind == RecordKind::kCensus) {
      Result<Census> census = src->read_census_at(info);
      if (!census.ok()) {
        std::fprintf(stderr, "anyopt_store: %s\n",
                     census.error().message.c_str());
        return 1;
      }
      status = dest->put_census(info.key, census.value());
    } else {
      const auto payload = src->find_payload(info.kind, info.key);
      anyopt::codec::Writer body;
      if (payload.has_value()) body.put_bytes(*payload);
      status = dest->put_payload(info.kind, info.key, body);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "anyopt_store: %s\n", status.error().message.c_str());
      return 1;
    }
  }
  dest.reset();  // close the compacted file
  src.reset();   // close the original before replacing it
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "anyopt_store: cannot replace %s\n", path.c_str());
    return 1;
  }
  std::printf("%s: %zu records kept, %zu superseded records dropped\n",
              path.c_str(), live.size(), dropped);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  if (command == "inspect") return cmd_inspect(argv[2]);
  if (command == "verify") return cmd_verify(argv[2]);
  if (command == "compact") return cmd_compact(argv[2]);
  if (command == "diff") {
    if (argc < 4) return usage();
    return cmd_diff(argv[2], argv[3]);
  }
  return usage();
}
