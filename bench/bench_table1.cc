// Table 1: the 15-site anycast testbed — locations, transit providers and
// peer counts — plus per-site unicast statistics from the singleton RTT
// experiments (§3.1) and the all-sites catchment census.

#include <cstdio>

#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("table1", argc, argv);
  bench::print_banner(
      "Table 1 (testbed) + per-site unicast/catchment profile",
      "15 sites, 6 tier-1 transits (Telia/Zayo/TATA/GTT/NTT/Sparkle), "
      "104 peering links, 15,300 targets in 12,143 /24s and 5,317 ASes");

  bench::PaperEnv env = bench::make_env_from_environment();
  const auto& deployment = env.world->deployment();
  const auto& targets = env.world->targets();

  std::printf("targets: %zu across %zu /24 networks in %zu ASes; "
              "peer links provisioned: %zu\n\n",
              targets.size(), targets.distinct_slash24(),
              targets.distinct_ases(),
              deployment.all_peer_attachments().size());

  const core::RttMatrix& rtts = env.pipeline->measure_rtts();
  const measure::Census census = env.orchestrator->measure(
      anycast::AnycastConfig::all_sites(deployment), 0x7AB1E);

  TextTable table({"Site", "Location", "Transit", "#peers",
                   "unicast mean RTT (ms)", "catchment (15-all)"});
  for (std::size_t s = 0; s < deployment.site_count(); ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    const anycast::Site& info = deployment.site(site);
    table.add_row({std::to_string(s + 1), info.metro, info.provider_name,
                   std::to_string(deployment.peer_attachments(site).size()),
                   TextTable::num(rtts.site_mean(site), 1),
                   std::to_string(census.catchment_size(site))});
  }
  std::printf("%s\n", table.render().c_str());
  // Empty-census contract: mean/median are 0.0 (not NaN) when nothing was
  // reachable; print n/a instead of a misleading zero-latency deployment.
  if (census.reachable_count() == 0) {
    std::printf("all-sites deployment: mean RTT n/a, median n/a, "
                "reachable 0/%zu\n",
                targets.size());
  } else {
    std::printf("all-sites deployment: mean RTT %.1f ms, median %.1f ms, "
                "reachable %zu/%zu\n",
                census.mean_rtt(), census.median_rtt(),
                census.reachable_count(), targets.size());
  }
  return 0;
}
