// Ablation (DESIGN.md §4): how much of AnyOpt's prediction accuracy comes
// from accounting for BGP announcement arrival order?  Re-runs the Fig. 5a
// protocol with a predictor built from naive (simultaneous, single-run)
// pairwise tables instead of the ordered two-experiment tables.

#include <cstdio>

#include "core/discovery.h"
#include "core/predictor.h"
#include "netbase/rng.h"
#include "netbase/stats.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("ablation", argc, argv);
  bench::print_banner(
      "Ablation — prediction accuracy with vs without announcement-order "
      "accounting",
      "(implicit in §5.1/§5.2: without order handling, order-dependent "
      "clients are misclassified as strict and mispredicted)");

  bench::PaperEnv env = bench::make_env_from_environment();

  // Ordered predictor: via the pipeline (two experiments per pair).
  const core::Predictor& ordered = env.pipeline->predictor();

  // Naive predictor: simultaneous single-run discovery at both levels.
  core::DiscoveryOptions naive_opts;
  naive_opts.account_order = false;
  naive_opts.store = env.store.get();
  const core::Discovery naive(*env.orchestrator, naive_opts);
  const core::DiscoveryResult naive_result = naive.run();
  const core::Predictor naive_predictor(env.world->deployment(),
                                        naive_result, ordered.rtts());

  Rng rng{57};
  TextTable table({"config", "#sites", "accuracy (ordered)",
                   "accuracy (naive)", "predictable (ordered)",
                   "predictable (naive)"});
  stats::Online ordered_acc;
  stats::Online naive_acc;
  const std::size_t sites = env.world->deployment().site_count();
  for (int i = 0; i < 12; ++i) {
    const std::size_t k = 2 + rng.below(sites - 2);
    std::vector<std::size_t> ids(sites);
    for (std::size_t s = 0; s < sites; ++s) ids[s] = s;
    rng.shuffle(ids);
    anycast::AnycastConfig cfg;
    for (std::size_t s = 0; s < k; ++s) {
      cfg.announce_order.push_back(
          SiteId{static_cast<SiteId::underlying_type>(ids[s])});
    }
    const measure::Census census =
        env.orchestrator->measure(cfg, 0xAB1A + i);
    const core::Prediction po = ordered.predict(cfg);
    const core::Prediction pn = naive_predictor.predict(cfg);
    const double ao = po.accuracy_against(census);
    const double an = pn.accuracy_against(census);
    ordered_acc.add(ao);
    naive_acc.add(an);
    const double total = static_cast<double>(census.site_of_target.size());
    table.add_row({std::to_string(i + 1), std::to_string(k),
                   TextTable::pct(ao), TextTable::pct(an),
                   TextTable::pct(po.predicted_count() / total),
                   TextTable::pct(pn.predicted_count() / total)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("mean accuracy: ordered %.1f%% vs naive %.1f%% — the "
              "order-aware discovery is what makes the catchment predictor "
              "trustworthy.\n",
              100 * ordered_acc.mean(), 100 * naive_acc.mean());
  return 0;
}
