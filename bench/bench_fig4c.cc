// Figure 4c: fraction of client networks WITH a total preference order as
// sites are added (one per provider first, then the rest), comparing the
// naive flat pairwise approach (simultaneous announcements, no order
// accounting) against the two-level discovery with announcement-order
// accounting (§5.1).  The paper: at 15 sites only 15.3% keep a total order
// naively, vs 88.9% with the two-level + order approach.

#include <algorithm>
#include <cstdio>

#include "core/anyopt.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("fig4c", argc, argv);
  const std::size_t threads = bench::parse_threads(argc, argv);
  bench::print_banner(
      "Figure 4c — networks with a total order vs #sites",
      "naive collapses to 15.3% at 15 sites; two-level + announcement "
      "order keeps 88.9%");
  std::printf("campaign threads: %zu\n\n", threads);

  bench::PaperEnv env = bench::make_env_from_environment(threads);
  const auto& deployment = env.world->deployment();

  // Naive baseline: flat site-level pairwise table, simultaneous
  // announcements (O(|S|^2) BGP experiments).
  core::DiscoveryOptions naive_opts;
  naive_opts.account_order = false;
  naive_opts.threads = threads;
  naive_opts.store = env.store.get();
  const core::Discovery naive(*env.orchestrator, naive_opts);
  std::size_t naive_experiments = 0;
  const core::PairwiseTable flat = naive.flat_site_level(&naive_experiments);

  // Two-level discovery with order accounting (via the pipeline cache).
  const core::Predictor& predictor = env.pipeline->predictor();

  // Site growth order: one site per provider first, then the remainder.
  std::vector<SiteId> growth;
  for (std::size_t p = 0; p < deployment.provider_count(); ++p) {
    growth.push_back(deployment
                         .sites_of_provider(ProviderId{
                             static_cast<ProviderId::underlying_type>(p)})
                         .front());
  }
  for (std::size_t s = 0; s < deployment.site_count(); ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    if (std::find(growth.begin(), growth.end(), site) == growth.end()) {
      growth.push_back(site);
    }
  }

  TextTable table({"#sites", "with total order (naive flat)",
                   "with total order (two-level + order)"});
  for (std::size_t k = deployment.provider_count(); k <= growth.size(); ++k) {
    const std::vector<SiteId> enabled(growth.begin(), growth.begin() + k);
    // Naive: tournament over the flat table, arrival = announce position.
    std::vector<std::size_t> items;
    std::vector<std::size_t> arrival(deployment.site_count(), 0);
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      items.push_back(enabled[i].value());
      arrival[enabled[i].value()] = i;
    }
    std::sort(items.begin(), items.end());
    const double naive_frac =
        core::fraction_with_total_order(flat, items, arrival);
    const double two_level_frac = predictor.fraction_ordered(
        anycast::AnycastConfig::of_sites(enabled));
    table.add_row({std::to_string(k), TextTable::pct(naive_frac),
                   TextTable::pct(two_level_frac)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("naive flat discovery used %zu BGP experiments; two-level "
              "used %zu\n",
              naive_experiments, env.pipeline->experiments_run());
  return 0;
}
