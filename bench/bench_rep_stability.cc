// §4.3 representative-site stability: "when we vary the representative
// site or the number of representative sites for each transit provider,
// 94.2% of the client networks on average do not change their pairwise
// preferences."

#include <cstdio>

#include "core/discovery.h"
#include "netbase/stats.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("rep_stability", argc, argv);
  bench::print_banner(
      "§4.3 — provider-level preference stability under representative-site "
      "changes",
      "94.2% of client networks keep their pairwise preferences when the "
      "representative site varies");

  bench::PaperEnv env = bench::make_env_from_environment();
  const auto& deployment = env.world->deployment();

  const core::Discovery base(*env.orchestrator);
  std::size_t experiments = 0;
  const core::PairwiseTable reference = base.provider_level(&experiments);

  // Alternative representative choices: per provider, each later site in
  // turn (providers with one site keep it).
  stats::Online stability;
  TextTable table({"variant", "preferences unchanged"});
  for (int variant = 1; variant <= 3; ++variant) {
    core::DiscoveryOptions opts;
    opts.store = env.store.get();
    opts.representatives.resize(deployment.provider_count());
    bool differs = false;
    for (std::size_t p = 0; p < deployment.provider_count(); ++p) {
      const auto sites = deployment.sites_of_provider(
          ProviderId{static_cast<ProviderId::underlying_type>(p)});
      const std::size_t pick =
          std::min<std::size_t>(variant, sites.size() - 1);
      opts.representatives[p] = sites[pick];
      differs |= pick != 0;
    }
    if (!differs) continue;
    const core::Discovery alt(*env.orchestrator, opts);
    const core::PairwiseTable other = alt.provider_level(&experiments);

    std::size_t same = 0;
    std::size_t comparable = 0;
    for (std::size_t pair = 0; pair < reference.outcome.size(); ++pair) {
      for (std::size_t t = 0; t < reference.target_count; ++t) {
        const auto a = reference.outcome[pair][t];
        const auto b = other.outcome[pair][t];
        if (a == core::PrefKind::kUnknown || b == core::PrefKind::kUnknown) {
          continue;
        }
        ++comparable;
        if (a == b) ++same;
      }
    }
    const double frac =
        static_cast<double>(same) / static_cast<double>(comparable);
    stability.add(frac);
    table.add_row({"representative set #" + std::to_string(variant),
                   TextTable::pct(frac)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("mean stability: %.1f%% (paper: 94.2%%)\n",
              100 * stability.mean());
  return 0;
}
