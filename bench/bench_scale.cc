// Internet-scale sweep (ROADMAP item 2 — the capacity gap): builds worlds
// from 5k to 75k ASes via `WorldParams::at_scale`, runs one full catchment
// census per size on the structure-of-arrays resolve path, and records the
// wall-time and memory curves that docs/SCALING.md's budget table is
// calibrated against.
//
// Flags beyond the common telemetry set (support/bench_common.h):
//   --ases=N           run a single point at N ASes instead of the sweep
//   --mem-budget-mb=M  soft memory budget; above it the measurement plane
//                      degrades to streaming (result-invariant) instead of
//                      OOMing — the 75k point is expected to complete
//                      within any budget that fits the topology itself
//
// The sweep runs ascending, so each point's `peak_rss_kb` (process
// high-water) and `bytes.*` gauge maxima are dominated by that point's own
// footprint; `rss_kb` is the live RSS after the point's world is destroyed.
// The per-point curves land in the bench record's "scale" section
// (BENCH_scale.json, schema 3) and are gated by `anyopt_bench check`.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "anycast/config.h"
#include "netbase/resmon.h"
#include "netbase/table.h"
#include "netbase/telemetry.h"
#include "support/bench_common.h"

namespace {

/// Parses `--ases=N` and REMOVES it from argv (same contract as the
/// bench_common parsers).  Returns 0 when absent.
std::size_t parse_ases(int& argc, char** argv) {
  std::size_t ases = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ases=", 7) == 0) {
      ases = static_cast<std::size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return ases;
}

struct ScalePoint {
  std::size_t ases = 0;      ///< requested AS count
  std::size_t built_ases = 0;
  std::size_t targets = 0;
  std::size_t reachable = 0;
  double build_s = 0;        ///< world construction (topology + targets)
  double census_s = 0;       ///< converge + resolve + probe, one census
  std::int64_t rss_kb = 0;       ///< live RSS after the point
  std::int64_t peak_rss_kb = 0;  ///< process high-water after the point
  std::int64_t rib_bytes = 0;
  std::int64_t shard_bytes = 0;
  std::int64_t scratch_bytes = 0;
};

ScalePoint run_point(std::size_t ases) {
  using namespace anyopt;
  auto& reg = telemetry::Registry::global();
  ScalePoint point;
  point.ases = ases;
  const double build_start = telemetry::now_us();
  const std::unique_ptr<anycast::World> world =
      anycast::World::create(anycast::WorldParams::at_scale(ases));
  point.build_s = (telemetry::now_us() - build_start) / 1e6;
  point.built_ases = world->internet().graph.as_count();
  point.targets = world->targets().size();

  const measure::Orchestrator orchestrator(*world);
  anycast::AnycastConfig config;
  const std::size_t sites = world->deployment().site_count();
  for (std::size_t s = 0; s < sites; ++s) {
    config.announce_order.push_back(
        SiteId{static_cast<SiteId::underlying_type>(s)});
  }
  const double census_start = telemetry::now_us();
  const measure::Census census = orchestrator.measure(config, 0x5CA1EULL);
  point.census_s = (telemetry::now_us() - census_start) / 1e6;
  point.reachable = census.reachable_count();

  // Ascending sweep: these running maxima are dominated by this (largest
  // so far) point, so reading them here yields a per-size curve.
  point.peak_rss_kb =
      static_cast<std::int64_t>(resmon::read_memory().peak_rss_kb);
  point.rib_bytes = reg.gauge_max("bytes.rib");
  point.shard_bytes = reg.gauge_max("bytes.census_shards");
  point.scratch_bytes = reg.gauge_max("bytes.sim_scratch");
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace anyopt;
  const std::size_t single = parse_ases(argc, argv);
  const bench::TelemetryScope telemetry_scope("scale", argc, argv);
  bench::print_banner(
      "Internet-scale sweep — SoA RIBs and sharded census aggregation",
      "the paper targets the real Internet (~70k ASes); the reproduction's "
      "capacity gap is ROADMAP item 2");

  std::vector<std::size_t> sizes = {5000, 15000, 35000, 75000};
  if (single > 0) {
    sizes = {single};
  } else if (const char* scale = std::getenv("ANYOPT_BENCH_SCALE");
             scale != nullptr && std::strcmp(scale, "small") == 0) {
    sizes = {600, 1200, 2400};  // quick mode: same curve, toy sizes
  }

  if (const std::size_t budget = resmon::mem_budget_bytes(); budget > 0) {
    std::printf("memory budget: %zu MB (degrades to streaming above it)\n\n",
                budget / (1024 * 1024));
  }

  TextTable table({"ASes", "targets", "reachable", "build s", "census s",
                   "peak RSS MB", "RIB MB", "shards MB"});
  std::string points_json = "[";
  std::vector<ScalePoint> points;
  for (const std::size_t ases : sizes) {
    const ScalePoint p = run_point(ases);
    // Live RSS is read after the point's world is destroyed (scope exit in
    // run_point), so it reflects what the sweep retains between sizes.
    const std::int64_t rss_kb =
        static_cast<std::int64_t>(resmon::read_memory().rss_kb);
    points.push_back(p);
    table.add_row({std::to_string(p.built_ases), std::to_string(p.targets),
                   std::to_string(p.reachable),
                   TextTable::num(p.build_s, 2),
                   TextTable::num(p.census_s, 2),
                   TextTable::num(static_cast<double>(p.peak_rss_kb) / 1024.0,
                                    1),
                   TextTable::num(static_cast<double>(p.rib_bytes) /
                                        (1024.0 * 1024.0),
                                    1),
                   TextTable::num(static_cast<double>(p.shard_bytes) /
                                        (1024.0 * 1024.0),
                                    1)});
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s\n    {\"ases\": %zu, \"targets\": %zu, \"reachable\": %zu, "
        "\"build_s\": %.3f, \"census_s\": %.3f, \"rss_kb\": %lld, "
        "\"peak_rss_kb\": %lld, \"bytes\": {\"rib\": %lld, "
        "\"census_shards\": %lld, \"sim_scratch\": %lld}}",
        points.size() == 1 ? "" : ",", p.built_ases, p.targets, p.reachable,
        p.build_s, p.census_s, static_cast<long long>(rss_kb),
        static_cast<long long>(p.peak_rss_kb),
        static_cast<long long>(p.rib_bytes),
        static_cast<long long>(p.shard_bytes),
        static_cast<long long>(p.scratch_bytes));
    points_json += buf;
  }
  points_json += "\n  ]";
  std::printf("%s\n", table.render().c_str());
  std::printf("RIB/shard columns are the SoA RIB and census-shard high-water "
              "marks\n(bytes.rib / bytes.census_shards; see docs/SCALING.md "
              "for the full memory model).\n");
  bench::set_bench_json_extra(
      "scale", "{\n  \"mem_budget_mb\": " +
                   std::to_string(resmon::mem_budget_bytes() / (1024 * 1024)) +
                   ",\n  \"points\": " + points_json + "\n  }");
  return 0;
}
