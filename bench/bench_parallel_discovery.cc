// Parallel campaign engine benchmark: the full two-level discovery
// (provider + site level, order accounting on) run serially and with N
// worker threads, verifying that the two produce bit-identical preference
// tables before reporting the speedup.  `--threads N` picks the parallel
// width (default 4, 0 = hardware concurrency).
//
// Campaigns parallelize across experiments, not within one: each BGP
// experiment is a pure function of (configuration, content-derived nonce)
// over the shared immutable world, so wall-clock scales with worker count
// while every table entry stays identical to the serial run.

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/discovery.h"
#include "support/bench_common.h"

namespace {

using namespace anyopt;
using Clock = std::chrono::steady_clock;

double run_discovery_s(const measure::Orchestrator& orchestrator,
                       std::size_t threads, core::DiscoveryResult* out) {
  core::DiscoveryOptions options;
  options.threads = threads;
  const core::Discovery discovery(orchestrator, options);
  const auto start = Clock::now();
  *out = discovery.run();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool identical(const core::DiscoveryResult& a, const core::DiscoveryResult& b) {
  if (a.experiments != b.experiments) return false;
  if (a.provider_prefs.outcome != b.provider_prefs.outcome) return false;
  if (a.site_prefs.size() != b.site_prefs.size()) return false;
  for (std::size_t p = 0; p < a.site_prefs.size(); ++p) {
    if (a.site_prefs[p].outcome != b.site_prefs[p].outcome) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryScope telemetry_scope("parallel_discovery", argc, argv);
  std::size_t threads = bench::parse_threads(argc, argv, 4);
  if (threads == 0) threads = std::thread::hardware_concurrency();
  bench::print_banner(
      "Parallel discovery — campaign engine speedup",
      "offline reproduction only: the paper serializes real BGP "
      "experiments (6-minute convergence waits); the simulated campaign "
      "parallelizes across worker threads with bit-identical results");

  bench::PaperEnv env = bench::make_env_from_environment();
  std::printf("hardware concurrency: %u, campaign threads: %zu\n\n",
              std::thread::hardware_concurrency(), threads);

  core::DiscoveryResult serial;
  core::DiscoveryResult parallel;
  // Warm-up run so first-touch costs (page faults, lazy world state) do
  // not bias the serial leg.
  core::DiscoveryResult warmup;
  (void)run_discovery_s(*env.orchestrator, 1, &warmup);

  const double serial_s = run_discovery_s(*env.orchestrator, 1, &serial);
  const double parallel_s =
      run_discovery_s(*env.orchestrator, threads, &parallel);

  std::printf("serial   (1 thread):   %7.3f s  (%zu experiments)\n",
              serial_s, serial.experiments);
  std::printf("parallel (%zu threads): %7.3f s  (%zu experiments)\n",
              threads, parallel_s, parallel.experiments);
  std::printf("speedup: %.2fx\n", parallel_s > 0 ? serial_s / parallel_s : 0.0);

  if (!identical(serial, parallel)) {
    std::printf("FAIL: parallel discovery diverged from the serial run\n");
    return 1;
  }
  std::printf("tables: bit-identical across thread counts (verified)\n");
  return 0;
}
