// Figure 6: RTT distribution of the AnyOpt-optimized configuration versus
// the baselines (§5.3).  The paper: the 12-site AnyOpt configuration has a
// 43 ms median (vs 76 ms for greedy-by-unicast with the same site count, a
// 43.4% improvement and 33 ms lower mean), beats three random 4-site
// configurations by 27-59.8% at the median, and — counterintuitively —
// also beats enabling all 15 sites.

#include <cstdio>

#include "core/optimizer.h"
#include "netbase/rng.h"
#include "netbase/stats.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("fig6", argc, argv);
  bench::print_banner(
      "Figure 6 — optimized configuration vs baselines",
      "AnyOpt-12 median 43 ms vs 12-Greedy 76 ms (43.4% better, 33 ms "
      "lower mean); AnyOpt-12 also beats 15-all");

  bench::PaperEnv env = bench::make_env_from_environment();
  const auto& deployment = env.world->deployment();

  // Offline search (the paper ran this for six hours; cached evaluation
  // makes it seconds here).
  core::OptimizerOptions opts;
  opts.time_budget_s = 120.0;
  const core::SearchOutcome search = env.pipeline->optimize(opts);
  std::printf("offline search: %zu configurations evaluated%s; best overall "
              "uses %zu sites (predicted mean %.1f ms)\n\n",
              search.configurations_evaluated,
              search.exhausted ? " (exhaustive)" : " (time-bounded)",
              search.best.config.announce_order.size(),
              search.best.predicted_mean_rtt);

  const std::size_t best_k = search.best.config.announce_order.size();
  const auto& anyopt_cfg = search.best.config;
  const auto greedy_cfg = core::Optimizer::greedy_unicast(
      env.pipeline->predictor().rtts(), best_k);
  const auto all_cfg = anycast::AnycastConfig::all_sites(deployment);

  // Three random 2-provider x 2-site configurations; keep the best.
  Rng rng{46};
  measure::Census best_random;
  double best_random_mean = 1e18;
  std::string best_random_desc;
  for (int i = 0; i < 3; ++i) {
    const auto cfg =
        core::Optimizer::random_config(deployment, 2, 2, rng);
    const measure::Census census =
        env.orchestrator->measure(cfg, 0x4A4D + i);
    if (census.mean_rtt() < best_random_mean) {
      best_random_mean = census.mean_rtt();
      best_random = census;
      best_random_desc = cfg.describe();
    }
  }

  struct Line {
    std::string name;
    measure::Census census;
  };
  std::vector<Line> lines;
  lines.push_back({"AnyOpt-" + std::to_string(best_k),
                   env.orchestrator->measure(anyopt_cfg, 0xF160)});
  lines.push_back({std::to_string(best_k) + "-Greedy",
                   env.orchestrator->measure(greedy_cfg, 0xF161)});
  lines.push_back({"4-Random (best of 3)", best_random});
  lines.push_back({"15-all", env.orchestrator->measure(all_cfg, 0xF162)});

  for (const Line& line : lines) {
    const auto cdf = stats::empirical_cdf(line.census.valid_rtts(), 25);
    std::printf("%s\n",
                stats::format_cdf(cdf, "rtt_ms", line.name).c_str());
  }

  TextTable table({"configuration", "mean RTT (ms)", "median RTT (ms)"});
  for (const Line& line : lines) {
    table.add_row({line.name, TextTable::num(line.census.mean_rtt(), 1),
                   TextTable::num(line.census.median_rtt(), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  const double anyopt_mean = lines[0].census.mean_rtt();
  const double greedy_mean = lines[1].census.mean_rtt();
  const double anyopt_median = lines[0].census.median_rtt();
  const double greedy_median = lines[1].census.median_rtt();
  std::printf("AnyOpt vs Greedy (same #sites): mean -%.1f ms, median "
              "-%.1f ms (%.1f%% median improvement; paper: -33 ms mean, "
              "43.4%% median)\n",
              greedy_mean - anyopt_mean, greedy_median - anyopt_median,
              100.0 * (greedy_median - anyopt_median) / greedy_median);
  std::printf("AnyOpt vs 15-all: mean -%.1f ms (paper: the smaller AnyOpt "
              "configuration outperforms all 15 sites)\n",
              lines[3].census.mean_rtt() - anyopt_mean);
  std::printf("best random 4-site config: %s\n", best_random_desc.c_str());
  return 0;
}
