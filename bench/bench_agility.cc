// Agility benchmark: overload/DDoS playbook search at paper scale.
//
// A sustained volumetric attack multiplies the demand of the busiest
// deployed site's catchment by 2x/4x/8x, breaking the Eq. 7 capacity SLO at
// that site.  For each intensity the engine searches playbooks twice — once
// through the copy-on-write overlay path (one shared converged base, one
// delta re-convergence per step) and once through classic per-step
// re-convergence — and this binary verifies that (a) the search finds a
// playbook restoring the SLO at every intensity, (b) both paths return the
// SAME playbook with the SAME time-to-mitigate (the interchangeability
// contract), and (c) the overlay path pays measurably fewer simulation
// events.  The `agility` block of BENCH_agility.json records all of it;
// `anyopt_bench check` gates mitigation, time-to-mitigate and overlay event
// counts per intensity.  `--threads N` parallelizes candidate evaluation
// (default 4; results are bit-identical at any setting).

#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "agility/engine.h"
#include "netbase/thread_pool.h"
#include "support/bench_common.h"

namespace {

using namespace anyopt;
using Clock = std::chrono::steady_clock;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Appends `value` with enough digits to round-trip (the record is diffed
/// by a parser, not by eye).
void append_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryScope telemetry_scope("agility", argc, argv);
  const std::size_t threads = bench::parse_threads(argc, argv, 4);
  bench::print_banner(
      "Agility — DDoS playbook search with time-to-mitigate scoring",
      "no direct paper figure: the what-if engine applied to the Anycast "
      "Agility playbook question — which prepend/withdraw/re-announce "
      "sequence restores the capacity SLO fastest, searched over "
      "copy-on-write overlays");

  bench::PaperEnv env = bench::make_env_from_environment();
  const anycast::Deployment& deployment = env.world->deployment();
  const std::size_t sites = deployment.site_count();

  // The defended deployment: the first two thirds of the catalog, leaving
  // real re-announce headroom (disabled sites the playbook can add).
  std::vector<SiteId> order;
  for (std::size_t s = 0; s < sites * 2 / 3; ++s) {
    order.push_back(SiteId{static_cast<SiteId::underlying_type>(s)});
  }
  const anycast::AnycastConfig deployed = anycast::AnycastConfig::of_sites(order);

  // Quiet-hour census: per-site load under uniform demand picks the attack
  // target (the busiest site's whole catchment) and sizes the capacities.
  const measure::Census baseline = env.orchestrator->measure(deployed, 0xA6117);
  std::vector<double> load(sites, 0.0);
  for (const SiteId s : baseline.site_of_target) {
    if (s.valid()) load[s.value()] += 1.0;
  }
  std::size_t busiest = 0;
  for (std::size_t s = 1; s < sites; ++s) {
    if (load[s] > load[busiest]) busiest = s;
  }

  // The SLO: the attacked site holds 50% headroom over its quiet load —
  // tight enough that every benched intensity overloads it, defined enough
  // that shedding restores compliance.  The other sites model elastic
  // absorb capacity (the Eq. 7 gate leaves them uncapacitated), so the
  // search is about WHERE to shed, scored by time-to-mitigate and the RTT
  // cost of the reroute.
  const double headroom = 0.5;
  agility::SloPolicy slo;
  slo.site_capacity.assign(sites, kInf);
  slo.site_capacity[busiest] = load[busiest] * (1.0 + headroom);

  agility::AttackPulse pulse;
  for (std::size_t t = 0; t < baseline.site_of_target.size(); ++t) {
    if (baseline.site_of_target[t].valid() &&
        baseline.site_of_target[t].value() == busiest) {
      pulse.targets.push_back(static_cast<std::uint32_t>(t));
    }
  }

  std::printf("deployed sites: %zu/%zu, attacked site: %zu (quiet load %.0f"
              " of %zu targets, capacity %.0f), threads: %zu\n\n",
              order.size(), sites, busiest, load[busiest],
              baseline.site_of_target.size(), slo.site_capacity[busiest],
              threads);

  ThreadPool pool(threads);
  std::printf("%9s | %9s | %5s | %7s | %9s | %12s | %12s | %s\n", "intensity",
              "mitigated", "ttm_s", "rtt_ms", "cand/prun", "ov_events",
              "cl_events", "playbook");
  std::printf("----------+-----------+-------+---------+-----------+"
              "--------------+--------------+---------------------\n");

  std::string points_json = "[";
  bool ok = true;
  double wall_overlay_s = 0;
  double wall_classic_s = 0;
  for (const double intensity : {2.0, 4.0, 8.0}) {
    agility::DemandModel demand;
    agility::AttackPulse attack = pulse;
    attack.intensity = intensity;
    demand.pulses = {attack};

    agility::AgilityOptions options;
    options.slo = slo;
    options.seed = 0xA61;
    options.pool = threads > 1 ? &pool : nullptr;
    const agility::AgilityEngine overlay(*env.orchestrator, demand, options);
    agility::AgilityOptions classic_options = options;
    classic_options.use_overlays = false;
    const agility::AgilityEngine classic(*env.orchestrator, demand,
                                         classic_options);

    auto start = Clock::now();
    const agility::MitigationResult via_overlay = overlay.mitigate(deployed);
    wall_overlay_s += std::chrono::duration<double>(Clock::now() - start).count();
    start = Clock::now();
    const agility::MitigationResult via_classic = classic.mitigate(deployed);
    wall_classic_s += std::chrono::duration<double>(Clock::now() - start).count();

    const std::string playbook = via_overlay.best.playbook.describe();
    std::printf("%8.0fx | %9s | %5.0f | %7.2f | %4zu/%-4zu | %12zu | %12zu"
                " | %s\n",
                intensity, via_overlay.best.mitigated ? "yes" : "NO",
                via_overlay.best.mitigated ? via_overlay.best.time_to_mitigate_s
                                           : -1.0,
                via_overlay.best.post_mean_rtt_ms, via_overlay.candidates,
                via_overlay.pruned, via_overlay.total_sim_events,
                via_classic.total_sim_events, playbook.c_str());

    if (!via_overlay.slo_violated) {
      std::printf("FAIL: intensity %.0fx never violated the SLO — the attack "
                  "model is miscalibrated\n", intensity);
      ok = false;
    }
    if (!via_overlay.best.mitigated) {
      std::printf("FAIL: no playbook restored the SLO at intensity %.0fx\n",
                  intensity);
      ok = false;
    }
    // The interchangeability contract, re-proved on the full-scale world:
    // same playbook, same clock, different event bill — in overlay's favor.
    if (via_overlay.best.playbook.steps != via_classic.best.playbook.steps ||
        via_overlay.best.time_to_mitigate_s !=
            via_classic.best.time_to_mitigate_s) {
      std::printf("FAIL: overlay and classic searches disagree at %.0fx\n",
                  intensity);
      ok = false;
    }
    if (via_overlay.total_sim_events >= via_classic.total_sim_events) {
      std::printf("FAIL: overlay path saved no events at %.0fx (%zu vs %zu)\n",
                  intensity, via_overlay.total_sim_events,
                  via_classic.total_sim_events);
      ok = false;
    }

    if (points_json.size() > 1) points_json += ",";
    points_json += "{\"intensity\": ";
    append_number(points_json, intensity);
    points_json += ", \"slo_violated\": ";
    points_json += via_overlay.slo_violated ? "true" : "false";
    points_json += ", \"mitigated\": ";
    points_json += via_overlay.best.mitigated ? "true" : "false";
    points_json += ", \"time_to_mitigate_s\": ";
    append_number(points_json, via_overlay.best.mitigated
                                   ? via_overlay.best.time_to_mitigate_s
                                   : -1.0);
    points_json += ", \"post_mean_rtt_ms\": ";
    append_number(points_json, via_overlay.best.post_mean_rtt_ms);
    points_json += ", \"steps\": " + std::to_string(via_overlay.best.steps_needed);
    points_json += ", \"playbook\": \"" + playbook + "\"";
    points_json +=
        ", \"sim_events_overlay\": " + std::to_string(via_overlay.total_sim_events);
    points_json +=
        ", \"sim_events_classic\": " + std::to_string(via_classic.total_sim_events);
    points_json += ", \"candidates\": " + std::to_string(via_overlay.candidates);
    points_json += ", \"pruned\": " + std::to_string(via_overlay.pruned);
    points_json += "}";
  }
  points_json += "]";

  std::string agility_json = "{\"headroom\": ";
  append_number(agility_json, headroom);
  agility_json += ", \"points\": " + points_json + "}";
  bench::set_bench_json_extra("agility", agility_json);

  std::printf("\nsearch wall: overlay %.3f s, classic %.3f s\n",
              wall_overlay_s, wall_classic_s);
  if (!ok) return 1;
  std::printf(
      "every intensity mitigated; overlay and classic searches agree, "
      "overlay pays fewer simulation events (verified)\n");
  return 0;
}
