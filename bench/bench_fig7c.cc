// Figure 7c: RTT distributions of the transit-only AnyOpt configuration,
// AnyOpt + beneficial peers (one-pass heuristic), and AnyOpt + all peers
// (§5.4).  The paper: 68 ms -> 63 ms (beneficial peers) -> 61 ms (all
// peers); peering helps, but not by much.

#include <cstdio>

#include "core/optimizer.h"
#include "core/peers.h"
#include "netbase/stats.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("fig7c", argc, argv);
  bench::print_banner(
      "Figure 7c — AnyOpt vs AnyOpt+BenefitPeers vs AnyOpt+AllPeers",
      "mean RTT 68 ms -> 63 ms (one-pass beneficial peers) -> 61 ms (all "
      "peers): a ~5-7 ms improvement");

  bench::PaperEnv env = bench::make_env_from_environment();

  core::OptimizerOptions opts;
  opts.time_budget_s = 120.0;
  const core::SearchOutcome search = env.pipeline->optimize(opts);
  const core::OnePassPeerSelector selector(*env.orchestrator);
  const core::OnePassResult one_pass = selector.run(search.best.config);

  anycast::AnycastConfig all_peers_cfg = search.best.config;
  const auto peers = env.world->deployment().all_peer_attachments();
  all_peers_cfg.enabled_peers.assign(peers.begin(), peers.end());

  struct Line {
    std::string name;
    measure::Census census;
  };
  std::vector<Line> lines;
  lines.push_back(
      {"AnyOpt", env.orchestrator->measure(search.best.config, 0x7C0)});
  lines.push_back({"AnyOpt+BenefitPeers",
                   env.orchestrator->measure(one_pass.with_beneficial_peers,
                                             0x7C1)});
  lines.push_back(
      {"AnyOpt+AllPeers", env.orchestrator->measure(all_peers_cfg, 0x7C2)});

  for (const Line& line : lines) {
    const auto cdf = stats::empirical_cdf(line.census.valid_rtts(), 25);
    std::printf("%s\n",
                stats::format_cdf(cdf, "rtt_ms", line.name).c_str());
  }

  TextTable table({"configuration", "mean RTT (ms)", "median RTT (ms)",
                   "#peers enabled"});
  table.add_row({"AnyOpt", TextTable::num(lines[0].census.mean_rtt(), 1),
                 TextTable::num(lines[0].census.median_rtt(), 1), "0"});
  table.add_row({"AnyOpt+BenefitPeers",
                 TextTable::num(lines[1].census.mean_rtt(), 1),
                 TextTable::num(lines[1].census.median_rtt(), 1),
                 std::to_string(one_pass.chosen.size())});
  table.add_row({"AnyOpt+AllPeers",
                 TextTable::num(lines[2].census.mean_rtt(), 1),
                 TextTable::num(lines[2].census.median_rtt(), 1),
                 std::to_string(peers.size())});
  std::printf("%s\n", table.render().c_str());
  std::printf("beneficial-peer gain: %.1f ms; all-peers gain: %.1f ms "
              "(paper: 5 ms and 7 ms)\n",
              lines[0].census.mean_rtt() - lines[1].census.mean_rtt(),
              lines[0].census.mean_rtt() - lines[2].census.mean_rtt());
  return 0;
}
