// Figure 7a: CDF of peer catchment sizes under the one-pass experiments
// (§5.4).  The paper: of 104 peering links only 72 reach any ping target,
// and more than 80% of peers attract fewer than 2.5% of targets.

#include <cstdio>

#include "core/optimizer.h"
#include "core/peers.h"
#include "netbase/stats.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("fig7a", argc, argv);
  bench::print_banner(
      "Figure 7a — CDF of peer catchment sizes",
      "72 of 104 peers reach a target; >80% of peers attract <2.5% of "
      "targets");

  bench::PaperEnv env = bench::make_env_from_environment();

  core::OptimizerOptions opts;
  opts.time_budget_s = 120.0;
  const core::SearchOutcome search = env.pipeline->optimize(opts);
  const core::OnePassPeerSelector selector(*env.orchestrator);
  const core::OnePassResult one_pass = selector.run(search.best.config);

  const double total = static_cast<double>(env.world->targets().size());
  std::vector<double> catchment_fraction;
  std::size_t small = 0;
  for (const core::PeerMeasurement& m : one_pass.peers) {
    const double frac = static_cast<double>(m.catchment_size) / total;
    catchment_fraction.push_back(frac * 100.0);
    if (frac < 0.025) ++small;
  }
  const auto cdf = stats::empirical_cdf(catchment_fraction, 40);
  std::printf("%s\n",
              stats::format_cdf(cdf, "catchment_pct_of_targets",
                                "peer catchment size")
                  .c_str());
  std::printf("peers measured: %zu; reaching any target: %zu "
              "(paper: 72/104)\n",
              one_pass.peers.size(), one_pass.reachable_peers);
  std::printf("peers with catchment < 2.5%% of targets: %.1f%% "
              "(paper: >80%%)\n",
              100.0 * static_cast<double>(small) /
                  static_cast<double>(one_pass.peers.size()));
  return 0;
}
