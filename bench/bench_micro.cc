// Engine micro-benchmarks (google-benchmark): the hot paths that make the
// offline methodology practical, plus the DESIGN.md ablation of the
// arrival-order decision step.

#include <benchmark/benchmark.h>

#include "anycast/world.h"
#include "bgp/decision.h"
#include "bgp/simulator.h"
#include "core/anyopt.h"
#include "measure/campaign_runner.h"
#include "measure/orchestrator.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"
#include "support/bench_common.h"

namespace {

using namespace anyopt;

/// Small world shared by all micro benches (paper scale would melt the
/// repetition counts).
anycast::World& world() {
  static auto w = anycast::World::create(anycast::WorldParams::test_scale(99));
  return *w;
}

measure::Orchestrator& orchestrator() {
  static measure::Orchestrator orch(world());
  return orch;
}

core::AnyOptPipeline& pipeline() {
  static core::AnyOptPipeline pipe(orchestrator());
  static bool primed = [] {
    pipe.discover();
    pipe.measure_rtts();
    return true;
  }();
  (void)primed;
  return pipe;
}

bgp::RibEntry make_entry(int lp, std::size_t len, std::uint64_t arrival,
                         std::uint32_t rid) {
  bgp::RibEntry e;
  e.present = true;
  e.neighbor = AsId{rid};
  e.local_pref = lp;
  e.as_path.assign(len, AsId{7});
  e.arrival_seq = arrival;
  e.neighbor_router_id = rid;
  return e;
}

void BM_DecisionProcess(benchmark::State& state) {
  // Ablation: arg 0 = without the vendor arrival-order step, 1 = with.
  bgp::DecisionOptions opts;
  opts.prefer_oldest = state.range(0) != 0;
  Rng rng{1};
  std::vector<bgp::RibEntry> entries;
  for (int i = 0; i < 64; ++i) {
    entries.push_back(make_entry(100 + 100 * static_cast<int>(rng.below(2)),
                                 1 + rng.below(4), rng.below(1000),
                                 static_cast<std::uint32_t>(rng.below(1 << 30))));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = entries[i % entries.size()];
    const auto& b = entries[(i * 31 + 7) % entries.size()];
    benchmark::DoNotOptimize(bgp::compare_routes(a, b, opts));
    ++i;
  }
}
BENCHMARK(BM_DecisionProcess)->Arg(0)->Arg(1);

void BM_BgpPropagation(benchmark::State& state) {
  // Full clean-state propagation of `arg` announcements, 360s apart.
  const auto sites = static_cast<std::size_t>(state.range(0));
  std::vector<bgp::Injection> schedule;
  for (std::size_t s = 0; s < sites; ++s) {
    schedule.push_back(
        {static_cast<double>(s) * 360.0,
         world().deployment().transit_attachment(
             SiteId{static_cast<SiteId::underlying_type>(s)}),
         false});
  }
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const bgp::RoutingState result =
        world().simulator().run(schedule, nonce++);
    benchmark::DoNotOptimize(result.events_processed());
  }
  state.counters["ases"] =
      static_cast<double>(world().internet().graph.as_count());
}
BENCHMARK(BM_BgpPropagation)->Arg(1)->Arg(4)->Arg(15);

void BM_ForwardingResolve(benchmark::State& state) {
  const auto cfg = anycast::AnycastConfig::all_sites(world().deployment());
  const auto schedule = cfg.schedule(world().deployment());
  const bgp::RoutingState routing = world().simulator().run(schedule, 1);
  const auto& targets = world().targets();
  std::size_t t = 0;
  for (auto _ : state) {
    const auto& target = targets.target(
        TargetId{static_cast<TargetId::underlying_type>(t % targets.size())});
    benchmark::DoNotOptimize(routing.resolve(target.as, target.where, t));
    ++t;
  }
}
BENCHMARK(BM_ForwardingResolve);

void BM_CatchmentCensus(benchmark::State& state) {
  const auto cfg = anycast::AnycastConfig::all_sites(world().deployment());
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(orchestrator().measure(cfg, nonce++));
  }
  state.counters["targets"] = static_cast<double>(world().targets().size());
}
BENCHMARK(BM_CatchmentCensus);

void BM_CampaignBatch(benchmark::State& state) {
  // One provider-level-sized campaign batch (16 pairwise experiments) run
  // through the CampaignRunner with `arg` worker threads.  Thread counts
  // beyond the default list come from --threads (see main below).
  const auto threads = static_cast<std::size_t>(state.range(0));
  const measure::CampaignRunner runner(orchestrator(), {.threads = threads});
  const std::size_t sites = world().deployment().site_count();
  std::vector<measure::ExperimentSpec> specs;
  for (std::size_t k = 0; k < 16; ++k) {
    measure::ExperimentSpec spec;
    spec.config.announce_order = {
        SiteId{static_cast<SiteId::underlying_type>(k % sites)},
        SiteId{static_cast<SiteId::underlying_type>((k + 1 + k / sites) % sites)}};
    spec.nonce = mix64(0xBE7C, k);
    specs.push_back(std::move(spec));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(specs));
  }
  state.counters["experiments"] = static_cast<double>(specs.size());
}
BENCHMARK(BM_CampaignBatch)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PredictConfiguration(benchmark::State& state) {
  auto& pipe = pipeline();
  Rng rng{3};
  const auto cfg = core::Optimizer::random_config(world().deployment(),
                                                  3, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.predict(cfg));
  }
}
BENCHMARK(BM_PredictConfiguration);

void BM_OptimizerSubsetSearch(benchmark::State& state) {
  auto& pipe = pipeline();
  core::OptimizerOptions opts;
  opts.time_budget_s = 3600;  // never hit in the test world
  opts.order_candidates = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.optimize(opts).configurations_evaluated);
  }
}
BENCHMARK(BM_OptimizerSubsetSearch)->Unit(benchmark::kMillisecond);

void BM_TotalOrderConstruction(benchmark::State& state) {
  auto& pipe = pipeline();
  const auto& table = pipe.discover().provider_prefs;
  const std::vector<std::size_t> items{0, 1, 2, 3, 4, 5};
  const std::vector<std::size_t> arrival{0, 1, 2, 3, 4, 5};
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::target_total_order(table, t % table.target_count, items,
                                 arrival));
    ++t;
  }
}
BENCHMARK(BM_TotalOrderConstruction);

void BM_SplpoEvaluate(benchmark::State& state) {
  auto& pipe = pipeline();
  const auto order = anycast::AnycastConfig::all_sites(world().deployment());
  const core::SplpoInstance inst = pipe.splpo_instance(order);
  const std::vector<std::uint32_t> open{0, 2, 4, 6, 8, 10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_open_set(inst, open));
  }
  state.counters["clients"] = static_cast<double>(inst.client_count);
}
BENCHMARK(BM_SplpoEvaluate);

/// Restores the global telemetry switches when a benchmark exits.
struct TelemetryFlagGuard {
  bool enabled = telemetry::enabled();
  bool tracing = telemetry::tracing();
  ~TelemetryFlagGuard() {
    telemetry::set_enabled(enabled);
    telemetry::set_tracing(tracing);
  }
};

void BM_TelemetryCounterDisabled(benchmark::State& state) {
  // The advertised disabled-path cost: one relaxed load, nothing else.
  const TelemetryFlagGuard guard;
  telemetry::set_enabled(false);
  auto& c = telemetry::Registry::global().counter("micro.overhead.counter");
  for (auto _ : state) {
    if (telemetry::enabled()) c.add(1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TelemetryCounterDisabled);

void BM_TelemetryCounterEnabled(benchmark::State& state) {
  const TelemetryFlagGuard guard;
  telemetry::set_enabled(true);
  auto& c = telemetry::Registry::global().counter("micro.overhead.counter");
  for (auto _ : state) {
    if (telemetry::enabled()) c.add(1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TelemetryCounterEnabled);

void BM_TelemetryHistogramRecord(benchmark::State& state) {
  const TelemetryFlagGuard guard;
  telemetry::set_enabled(true);
  auto& h =
      telemetry::Registry::global().histogram("micro.overhead.histogram");
  double v = 0.1;
  for (auto _ : state) {
    if (telemetry::enabled()) h.record(v);
    v += 0.1;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TelemetryHistogramRecord);

void BM_TelemetryScopedTimerDisabled(benchmark::State& state) {
  const TelemetryFlagGuard guard;
  telemetry::set_enabled(false);
  auto& h = telemetry::Registry::global().histogram("micro.overhead.span_ms");
  for (auto _ : state) {
    const telemetry::ScopedTimer span("micro.span", "micro", &h);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TelemetryScopedTimerDisabled);

void BM_TelemetryScopedTimerEnabled(benchmark::State& state) {
  // Two clock reads plus a histogram record; tracing stays off, as in a
  // plain --metrics run.
  const TelemetryFlagGuard guard;
  telemetry::set_enabled(true);
  telemetry::set_tracing(false);
  auto& h = telemetry::Registry::global().histogram("micro.overhead.span_ms");
  for (auto _ : state) {
    const telemetry::ScopedTimer span("micro.span", "micro", &h);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TelemetryScopedTimerEnabled);

void BM_SimulatorRunTelemetry(benchmark::State& state) {
  // End-to-end overhead check on the real hot path: one 4-announcement
  // propagation with telemetry off (arg 0) vs on (arg 1).
  const TelemetryFlagGuard guard;
  telemetry::set_enabled(state.range(0) != 0);
  std::vector<bgp::Injection> schedule;
  for (std::size_t s = 0; s < 4; ++s) {
    schedule.push_back(
        {static_cast<double>(s) * 360.0,
         world().deployment().transit_attachment(
             SiteId{static_cast<SiteId::underlying_type>(s)}),
         false});
  }
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const bgp::RoutingState result =
        world().simulator().run(schedule, nonce++);
    benchmark::DoNotOptimize(result.events_processed());
  }
}
BENCHMARK(BM_SimulatorRunTelemetry)->Arg(0)->Arg(1);

}  // namespace

// Custom main: `--threads N` (stripped before google-benchmark sees the
// argument list) registers an extra BM_CampaignBatch run at N workers on
// top of the static 1/2/4 sweep.
int main(int argc, char** argv) {
  const anyopt::bench::TelemetryScope telemetry_scope("micro", argc, argv);
  const std::size_t threads = anyopt::bench::parse_threads(argc, argv, 0);
  if (threads != 0 && threads != 1 && threads != 2 && threads != 4) {
    benchmark::RegisterBenchmark("BM_CampaignBatch", BM_CampaignBatch)
        ->Arg(static_cast<std::int64_t>(threads))
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
