// §6 stability analysis: the paper deployed the AnyOpt-optimized
// configuration and re-measured it weekly for three weeks in January 2021;
// more than 90% of catchments stayed unchanged and the mean RTT was
// stable.  We model a week of routing churn as fresh experiment noise
// (new BGP races, new probe noise) plus a re-announcement of the prefix.

#include <cstdio>

#include "core/optimizer.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("stability", argc, argv);
  bench::print_banner(
      "§6 — three-week stability of the optimized configuration",
      ">90% of catchments unchanged and stable average RTT across three "
      "weekly measurements");

  bench::PaperEnv env = bench::make_env_from_environment();

  core::OptimizerOptions opts;
  opts.time_budget_s = 120.0;
  const core::SearchOutcome search = env.pipeline->optimize(opts);
  const auto& cfg = search.best.config;

  const measure::Census week0 = env.orchestrator->measure(cfg, 0x3EE0);
  TextTable table(
      {"week", "catchments unchanged vs week 0", "mean RTT (ms)"});
  table.add_row({"0", "-", TextTable::num(week0.mean_rtt(), 1)});

  for (int week = 1; week <= 3; ++week) {
    const measure::Census now =
        env.orchestrator->measure(cfg, 0x3EE0 + week);
    std::size_t same = 0;
    std::size_t comparable = 0;
    for (std::size_t t = 0; t < now.site_of_target.size(); ++t) {
      if (!week0.site_of_target[t].valid() ||
          !now.site_of_target[t].valid()) {
        continue;
      }
      ++comparable;
      if (week0.site_of_target[t] == now.site_of_target[t]) ++same;
    }
    table.add_row({std::to_string(week),
                   TextTable::pct(static_cast<double>(same) /
                                  static_cast<double>(comparable)),
                   TextTable::num(now.mean_rtt(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(paper: >90%% unchanged, mean RTT very stable)\n");
  return 0;
}
