// Figure 5c: per-configuration relative error of the predicted mean RTT
// versus the measured mean RTT (§5.2).  The paper: mean error below 4.6%.

#include <cstdio>

#include "netbase/stats.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("fig5c", argc, argv);
  bench::print_banner(
      "Figure 5c — relative error of the predicted mean RTT",
      "mean predicted-average-RTT error < 4.6%");

  bench::PaperEnv env = bench::make_env_from_environment();
  const auto points = bench::run_fig5_sweep(env);

  TextTable table(
      {"config", "#sites", "predicted (ms)", "measured (ms)", "rel error"});
  stats::Online err;
  for (std::size_t i = 0; i < points.size(); ++i) {
    err.add(points[i].rel_error());
    table.add_row({std::to_string(i + 1), std::to_string(points[i].sites),
                   TextTable::num(points[i].predicted_mean_rtt, 1),
                   TextTable::num(points[i].measured_mean_rtt, 1),
                   TextTable::pct(points[i].rel_error())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("relative error: mean %.1f%%, max %.1f%% "
              "(paper: mean < 4.6%%)\n",
              100 * err.mean(), 100 * err.max());
  return 0;
}
