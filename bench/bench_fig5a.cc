// Figure 5a: catchment prediction accuracy across random anycast
// configurations (§5.2).  The paper deploys 38 random configurations of
// 1-14 sites and predicts each target's catchment from the total orders;
// accuracy stays above 93%, averaging 94.7%.

#include <cstdio>

#include "netbase/stats.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("fig5a", argc, argv);
  bench::print_banner(
      "Figure 5a — catchment prediction accuracy over 38 random configs",
      ">93% per configuration; 94.7% mean accuracy over 15,300 targets");

  bench::PaperEnv env = bench::make_env_from_environment();
  const auto points = bench::run_fig5_sweep(env);

  TextTable table({"config", "#sites", "accuracy"});
  stats::Online acc;
  for (std::size_t i = 0; i < points.size(); ++i) {
    acc.add(points[i].accuracy);
    table.add_row({std::to_string(i + 1), std::to_string(points[i].sites),
                   TextTable::pct(points[i].accuracy)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("accuracy: min %.1f%%, mean %.1f%%, max %.1f%% "
              "(paper: >93%% per config, 94.7%% mean)\n",
              100 * acc.min(), 100 * acc.mean(), 100 * acc.max());
  return 0;
}
