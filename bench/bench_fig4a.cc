// Figure 4a: fraction of ping targets whose catchment changes when the
// announcement order of a provider pair is reversed (§5.1).  The paper
// observes 6-14% across pairs — evidence that deployed routers break ties
// by arrival order.

#include <cstdio>

#include "core/discovery.h"
#include "netbase/stats.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("fig4a", argc, argv);
  bench::print_banner(
      "Figure 4a — catchment flips under reversed announcement order",
      "~6%-14% of ping targets change catchment site per provider pair");

  bench::PaperEnv env = bench::make_env_from_environment();
  const auto& deployment = env.world->deployment();
  const core::Discovery discovery(*env.orchestrator);

  TextTable table({"provider pair", "flip fraction"});
  stats::Online overall;
  for (std::size_t p = 0; p < deployment.provider_count(); ++p) {
    for (std::size_t q = p + 1; q < deployment.provider_count(); ++q) {
      const double flip = discovery.order_flip_fraction(
          ProviderId{static_cast<ProviderId::underlying_type>(p)},
          ProviderId{static_cast<ProviderId::underlying_type>(q)});
      overall.add(flip);
      table.add_row({deployment.provider_names()[p] + " vs " +
                         deployment.provider_names()[q],
                     TextTable::pct(flip)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("across pairs: min %.1f%%, mean %.1f%%, max %.1f%% "
              "(paper: 6%%-14%%)\n",
              100 * overall.min(), 100 * overall.mean(),
              100 * overall.max());
  return 0;
}
