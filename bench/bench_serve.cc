// Serve-layer benchmark: concurrent what-if queries against one immutable
// snapshot through the lock-free read path (serve/service.h).
//
// Builds a snapshot (store-warmed with --store=FILE), pre-generates a
// deterministic query workload (subset predicts, full-population predicts,
// configuration scores, info probes), answers it once single-threaded to
// fix the expected response bytes, then replays it across `--threads N`
// workers and verifies every concurrent response is bit-identical to the
// single-threaded one — the lock-free path must never trade correctness
// for throughput.  Reports QPS and per-query latency percentiles, and
// records them in BENCH_serve.json as the optional "serve" block.
//
//   --threads N     concurrent query workers (default 4)
//   --queries=N     workload size (default 2000)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "netbase/rng.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "support/bench_common.h"

namespace {

using namespace anyopt;
using Clock = std::chrono::steady_clock;

/// Parses `--queries=N` and removes it from argv (parse_threads contract).
std::size_t parse_queries(int& argc, char** argv, std::size_t fallback) {
  std::size_t queries = fallback;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = static_cast<std::size_t>(
          std::strtoul(argv[i] + 10, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return queries == 0 ? fallback : queries;
}

/// Deterministic workload: op mix chosen per query from one seeded stream.
std::vector<std::string> make_workload(const serve::Snapshot& snapshot,
                                       std::size_t count) {
  Rng rng{0x5E21E};
  const std::size_t sites = snapshot.site_count();
  const std::size_t targets = snapshot.target_count();
  std::vector<std::string> lines;
  lines.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    const std::uint64_t roll = rng.below(100);
    std::string line;
    if (roll < 70) {
      // Subset predict: 1-5 sites in random order, 16-64 clients.
      const std::size_t nsites = 1 + rng.below(std::min<std::size_t>(5, sites));
      std::vector<std::uint32_t> order(sites);
      for (std::uint32_t s = 0; s < sites; ++s) order[s] = s;
      for (std::size_t i = 0; i < nsites; ++i) {
        std::swap(order[i], order[i + rng.below(sites - i)]);
      }
      line = "{\"op\":\"predict\",\"sites\":[";
      for (std::size_t i = 0; i < nsites; ++i) {
        if (i > 0) line += ",";
        line += std::to_string(order[i]);
      }
      line += "],\"clients\":[";
      const std::size_t nclients = 16 + rng.below(49);
      for (std::size_t i = 0; i < nclients; ++i) {
        if (i > 0) line += ",";
        line += std::to_string(rng.below(targets));
      }
      line += "]}";
    } else if (roll < 80) {
      // Full-population predict over a small random subset of sites.
      const std::size_t nsites = 2 + rng.below(std::min<std::size_t>(3, sites));
      std::vector<std::uint32_t> order(sites);
      for (std::uint32_t s = 0; s < sites; ++s) order[s] = s;
      for (std::size_t i = 0; i < nsites; ++i) {
        std::swap(order[i], order[i + rng.below(sites - i)]);
      }
      line = "{\"op\":\"predict\",\"sites\":[";
      for (std::size_t i = 0; i < nsites; ++i) {
        if (i > 0) line += ",";
        line += std::to_string(order[i]);
      }
      line += "]}";
    } else if (roll < 95) {
      // Configuration score (the uncached, concurrent-safe evaluator).
      const std::size_t nsites = 2 + rng.below(std::min<std::size_t>(4, sites));
      std::vector<std::uint32_t> order(sites);
      for (std::uint32_t s = 0; s < sites; ++s) order[s] = s;
      for (std::size_t i = 0; i < nsites; ++i) {
        std::swap(order[i], order[i + rng.below(sites - i)]);
      }
      line = "{\"op\":\"score\",\"sites\":[";
      for (std::size_t i = 0; i < nsites; ++i) {
        if (i > 0) line += ",";
        line += std::to_string(order[i]);
      }
      line += "]}";
    } else {
      line = "{\"op\":\"info\"}";
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

double exact_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryScope telemetry_scope("serve", argc, argv);
  const std::size_t threads = bench::parse_threads(argc, argv, 4);
  const std::size_t query_count = parse_queries(argc, argv, 2000);
  bench::print_banner(
      "Serve — concurrent what-if queries, lock-free snapshot reads",
      "no paper counterpart: operational layer over the §3.4 predictor; "
      "every concurrent response must be bit-identical to a "
      "single-threaded run");

  serve::SnapshotOptions snapshot_options;
  snapshot_options.store_path = telemetry_scope.options().store_path;
  const char* scale = std::getenv("ANYOPT_BENCH_SCALE");
  snapshot_options.test_scale =
      scale != nullptr && std::strcmp(scale, "small") == 0;

  const auto build_start = Clock::now();
  Result<std::shared_ptr<serve::Snapshot>> built =
      serve::Snapshot::build(snapshot_options);
  if (!built.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n", built.error().message.c_str());
    return 1;
  }
  const double build_s =
      std::chrono::duration<double>(Clock::now() - build_start).count();

  serve::Service service;
  service.publish(std::move(built).value());
  const std::shared_ptr<const serve::Snapshot> snapshot = service.current();
  std::printf("snapshot: %zu sites, %zu targets, %zu experiments, "
              "%.1f KiB retained, built in %.2f s\n",
              snapshot->site_count(), snapshot->target_count(),
              snapshot->experiments_run(),
              static_cast<double>(snapshot->retained_bytes()) / 1024.0,
              build_s);

  const std::vector<std::string> workload =
      make_workload(*snapshot, query_count);

  // Single-threaded reference pass: fixes the expected bytes and warms
  // first-touch costs out of the timed run.
  std::vector<std::string> expected(workload.size());
  for (std::size_t q = 0; q < workload.size(); ++q) {
    expected[q] = service.handle_line(workload[q]);
  }

  // Timed concurrent replay: workers stride the workload, recording
  // per-query latency and the response bytes for the identity check.
  std::vector<std::string> responses(workload.size());
  std::vector<std::vector<double>> latency_ms(threads);
  const auto start = Clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        latency_ms[w].reserve(workload.size() / threads + 1);
        for (std::size_t q = w; q < workload.size(); q += threads) {
          const auto t0 = Clock::now();
          responses[q] = service.handle_line(workload[q]);
          latency_ms[w].push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::size_t mismatches = 0;
  for (std::size_t q = 0; q < workload.size(); ++q) {
    if (responses[q] != expected[q]) ++mismatches;
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "bench_serve: %zu/%zu concurrent responses differ from the "
                 "single-threaded run — the lock-free path is broken\n",
                 mismatches, workload.size());
    return 1;
  }

  std::vector<double> all_ms;
  all_ms.reserve(workload.size());
  for (const auto& per_worker : latency_ms) {
    all_ms.insert(all_ms.end(), per_worker.begin(), per_worker.end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  const double qps =
      wall_s > 0 ? static_cast<double>(workload.size()) / wall_s : 0.0;
  const double p50 = exact_percentile(all_ms, 0.50);
  const double p95 = exact_percentile(all_ms, 0.95);
  const double p99 = exact_percentile(all_ms, 0.99);

  std::printf("\n%zu queries, %zu workers: %.0f qps "
              "(p50 %.3f ms, p95 %.3f ms, p99 %.3f ms)\n",
              workload.size(), threads, qps, p50, p95, p99);
  std::printf("bit-identity: %zu/%zu concurrent responses match the "
              "single-threaded run\n",
              workload.size() - mismatches, workload.size());

  char serve_json[256];
  std::snprintf(serve_json, sizeof serve_json,
                "{\n    \"queries\": %zu,\n    \"qps\": %.1f,\n"
                "    \"p50_ms\": %.4f,\n    \"p95_ms\": %.4f,\n"
                "    \"p99_ms\": %.4f\n  }",
                workload.size(), qps, p50, p95, p99);
  bench::set_bench_json_extra("serve", serve_json);
  return 0;
}
