#pragma once
// Shared plumbing for the figure/table reproduction binaries.

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anycast/world.h"
#include "core/anyopt.h"
#include "measure/orchestrator.h"
#include "measure/store.h"
#include "netbase/resmon.h"

namespace anyopt::bench {

/// The paper-scale environment every bench runs against: the Table-1
/// deployment on a synthetic Internet with 15,300 ping targets.
struct PaperEnv {
  std::unique_ptr<anycast::World> world;
  std::unique_ptr<measure::Orchestrator> orchestrator;
  /// Persistent result store when the bench ran with `--store=FILE`
  /// (declared before the pipeline, which holds a pointer into it).
  std::unique_ptr<measure::ResultStore> store;
  std::unique_ptr<core::AnyOptPipeline> pipeline;
};

/// Builds the environment (seed 1897 reproduces every number in
/// EXPERIMENTS.md; pass another seed to check robustness).  `threads`
/// parallelizes the pipeline's discovery campaigns (1 = serial,
/// 0 = hardware concurrency); results are bit-identical at any setting.
[[nodiscard]] PaperEnv make_paper_env(std::uint64_t seed = 1897,
                                      std::size_t threads = 1);

/// A reduced environment for quick runs (set ANYOPT_BENCH_SCALE=small).
[[nodiscard]] PaperEnv make_env_from_environment(std::size_t threads = 1);

/// Parses `--threads N` / `--threads=N` and REMOVES it from argv so the
/// remaining arguments can be handed to another parser (e.g. google
/// benchmark).  Returns `fallback` when the flag is absent.  An explicit
/// `--threads=0` is clamped to 1 (serial) with a stderr note — bench
/// results are reported per explicit thread count, so "whatever the
/// hardware has" is never silently substituted.  (`ThreadPool` itself
/// guarantees `size() >= 1` for any argument; see netbase/thread_pool.h.)
[[nodiscard]] std::size_t parse_threads(int& argc, char** argv,
                                        std::size_t fallback = 1);

/// Parses a bare boolean flag (e.g. `--classic`) and REMOVES it from argv.
/// Returns true iff the flag was present.
[[nodiscard]] bool parse_flag(int& argc, char** argv, const char* flag);

/// Telemetry flags shared by every bench binary:
///   --metrics            print the metrics summary when the bench exits
///   --metrics-out=FILE   write the summary to FILE instead (implies
///                        --metrics)
///   --trace-out=FILE     capture spans and write Chrome trace-event JSON
///                        to FILE (open in Perfetto / chrome://tracing)
///   --json-out=FILE      write the machine-readable bench record to FILE
///                        (default: BENCH_<name>.json in the working dir)
///   --no-json            skip the bench record (ANYOPT_BENCH_JSON=0 too)
///   --store=FILE         open (or create) the persistent result store at
///                        FILE and warm-start every measurement stage from
///                        it; a second run of the same bench replays every
///                        experiment from the store (`store.hits` in the
///                        bench record).  ANYOPT_STORE=FILE works too.
///   --resmon[=MS]        run the resource-monitor sampler for the whole
///                        bench: RSS and per-subsystem `bytes.*` gauges are
///                        sampled every MS milliseconds (default 50) and —
///                        with --trace-out — exported as counter rows in
///                        the Chrome trace.
///   --provenance-out=F   record one JSONL provenance line per experiment
///                        into F (query with `anyopt_bench explain`).
///   --mem-budget-mb=MB   set the process-wide soft memory budget
///                        (`resmon::set_mem_budget_bytes`): above it the
///                        measurement plane degrades to streaming — resolve
///                        caches are dropped and converged states are freed
///                        instead of parked — rather than OOMing.  All
///                        degradations are result-invariant (docs/SCALING.md).
/// Any of them enables the telemetry layer for the whole run.  Telemetry
/// never touches experiment RNG, so the bench's result tables are
/// byte-identical with and without these flags — and a warm store run
/// prints the same tables as a cold one.
struct TelemetryOptions {
  bool metrics = false;
  std::string metrics_out;  ///< empty = stdout
  std::string trace_out;    ///< empty = no trace capture
  std::string json_out;     ///< empty = BENCH_<name>.json
  bool json = true;         ///< emit the bench record at exit
  std::string store_path;   ///< empty = no persistent store
  bool resmon = false;      ///< run the resource sampler
  std::uint32_t resmon_period_ms = 50;
  std::string provenance_out;  ///< empty = no flight log
  std::size_t mem_budget_mb = 0;  ///< 0 = unlimited (no budget installed)
  [[nodiscard]] bool any() const { return metrics || !trace_out.empty(); }
};

/// Parses and REMOVES the telemetry flags from argv (same contract as
/// `parse_threads`) and flips the global telemetry switches accordingly.
[[nodiscard]] TelemetryOptions parse_telemetry(int& argc, char** argv);

/// Emits whatever `options` asked for: the summary table (stdout or file,
/// with derived pool-utilization line) and/or the Chrome trace JSON.
void report_telemetry(const TelemetryOptions& options);

/// Writes the machine-readable per-run record `BENCH_<name>.json` (schema
/// 3): wall time, the headline workload counters (simulator runs/events,
/// censuses, campaign experiments, resolution-cache hit rate, scratch
/// reuse, store and overlay activity), run identity (`git_commit` +
/// `dirty`, `threads`, `hw_concurrency`) and the resource footprint
/// (`peak_rss_kb`, per-subsystem `bytes.*` high-water marks).  These files
/// are the repo's perf trajectory: one record per bench per run,
/// aggregated/diffed/gated by `tools/anyopt_bench`.
void write_bench_json(const std::string& bench_name, double wall_s,
                      const TelemetryOptions& options);

/// Registers one extra top-level object appended to the bench record, e.g.
/// `set_bench_json_extra("serve", "{\"qps\": 1200.0, ...}")` for
/// bench_serve's QPS/latency block.  `key` must be a bare identifier;
/// `json_object` must be a complete, valid JSON value.  Extra sections are
/// OPTIONAL schema-3 fields: consumers treat their absence as "subsystem
/// not exercised", never as zero (see tools/anyopt_bench).  Re-registering
/// a key replaces its object.
void set_bench_json_extra(const std::string& key,
                          const std::string& json_object);

/// RAII wrapper: construct at the top of main with the bench's short name
/// (e.g. "fig4b"), report at exit — after every pipeline/runner destructor
/// has flushed its metrics.  Always enables the metrics layer so the bench
/// record has real counters even without telemetry flags (the layer is
/// result-invariant and its hot-path cost is one relaxed atomic per probe).
class TelemetryScope {
 public:
  TelemetryScope(const char* bench_name, int& argc, char** argv);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  [[nodiscard]] const TelemetryOptions& options() const { return options_; }

 private:
  std::string bench_name_;
  TelemetryOptions options_;
  double start_us_ = 0;
  /// Resource-monitor sampler thread, alive for the whole bench when
  /// `--resmon` was given (see netbase/resmon.h).
  std::unique_ptr<resmon::Sampler> sampler_;
};

/// Prints the standard bench banner: experiment id, what the paper
/// reports, and what this binary regenerates.
void print_banner(const std::string& experiment,
                  const std::string& paper_claim);

/// One data point of the Fig. 5 evaluation (§5.2): a random configuration
/// is predicted offline, then deployed and measured.
struct Fig5Point {
  std::size_t sites = 0;
  double accuracy = 0;            ///< catchment prediction accuracy
  double predicted_mean_rtt = 0;
  double measured_mean_rtt = 0;
  [[nodiscard]] double abs_error() const {
    return std::abs(predicted_mean_rtt - measured_mean_rtt);
  }
  [[nodiscard]] double rel_error() const {
    return measured_mean_rtt > 0 ? abs_error() / measured_mean_rtt : 0;
  }
};

/// Runs the paper's §5.2 protocol: `count` random configurations with 1-14
/// sites and random announcement orders, each predicted then deployed and
/// measured (the paper repeats this 38 times).
[[nodiscard]] std::vector<Fig5Point> run_fig5_sweep(PaperEnv& env,
                                                    int count = 38,
                                                    std::uint64_t seed = 38);

}  // namespace anyopt::bench
