#include "support/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cstring>

#include <chrono>
#include <string_view>
#include <thread>
#include <utility>

#include "measure/provenance.h"
#include "netbase/resmon.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"

#include "topo/serialize.h"

namespace anyopt::bench {

namespace {

/// Store path from `--store=FILE` (set by `parse_telemetry`, which every
/// bench runs before building its environment) or ANYOPT_STORE.
std::string g_store_path;  // NOLINT(cert-err58-cpp)

/// Thread count the bench resolved via `parse_threads` (recorded in the
/// bench json so trajectory records are comparable across runs).
std::size_t g_bench_threads = 1;

/// Optional extra top-level sections appended to the bench record (e.g.
/// bench_serve's "serve" block).  See `set_bench_json_extra`.
std::vector<std::pair<std::string, std::string>>& bench_json_extras() {
  static std::vector<std::pair<std::string, std::string>> extras;
  return extras;
}

PaperEnv make_env(anycast::WorldParams params, std::size_t threads) {
  PaperEnv env;
  env.world = anycast::World::create(std::move(params));
  env.orchestrator = std::make_unique<measure::Orchestrator>(*env.world);
  if (!g_store_path.empty()) {
    // The store is keyed to this exact topology; a mismatched file is a
    // hard error (serving another topology's results would be silent lies).
    const std::uint64_t fingerprint =
        topo::topology_fingerprint(env.world->internet());
    Result<std::unique_ptr<measure::ResultStore>> store =
        measure::ResultStore::open(g_store_path, fingerprint);
    if (!store.ok()) {
      std::fprintf(stderr, "[bench] cannot open store: %s\n",
                   store.error().message.c_str());
      std::exit(2);
    }
    env.store = std::move(store).value();
    std::printf("[bench] result store %s: %zu records persisted%s\n",
                env.store->path().c_str(), env.store->size(),
                env.store->recovered_tail_bytes() > 0 ? " (torn tail recovered)"
                                                      : "");
  }
  core::PipelineOptions options;
  options.discovery.threads = threads;
  options.store = env.store.get();
  env.pipeline =
      std::make_unique<core::AnyOptPipeline>(*env.orchestrator, options);
  return env;
}

}  // namespace

PaperEnv make_paper_env(std::uint64_t seed, std::size_t threads) {
  return make_env(anycast::WorldParams::paper_scale(seed), threads);
}

PaperEnv make_env_from_environment(std::size_t threads) {
  const char* scale = std::getenv("ANYOPT_BENCH_SCALE");
  if (scale != nullptr && std::strcmp(scale, "small") == 0) {
    return make_env(anycast::WorldParams::test_scale(1897), threads);
  }
  return make_paper_env(1897, threads);
}

std::size_t parse_threads(int& argc, char** argv, std::size_t fallback) {
  // Only a fully numeric value counts: a bare `--threads` must not eat a
  // following flag, and `--threads=abc` is left in argv so downstream
  // parsers (e.g. google benchmark) can reject it by name.
  const auto numeric = [](const char* s) {
    if (*s == '\0') return false;
    for (; *s != '\0'; ++s) {
      if (std::isdigit(static_cast<unsigned char>(*s)) == 0) return false;
    }
    return true;
  };
  std::size_t threads = fallback;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc &&
        numeric(argv[i + 1])) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(arg, "--threads=", 10) == 0 &&
               numeric(arg + 10)) {
      threads = static_cast<std::size_t>(std::strtoul(arg + 10, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  if (threads == 0) {
    // `--threads=0` used to be forwarded verbatim; a pool constructed with
    // a literal zero relies on ThreadPool's own hardware-concurrency
    // fallback, and every bench documents results per explicit thread
    // count.  Clamp to serial and say so, rather than silently running at
    // whatever the machine has.
    std::fprintf(stderr,
                 "[bench] --threads=0 is not a valid worker count; "
                 "clamping to 1 (serial)\n");
    threads = 1;
  }
  g_bench_threads = threads;
  return threads;
}

bool parse_flag(int& argc, char** argv, const char* flag) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return found;
}

TelemetryOptions parse_telemetry(int& argc, char** argv) {
  TelemetryOptions options;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--metrics") == 0) {
      options.metrics = true;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      options.metrics = true;
      options.metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      options.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
      options.json_out = arg + 11;
    } else if (std::strcmp(arg, "--no-json") == 0) {
      options.json = false;
    } else if (std::strncmp(arg, "--store=", 8) == 0) {
      options.store_path = arg + 8;
    } else if (std::strcmp(arg, "--resmon") == 0) {
      options.resmon = true;
    } else if (std::strncmp(arg, "--resmon=", 9) == 0) {
      options.resmon = true;
      const long period = std::strtol(arg + 9, nullptr, 10);
      if (period > 0) {
        options.resmon_period_ms = static_cast<std::uint32_t>(period);
      }
    } else if (std::strncmp(arg, "--provenance-out=", 17) == 0) {
      options.provenance_out = arg + 17;
    } else if (std::strncmp(arg, "--mem-budget-mb=", 16) == 0) {
      const long mb = std::strtol(arg + 16, nullptr, 10);
      if (mb > 0) options.mem_budget_mb = static_cast<std::size_t>(mb);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  if (options.store_path.empty()) {
    if (const char* env = std::getenv("ANYOPT_STORE");
        env != nullptr && *env != '\0') {
      options.store_path = env;
    }
  }
  g_store_path = options.store_path;
  if (options.mem_budget_mb > 0) {
    resmon::set_mem_budget_bytes(options.mem_budget_mb * 1024 * 1024);
  }
  if (options.any() || options.resmon) telemetry::set_enabled(true);
  if (!options.trace_out.empty()) telemetry::set_tracing(true);
  if (!options.provenance_out.empty() &&
      !measure::provenance::FlightLog::global().open(options.provenance_out)) {
    std::fprintf(stderr, "[bench] cannot open provenance log %s\n",
                 options.provenance_out.c_str());
  }
  return options;
}

void report_telemetry(const TelemetryOptions& options) {
  if (!options.any()) return;
  auto& reg = telemetry::Registry::global();
  if (options.metrics) {
    std::string summary = reg.summary();
    // Derived line: worker utilization over every pool's lifetime.
    const std::uint64_t busy = reg.counter_value("pool.busy_us");
    const std::uint64_t offered = reg.counter_value("pool.worker_us");
    if (offered > 0) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "\npool.utilization  %.1f%%\n",
                    100.0 * static_cast<double>(busy) /
                        static_cast<double>(offered));
      summary += buf;
    }
    if (options.metrics_out.empty()) {
      std::printf("\n== telemetry ==\n%s", summary.c_str());
    } else if (std::FILE* f = std::fopen(options.metrics_out.c_str(), "w")) {
      std::fputs(summary.c_str(), f);
      std::fclose(f);
      std::printf("\n[telemetry] metrics written to %s\n",
                  options.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "[telemetry] cannot write %s\n",
                   options.metrics_out.c_str());
    }
  }
  if (!options.trace_out.empty()) {
    const std::string json = reg.chrome_trace_json();
    if (std::FILE* f = std::fopen(options.trace_out.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("\n[telemetry] %zu trace events written to %s "
                  "(open in Perfetto or chrome://tracing)\n",
                  reg.trace_event_count(), options.trace_out.c_str());
    } else {
      std::fprintf(stderr, "[telemetry] cannot write %s\n",
                   options.trace_out.c_str());
    }
  }
}

void write_bench_json(const std::string& bench_name, double wall_s,
                      const TelemetryOptions& options) {
  if (!options.json) return;
  if (const char* env = std::getenv("ANYOPT_BENCH_JSON");
      env != nullptr && std::strcmp(env, "0") == 0) {
    return;
  }
  const std::string path = options.json_out.empty()
                               ? "BENCH_" + bench_name + ".json"
                               : options.json_out;
  auto& reg = telemetry::Registry::global();
  const std::uint64_t hits = reg.counter_value("bgp.resolve.cache_hit");
  const std::uint64_t misses = reg.counter_value("bgp.resolve.cache_miss");
  const std::uint64_t resolves = hits + misses;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return;
  }
  // Run identity: `git describe --always --dirty` split into the commit
  // proper and a machine-checkable dirty bit, so two records from the same
  // commit compare equal regardless of local build noise.
#ifdef ANYOPT_GIT_DESCRIBE
  std::string git_commit = ANYOPT_GIT_DESCRIBE;
#else
  std::string git_commit = "unknown";
#endif
  bool dirty = false;
  if (constexpr std::string_view kDirty = "-dirty";
      git_commit.size() > kDirty.size() &&
      git_commit.compare(git_commit.size() - kDirty.size(), kDirty.size(),
                         kDirty) == 0) {
    dirty = true;
    git_commit.resize(git_commit.size() - kDirty.size());
  }
  // Resource footprint: VmHWM is read directly (populated even when the
  // periodic sampler never ran); the bytes.* peaks are the gauges' running
  // maxima over the whole run.
  const resmon::MemorySample mem = resmon::read_memory();
  std::fprintf(f,
               "{\n"
               "  \"schema\": 3,\n"
               "  \"git_commit\": \"%s\",\n"
               "  \"dirty\": %s,\n"
               "  \"bench\": \"%s\",\n"
               "  \"threads\": %llu,\n"
               "  \"hw_concurrency\": %u,\n"
               "  \"wall_s\": %.3f,\n"
               "  \"peak_rss_kb\": %lld,\n"
               "  \"sim_runs\": %llu,\n"
               "  \"sim_events\": %llu,\n"
               "  \"censuses\": %llu,\n"
               "  \"campaign_experiments\": %llu,\n"
               "  \"resolve_cache_hits\": %llu,\n"
               "  \"resolve_cache_misses\": %llu,\n"
               "  \"resolve_cache_hit_rate\": %.4f,\n"
               "  \"scratch_reuse\": %llu,\n"
               "  \"store_hits\": %llu,\n"
               "  \"store_misses\": %llu,\n"
               "  \"store_bytes_written\": %llu,\n"
               "  \"overlay_forks\": %llu,\n"
               "  \"overlay_copied_as\": %llu,\n"
               "  \"overlay_delta_events\": %llu,\n"
               "  \"bytes\": {\n"
               "    \"sim_scratch\": %lld,\n"
               "    \"overlay_pages\": %lld,\n"
               "    \"resolve_cache\": %lld,\n"
               "    \"store_index\": %lld,\n"
               "    \"pool_queue\": %lld",
               git_commit.c_str(), dirty ? "true" : "false",
               bench_name.c_str(),
               static_cast<unsigned long long>(g_bench_threads),
               std::thread::hardware_concurrency(), wall_s,
               static_cast<long long>(mem.peak_rss_kb),
               static_cast<unsigned long long>(reg.counter_value("bgp.sim.runs")),
               static_cast<unsigned long long>(
                   reg.counter_value("bgp.sim.events")),
               static_cast<unsigned long long>(
                   reg.counter_value("measure.censuses")),
               static_cast<unsigned long long>(
                   reg.counter_value("campaign.experiments")),
               static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses),
               resolves > 0 ? static_cast<double>(hits) /
                                  static_cast<double>(resolves)
                            : 0.0,
               static_cast<unsigned long long>(
                   reg.counter_value("sim.scratch_reuse")),
               static_cast<unsigned long long>(
                   reg.counter_value("store.hits")),
               static_cast<unsigned long long>(
                   reg.counter_value("store.misses")),
               static_cast<unsigned long long>(
                   reg.counter_value("store.bytes_written")),
               static_cast<unsigned long long>(
                   reg.counter_value("sim.overlay.forks")),
               static_cast<unsigned long long>(
                   reg.counter_value("sim.overlay.copied_as")),
               static_cast<unsigned long long>(
                   reg.counter_value("sim.overlay.delta_events")),
               static_cast<long long>(reg.gauge_max("bytes.sim_scratch")),
               static_cast<long long>(reg.gauge_max("bytes.overlay_pages")),
               static_cast<long long>(reg.gauge_max("bytes.resolve_cache")),
               static_cast<long long>(reg.gauge_max("bytes.store_index")),
               static_cast<long long>(reg.gauge_max("bytes.pool_queue")));
  // `bytes.snapshot` only exists in processes that build a serve snapshot;
  // it is an OPTIONAL schema-3 field (absent = subsystem not present, not
  // zero), so most records stay byte-for-byte what schema 3 always was.
  if (const std::int64_t snapshot = reg.gauge_max("bytes.snapshot");
      snapshot > 0) {
    std::fprintf(f, ",\n    \"snapshot\": %lld",
                 static_cast<long long>(snapshot));
  }
  // Likewise OPTIONAL: the SoA-RIB and census-shard high-water marks only
  // exist in processes that ran the compact resolve path.
  if (const std::int64_t rib = reg.gauge_max("bytes.rib"); rib > 0) {
    std::fprintf(f, ",\n    \"rib\": %lld", static_cast<long long>(rib));
  }
  if (const std::int64_t shards = reg.gauge_max("bytes.census_shards");
      shards > 0) {
    std::fprintf(f, ",\n    \"census_shards\": %lld",
                 static_cast<long long>(shards));
  }
  std::fprintf(f, "\n  }");
  for (const auto& [key, object] : bench_json_extras()) {
    std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), object.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\n[bench] record written to %s\n", path.c_str());
}

void set_bench_json_extra(const std::string& key,
                          const std::string& json_object) {
  for (auto& [existing, object] : bench_json_extras()) {
    if (existing == key) {
      object = json_object;
      return;
    }
  }
  bench_json_extras().emplace_back(key, json_object);
}

TelemetryScope::TelemetryScope(const char* bench_name, int& argc, char** argv)
    : bench_name_(bench_name), options_(parse_telemetry(argc, argv)) {
  // The bench record needs real counters regardless of telemetry flags.
  // Metrics are result-invariant (see the telemetry invariance suite), so
  // this only costs a few relaxed atomics per experiment.
  telemetry::set_enabled(true);
  if (options_.resmon) {
    sampler_ = std::make_unique<resmon::Sampler>(
        std::chrono::milliseconds(options_.resmon_period_ms));
  }
  start_us_ = telemetry::now_us();
}

TelemetryScope::~TelemetryScope() {
  const double wall_s = (telemetry::now_us() - start_us_) / 1e6;
  // Stop the sampler first so its final sample (and the gauges' maxima) are
  // part of the report and the bench record.
  if (sampler_ != nullptr) {
    sampler_->stop();
    std::printf("[bench] resmon: %llu samples @ %ums\n",
                static_cast<unsigned long long>(sampler_->samples()),
                options_.resmon_period_ms);
    sampler_.reset();
  }
  auto& flight_log = measure::provenance::FlightLog::global();
  if (flight_log.active()) {
    std::printf("[bench] provenance: %llu experiments -> %s\n",
                static_cast<unsigned long long>(flight_log.records()),
                options_.provenance_out.c_str());
    flight_log.close();
  }
  report_telemetry(options_);
  write_bench_json(bench_name_, wall_s, options_);
}

std::vector<Fig5Point> run_fig5_sweep(PaperEnv& env, int count,
                                      std::uint64_t seed) {
  Rng rng{seed};
  const std::size_t sites = env.world->deployment().site_count();
  std::vector<Fig5Point> points;
  points.reserve(count);
  for (int i = 0; i < count; ++i) {
    // 1 to 14 enabled sites (the paper's range), random announce order.
    const std::size_t k = 1 + rng.below(sites - 1);
    std::vector<std::size_t> ids(sites);
    for (std::size_t s = 0; s < sites; ++s) ids[s] = s;
    rng.shuffle(ids);
    anycast::AnycastConfig cfg;
    for (std::size_t s = 0; s < k; ++s) {
      cfg.announce_order.push_back(
          SiteId{static_cast<SiteId::underlying_type>(ids[s])});
    }
    const core::Prediction prediction = env.pipeline->predict(cfg);
    const measure::Census census =
        env.orchestrator->measure(cfg, 0xF15ULL + static_cast<std::uint64_t>(i));
    Fig5Point point;
    point.sites = k;
    point.accuracy = prediction.accuracy_against(census);
    point.predicted_mean_rtt = prediction.mean_rtt();
    point.measured_mean_rtt = census.mean_rtt();
    points.push_back(point);
  }
  return points;
}

void print_banner(const std::string& experiment,
                  const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("AnyOpt reproduction — %s\n", experiment.c_str());
  std::printf("Paper reports: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

}  // namespace anyopt::bench
