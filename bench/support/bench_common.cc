#include "support/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "netbase/rng.h"

namespace anyopt::bench {

PaperEnv make_paper_env(std::uint64_t seed) {
  PaperEnv env;
  env.world = anycast::World::create(anycast::WorldParams::paper_scale(seed));
  env.orchestrator = std::make_unique<measure::Orchestrator>(*env.world);
  env.pipeline = std::make_unique<core::AnyOptPipeline>(*env.orchestrator);
  return env;
}

PaperEnv make_env_from_environment() {
  const char* scale = std::getenv("ANYOPT_BENCH_SCALE");
  if (scale != nullptr && std::strcmp(scale, "small") == 0) {
    PaperEnv env;
    env.world = anycast::World::create(anycast::WorldParams::test_scale(1897));
    env.orchestrator = std::make_unique<measure::Orchestrator>(*env.world);
    env.pipeline = std::make_unique<core::AnyOptPipeline>(*env.orchestrator);
    return env;
  }
  return make_paper_env();
}

std::vector<Fig5Point> run_fig5_sweep(PaperEnv& env, int count,
                                      std::uint64_t seed) {
  Rng rng{seed};
  const std::size_t sites = env.world->deployment().site_count();
  std::vector<Fig5Point> points;
  points.reserve(count);
  for (int i = 0; i < count; ++i) {
    // 1 to 14 enabled sites (the paper's range), random announce order.
    const std::size_t k = 1 + rng.below(sites - 1);
    std::vector<std::size_t> ids(sites);
    for (std::size_t s = 0; s < sites; ++s) ids[s] = s;
    rng.shuffle(ids);
    anycast::AnycastConfig cfg;
    for (std::size_t s = 0; s < k; ++s) {
      cfg.announce_order.push_back(
          SiteId{static_cast<SiteId::underlying_type>(ids[s])});
    }
    const core::Prediction prediction = env.pipeline->predict(cfg);
    const measure::Census census =
        env.orchestrator->measure(cfg, 0xF15ULL + static_cast<std::uint64_t>(i));
    Fig5Point point;
    point.sites = k;
    point.accuracy = prediction.accuracy_against(census);
    point.predicted_mean_rtt = prediction.mean_rtt();
    point.measured_mean_rtt = census.mean_rtt();
    points.push_back(point);
  }
  return points;
}

void print_banner(const std::string& experiment,
                  const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("AnyOpt reproduction — %s\n", experiment.c_str());
  std::printf("Paper reports: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

}  // namespace anyopt::bench
