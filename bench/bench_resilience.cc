// Resilience benchmark: preference discovery under injected failures.
//
// A seeded FaultPlan kills a fraction of campaign rounds outright (the
// orchestrator-outage / withdrawn-prefix model).  Without requeueing, every
// lost round leaves its pair kUnknown and the discovered tables diverge
// from the fault-free preference order.  With `retry_rounds` requeueing —
// same content-derived nonce, bumped fault-layer attempt — a retried round
// that survives reproduces the fault-free census bit for bit, so the
// tables must converge to EXACTLY the fault-free order.  This binary
// verifies that convergence at ≥10% injected failure and reports the
// retry overhead.  `--threads N` parallelizes the campaigns (default 4).

#include <chrono>
#include <cstdio>

#include "core/discovery.h"
#include "netbase/fault.h"
#include "netbase/telemetry.h"
#include "support/bench_common.h"

namespace {

using namespace anyopt;
using Clock = std::chrono::steady_clock;

double run_discovery_s(const measure::Orchestrator& orchestrator,
                       const core::DiscoveryOptions& options,
                       core::DiscoveryResult* out) {
  const core::Discovery discovery(orchestrator, options);
  const auto start = Clock::now();
  *out = discovery.run();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fraction of (pair, target) table entries that differ from the
/// fault-free reference (0.0 = exact convergence).
double divergence(const core::DiscoveryResult& got,
                  const core::DiscoveryResult& want) {
  std::size_t total = 0;
  std::size_t differ = 0;
  const auto compare = [&](const core::PairwiseTable& a,
                           const core::PairwiseTable& b) {
    for (std::size_t p = 0; p < a.outcome.size(); ++p) {
      for (std::size_t t = 0; t < a.outcome[p].size(); ++t) {
        ++total;
        if (a.outcome[p][t] != b.outcome[p][t]) ++differ;
      }
    }
  };
  compare(got.provider_prefs, want.provider_prefs);
  for (std::size_t p = 0; p < got.site_prefs.size(); ++p) {
    compare(got.site_prefs[p], want.site_prefs[p]);
  }
  return total > 0 ? static_cast<double>(differ) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryScope telemetry_scope("resilience", argc, argv);
  const std::size_t threads = bench::parse_threads(argc, argv, 4);
  bench::print_banner(
      "Resilience — discovery under injected failures",
      "no direct paper figure: robustness envelope of the §4.5 campaign — "
      "with requeueing, discovered preference tables converge to the "
      "fault-free order even when a third of all rounds is lost");

  bench::PaperEnv env = bench::make_env_from_environment();
  std::printf("campaign threads: %zu, retry rounds: 8\n\n", threads);

  core::DiscoveryOptions options;
  options.threads = threads;
  core::DiscoveryResult want;
  const double calm_s = run_discovery_s(*env.orchestrator, options, &want);
  std::printf("fault-free reference: %7.3f s  (%zu experiments)\n\n", calm_s,
              want.experiments);

  std::printf("%9s | %-10s | %11s | %8s | %9s | %s\n", "failures", "requeue",
              "experiments", "requeued", "wall s", "divergence");
  std::printf("----------+------------+-------------+----------+-----------+"
              "-----------\n");

  auto& reg = telemetry::Registry::global();
  bool converged = true;
  for (const double rate : {0.1, 0.2, 0.3}) {
    fault::FaultPlan plan;
    plan.seed = 0x5E51;
    plan.experiment_failure_prob = rate;
    const fault::FaultInjector injector{plan};
    measure::OrchestratorOptions orchestrator_options;
    orchestrator_options.faults = &injector;
    const measure::Orchestrator faulted(*env.world, orchestrator_options);

    for (const bool requeue : {false, true}) {
      core::DiscoveryOptions faulted_options = options;
      faulted_options.retry_rounds = requeue ? 8 : 0;
      const std::uint64_t requeued_before = reg.counter_value("discovery.requeued");
      core::DiscoveryResult got;
      const double wall_s = run_discovery_s(faulted, faulted_options, &got);
      const std::uint64_t requeued =
          reg.counter_value("discovery.requeued") - requeued_before;
      const double diverged = divergence(got, want);
      std::printf("%8.0f%% | %-10s | %11zu | %8llu | %9.3f | %8.4f%%\n",
                  rate * 100, requeue ? "8 rounds" : "off", got.experiments,
                  static_cast<unsigned long long>(requeued), wall_s,
                  diverged * 100);
      if (requeue && diverged != 0.0) converged = false;
    }
  }

  std::printf("\n");
  if (!converged) {
    std::printf(
        "FAIL: requeued discovery did not converge to the fault-free "
        "preference order\n");
    return 1;
  }
  std::printf(
      "requeued tables: exactly the fault-free preference order at every "
      "injected failure rate (verified)\n");
  return 0;
}
