// Figure 7b: change of the deployment-wide mean RTT when each peer is
// enabled alone on top of the optimized transit-only configuration,
// peers ranked by that change (§5.4).  The paper: only a few peers move
// the average noticeably; beneficial peers are a minority.

#include <algorithm>
#include <cstdio>

#include "core/optimizer.h"
#include "core/peers.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("fig7b", argc, argv);
  bench::print_banner(
      "Figure 7b — mean-RTT delta per enabled peer (ranked)",
      "only a few peers have noticeable impact on the average RTT");

  bench::PaperEnv env = bench::make_env_from_environment();

  core::OptimizerOptions opts;
  opts.time_budget_s = 120.0;
  const core::SearchOutcome search = env.pipeline->optimize(opts);
  const core::OnePassPeerSelector selector(*env.orchestrator);
  const core::OnePassResult one_pass = selector.run(search.best.config);

  std::vector<core::PeerMeasurement> ranked = one_pass.peers;
  std::sort(ranked.begin(), ranked.end(),
            [](const core::PeerMeasurement& a,
               const core::PeerMeasurement& b) {
              return a.delta_ms < b.delta_ms;
            });

  std::printf("baseline (transit-only AnyOpt config) mean RTT: %.1f ms\n\n",
              one_pass.baseline_mean_rtt);
  std::printf("# rank\tdelta_mean_rtt_ms\tcatchment_size\tbeneficial\n");
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    std::printf("%4zu\t%+9.3f\t%8zu\t%s\n", i + 1, ranked[i].delta_ms,
                ranked[i].catchment_size,
                ranked[i].beneficial ? "yes" : "no");
  }

  std::size_t beneficial = 0;
  double best_delta = 0;
  for (const auto& m : ranked) {
    if (m.beneficial) ++beneficial;
    best_delta = std::min(best_delta, m.delta_ms);
  }
  std::printf("\nbeneficial peers: %zu of %zu; best single-peer "
              "improvement: %.2f ms (paper: 47 of 104 beneficial)\n",
              beneficial, ranked.size(), -best_delta);
  return 0;
}
