// Figure 4b: fraction of client networks WITHOUT a total preference order
// among the enabled transit providers, as the number of providers grows
// from 3 to 6 — with and without accounting for announcement order (§5.1).
// The paper: at 6 providers, 21.7% naive vs 10.8% when the order of BGP
// announcements is incorporated (roughly halved).

#include <cstdio>

#include "core/discovery.h"
#include "core/total_order.h"
#include "netbase/rng.h"
#include "netbase/stats.h"
#include "netbase/table.h"
#include "support/bench_common.h"

namespace {

using namespace anyopt;

/// Mean (and spread) of the no-total-order fraction over random provider
/// subsets of a given size.
stats::Online no_order_over_subsets(const core::PairwiseTable& table,
                                    std::size_t subset_size, int repeats,
                                    Rng& rng) {
  stats::Online acc;
  const std::size_t providers = table.item_count;
  for (int r = 0; r < repeats; ++r) {
    std::vector<std::size_t> all(providers);
    for (std::size_t i = 0; i < providers; ++i) all[i] = i;
    rng.shuffle(all);
    all.resize(subset_size);
    std::sort(all.begin(), all.end());
    // Arrival ranks: the subset's announcement order, randomized per rep.
    std::vector<std::size_t> arrival(providers, 0);
    std::vector<std::size_t> order = all;
    rng.shuffle(order);
    for (std::size_t i = 0; i < order.size(); ++i) arrival[order[i]] = i;
    acc.add(1.0 - core::fraction_with_total_order(table, all, arrival));
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryScope telemetry_scope("fig4b", argc, argv);
  const bool classic = bench::parse_flag(argc, argv, "--classic");
  const std::size_t threads = bench::parse_threads(argc, argv);
  bench::print_banner(
      "Figure 4b — networks without a total order vs #providers",
      "naive grows to 21.7% at 6 providers; accounting for announcement "
      "order halves it to 10.8%");
  std::printf("campaign threads: %zu, campaign mode: %s\n\n", threads,
              classic ? "classic (--classic)" : "incremental overlays");

  bench::PaperEnv env = bench::make_env_from_environment(threads);

  // Default: ONE incremental campaign.  Each provider pair is two
  // copy-on-write overlays over a shared per-first-site base (leg 1
  // resumes leg 0), and the naive table is DERIVED from the ordered legs
  // instead of re-measured — see Discovery::provider_level_views.
  // `--classic` reproduces the historical two-campaign from-scratch path
  // (the before side of the perf record).
  core::PairwiseTable naive_table;
  core::PairwiseTable ordered_table;
  std::size_t experiments = 0;
  if (classic) {
    core::DiscoveryOptions naive_opts;
    naive_opts.account_order = false;
    naive_opts.threads = threads;
    naive_opts.store = env.store.get();
    core::DiscoveryOptions ordered_opts;
    ordered_opts.threads = threads;
    ordered_opts.store = env.store.get();
    const core::Discovery naive(*env.orchestrator, naive_opts);
    const core::Discovery ordered(*env.orchestrator, ordered_opts);
    naive_table = naive.provider_level(&experiments);
    ordered_table = ordered.provider_level(&experiments);
  } else {
    core::DiscoveryOptions opts;
    opts.incremental = true;
    opts.threads = threads;
    opts.store = env.store.get();
    const core::Discovery discovery(*env.orchestrator, opts);
    core::Discovery::ProviderLevelViews views =
        discovery.provider_level_views(&experiments);
    ordered_table = std::move(views.ordered);
    naive_table = std::move(views.naive);
  }

  Rng rng{20210823};
  TextTable table({"#providers", "no total order (naive)", "+/-",
                   "no total order (with order)", "+/-"});
  for (std::size_t n = 3; n <= naive_table.item_count; ++n) {
    const auto no_naive = no_order_over_subsets(naive_table, n, 5, rng);
    const auto no_ordered = no_order_over_subsets(ordered_table, n, 5, rng);
    table.add_row({std::to_string(n), TextTable::pct(no_naive.mean()),
                   TextTable::pct(no_naive.stddev()),
                   TextTable::pct(no_ordered.mean()),
                   TextTable::pct(no_ordered.stddev())});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
