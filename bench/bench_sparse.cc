// Extension (§6 "Reducing the number of experiments"): adaptive sparse
// pairwise discovery with transitive completion.  Sweeps the pair budget
// and reports experiments spent, entries resolved (measured + inferred)
// and full-order coverage — the experiments-vs-knowledge trade-off the
// paper poses as future work.

#include <cstdio>

#include "core/sparse.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("sparse", argc, argv);
  bench::print_banner(
      "§6 extension — sparse discovery with transitive completion",
      "open question in the paper: can total orders be learned with fewer "
      "than O(|I|^2) experiments?");

  bench::PaperEnv env = bench::make_env_from_environment();
  const core::SparseDiscovery sparse(*env.orchestrator);

  TextTable table({"pair budget", "pairs measured", "BGP experiments",
                   "entries resolved", "inferred entries",
                   "clients fully ordered"});
  for (const std::size_t budget : {3u, 5u, 7u, 9u, 11u, 13u, 15u}) {
    const core::SparseResult result = sparse.run(budget);
    table.add_row({std::to_string(budget),
                   std::to_string(result.pairs_measured),
                   std::to_string(result.experiments),
                   TextTable::pct(result.resolved_fraction),
                   std::to_string(result.inferred_entries),
                   TextTable::pct(result.coverage)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("full pairwise discovery needs C(6,2)=15 pairs = 30 "
              "experiments; inference buys back part of the saved budget.\n"
              "Order-dependent (arrival-tie) pairs are never inferred — "
              "they carry no transitive information.\n");
  return 0;
}
