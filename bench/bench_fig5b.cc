// Figure 5b: CDF of the absolute difference between the predicted and the
// measured mean RTT over the 38 random configurations (§5.2).  The paper:
// within 6 ms for more than 80% of configurations.

#include <cstdio>

#include "netbase/stats.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("fig5b", argc, argv);
  bench::print_banner(
      "Figure 5b — CDF of |predicted - measured| mean RTT",
      "<= 6 ms for more than 80% of anycast configurations");

  bench::PaperEnv env = bench::make_env_from_environment();
  const auto points = bench::run_fig5_sweep(env);

  std::vector<double> abs_errors;
  for (const auto& p : points) abs_errors.push_back(p.abs_error());

  const auto cdf = stats::empirical_cdf(abs_errors, 38);
  std::printf("%s\n",
              stats::format_cdf(cdf, "abs_error_ms", "Fig5b").c_str());

  std::size_t within6 = 0;
  for (const double e : abs_errors) {
    if (e <= 6.0) ++within6;
  }
  std::printf("within 6 ms: %.1f%% of configurations (paper: >80%%); "
              "median abs error %.2f ms\n",
              100.0 * static_cast<double>(within6) /
                  static_cast<double>(abs_errors.size()),
              stats::median(abs_errors));
  return 0;
}
