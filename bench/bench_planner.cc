// §4.5 measurement-count analysis: the experiments needed to run AnyOpt on
// an Akamai-DNS-scale network (500 sites, 20 transit providers, 4 test
// prefixes, 2-hour spacing), and the comparison against the naive
// measure-every-configuration approach.

#include <cstdio>

#include "core/planner.h"
#include "netbase/table.h"
#include "support/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bench::TelemetryScope telemetry_scope("planner", argc, argv);
  bench::print_banner(
      "§4.5 — measurement plan for a 500-site / 20-provider network",
      "500 singleton experiments (~10 days) + 380 pairwise experiments "
      "(~8 days) with 4 parallel prefixes at 2h spacing; the naive "
      "approach needs 2^500 configurations");

  TextTable table({"deployment", "singleton", "provider pairwise",
                   "site pairwise", "singleton days", "pairwise days",
                   "total days"});

  auto add = [&](const std::string& name, const core::PlannerInput& input) {
    const core::MeasurementPlan plan = core::plan_measurements(input);
    table.add_row({name, std::to_string(plan.singleton_experiments),
                   std::to_string(plan.provider_pairwise),
                   std::to_string(plan.site_pairwise),
                   TextTable::num(plan.singleton_days, 1),
                   TextTable::num(plan.pairwise_days, 1),
                   TextTable::num(plan.total_days, 1)});
  };

  core::PlannerInput testbed;
  testbed.sites = 15;
  testbed.transit_providers = 6;
  testbed.avg_sites_per_provider = 2.5;
  testbed.site_level_pairwise = true;
  add("paper testbed (15 sites / 6 transits)", testbed);

  add("Akamai DNS approx (500 sites / 20 transits, RTT heuristic)",
      core::PlannerInput{});

  core::PlannerInput akamai_full;
  akamai_full.site_level_pairwise = true;
  add("Akamai DNS approx with site-level pairwise (infeasible)",
      akamai_full);

  std::printf("%s\n", table.render().c_str());

  const auto plan = core::plan_measurements(core::PlannerInput{});
  std::printf("naive alternative for 500 sites: %s configurations "
              "(exponential; paper: O(2^|S|))\n",
              plan.naive_configurations ==
                      std::numeric_limits<std::size_t>::max()
                  ? ">= 2^63 (saturated)"
                  : std::to_string(plan.naive_configurations).c_str());
  return 0;
}
