// Catchment diagnosis: why did a client end up at that site?
//
// §2 motivates AnyOpt with operators doing "manual interventions" when
// anycast routes badly.  This example automates the first diagnostic step:
// for the worst-latency clients of a deployed configuration it prints the
// full BGP decision trace — every AS hop, how many candidate routes it
// held, and which decision step (AS-path length? arrival order? router
// id?) picked the winner.  It then summarizes how many clients in total
// are arrival-order-dependent, the paper's §4.2 phenomenon.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/anyopt.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bool paper_scale = argc > 1 && std::strcmp(argv[1], "--paper") == 0;

  auto world = anycast::World::create(
      paper_scale ? anycast::WorldParams::paper_scale(60)
                  : anycast::WorldParams::test_scale(60));
  measure::Orchestrator orchestrator(*world);

  const auto cfg = anycast::AnycastConfig::all_sites(world->deployment());
  const auto schedule = cfg.schedule(world->deployment());
  const bgp::RoutingState state = world->simulator().run(schedule, 1);
  const measure::Census census = orchestrator.measure(cfg, 1);

  // Rank clients by measured RTT; diagnose the three worst.
  std::vector<std::pair<double, std::uint32_t>> by_rtt;
  for (std::uint32_t t = 0; t < census.rtt_ms.size(); ++t) {
    if (census.rtt_ms[t] >= 0) by_rtt.push_back({census.rtt_ms[t], t});
  }
  std::sort(by_rtt.rbegin(), by_rtt.rend());

  std::printf("deployment '%s': mean RTT %.1f ms over %zu targets\n\n",
              cfg.describe().c_str(), census.mean_rtt(),
              census.reachable_count());
  for (int i = 0; i < 3 && i < static_cast<int>(by_rtt.size()); ++i) {
    const auto [rtt, t] = by_rtt[i];
    const auto& target = world->targets().target(TargetId{t});
    const bgp::Explanation why =
        state.explain(target.as, target.where, t);
    std::printf("--- worst client #%d: target %s, measured RTT %.1f ms\n%s\n",
                i + 1, target.address.to_string().c_str(), rtt,
                why.to_string(world->internet()).c_str());
  }

  // Deployment-wide: how many clients' catchments hinge on arrival order?
  std::size_t order_dependent = 0;
  std::size_t reachable = 0;
  for (std::uint32_t t = 0; t < world->targets().size(); ++t) {
    const auto& target = world->targets().target(TargetId{t});
    const bgp::Explanation why =
        state.explain(target.as, target.where, t);
    if (!why.reachable) continue;
    ++reachable;
    order_dependent += why.order_dependent();
  }
  std::printf("clients whose route hinged on the arrival-order tie-break: "
              "%zu of %zu (%.1f%%) — the §4.2 population AnyOpt must track "
              "announcement order for.\n",
              order_dependent, reachable,
              100.0 * static_cast<double>(order_dependent) /
                  static_cast<double>(reachable));
  return 0;
}
