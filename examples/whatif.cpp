// What-if configuration explorer.
//
// After the measurement stages have run once, AnyOpt answers "what would
// happen if we announced from sites X, Y, Z in this order?" entirely
// offline.  This example takes site lists on the command line (1-based
// Table-1 site numbers, announcement order = argument order), predicts
// each, and — with --verify — also deploys them in simulation to show the
// prediction quality.  It also demonstrates topology serialization: the
// generated Internet is saved and reloaded to prove the run is
// reproducible from the artifact.
//
//   ./whatif 1 4 12
//   ./whatif --verify 3 5 "1 2 12"
//   ./whatif            (defaults to three example configurations)

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/anyopt.h"
#include "netbase/table.h"
#include "topo/serialize.h"

namespace {

using namespace anyopt;

/// Parses "1 4 12" (or a single number) into a configuration.
anycast::AnycastConfig parse_config(const std::string& arg,
                                    std::size_t site_count) {
  anycast::AnycastConfig cfg;
  std::istringstream in(arg);
  std::size_t site = 0;
  while (in >> site) {
    if (site < 1 || site > site_count) {
      std::fprintf(stderr, "site %zu out of range 1..%zu\n", site,
                   site_count);
      std::exit(1);
    }
    cfg.announce_order.push_back(
        SiteId{static_cast<SiteId::underlying_type>(site - 1)});
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) {
    args = {"1 4 12", "3 5", "2 6 9 13 15"};
  }

  auto world = anycast::World::create(anycast::WorldParams::test_scale(77));

  // Round-trip the generated Internet through the text format: a real
  // operator would check this artifact into version control.
  const std::string saved = topo::save_internet(world->internet());
  const auto reloaded = topo::load_internet(saved);
  std::printf("topology artifact: %zu bytes, reload %s\n\n", saved.size(),
              reloaded.ok() ? "OK (bit-exact)" : "FAILED");

  measure::Orchestrator orchestrator(*world);
  core::AnyOptPipeline anyopt(orchestrator);
  anyopt.discover();
  anyopt.measure_rtts();

  TextTable table({"configuration", "predicted mean RTT (ms)",
                   "predictable targets",
                   verify ? "measured mean RTT (ms)" : "-",
                   verify ? "catchment accuracy" : "-"});
  std::uint64_t nonce = 0x3AF;
  for (const std::string& arg : args) {
    const anycast::AnycastConfig cfg =
        parse_config(arg, world->deployment().site_count());
    const core::Prediction prediction = anyopt.predict(cfg);
    std::string measured = "-";
    std::string accuracy = "-";
    if (verify) {
      const measure::Census census = orchestrator.measure(cfg, nonce++);
      measured = TextTable::num(census.mean_rtt(), 1);
      accuracy = TextTable::pct(prediction.accuracy_against(census));
    }
    table.add_row({cfg.describe(),
                   TextTable::num(prediction.mean_rtt(), 1),
                   TextTable::pct(static_cast<double>(
                                      prediction.predicted_count()) /
                                  static_cast<double>(
                                      world->targets().size())),
                   measured, accuracy});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("total BGP experiments spent: %zu (predictions themselves "
              "cost none)\n",
              anyopt.experiments_run());
  return 0;
}
