// Catchment shaping with AS-path prepending (§6 "Other control knobs").
//
// Prepending the origin AS lengthens the announced path from one site,
// repelling clients whose choice was decided by AS-path length — a knob
// operators use to drain a site for maintenance or shed load.  This
// example prepends 0..3 hops on one site of the Table-1 deployment and
// measures how its catchment and the deployment-wide mean RTT respond.

#include <cstdio>
#include <cstring>

#include "core/anyopt.h"
#include "netbase/table.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bool paper_scale = argc > 1 && std::strcmp(argv[1], "--paper") == 0;

  auto world = anycast::World::create(
      paper_scale ? anycast::WorldParams::paper_scale(3131)
                  : anycast::WorldParams::test_scale(3131));
  measure::Orchestrator orchestrator(*world);

  // Shape the busiest site: find it under the plain all-sites config.
  const auto base = anycast::AnycastConfig::all_sites(world->deployment());
  const measure::Census baseline = orchestrator.measure(base, 0x7E0);
  SiteId busiest;
  std::size_t busiest_size = 0;
  for (std::size_t s = 0; s < world->deployment().site_count(); ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    const std::size_t size = baseline.catchment_size(site);
    if (size > busiest_size) {
      busiest_size = size;
      busiest = site;
    }
  }
  std::printf("shaping site %u (%s/%s), baseline catchment %zu of %zu "
              "targets\n\n",
              busiest.value() + 1,
              world->deployment().site(busiest).metro.c_str(),
              world->deployment().site(busiest).provider_name.c_str(),
              busiest_size, world->targets().size());

  TextTable table({"prepend", "site catchment", "share", "mean RTT (ms)",
                   "median RTT (ms)"});
  for (std::uint8_t prepend = 0; prepend <= 3; ++prepend) {
    anycast::AnycastConfig cfg = base;
    cfg.prepend.assign(cfg.announce_order.size(), 0);
    for (std::size_t i = 0; i < cfg.announce_order.size(); ++i) {
      if (cfg.announce_order[i] == busiest) cfg.prepend[i] = prepend;
    }
    const measure::Census census =
        orchestrator.measure(cfg, 0x7E1 + prepend);
    const std::size_t catchment = census.catchment_size(busiest);
    table.add_row(
        {std::to_string(prepend), std::to_string(catchment),
         TextTable::pct(static_cast<double>(catchment) /
                        static_cast<double>(world->targets().size())),
         TextTable::num(census.mean_rtt(), 1),
         TextTable::num(census.median_rtt(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("prepending drains the site's catchment without withdrawing "
              "it — the maintenance workflow of §2 without a hard cutover.\n");
  return 0;
}
