// Akamai-DNS-style anycast cloud assignment (§2.2 + Appendix B).
//
// Akamai DNS hosts 24 anycast prefixes, each served by a subset of sites
// (an "anycast cloud").  This example assigns several clouds over the
// Table-1 testbed: for each cloud it builds the SPLPO instance from the
// discovered total orders and unicast RTTs, adds per-site load capacities
// (Eq. 7 of Appendix B) and a per-client query workload, and solves for
// the lowest-latency feasible subset.  It then verifies the load
// constraint by deploying the chosen configuration.

#include <cstdio>
#include <cstring>

#include "core/anyopt.h"
#include "netbase/table.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bool paper_scale = argc > 1 && std::strcmp(argv[1], "--paper") == 0;

  auto world = anycast::World::create(
      paper_scale ? anycast::WorldParams::paper_scale(2024)
                  : anycast::WorldParams::test_scale(2024));
  measure::Orchestrator orchestrator(*world);
  core::AnyOptPipeline anyopt(orchestrator);

  const auto all = anycast::AnycastConfig::all_sites(world->deployment());
  core::SplpoInstance base = anyopt.splpo_instance(all);
  std::printf("SPLPO instance: %zu clients (targets with a total order), "
              "%zu sites\n\n",
              base.client_count, base.site_count);

  // Heavy-tailed per-client query workload; capacity per site set so that
  // no single site can absorb everything (forces load spreading).
  Rng rng{7};
  double total_demand = 0;
  for (std::size_t c = 0; c < base.client_count; ++c) {
    base.demand[c] = rng.pareto(1.0, 1.6);
    total_demand += base.demand[c];
  }
  for (std::size_t s = 0; s < base.site_count; ++s) {
    base.capacity[s] = 0.35 * total_demand;
  }

  // Three clouds with different size budgets (smaller clouds are cheaper
  // to operate; the DNS operator trades latency for cost).
  TextTable table({"cloud", "#sites", "open sites", "mean latency (ms)",
                   "max site load / capacity"});
  for (const std::size_t budget : {4u, 8u, 12u}) {
    const core::SplpoSolution sol = core::solve_local_search(
        base, /*seed=*/{}, /*max_open=*/budget);
    if (!sol.feasible) {
      std::printf("cloud with %zu sites: infeasible under capacities\n",
                  budget);
      continue;
    }
    // Compute per-site load of the final assignment.
    std::vector<double> load(base.site_count, 0.0);
    for (std::size_t c = 0; c < base.client_count; ++c) {
      if (sol.assignment[c] >= 0) {
        load[sol.assignment[c]] += base.demand[c];
      }
    }
    double max_ratio = 0;
    std::string open;
    for (const std::uint32_t s : sol.open_sites) {
      max_ratio = std::max(max_ratio, load[s] / base.capacity[s]);
      if (!open.empty()) open += ",";
      open += std::to_string(s + 1);
    }
    table.add_row({"cloud-" + std::to_string(budget),
                   std::to_string(sol.open_sites.size()), open,
                   TextTable::num(sol.mean_cost, 1),
                   TextTable::pct(max_ratio)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("note: clients go to their most-preferred open site (BGP "
              "routes them, the operator cannot assign them), so capacity\n"
              "feasibility is achieved purely by choosing WHICH sites to "
              "open — exactly the SPLPO model of Appendix B.\n");
  return 0;
}
