// CDN latency optimization (§2.2's second motivating example).
//
// An anycast CDN wants the lowest client RTT.  This example walks the full
// operator loop: measure, search for the best transit-only configuration,
// compare against "just enable everything" and a greedy build-out, then
// incorporate settlement-free peering with the one-pass method (§4.4) and
// report the final latency distribution.

#include <cstdio>
#include <cstring>

#include "core/anyopt.h"
#include "netbase/stats.h"
#include "netbase/table.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bool paper_scale = argc > 1 && std::strcmp(argv[1], "--paper") == 0;

  auto world = anycast::World::create(
      paper_scale ? anycast::WorldParams::paper_scale(4242)
                  : anycast::WorldParams::test_scale(4242));
  measure::Orchestrator orchestrator(*world);
  core::AnyOptPipeline anyopt(orchestrator);

  // Offline search for the best transit-only configuration.
  core::OptimizerOptions options;
  options.time_budget_s = 30.0;
  const core::SearchOutcome search = anyopt.optimize(options);
  const std::size_t k = search.best.config.announce_order.size();

  // Competing strategies a CDN might use instead.
  const auto all_sites = anycast::AnycastConfig::all_sites(world->deployment());
  const auto greedy =
      core::Optimizer::greedy_unicast(anyopt.predictor().rtts(), k);

  // Peer tuning on top of the optimized configuration.
  const core::OnePassResult peers = anyopt.tune_peers(search.best.config);

  struct Row {
    const char* name;
    measure::Census census;
  };
  const std::vector<Row> rows = {
      {"all 15 sites (naive build-out)", orchestrator.measure(all_sites, 11)},
      {"greedy by unicast latency", orchestrator.measure(greedy, 12)},
      {"AnyOpt transit-only", orchestrator.measure(search.best.config, 13)},
      {"AnyOpt + beneficial peers",
       orchestrator.measure(peers.with_beneficial_peers, 14)},
  };

  TextTable table({"strategy", "mean RTT (ms)", "median (ms)", "p90 (ms)"});
  for (const Row& row : rows) {
    auto rtts = row.census.valid_rtts();
    table.add_row({row.name, TextTable::num(row.census.mean_rtt(), 1),
                   TextTable::num(stats::median(rtts), 1),
                   TextTable::num(stats::quantile(rtts, 0.9), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("one-pass peering: %zu/%zu peers beneficial, %zu included "
              "(baseline %.1f ms -> predicted %.1f ms)\n",
              [&] {
                std::size_t n = 0;
                for (const auto& m : peers.peers) n += m.beneficial;
                return n;
              }(),
              peers.peers.size(), peers.chosen.size(),
              peers.baseline_mean_rtt, peers.predicted_mean_rtt);
  std::printf("\nevery 100 ms of latency costs ~1%% of revenue [40]; the "
              "gap between row 1 and row 4 is the money AnyOpt saves.\n");
  return 0;
}
