// Quickstart: the complete AnyOpt workflow in ~60 lines.
//
//   1. build a world (synthetic Internet + the paper's Table-1 deployment)
//   2. run the measurement stages (pairwise discovery + unicast RTTs)
//   3. predict an arbitrary configuration offline
//   4. search for the lowest-latency configuration
//   5. deploy it (in simulation) and verify the prediction
//
// Run:   ./quickstart            (reduced world, ~seconds)
//        ./quickstart --paper    (full 15,300-target evaluation scale)

#include <cstdio>
#include <cstring>

#include "core/anyopt.h"

int main(int argc, char** argv) {
  using namespace anyopt;
  const bool paper_scale = argc > 1 && std::strcmp(argv[1], "--paper") == 0;

  // 1. The world: a deterministic synthetic Internet with the 15-site
  //    deployment of the paper's Table 1 realized on top.
  auto world = anycast::World::create(
      paper_scale ? anycast::WorldParams::paper_scale(1897)
                  : anycast::WorldParams::test_scale(1897));
  std::printf("world: %zu ASes, %zu links, %zu ping targets, %zu sites\n",
              world->internet().graph.as_count(),
              world->internet().graph.link_count(), world->targets().size(),
              world->deployment().site_count());

  // 2. Measurements (§4.5 steps 1-2): the orchestrator plays the role of
  //    the paper's GoBGP box + Verfploeter-style prober.
  measure::Orchestrator orchestrator(*world);
  core::AnyOptPipeline anyopt(orchestrator);
  anyopt.discover();
  anyopt.measure_rtts();
  std::printf("measurements: %zu BGP experiments run\n",
              anyopt.experiments_run());

  // 3. Predict a configuration offline — no BGP experiment needed.
  anycast::AnycastConfig some_config;
  some_config.announce_order = {SiteId{0}, SiteId{4}, SiteId{10}};
  const core::Prediction prediction = anyopt.predict(some_config);
  std::printf("predicted '%s': mean RTT %.1f ms, %zu/%zu targets "
              "predictable\n",
              some_config.describe().c_str(), prediction.mean_rtt(),
              prediction.predicted_count(), world->targets().size());

  // 4. Offline search for the best configuration (the paper's §5.3).
  core::OptimizerOptions options;
  options.time_budget_s = 30.0;
  const core::SearchOutcome best = anyopt.optimize(options);
  std::printf("search: %zu configurations -> best uses %zu sites, "
              "predicted mean RTT %.1f ms ('%s')\n",
              best.configurations_evaluated,
              best.best.config.announce_order.size(),
              best.best.predicted_mean_rtt,
              best.best.config.describe().c_str());

  // 5. Deploy and verify.
  const measure::Census measured =
      orchestrator.measure(best.best.config, /*experiment_nonce=*/1);
  std::printf("deployed: measured mean RTT %.1f ms (prediction was "
              "%.1f ms, error %.1f%%)\n",
              measured.mean_rtt(), best.best.predicted_mean_rtt,
              100.0 *
                  std::abs(measured.mean_rtt() - best.best.predicted_mean_rtt) /
                  measured.mean_rtt());
  return 0;
}
