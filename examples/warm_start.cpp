// Warm start: checkpoint a measurement campaign and resume it for free.
//
// The persistent result store keys every BGP experiment by its content
// (configuration + noise nonce) and the world's topology fingerprint, so
// a census measured once can be replayed by every later run:
//
//   1. first run — cold: discovery + RTT matrix execute and every result
//      streams into `warm_start.store`
//   2. second run — warm: a fresh pipeline over the same store replays
//      everything (`store.hits` == experiment count, zero simulations)
//   3. the tables are bit-identical either way
//
// Run:   ./warm_start            (reduced world, ~seconds)

#include <cstdio>
#include <cstdlib>

#include "core/anyopt.h"
#include "measure/store.h"
#include "netbase/telemetry.h"
#include "topo/serialize.h"

int main() {
  using namespace anyopt;
  telemetry::set_enabled(true);  // expose the store.hits / misses counters

  auto world = anycast::World::create(anycast::WorldParams::test_scale(1897));
  measure::Orchestrator orchestrator(*world);

  // The store is bound to this exact topology: its header carries a
  // fingerprint of the serialized Internet, so it can never silently serve
  // results generated against a different world.
  const std::uint64_t fingerprint =
      topo::topology_fingerprint(world->internet());
  const char* path = "warm_start.store";
  std::remove(path);

  double cold_mean = 0;
  {
    // 1. Cold run: every experiment simulates, every census is flushed to
    //    the store the moment it completes.
    auto store = measure::ResultStore::open(path, fingerprint);
    if (!store.ok()) {
      std::fprintf(stderr, "open: %s\n", store.error().message.c_str());
      return 1;
    }
    core::PipelineOptions options;
    options.store = store.value().get();
    core::AnyOptPipeline anyopt(orchestrator, options);
    anyopt.discover();
    anyopt.measure_rtts();
    cold_mean = anyopt.predict(anycast::AnycastConfig::all_sites(
                                   world->deployment()))
                    .mean_rtt();
    std::printf("cold run: %zu experiments simulated, %zu records "
                "persisted, store.hits=%llu\n",
                anyopt.experiments_run(), store.value()->size(),
                static_cast<unsigned long long>(
                    telemetry::Registry::global().counter_value(
                        "store.hits")));
  }

  {
    // 2. Warm run: a brand-new pipeline over the same file replays every
    //    persisted census and RTT row instead of simulating.
    auto store = measure::ResultStore::open(path, fingerprint);
    if (!store.ok()) {
      std::fprintf(stderr, "reopen: %s\n", store.error().message.c_str());
      return 1;
    }
    core::PipelineOptions options;
    options.store = store.value().get();
    core::AnyOptPipeline anyopt(orchestrator, options);
    anyopt.discover();
    anyopt.measure_rtts();
    const double warm_mean =
        anyopt
            .predict(anycast::AnycastConfig::all_sites(world->deployment()))
            .mean_rtt();
    std::printf("warm run: store.hits=%llu — and the prediction is %s "
                "(%.3f ms vs %.3f ms)\n",
                static_cast<unsigned long long>(
                    telemetry::Registry::global().counter_value(
                        "store.hits")),
                warm_mean == cold_mean ? "bit-identical" : "DIFFERENT",
                warm_mean, cold_mean);
    // 3. Bit-identical is the contract, not an aspiration.
    if (warm_mean != cold_mean) return 1;
  }

  std::remove(path);
  return 0;
}
