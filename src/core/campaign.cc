#include "core/campaign.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "netbase/strings.h"

namespace anyopt::core {
namespace {

char kind_to_char(PrefKind kind) {
  return static_cast<char>('0' + static_cast<int>(kind));
}

Result<PrefKind> char_to_kind(char c) {
  if (c < '0' || c > '4') return Error::parse("bad preference code");
  return static_cast<PrefKind>(c - '0');
}

void write_table(std::ostringstream& out, const std::string& tag,
                 const PairwiseTable& table) {
  out << tag << ' ' << table.item_count << ' ' << table.target_count << '\n';
  for (std::size_t pair = 0; pair < table.outcome.size(); ++pair) {
    out << "p ";
    for (const PrefKind kind : table.outcome[pair]) {
      out << kind_to_char(kind);
    }
    out << '\n';
  }
}

Result<PairwiseTable> read_table(std::istringstream& in, std::size_t items,
                                 std::size_t targets) {
  PairwiseTable table;
  table.init(items, targets);
  std::string line;
  for (std::size_t pair = 0; pair < table.outcome.size(); ++pair) {
    if (!std::getline(in, line)) return Error::parse("truncated table");
    const std::string_view body = strings::trim(line);
    if (body.size() != targets + 2 || body.substr(0, 2) != "p ") {
      return Error::parse("bad table row");
    }
    for (std::size_t t = 0; t < targets; ++t) {
      auto kind = char_to_kind(body[2 + t]);
      if (!kind.ok()) return kind.error();
      table.outcome[pair][t] = kind.value();
    }
  }
  return table;
}

}  // namespace

std::string save_campaign(const Campaign& campaign) {
  std::ostringstream out;
  const auto& d = campaign.discovery;
  out << "anyopt-campaign v1\n";
  out << "meta " << d.provider_prefs.item_count << ' '
      << d.provider_prefs.target_count << ' ' << campaign.rtts.site_count()
      << ' ' << d.experiments << '\n';

  out << "provider-sites";
  for (const auto& sites : d.provider_sites) {
    out << ' ' << sites.size();
    for (const SiteId s : sites) out << ':' << s.value();
  }
  out << '\n';

  write_table(out, "ptable", d.provider_prefs);
  for (std::size_t p = 0; p < d.site_prefs.size(); ++p) {
    write_table(out, "stable", d.site_prefs[p]);
  }

  out << "rtts " << campaign.rtts.site_count() << ' '
      << campaign.rtts.target_count() << '\n';
  char buf[40];
  for (std::size_t s = 0; s < campaign.rtts.site_count(); ++s) {
    out << 'r';
    for (std::size_t t = 0; t < campaign.rtts.target_count(); ++t) {
      const double v = campaign.rtts.rtt(
          SiteId{static_cast<SiteId::underlying_type>(s)},
          TargetId{static_cast<TargetId::underlying_type>(t)});
      std::snprintf(buf, sizeof buf, " %.17g", v);
      out << buf;
    }
    out << '\n';
  }
  out << "end\n";
  return out.str();
}

Result<Campaign> load_campaign(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      strings::trim(line) != "anyopt-campaign v1") {
    return Error::parse("bad header; expected 'anyopt-campaign v1'");
  }

  Campaign campaign;
  std::size_t providers = 0;
  std::size_t targets = 0;
  std::size_t sites = 0;

  if (!std::getline(in, line)) return Error::parse("missing meta");
  {
    std::istringstream meta(line);
    std::string tag;
    meta >> tag >> providers >> targets >> sites >>
        campaign.discovery.experiments;
    if (tag != "meta" || providers == 0 || sites == 0) {
      return Error::parse("bad meta record");
    }
  }

  if (!std::getline(in, line)) return Error::parse("missing provider-sites");
  {
    const auto fields = strings::split(strings::trim(line), ' ');
    if (fields.empty() || fields[0] != "provider-sites" ||
        fields.size() != providers + 1) {
      return Error::parse("bad provider-sites record");
    }
    std::size_t total_sites = 0;
    for (std::size_t p = 1; p <= providers; ++p) {
      const auto parts = strings::split(fields[p], ':');
      std::size_t count = 0;
      auto [ptr, ec] = std::from_chars(
          parts[0].data(), parts[0].data() + parts[0].size(), count);
      if (ec != std::errc{} || parts.size() != count + 1) {
        return Error::parse("bad provider-sites entry");
      }
      std::vector<SiteId> list;
      for (std::size_t i = 1; i <= count; ++i) {
        std::uint32_t site = 0;
        auto [p2, e2] = std::from_chars(
            parts[i].data(), parts[i].data() + parts[i].size(), site);
        if (e2 != std::errc{}) return Error::parse("bad site id");
        list.push_back(SiteId{site});
      }
      total_sites += list.size();
      campaign.discovery.provider_sites.push_back(std::move(list));
    }
    if (total_sites != sites) {
      return Error::parse("provider-sites does not cover all sites");
    }
  }

  if (!std::getline(in, line) ||
      !strings::starts_with(strings::trim(line), "ptable ")) {
    return Error::parse("missing ptable");
  }
  auto ptable = read_table(in, providers, targets);
  if (!ptable.ok()) return ptable.error();
  campaign.discovery.provider_prefs = std::move(ptable.value());

  for (std::size_t p = 0; p < providers; ++p) {
    if (!std::getline(in, line) ||
        !strings::starts_with(strings::trim(line), "stable ")) {
      return Error::parse("missing stable record");
    }
    auto table = read_table(
        in, campaign.discovery.provider_sites[p].size(), targets);
    if (!table.ok()) return table.error();
    campaign.discovery.site_prefs.push_back(std::move(table.value()));
  }

  if (!std::getline(in, line) ||
      !strings::starts_with(strings::trim(line), "rtts ")) {
    return Error::parse("missing rtts record");
  }
  campaign.rtts = RttMatrix(sites, targets);
  for (std::size_t s = 0; s < sites; ++s) {
    if (!std::getline(in, line)) return Error::parse("truncated rtts");
    std::istringstream row(line);
    std::string tag;
    row >> tag;
    if (tag != "r") return Error::parse("bad rtt row");
    for (std::size_t t = 0; t < targets; ++t) {
      double v = 0;
      if (!(row >> v)) return Error::parse("short rtt row");
      campaign.rtts.set(SiteId{static_cast<SiteId::underlying_type>(s)},
                        TargetId{static_cast<TargetId::underlying_type>(t)},
                        v);
    }
  }
  if (!std::getline(in, line) || strings::trim(line) != "end") {
    return Error::parse("missing end record");
  }
  return campaign;
}

}  // namespace anyopt::core
