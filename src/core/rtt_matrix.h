#pragma once
// Per-(site, target) unicast RTT matrix (§3.1's singleton experiments).
//
// AnyOpt needs the RTT between every anycast site and every target: the
// orchestrator announces the prefix from one site at a time and measures
// all targets through that site's tunnel.  |S| singleton experiments fill
// the matrix.

#include <cstdint>
#include <vector>

#include "measure/orchestrator.h"
#include "netbase/ids.h"

namespace anyopt::measure {
class ResultStore;
}  // namespace anyopt::measure

namespace anyopt::core {

/// \brief Row-major [site][target] RTT estimates; negative =
///        unreachable/unmeasured.
class RttMatrix {
 public:
  RttMatrix() = default;
  /// \brief An all-unmeasured matrix of the given shape.
  /// \param sites number of site rows.
  /// \param targets number of target columns.
  RttMatrix(std::size_t sites, std::size_t targets)
      : sites_(sites), targets_(targets), rtt_(sites * targets, -1.0) {}

  /// \brief Runs the |S| singleton experiments (§4.5 step 1).
  /// \param orchestrator the measurement engine.
  /// \param nonce_base root of each singleton experiment's content-derived
  ///        nonce.
  /// \param store optional persistent result store: persisted rows (keyed
  ///        by `row_key`) are replayed instead of re-measured, and fresh
  ///        rows are flushed as they complete.  Not owned.
  /// \return the fully measured matrix.
  static RttMatrix measure(const measure::Orchestrator& orchestrator,
                           std::uint64_t nonce_base = 0x5111,
                           measure::ResultStore* store = nullptr);

  /// \brief The content-derived store key of one site's RTT row.
  /// \param site the site row.
  /// \param nonce the row's probe-noise nonce (`nonce_base + site`).
  /// \return the 64-bit store key.
  [[nodiscard]] static std::uint64_t row_key(SiteId site,
                                             std::uint64_t nonce);

  /// \brief One cell of the matrix.
  /// \param site the site row.
  /// \param target the target column.
  /// \return the RTT estimate; negative = unreachable/unmeasured.
  [[nodiscard]] double rtt(SiteId site, TargetId target) const {
    return rtt_[site.value() * targets_ + target.value()];
  }
  /// \brief Overwrites one cell.
  /// \param site the site row.
  /// \param target the target column.
  /// \param value the RTT estimate (negative = unmeasured).
  void set(SiteId site, TargetId target, double value) {
    rtt_[site.value() * targets_ + target.value()] = value;
  }

  /// \brief Number of site rows.
  [[nodiscard]] std::size_t site_count() const { return sites_; }
  /// \brief Number of target columns.
  [[nodiscard]] std::size_t target_count() const { return targets_; }

  /// \brief Mean unicast RTT of a site over targets it can reach (the
  ///        greedy baseline's selection metric, §5.3).
  /// \param site the site row to average.
  /// \return the mean; -1.0 when the site reaches nothing.
  [[nodiscard]] double site_mean(SiteId site) const;

  /// \brief Sites ranked by ascending mean unicast RTT.
  /// \return all site ids, best mean first.
  [[nodiscard]] std::vector<SiteId> sites_by_mean() const;

 private:
  std::size_t sites_ = 0;
  std::size_t targets_ = 0;
  std::vector<double> rtt_;
};

}  // namespace anyopt::core
