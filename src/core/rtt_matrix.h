#pragma once
// Per-(site, target) unicast RTT matrix (§3.1's singleton experiments).
//
// AnyOpt needs the RTT between every anycast site and every target: the
// orchestrator announces the prefix from one site at a time and measures
// all targets through that site's tunnel.  |S| singleton experiments fill
// the matrix.

#include <cstdint>
#include <vector>

#include "measure/orchestrator.h"
#include "netbase/ids.h"

namespace anyopt::core {

/// Row-major [site][target] RTT estimates; negative = unreachable/unmeasured.
class RttMatrix {
 public:
  RttMatrix() = default;
  RttMatrix(std::size_t sites, std::size_t targets)
      : sites_(sites), targets_(targets), rtt_(sites * targets, -1.0) {}

  /// Runs the |S| singleton experiments (§4.5 step 1).
  static RttMatrix measure(const measure::Orchestrator& orchestrator,
                           std::uint64_t nonce_base = 0x5111);

  [[nodiscard]] double rtt(SiteId site, TargetId target) const {
    return rtt_[site.value() * targets_ + target.value()];
  }
  void set(SiteId site, TargetId target, double value) {
    rtt_[site.value() * targets_ + target.value()] = value;
  }

  [[nodiscard]] std::size_t site_count() const { return sites_; }
  [[nodiscard]] std::size_t target_count() const { return targets_; }

  /// Mean unicast RTT of a site over targets it can reach (the greedy
  /// baseline's selection metric, §5.3).
  [[nodiscard]] double site_mean(SiteId site) const;

  /// Sites ranked by ascending mean unicast RTT.
  [[nodiscard]] std::vector<SiteId> sites_by_mean() const;

 private:
  std::size_t sites_ = 0;
  std::size_t targets_ = 0;
  std::vector<double> rtt_;
};

}  // namespace anyopt::core
