#include "core/rtt_matrix.h"

#include <algorithm>

#include "measure/store.h"
#include "netbase/rng.h"
#include "netbase/stats.h"

namespace anyopt::core {

std::uint64_t RttMatrix::row_key(SiteId site, std::uint64_t nonce) {
  return mix64(mix64(0x5111E077ULL, site.value()), nonce);
}

RttMatrix RttMatrix::measure(const measure::Orchestrator& orchestrator,
                             std::uint64_t nonce_base,
                             measure::ResultStore* store) {
  const auto& world = orchestrator.world();
  const std::size_t sites = world.deployment().site_count();
  const std::size_t targets = world.targets().size();
  RttMatrix m(sites, targets);
  for (std::size_t s = 0; s < sites; ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    const std::uint64_t nonce = nonce_base + s;
    std::vector<double> row;
    const std::uint64_t key = row_key(site, nonce);
    if (store != nullptr) {
      if (std::optional<std::vector<double>> cached = store->find_rtt_row(key);
          cached.has_value() && cached->size() == targets) {
        row = *std::move(cached);
      }
    }
    if (row.empty()) {
      row = orchestrator.unicast_rtts(site, nonce);
      if (store != nullptr) {
        const Status flushed = store->put_rtt_row(key, row);
        (void)flushed;
      }
    }
    for (std::size_t t = 0; t < targets; ++t) {
      m.rtt_[s * targets + t] = row[t];
    }
  }
  return m;
}

double RttMatrix::site_mean(SiteId site) const {
  stats::Online acc;
  for (std::size_t t = 0; t < targets_; ++t) {
    const double r = rtt_[site.value() * targets_ + t];
    if (r >= 0) acc.add(r);
  }
  return acc.count() ? acc.mean() : -1.0;
}

std::vector<SiteId> RttMatrix::sites_by_mean() const {
  std::vector<std::pair<double, SiteId>> by_mean;
  for (std::size_t s = 0; s < sites_; ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    by_mean.push_back({site_mean(site), site});
  }
  std::sort(by_mean.begin(), by_mean.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<SiteId> out;
  out.reserve(by_mean.size());
  for (const auto& [mean, site] : by_mean) out.push_back(site);
  return out;
}

}  // namespace anyopt::core
