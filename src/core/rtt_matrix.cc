#include "core/rtt_matrix.h"

#include <algorithm>

#include "netbase/stats.h"

namespace anyopt::core {

RttMatrix RttMatrix::measure(const measure::Orchestrator& orchestrator,
                             std::uint64_t nonce_base) {
  const auto& world = orchestrator.world();
  const std::size_t sites = world.deployment().site_count();
  const std::size_t targets = world.targets().size();
  RttMatrix m(sites, targets);
  for (std::size_t s = 0; s < sites; ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    const std::vector<double> row =
        orchestrator.unicast_rtts(site, nonce_base + s);
    for (std::size_t t = 0; t < targets; ++t) {
      m.rtt_[s * targets + t] = row[t];
    }
  }
  return m;
}

double RttMatrix::site_mean(SiteId site) const {
  stats::Online acc;
  for (std::size_t t = 0; t < targets_; ++t) {
    const double r = rtt_[site.value() * targets_ + t];
    if (r >= 0) acc.add(r);
  }
  return acc.count() ? acc.mean() : -1.0;
}

std::vector<SiteId> RttMatrix::sites_by_mean() const {
  std::vector<std::pair<double, SiteId>> by_mean;
  for (std::size_t s = 0; s < sites_; ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    by_mean.push_back({site_mean(site), site});
  }
  std::sort(by_mean.begin(), by_mean.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<SiteId> out;
  out.reserve(by_mean.size());
  for (const auto& [mean, site] : by_mean) out.push_back(site);
  return out;
}

}  // namespace anyopt::core
