#pragma once
// Sparse pairwise discovery with transitive completion — the §6 future-work
// direction "whether the total orders could be learned, or learned
// approximately, using fewer experiments".
//
// Strict preferences are transitive whenever a client has a total order
// (Theorem 4.1), so after measuring a subset of provider pairs the missing
// comparisons can often be *inferred*: if a client strictly prefers A to B
// and B to C, A-vs-C needs no experiment.  Order-dependent (arrival-tie)
// outcomes are not inference-safe and stay measured-only.
//
// Pair selection is adaptive: each BGP experiment measures all clients for
// one pair at once, so the next pair to measure is the one that is still
// unresolved (neither measured nor inferred) for the most clients.

#include <cstdint>
#include <vector>

#include "core/discovery.h"
#include "core/preference.h"

namespace anyopt::core {

/// \brief Outcome of a sparse provider-level discovery.
struct SparseResult {
  /// Provider-level table with measured AND inferred entries; feed it to a
  /// Predictor in place of the fully measured table.
  PairwiseTable table;
  std::size_t pairs_measured = 0;  ///< provider pairs actually measured
  std::size_t experiments = 0;     ///< BGP experiments performed
  /// Entries (client, pair) resolved by inference rather than measurement.
  std::size_t inferred_entries = 0;
  /// Fraction of clients with every pair resolved (measured or inferred);
  /// what full-configuration prediction over all providers needs.
  double coverage = 0;
  /// Fraction of (client, pair) entries resolved — the smooth measure of
  /// how much information the budget bought (predictions over provider
  /// subsets only need the pairs among the enabled providers).
  double resolved_fraction = 0;
  /// The measurement schedule actually chosen, in order.
  std::vector<std::pair<std::size_t, std::size_t>> schedule;
};

/// \brief Adaptive sparse discovery with transitive completion (§6).
class SparseDiscovery {
 public:
  /// \brief Builds the sparse-discovery engine over an orchestrator.
  /// \param orchestrator the measurement engine (must outlive this).
  /// \param options campaign parameters; see `DiscoveryOptions`.
  SparseDiscovery(const measure::Orchestrator& orchestrator,
                  DiscoveryOptions options = {});

  /// \brief Measures at most `max_pairs` provider pairs (each costing two
  ///        BGP experiments with order accounting), choosing pairs
  ///        adaptively and completing the rest by transitivity.
  ///
  /// `batch` pairs are selected and measured per adaptive round (their
  /// experiments run as one parallel campaign batch across
  /// `DiscoveryOptions::threads`); `batch == 1` reproduces the fully
  /// sequential schedule.  Because experiment nonces are content-derived,
  /// each measured pair's outcome is identical to what the full discovery
  /// (or any other schedule) would have produced for it.
  /// \param max_pairs the pair-measurement budget.
  /// \param batch pairs selected and measured per adaptive round.
  /// \return the partially measured, transitively completed table.
  [[nodiscard]] SparseResult run(std::size_t max_pairs,
                                 std::size_t batch = 1) const;

 private:
  const measure::Orchestrator& orchestrator_;
  DiscoveryOptions options_;
};

/// \brief Transitively completes `table` in place: for every client,
///        kUnknown pairs implied by chains of strict preferences are
///        filled in.
/// \param table the pairwise table to complete (modified).
/// \return the number of entries inferred.
std::size_t transitive_complete(PairwiseTable& table);

}  // namespace anyopt::core
