#include "core/splpo.h"

#include <algorithm>
#include <cassert>

namespace anyopt::core {
namespace {

/// Enumerate all subsets of {0..n-1} with the given cardinality via
/// Gosper's hack (n <= 63).
template <class Fn>
bool for_each_subset_of_size(std::size_t n, std::size_t k, Fn&& fn) {
  if (k == 0 || k > n) return true;
  std::uint64_t mask = (std::uint64_t{1} << k) - 1;
  const std::uint64_t limit = std::uint64_t{1} << n;
  while (mask < limit) {
    if (!fn(mask)) return false;
    // Gosper's hack: next subset with the same popcount.
    const std::uint64_t c = mask & (~mask + 1);
    const std::uint64_t r = mask + c;
    mask = (((r ^ mask) >> 2) / c) | r;
  }
  return true;
}

std::vector<std::uint32_t> mask_to_sites(std::uint64_t mask) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; mask != 0; ++i, mask >>= 1) {
    if (mask & 1) out.push_back(i);
  }
  return out;
}

}  // namespace

SplpoInstance SplpoInstance::make(std::size_t sites, std::size_t clients) {
  SplpoInstance inst;
  inst.site_count = sites;
  inst.client_count = clients;
  inst.cost.assign(sites * clients, kInf);
  inst.preference.assign(clients, {});
  inst.demand.assign(clients, 1.0);
  inst.capacity.assign(sites, kInf);
  return inst;
}

Status SplpoInstance::validate() const {
  if (cost.size() != site_count * client_count) {
    return Error::state("cost matrix size mismatch");
  }
  if (preference.size() != client_count || demand.size() != client_count ||
      capacity.size() != site_count) {
    return Error::state("per-client/per-site vector size mismatch");
  }
  for (const auto& prefs : preference) {
    std::vector<char> seen(site_count, 0);
    for (const std::uint32_t s : prefs) {
      if (s >= site_count) return Error::state("preference out of range");
      if (seen[s]) return Error::state("duplicate site in preference list");
      seen[s] = 1;
    }
  }
  return {};
}

bool SplpoSolution::better_than(const SplpoSolution& other) const {
  if (feasible != other.feasible) return feasible;
  if (unserved != other.unserved) return unserved < other.unserved;
  if (overload != other.overload) return overload < other.overload;
  // Compare costs over the served clients (kInf when infeasible would make
  // all infeasible states equal; use the raw accumulated cost instead).
  return total_cost < other.total_cost;
}

SplpoSolution evaluate_open_set(const SplpoInstance& instance,
                                const std::vector<std::uint32_t>& open) {
  SplpoSolution sol;
  sol.open_sites = open;
  std::sort(sol.open_sites.begin(), sol.open_sites.end());
  sol.assignment.assign(instance.client_count, -1);
  std::vector<char> is_open(instance.site_count, 0);
  for (const std::uint32_t s : open) is_open[s] = 1;

  std::vector<double> load(instance.site_count, 0.0);
  double total = 0;
  std::size_t served = 0;
  for (std::size_t c = 0; c < instance.client_count; ++c) {
    for (const std::uint32_t s : instance.preference[c]) {
      if (!is_open[s]) continue;
      sol.assignment[c] = static_cast<std::int32_t>(s);
      load[s] += instance.demand[c];
      total += instance.cost_of(c, s) * instance.demand[c];
      ++served;
      break;
    }
  }
  sol.unserved = instance.client_count - served;
  for (std::size_t s = 0; s < instance.site_count; ++s) {
    if (load[s] > instance.capacity[s]) {
      sol.overload += load[s] - instance.capacity[s];
    }
  }
  sol.feasible = sol.unserved == 0 && sol.overload == 0;
  sol.total_cost = total;
  sol.mean_cost = served > 0 ? total / static_cast<double>(served)
                             : SplpoInstance::kInf;
  sol.configurations_evaluated = 1;
  return sol;
}

SplpoSolution solve_exhaustive(const SplpoInstance& instance,
                               const ExhaustiveOptions& options) {
  assert(instance.site_count <= 63);
  SplpoSolution best;
  std::size_t evaluated = 0;
  const std::size_t hi =
      std::min<std::size_t>(options.max_open, instance.site_count);
  bool budget_left = true;
  for (std::size_t k = options.min_open; k <= hi && budget_left; ++k) {
    budget_left = for_each_subset_of_size(
        instance.site_count, k, [&](std::uint64_t mask) {
          SplpoSolution sol =
              evaluate_open_set(instance, mask_to_sites(mask));
          ++evaluated;
          if (evaluated == 1 || sol.better_than(best)) {
            best = std::move(sol);
          }
          return options.max_configurations == 0 ||
                 evaluated < options.max_configurations;
        });
  }
  best.configurations_evaluated = evaluated;
  return best;
}

SplpoSolution solve_greedy(const SplpoInstance& instance,
                           std::size_t max_open) {
  std::vector<std::uint32_t> open;
  SplpoSolution best;
  bool have_best = false;
  std::size_t evaluated = 0;
  while (open.size() < std::min<std::size_t>(max_open, instance.site_count)) {
    std::int64_t best_site = -1;
    SplpoSolution best_step;
    bool have_step = false;
    for (std::uint32_t s = 0; s < instance.site_count; ++s) {
      if (std::find(open.begin(), open.end(), s) != open.end()) continue;
      std::vector<std::uint32_t> candidate = open;
      candidate.push_back(s);
      SplpoSolution sol = evaluate_open_set(instance, candidate);
      ++evaluated;
      if (!have_step || sol.better_than(best_step)) {
        best_step = std::move(sol);
        best_site = s;
        have_step = true;
      }
    }
    if (best_site < 0) break;
    open.push_back(static_cast<std::uint32_t>(best_site));
    if (!have_best || best_step.better_than(best)) {
      best = best_step;
      have_best = true;
    } else if (best.feasible) {
      break;  // adding only hurts from here (greedy stop)
    }
  }
  best.configurations_evaluated = evaluated;
  return best;
}

SplpoSolution solve_local_search(const SplpoInstance& instance,
                                 std::vector<std::uint32_t> seed,
                                 std::size_t max_open) {
  SplpoSolution current =
      seed.empty() ? solve_greedy(instance, max_open)
                   : evaluate_open_set(instance, std::move(seed));
  std::size_t evaluated = current.configurations_evaluated;
  bool improved = true;
  while (improved) {
    improved = false;
    SplpoSolution best_move = current;

    std::vector<char> is_open(instance.site_count, 0);
    for (const std::uint32_t s : current.open_sites) is_open[s] = 1;

    auto consider = [&](std::vector<std::uint32_t> open) {
      SplpoSolution sol = evaluate_open_set(instance, std::move(open));
      ++evaluated;
      if (sol.better_than(best_move)) {
        best_move = std::move(sol);
        improved = true;
      }
    };

    // Add moves.
    if (current.open_sites.size() <
        std::min<std::size_t>(max_open, instance.site_count)) {
      for (std::uint32_t s = 0; s < instance.site_count; ++s) {
        if (is_open[s]) continue;
        auto open = current.open_sites;
        open.push_back(s);
        consider(std::move(open));
      }
    }
    // Drop moves.
    if (current.open_sites.size() > 1) {
      for (const std::uint32_t s : current.open_sites) {
        std::vector<std::uint32_t> open;
        for (const std::uint32_t o : current.open_sites) {
          if (o != s) open.push_back(o);
        }
        consider(std::move(open));
      }
    }
    // Swap moves.
    for (const std::uint32_t out : current.open_sites) {
      for (std::uint32_t in = 0; in < instance.site_count; ++in) {
        if (is_open[in]) continue;
        std::vector<std::uint32_t> open;
        for (const std::uint32_t o : current.open_sites) {
          if (o != out) open.push_back(o);
        }
        open.push_back(in);
        consider(std::move(open));
      }
    }
    current = best_move;
  }
  current.configurations_evaluated = evaluated;
  return current;
}

SplpoInstance dominating_set_gadget(
    const std::vector<std::vector<std::uint32_t>>& adjacency) {
  const std::size_t v = adjacency.size();
  // Sites: one per vertex plus s* (index v).  Clients: one per vertex plus
  // c* (index v).
  SplpoInstance inst = SplpoInstance::make(v + 1, v + 1);
  const std::uint32_t star = static_cast<std::uint32_t>(v);

  for (std::uint32_t u = 0; u < v; ++u) {
    // Client u: own site at distance 0, neighbors at 0, then s* at +inf,
    // then the rest (never reached before s*, so cost immaterial but set
    // to +inf to be conservative).
    inst.set_cost(u, u, 0.0);
    inst.preference[u].push_back(u);
    for (const std::uint32_t w : adjacency[u]) {
      inst.set_cost(u, w, 0.0);
      inst.preference[u].push_back(w);
    }
    inst.preference[u].push_back(star);  // cost +inf (default)
    for (std::uint32_t w = 0; w < v; ++w) {
      if (w == u) continue;
      if (std::find(adjacency[u].begin(), adjacency[u].end(), w) !=
          adjacency[u].end()) {
        continue;
      }
      inst.preference[u].push_back(w);  // +inf, behind s*
    }
  }
  // Client c* prefers s* (cost 0) and nothing else serves it.
  inst.set_cost(star, star, 0.0);
  inst.preference[star].push_back(star);
  return inst;
}

bool has_dominating_set(
    const std::vector<std::vector<std::uint32_t>>& adjacency, std::size_t k) {
  const std::size_t v = adjacency.size();
  if (v == 0) return true;
  if (k >= v) return true;
  bool found = false;
  for_each_subset_of_size(v, k, [&](std::uint64_t mask) {
    std::vector<char> dominated(v, 0);
    for (std::uint32_t u = 0; u < v; ++u) {
      if (!(mask >> u & 1)) continue;
      dominated[u] = 1;
      for (const std::uint32_t w : adjacency[u]) dominated[w] = 1;
    }
    if (std::all_of(dominated.begin(), dominated.end(),
                    [](char c) { return c != 0; })) {
      found = true;
      return false;  // stop enumeration
    }
    return true;
  });
  return found;
}

}  // namespace anyopt::core
