#pragma once
// Measurement planning (§4.5 "Analysis").
//
// Computes how many BGP experiments a deployment needs and how long they
// take given experiment spacing and the number of test prefixes that can
// run in parallel — the arithmetic the paper walks through for a
// 500-site / 20-provider approximation of Akamai DNS.

#include <cstddef>

namespace anyopt::core {

/// \brief Deployment shape and testbed constraints to plan for.
struct PlannerInput {
  std::size_t sites = 500;              ///< anycast sites in the deployment
  std::size_t transit_providers = 20;   ///< distinct transit providers
  /// Average number of sites per provider (used only when site-level
  /// pairwise experiments are requested).
  double avg_sites_per_provider = 25.0;
  /// Use intra-provider pairwise experiments (quadratic per provider);
  /// false = the RTT-ranking heuristic, which needs none (§4.3).
  bool site_level_pairwise = false;
  /// Parallel test prefixes (the paper's testbed uses four).
  std::size_t parallel_prefixes = 4;
  /// Hours between BGP experiments (route-damping safety; paper uses 2h).
  double spacing_hours = 2.0;
};

/// \brief The computed measurement budget.
struct MeasurementPlan {
  std::size_t singleton_experiments = 0;    ///< per-site RTT measurements
  std::size_t provider_pairwise = 0;        ///< C(P,2) x 2 (both orders)
  std::size_t site_pairwise = 0;            ///< sum over providers, if any
  std::size_t total_experiments = 0;        ///< all of the above
  double singleton_days = 0;    ///< wall-clock days for the singleton phase
  double pairwise_days = 0;     ///< wall-clock days for the pairwise phases
  double total_days = 0;        ///< wall-clock days for the whole campaign
  /// Exponential count a naive measure-every-configuration approach would
  /// need (2^sites, saturated at SIZE_MAX).
  std::size_t naive_configurations = 0;
};

/// \brief Computes the paper's §4.5 measurement-count arithmetic.
/// \param input deployment shape and testbed constraints.
/// \return experiment counts and wall-clock estimates.
[[nodiscard]] MeasurementPlan plan_measurements(const PlannerInput& input);

}  // namespace anyopt::core
