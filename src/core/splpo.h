#pragma once
// The Simple Plant Location Problem with Preference Orderings (SPLPO) —
// the paper's formalization of anycast configuration optimization
// (Appendix B).
//
// Clients cannot be assigned to facilities: each client independently goes
// to its most-preferred OPEN site (that is BGP).  The operator only chooses
// which sites to open, minimizing total (or mean) client cost, optionally
// under per-site load capacities (Eq. 7).  SPLPO is NP-hard even to
// approximate (Theorem B.1); `dominating_set_gadget` builds the reduction
// instance used to verify that construction.

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "netbase/result.h"

namespace anyopt::core {

/// \brief One SPLPO instance.
struct SplpoInstance {
  std::size_t site_count = 0;    ///< number of facilities (sites)
  std::size_t client_count = 0;  ///< number of clients
  /// Client-major cost matrix [client * site_count + site]; +inf = the
  /// client cannot be served there.
  std::vector<double> cost;
  /// Per client: sites in preference order, most preferred first.  A site
  /// absent from the list is never chosen by that client.
  std::vector<std::vector<std::uint32_t>> preference;
  /// Per client demand (default 1).
  std::vector<double> demand;
  /// Per site capacity (+inf = uncapacitated).
  std::vector<double> capacity;

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// \brief Uncapacitated instance with unit demands.
  /// \param sites number of facilities.
  /// \param clients number of clients.
  /// \return the empty instance (all costs +inf, no preferences).
  static SplpoInstance make(std::size_t sites, std::size_t clients);

  /// \brief One cell of the cost matrix.
  /// \param client the client row.
  /// \param site the facility column.
  /// \return the serving cost; +inf = cannot be served there.
  [[nodiscard]] double cost_of(std::size_t client, std::size_t site) const {
    return cost[client * site_count + site];
  }
  /// \brief Overwrites one cell of the cost matrix.
  /// \param client the client row.
  /// \param site the facility column.
  /// \param value the serving cost (+inf = cannot be served there).
  void set_cost(std::size_t client, std::size_t site, double value) {
    cost[client * site_count + site] = value;
  }

  /// \brief Structural validation (sizes, preference entries in range).
  /// \return ok, or the first inconsistency found.
  [[nodiscard]] Status validate() const;
};

/// \brief Result of evaluating or solving an instance.
struct SplpoSolution {
  std::vector<std::uint32_t> open_sites;      ///< sorted site ids
  std::vector<std::int32_t> assignment;       ///< per client; -1 = unserved
  double total_cost = SplpoInstance::kInf;
  double mean_cost = SplpoInstance::kInf;
  bool feasible = false;                      ///< capacities respected, all served
  /// Constraint-violation measures, letting the heuristics traverse
  /// infeasible intermediate states (greedy-add necessarily starts with a
  /// single overloaded site when capacities bind).
  std::size_t unserved = 0;                   ///< clients with no open site
  double overload = 0;                        ///< sum of capacity excess
  std::size_t configurations_evaluated = 0;   ///< solver work counter

  /// \brief Lexicographic solver ordering: feasible first, then fewer
  ///        unserved, less overload, lower cost.
  /// \param other the solution to compare against.
  /// \return true iff this solution ranks strictly better.
  [[nodiscard]] bool better_than(const SplpoSolution& other) const;
};

/// \brief Evaluates one open set: routes every client to its most
///        preferred open site, checks capacities, sums costs.
/// \param instance the SPLPO instance.
/// \param open the site ids to open.
/// \return the resulting assignment and cost/feasibility measures.
[[nodiscard]] SplpoSolution evaluate_open_set(
    const SplpoInstance& instance, const std::vector<std::uint32_t>& open);

/// \brief Enumeration bounds of the exact solver.
struct ExhaustiveOptions {
  std::size_t min_open = 1;  ///< smallest open-set size enumerated
  /// Largest open-set size enumerated.
  std::size_t max_open = std::numeric_limits<std::size_t>::max();
  std::size_t max_configurations = 0;  ///< 0 = all (time-bound analogue)
};
/// \brief Exact solver: enumerates all open sets with |open| in
///        [min_open, max_open], subject to a configuration budget.
///        Practical up to ~20 sites — which covers the paper's testbed;
///        larger deployments use the heuristics below, exactly as §3.4
///        prescribes.
/// \param instance the SPLPO instance.
/// \param options enumeration bounds.
/// \return the best solution found.
[[nodiscard]] SplpoSolution solve_exhaustive(const SplpoInstance& instance,
                                             const ExhaustiveOptions& options = {});

/// \brief Greedy add heuristic: repeatedly open the site that most reduces
///        total cost; stops at `max_open` or when no improvement remains.
/// \param instance the SPLPO instance.
/// \param max_open largest open-set size allowed.
/// \return the greedy solution.
[[nodiscard]] SplpoSolution solve_greedy(const SplpoInstance& instance,
                                         std::size_t max_open);

/// \brief Local search: starts from `seed` (or greedy if empty) and applies
///        best-improvement add/drop/swap moves until a local optimum.
/// \param instance the SPLPO instance.
/// \param seed the starting open set; empty = greedy's solution.
/// \param max_open largest open-set size allowed.
/// \return the locally optimal solution.
[[nodiscard]] SplpoSolution solve_local_search(
    const SplpoInstance& instance, std::vector<std::uint32_t> seed = {},
    std::size_t max_open = std::numeric_limits<std::size_t>::max());

/// \brief Appendix B.1 gadget: builds the SPLPO instance of the
///        dominating-set reduction.  Site/client layout: vertex v -> site v
///        and client v; the extra site s* is index |V| with its private
///        client c* = |V|.  A zero-cost solution opening K+1 sites exists
///        iff the graph has a dominating set of size K.
/// \param adjacency the undirected graph, by adjacency lists.
/// \return the reduction instance.
[[nodiscard]] SplpoInstance dominating_set_gadget(
    const std::vector<std::vector<std::uint32_t>>& adjacency);

/// \brief Brute-force dominating-set decision (for cross-checking the
///        gadget on small graphs).
/// \param adjacency the undirected graph, by adjacency lists.
/// \param k the dominating-set size to test.
/// \return true iff a dominating set of size ≤ k exists.
[[nodiscard]] bool has_dominating_set(
    const std::vector<std::vector<std::uint32_t>>& adjacency, std::size_t k);

}  // namespace anyopt::core
