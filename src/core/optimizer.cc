#include "core/optimizer.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "netbase/telemetry.h"

namespace anyopt::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

Optimizer::Optimizer(const Predictor& predictor, OptimizerOptions options)
    : predictor_(predictor), options_(options) {
  const auto& deployment = predictor_.deployment();
  const auto& discovery = predictor_.discovery();
  const std::size_t sites = deployment.site_count();
  const std::size_t providers = deployment.provider_count();
  const std::size_t targets = discovery.provider_prefs.target_count;
  if (sites > 31) {
    throw std::invalid_argument(
        "Optimizer enumerates site bitmasks; deployments beyond 31 sites "
        "should use the SPLPO heuristics");
  }

  provider_of_site_.resize(sites);
  provider_site_mask_.assign(providers, 0);
  for (std::size_t s = 0; s < sites; ++s) {
    const std::size_t p =
        deployment.site(SiteId{static_cast<SiteId::underlying_type>(s)})
            .provider.value();
    provider_of_site_[s] = p;
    provider_site_mask_[p] |= std::uint32_t{1} << s;
  }

  // Per-target site-level preference rankings within each provider.
  site_ranking_.assign(targets, {});
  for (std::size_t t = 0; t < targets; ++t) {
    site_ranking_[t].resize(providers);
    for (std::size_t p = 0; p < providers; ++p) {
      const auto& provider_sites = discovery.provider_sites[p];
      auto& ranking = site_ranking_[t][p];
      if (provider_sites.size() == 1) {
        ranking.push_back(
            static_cast<std::uint8_t>(provider_sites[0].value()));
        continue;
      }
      if (predictor_.mode() == SitePrefMode::kRttRanking) {
        std::vector<std::pair<double, std::uint8_t>> by_rtt;
        for (const SiteId s : provider_sites) {
          const double r = predictor_.rtts().rtt(
              s, TargetId{static_cast<TargetId::underlying_type>(t)});
          if (r >= 0) {
            by_rtt.push_back({r, static_cast<std::uint8_t>(s.value())});
          }
        }
        std::sort(by_rtt.begin(), by_rtt.end());
        for (const auto& [r, s] : by_rtt) ranking.push_back(s);
        continue;
      }
      // Experimental mode: full total order over the provider's sites;
      // empty ranking = inconsistent (target excluded if this provider
      // wins).
      std::vector<std::size_t> all_pos(provider_sites.size());
      for (std::size_t i = 0; i < all_pos.size(); ++i) all_pos[i] = i;
      const std::vector<std::size_t> zero_rank(provider_sites.size(), 0);
      const auto order = target_total_order(discovery.site_prefs[p], t,
                                            all_pos, zero_rank);
      if (order.has_value()) {
        for (const std::size_t local : *order) {
          ranking.push_back(
              static_cast<std::uint8_t>(provider_sites[local].value()));
        }
      }
    }
  }
  subset_cache_.resize(std::size_t{1} << providers);
}

Optimizer::ProviderSubsetCache Optimizer::build_cache(
    std::size_t provider_mask) const {
  ProviderSubsetCache cache;

  const auto& table = predictor_.discovery().provider_prefs;
  const std::size_t targets = table.target_count;
  std::vector<std::size_t> providers;
  for (std::size_t p = 0; provider_mask >> p; ++p) {
    if (provider_mask >> p & 1) providers.push_back(p);
  }
  const std::size_t n = providers.size();

  // Candidate announcement orders: identity, reverse, rotations, then
  // seeded random shuffles (§4.5 step 3 wants the order maximizing the
  // consistent fraction; sampling orders is the practical variant).
  std::vector<std::vector<std::size_t>> candidates;
  std::vector<std::size_t> perm = providers;
  candidates.push_back(perm);
  std::reverse(perm.begin(), perm.end());
  if (n > 1) candidates.push_back(perm);
  for (std::size_t r = 1; r < n; ++r) {
    perm = providers;
    std::rotate(perm.begin(), perm.begin() + r, perm.end());
    candidates.push_back(perm);
  }
  Rng rng{options_.seed ^ (0x9e37u * provider_mask)};
  while (candidates.size() < options_.order_candidates && n > 2) {
    perm = providers;
    rng.shuffle(perm);
    candidates.push_back(perm);
  }

  // Evaluate candidates: count targets whose tournament is transitive.
  std::vector<std::size_t> arrival(predictor_.deployment().provider_count(),
                                   0);
  std::vector<std::size_t> best_perm_arrival;
  std::size_t best_count = 0;
  bool first = true;
  std::vector<std::size_t> out_degree(n);
  for (const auto& candidate : candidates) {
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      arrival[candidate[i]] = i;
    }
    std::size_t count = 0;
    for (std::size_t t = 0; t < targets; ++t) {
      std::fill(out_degree.begin(), out_degree.end(), 0);
      bool usable = true;
      for (std::size_t a = 0; a < n && usable; ++a) {
        for (std::size_t b = a + 1; b < n && usable; ++b) {
          switch (table.get(providers[a], providers[b], t)) {
            case PrefKind::kStrictFirst: ++out_degree[a]; break;
            case PrefKind::kStrictSecond: ++out_degree[b]; break;
            case PrefKind::kOrderDependent:
              ++out_degree[arrival[providers[a]] < arrival[providers[b]] ? a
                                                                         : b];
              break;
            default: usable = false; break;
          }
        }
      }
      if (!usable) continue;
      std::uint32_t seen = 0;
      bool distinct = true;
      for (const std::size_t d : out_degree) {
        if (seen >> d & 1) {
          distinct = false;
          break;
        }
        seen |= std::uint32_t{1} << d;
      }
      if (distinct) ++count;
    }
    if (first || count > best_count) {
      first = false;
      best_count = count;
      best_perm_arrival.assign(arrival.begin(), arrival.end());
    }
  }

  cache.providers = providers;
  cache.arrival_rank = best_perm_arrival;
  cache.fraction_ordered =
      targets ? static_cast<double>(best_count) / static_cast<double>(targets)
              : 0;

  // Fill the per-target winner-first provider ranking under the chosen
  // order.
  cache.ranking.assign(targets, {});
  for (std::size_t t = 0; t < targets; ++t) {
    std::fill(out_degree.begin(), out_degree.end(), 0);
    bool usable = true;
    for (std::size_t a = 0; a < n && usable; ++a) {
      for (std::size_t b = a + 1; b < n && usable; ++b) {
        switch (table.get(providers[a], providers[b], t)) {
          case PrefKind::kStrictFirst: ++out_degree[a]; break;
          case PrefKind::kStrictSecond: ++out_degree[b]; break;
          case PrefKind::kOrderDependent:
            ++out_degree[cache.arrival_rank[providers[a]] <
                                 cache.arrival_rank[providers[b]]
                             ? a
                             : b];
            break;
          default: usable = false; break;
        }
      }
    }
    if (!usable) continue;
    std::uint32_t seen = 0;
    bool distinct = true;
    for (const std::size_t d : out_degree) {
      if (d >= n || (seen >> d & 1)) {
        distinct = false;
        break;
      }
      seen |= std::uint32_t{1} << d;
    }
    if (!distinct) continue;
    auto& ranking = cache.ranking[t];
    ranking.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      ranking[n - 1 - out_degree[i]] = static_cast<std::uint8_t>(providers[i]);
    }
  }
  cache.ready = true;
  return cache;
}

void Optimizer::ensure_cache(std::size_t provider_mask) const {
  ProviderSubsetCache& cache = subset_cache_[provider_mask];
  if (cache.ready) return;
  cache = build_cache(provider_mask);
}

Optimizer::MaskScore Optimizer::score_mask(
    std::uint32_t site_mask, const ProviderSubsetCache& cache,
    const std::vector<std::uint32_t>& sample) const {
  const auto& rtts = predictor_.rtts();
  double predictable_sum = 0;
  double predictable_weight = 0;
  double imputed_sum = 0;
  double imputed_weight = 0;
  std::size_t predictable = 0;
  const bool weighted = !options_.target_weight.empty();
  const bool capacitated = !options_.site_capacity.empty();
  std::array<double, 32> load{};

  // Mean unicast RTT over enabled sites, the imputation for targets
  // without a usable total order (they still receive traffic when the
  // configuration is deployed).
  const auto impute = [&](std::uint32_t t) {
    double sum = 0;
    std::size_t n = 0;
    for (std::uint32_t m = site_mask; m != 0; m &= m - 1) {
      const double r =
          rtts.rtt(SiteId{static_cast<SiteId::underlying_type>(
                       __builtin_ctz(m))},
                   TargetId{t});
      if (r >= 0) {
        sum += r;
        ++n;
      }
    }
    return n ? sum / static_cast<double>(n) : -1.0;
  };

  for (const std::uint32_t t : sample) {
    const double w = weighted ? options_.target_weight[t] : 1.0;
    const auto& ranking = cache.ranking[t];
    SiteId site;
    if (!ranking.empty()) {
      const std::size_t p = ranking.front();
      // First enabled site in this target's site-level preference order.
      for (const std::uint8_t s : site_ranking_[t][p]) {
        if (site_mask >> s & 1) {
          site = SiteId{s};
          break;
        }
      }
    }
    if (site.valid()) {
      ++predictable;
      if (capacitated) load[site.value()] += w;
      const double r = rtts.rtt(site, TargetId{t});
      if (r >= 0) {
        predictable_sum += w * r;
        predictable_weight += w;
        imputed_sum += w * r;
        imputed_weight += w;
      }
    } else {
      const double r = impute(t);
      if (r >= 0) {
        imputed_sum += w * r;
        imputed_weight += w;
      }
    }
  }
  MaskScore score;
  score.fraction_ordered = sample.empty()
                               ? 0
                               : static_cast<double>(predictable) /
                                     static_cast<double>(sample.size());
  if (capacitated) {
    // Appendix-B Eq. 7: discard configurations whose predicted catchment
    // overloads any enabled site.  Strictly greater, never a ratio: load
    // exactly at capacity is feasible, and capacity 0 with summed weight 0
    // is feasible too — the agility layer's SLO assessor mirrors these
    // exact semantics (src/agility/workload.h).
    for (std::size_t s = 0; s < options_.site_capacity.size() && s < 32;
         ++s) {
      if ((site_mask >> s & 1) && load[s] > options_.site_capacity[s]) {
        return score;  // both means stay +inf => never selected
      }
    }
  }
  if (predictable_weight > 0) {
    score.predictable_mean = predictable_sum / predictable_weight;
  }
  if (imputed_weight > 0) {
    score.imputed_mean = imputed_sum / imputed_weight;
  }
  return score;
}

SearchOutcome Optimizer::search() const {
  const auto t0 = Clock::now();
  const std::size_t sites = predictor_.deployment().site_count();
  const std::size_t targets =
      predictor_.discovery().provider_prefs.target_count;

  std::vector<std::uint32_t> sample;
  if (options_.target_sample > 0 && options_.target_sample < targets) {
    Rng rng{options_.seed ^ 0xA53EDULL};
    sample.resize(targets);
    for (std::uint32_t t = 0; t < targets; ++t) sample[t] = t;
    rng.shuffle(sample);
    sample.resize(options_.target_sample);
  } else {
    sample.resize(targets);
    for (std::uint32_t t = 0; t < targets; ++t) sample[t] = t;
  }

  SearchOutcome outcome;
  outcome.best_per_size.resize(sites + 1);
  outcome.exhausted = true;

  const std::uint32_t limit = std::uint32_t{1} << sites;
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    const auto size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size < options_.min_sites || size > options_.max_sites) continue;
    if ((mask & 0xFFF) == 0 &&
        seconds_since(t0) > options_.time_budget_s) {
      outcome.exhausted = false;
      break;
    }
    std::size_t provider_mask = 0;
    for (std::uint32_t m = mask; m != 0; m &= m - 1) {
      provider_mask |= std::size_t{1}
                       << provider_of_site_[__builtin_ctz(m)];
    }
    ensure_cache(provider_mask);
    const ProviderSubsetCache& cache = subset_cache_[provider_mask];
    const MaskScore score = score_mask(mask, cache, sample);
    ++outcome.configurations_evaluated;

    auto& slot = outcome.best_per_size[size];
    if (score.imputed_mean < slot.predicted_mean_rtt) {
      slot.predicted_mean_rtt = score.imputed_mean;
      slot.predictable_mean_rtt = score.predictable_mean;
      slot.fraction_ordered = score.fraction_ordered;
      // Materialize the announcement order: providers in chosen arrival
      // order, each provider's enabled sites in site-id order.
      std::vector<std::pair<std::size_t, std::size_t>> by_arrival;
      for (const std::size_t p : cache.providers) {
        by_arrival.push_back({cache.arrival_rank[p], p});
      }
      std::sort(by_arrival.begin(), by_arrival.end());
      anycast::AnycastConfig cfg;
      for (const auto& [rank, p] : by_arrival) {
        for (std::size_t s = 0; s < sites; ++s) {
          if ((mask >> s & 1) && provider_of_site_[s] == p) {
            cfg.announce_order.push_back(
                SiteId{static_cast<SiteId::underlying_type>(s)});
          }
        }
      }
      slot.config = std::move(cfg);
    }
  }

  // Re-score the per-size winners on the full target set (if sampled) and
  // pick the global best.
  std::vector<std::uint32_t> full(targets);
  for (std::uint32_t t = 0; t < targets; ++t) full[t] = t;
  for (auto& slot : outcome.best_per_size) {
    if (slot.config.announce_order.empty()) continue;
    if (sample.size() != full.size()) {
      const EvaluatedConfig rescored = evaluate(slot.config);
      slot.predicted_mean_rtt = rescored.predicted_mean_rtt;
      slot.predictable_mean_rtt = rescored.predictable_mean_rtt;
      slot.fraction_ordered = rescored.fraction_ordered;
    }
    if (slot.predicted_mean_rtt < outcome.best.predicted_mean_rtt) {
      outcome.best = slot;
    }
  }
  if (telemetry::enabled()) {
    auto& reg = telemetry::Registry::global();
    reg.counter("optimizer.searches").add(1);
    reg.counter("optimizer.configs_evaluated")
        .add(outcome.configurations_evaluated);
  }
  return outcome;
}

EvaluatedConfig Optimizer::evaluate(
    const anycast::AnycastConfig& config) const {
  const std::size_t targets =
      predictor_.discovery().provider_prefs.target_count;
  // Provider arrival ranks implied by the config's own announce order.
  std::size_t provider_mask = 0;
  for (const SiteId s : config.announce_order) {
    provider_mask |= std::size_t{1} << provider_of_site_[s.value()];
  }
  // Note: evaluate() honours the *cached* (optimizer-chosen) order for the
  // provider subset, matching search(); use Predictor::predict for a
  // config-order-faithful prediction.
  ensure_cache(provider_mask);
  std::uint32_t site_mask = 0;
  for (const SiteId s : config.announce_order) {
    site_mask |= std::uint32_t{1} << s.value();
  }
  std::vector<std::uint32_t> full(targets);
  for (std::uint32_t t = 0; t < targets; ++t) full[t] = t;
  EvaluatedConfig out;
  out.config = config;
  const MaskScore score =
      score_mask(site_mask, subset_cache_[provider_mask], full);
  out.predicted_mean_rtt = score.imputed_mean;
  out.predictable_mean_rtt = score.predictable_mean;
  out.fraction_ordered = score.fraction_ordered;
  return out;
}

EvaluatedConfig Optimizer::evaluate_uncached(
    const anycast::AnycastConfig& config) const {
  const std::size_t targets =
      predictor_.discovery().provider_prefs.target_count;
  std::size_t provider_mask = 0;
  for (const SiteId s : config.announce_order) {
    provider_mask |= std::size_t{1} << provider_of_site_[s.value()];
  }
  // Pure query path: the subset cache is built into a local and discarded,
  // so this method never mutates `subset_cache_` — concurrent callers on
  // one const Optimizer are safe (the serve layer's contract).  Scores are
  // bit-identical to `evaluate` (same build, same scoring).
  const ProviderSubsetCache cache = build_cache(provider_mask);
  std::uint32_t site_mask = 0;
  for (const SiteId s : config.announce_order) {
    site_mask |= std::uint32_t{1} << s.value();
  }
  std::vector<std::uint32_t> full(targets);
  for (std::uint32_t t = 0; t < targets; ++t) full[t] = t;
  EvaluatedConfig out;
  out.config = config;
  const MaskScore score = score_mask(site_mask, cache, full);
  out.predicted_mean_rtt = score.imputed_mean;
  out.predictable_mean_rtt = score.predictable_mean;
  out.fraction_ordered = score.fraction_ordered;
  return out;
}

anycast::AnycastConfig Optimizer::greedy_unicast(const RttMatrix& rtts,
                                                 std::size_t k) {
  anycast::AnycastConfig cfg;
  const auto ranked = rtts.sites_by_mean();
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    cfg.announce_order.push_back(ranked[i]);
  }
  return cfg;
}

anycast::AnycastConfig Optimizer::random_config(
    const anycast::Deployment& deployment, std::size_t providers,
    std::size_t sites_per_provider, Rng& rng) {
  std::vector<std::size_t> eligible;
  for (std::size_t p = 0; p < deployment.provider_count(); ++p) {
    if (deployment
            .sites_of_provider(
                ProviderId{static_cast<ProviderId::underlying_type>(p)})
            .size() >= sites_per_provider) {
      eligible.push_back(p);
    }
  }
  rng.shuffle(eligible);
  eligible.resize(std::min(providers, eligible.size()));
  anycast::AnycastConfig cfg;
  for (const std::size_t p : eligible) {
    auto sites = deployment.sites_of_provider(
        ProviderId{static_cast<ProviderId::underlying_type>(p)});
    rng.shuffle(sites);
    for (std::size_t i = 0; i < sites_per_provider && i < sites.size(); ++i) {
      cfg.announce_order.push_back(sites[i]);
    }
  }
  rng.shuffle(cfg.announce_order);
  return cfg;
}

}  // namespace anyopt::core
