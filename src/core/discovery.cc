#include "core/discovery.h"

#include <array>

#include "anycast/config.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"

namespace anyopt::core {

namespace {

/// Pre-resolved discovery metrics (one registry lookup per process).  The
/// per-kind tallies are (pair, target) classifications — the campaign-level
/// view of §4.2's order-dependence.
struct DiscoveryMetrics {
  telemetry::Counter* pairs_classified;
  telemetry::Counter* prefs_strict;
  telemetry::Counter* prefs_order_dependent;
  telemetry::Counter* prefs_inconsistent;
  telemetry::Counter* prefs_unknown;
  telemetry::Counter* order_flips;
  telemetry::Counter* requeued;

  static const DiscoveryMetrics& get() {
    static const DiscoveryMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return DiscoveryMetrics{
          &reg.counter("discovery.pairs_classified"),
          &reg.counter("discovery.prefs.strict"),
          &reg.counter("discovery.prefs.order_dependent"),
          &reg.counter("discovery.prefs.inconsistent"),
          &reg.counter("discovery.prefs.unknown"),
          &reg.counter("discovery.order_flips"),
          &reg.counter("discovery.requeued")};
    }();
    return m;
  }
};

}  // namespace

Discovery::Discovery(const measure::Orchestrator& orchestrator,
                     DiscoveryOptions options)
    : orchestrator_(orchestrator),
      options_(std::move(options)),
      runner_(orchestrator_,
              measure::CampaignRunnerOptions{.threads = options_.threads,
                                             .store = options_.store}) {}

SiteId Discovery::representative(ProviderId provider) const {
  if (provider.value() < options_.representatives.size() &&
      options_.representatives[provider.value()].valid()) {
    return options_.representatives[provider.value()];
  }
  const auto sites =
      orchestrator_.world().deployment().sites_of_provider(provider);
  if (sites.empty()) return SiteId{};  // invalid: no site to announce from
  return sites.front();
}

std::uint64_t Discovery::experiment_nonce(SiteId first, SiteId second,
                                          std::uint64_t order_leg) const {
  std::uint64_t n = mix64(options_.nonce_base, first.value());
  n = mix64(n, second.value());
  return mix64(n, order_leg);
}

measure::ExperimentSpec Discovery::make_spec(SiteId first, SiteId second,
                                             double spacing_s,
                                             std::uint64_t order_leg) const {
  measure::ExperimentSpec spec;
  spec.config.announce_order = {first, second};
  spec.config.spacing_s = spacing_s;
  spec.nonce = experiment_nonce(first, second, order_leg);
  return spec;
}

Discovery::PairOutcomes Discovery::census_winners(
    const measure::Census& census, SiteId first, SiteId second) {
  PairOutcomes out;
  out.winner.resize(census.site_of_target.size(), 2);
  for (std::size_t t = 0; t < census.site_of_target.size(); ++t) {
    if (census.site_of_target[t] == first) {
      out.winner[t] = 0;
    } else if (census.site_of_target[t] == second) {
      out.winner[t] = 1;
    }
  }
  return out;
}

PrefKind Discovery::classify(std::uint8_t winner_when_ab,
                             std::uint8_t winner_when_ba) {
  // winner encoding: 0 = item a, 1 = item b, 2 = unreachable.
  if (winner_when_ab == 2 || winner_when_ba == 2) return PrefKind::kUnknown;
  if (winner_when_ab == winner_when_ba) {
    return winner_when_ab == 0 ? PrefKind::kStrictFirst
                               : PrefKind::kStrictSecond;
  }
  // Preference followed the announcement order: first announced won both
  // times => arrival-order tie (the "equivalent preference" of §4.2).
  if (winner_when_ab == 0 && winner_when_ba == 1) {
    return PrefKind::kOrderDependent;
  }
  // Newest-wins or multipath flap: no usable preference.
  return PrefKind::kInconsistent;
}

std::uint64_t Discovery::incremental_nonce(SiteId first, SiteId second,
                                           std::uint64_t order_leg) const {
  // Tagged sibling of `experiment_nonce`: overlay legs draw different
  // jitter streams than the classic runs of the same configs, so their
  // censuses — and store keys — must live in a disjoint nonce family.
  std::uint64_t n = mix64(options_.nonce_base, 0x1C2E57ULL);
  n = mix64(n, first.value());
  n = mix64(n, second.value());
  return mix64(n, order_leg);
}

std::uint64_t Discovery::base_nonce(SiteId first) const {
  return mix64(mix64(mix64(options_.nonce_base, 0x1C2E57ULL), 0x0BA5EULL),
               first.value());
}

std::shared_ptr<const bgp::BaseState> Discovery::base_for(SiteId first) const {
  anycast::AnycastConfig cfg;
  cfg.announce_order = {first};
  cfg.spacing_s = options_.spacing_s;
  const std::uint64_t nonce = base_nonce(first);
  if (options_.incremental_private_bases) {
    // Testing knob: fresh from-scratch convergence, same nonce.  Must be
    // interchangeable with the cached base bit for bit.
    return std::make_shared<bgp::BaseState>(
        orchestrator_.converge_base(cfg, nonce));
  }
  const std::lock_guard<std::mutex> lock(base_mutex_);
  std::shared_ptr<const bgp::BaseState>& slot = base_cache_[nonce];
  if (slot == nullptr) {
    slot = std::make_shared<bgp::BaseState>(
        orchestrator_.converge_base(cfg, nonce));
  }
  return slot;
}

std::vector<measure::Census> Discovery::measure_jobs(
    std::span<const PairJob> jobs, std::size_t* experiments,
    std::size_t ordinal_base) const {
  if (incremental_active()) {
    const auto& deployment = orchestrator_.world().deployment();
    // A pair can anchor its shared base on either side: base = "anchor
    // announced alone", leg "anchor first" = announce-delta fork, leg
    // "anchor second" = re-age resume.  The anchor's flood is paid once
    // in the (shared) base while the trailing side's announce-delta flood
    // is paid per leg, so anchor each pair on the side whose transit
    // provider is better connected — the weaker provider's smaller flood
    // is the one that repeats.  Degree is a pure topology read, so the
    // choice is deterministic and identical at every thread count.
    const auto& graph = orchestrator_.world().internet().graph;
    const auto provider_degree = [&](SiteId site) {
      const bgp::AttachmentIndex a = deployment.transit_attachment(site);
      return graph.node(deployment.attachments()[a].neighbor)
          .neighbors.size();
    };
    std::vector<std::uint8_t> swapped(jobs.size(), 0);
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      swapped[k] =
          provider_degree(jobs[k].second) > provider_degree(jobs[k].first)
              ? std::uint8_t{1}
              : std::uint8_t{0};
    }
    // Converge (or fetch) all bases up front on the calling thread, so
    // worker threads only ever fork read-only overlays — event counts and
    // censuses stay independent of thread count and completion order.
    std::vector<std::shared_ptr<const bgp::BaseState>> bases;
    bases.reserve(jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      bases.push_back(
          base_for(swapped[k] != 0 ? jobs[k].second : jobs[k].first));
    }

    std::vector<measure::OverlayPairSpec> specs(jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      const PairJob& job = jobs[k];
      // The overlay anchor leads the pair's leg 0; a swapped pair runs
      // (second, first) as its leg 0 and maps the censuses back below.
      // Nonces and ordinals follow the CONFIG (the experiment identity),
      // not the mechanism, so a swapped pair's censuses land under the
      // same store keys and fault coordinates as an unswapped one.
      const SiteId lead = swapped[k] != 0 ? job.second : job.first;
      const SiteId trail = swapped[k] != 0 ? job.first : job.second;
      const std::size_t lead_leg = swapped[k] != 0 ? 1 : 0;
      measure::OverlayPairSpec& spec = specs[k];
      spec.base = bases[k].get();
      spec.config0.announce_order = {lead, trail};
      spec.config0.spacing_s = options_.spacing_s;
      spec.config1.announce_order = {trail, lead};
      spec.config1.spacing_s = options_.spacing_s;
      // Leg 0 over the base "lead alone": announce the trailing item one
      // spacing after the base's announcement, exactly where the classic
      // (lead, trail) schedule puts it.
      spec.delta = {bgp::Injection{options_.spacing_s,
                                   deployment.transit_attachment(trail),
                                   false}};
      // Leg 1 re-ages the lead item's session: its routes take fresh
      // arrival seqs, making the pair effectively (trail, lead).
      spec.reage = {deployment.transit_attachment(lead)};
      spec.nonce0 = incremental_nonce(job.first, job.second, lead_leg);
      spec.nonce1 = incremental_nonce(job.first, job.second, 1 - lead_leg);
      spec.ordinal0 = ordinal_base + 2 * k + lead_leg;
      spec.ordinal1 = ordinal_base + 2 * k + (1 - lead_leg);
    }
    // Census layout contract for callers: slot 2k = (first, second),
    // slot 2k+1 = (second, first) — a swapped pair's legs cross over.
    auto slot_of = [&](std::size_t k, std::size_t leg) {
      return swapped[k] != 0 ? 2 * k + 1 - leg : 2 * k + leg;
    };
    std::vector<measure::Census> censuses(jobs.size() * 2);
    std::vector<measure::Census> raw = runner_.run_overlay_pairs(specs);
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      censuses[slot_of(k, 0)] = std::move(raw[2 * k]);
      censuses[slot_of(k, 1)] = std::move(raw[2 * k + 1]);
    }
    if (experiments != nullptr) *experiments += specs.size() * 2;

    // Resilience, pair-at-a-time: a pair simulates as a unit, so a pair
    // with ANY empty leg re-runs whole — but only its empty legs are
    // overwritten, keeping legs that already survived (their nonce never
    // changes, so a kept leg equals what the retry would remeasure).
    for (std::size_t round = 1; round <= options_.retry_rounds; ++round) {
      std::vector<std::size_t> missing;
      for (std::size_t k = 0; k < specs.size(); ++k) {
        if (censuses[2 * k].reachable_count() == 0 ||
            censuses[2 * k + 1].reachable_count() == 0) {
          missing.push_back(k);
        }
      }
      if (missing.empty()) break;
      std::vector<measure::OverlayPairSpec> retry_specs;
      retry_specs.reserve(missing.size());
      for (const std::size_t k : missing) {
        measure::OverlayPairSpec spec = specs[k];
        spec.attempt = static_cast<std::uint32_t>(round);
        retry_specs.push_back(std::move(spec));
      }
      std::vector<measure::Census> retried =
          runner_.run_overlay_pairs(retry_specs);
      for (std::size_t r = 0; r < missing.size(); ++r) {
        const std::size_t k = missing[r];
        for (const std::size_t leg : {std::size_t{0}, std::size_t{1}}) {
          const std::size_t slot = slot_of(k, leg);
          if (censuses[slot].reachable_count() == 0) {
            censuses[slot] = std::move(retried[2 * r + leg]);
          }
        }
      }
      if (experiments != nullptr) *experiments += retry_specs.size() * 2;
      if (telemetry::enabled()) {
        DiscoveryMetrics::get().requeued->add(retry_specs.size() * 2);
      }
    }
    return censuses;
  }

  std::vector<measure::ExperimentSpec> specs;
  specs.reserve(jobs.size() * (options_.account_order ? 2 : 1));
  for (const PairJob& job : jobs) {
    if (options_.account_order) {
      specs.push_back(make_spec(job.first, job.second, options_.spacing_s, 0));
      specs.push_back(make_spec(job.second, job.first, options_.spacing_s, 1));
    } else {
      // Naive mode: one simultaneous announcement; whatever wins is taken
      // as the (supposed) strict preference.
      specs.push_back(make_spec(job.first, job.second, 0.0, 0));
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].ordinal = ordinal_base + i;
  }
  std::vector<measure::Census> censuses = runner_.run(specs);
  if (experiments != nullptr) *experiments += specs.size();

  // Resilience: a discovery experiment always announces via transit, so an
  // empty census can only mean the round was lost (fault injection or a
  // real outage) — re-enqueue those specs with a bumped fault-layer
  // attempt.  The nonce is unchanged, so a retry that survives reproduces
  // the fault-free census bit for bit and the tables converge on the
  // fault-free preference order.
  for (std::size_t round = 1; round <= options_.retry_rounds; ++round) {
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (censuses[i].reachable_count() == 0) missing.push_back(i);
    }
    if (missing.empty()) break;
    std::vector<measure::ExperimentSpec> retry_specs;
    retry_specs.reserve(missing.size());
    for (const std::size_t i : missing) {
      measure::ExperimentSpec spec = specs[i];
      spec.attempt = static_cast<std::uint32_t>(round);
      retry_specs.push_back(std::move(spec));
    }
    std::vector<measure::Census> retried = runner_.run(retry_specs);
    for (std::size_t k = 0; k < missing.size(); ++k) {
      censuses[missing[k]] = std::move(retried[k]);
    }
    if (experiments != nullptr) *experiments += retry_specs.size();
    if (telemetry::enabled()) {
      DiscoveryMetrics::get().requeued->add(retry_specs.size());
    }
  }
  return censuses;
}

std::vector<std::vector<PrefKind>> Discovery::classify_jobs(
    std::span<const PairJob> jobs, std::size_t* experiments,
    std::size_t ordinal_base) const {
  return classify_from_censuses(jobs,
                                measure_jobs(jobs, experiments, ordinal_base));
}

std::vector<std::vector<PrefKind>> Discovery::classify_from_censuses(
    std::span<const PairJob> jobs,
    std::span<const measure::Census> censuses) const {
  const std::size_t legs = options_.account_order ? 2 : 1;
  std::vector<std::vector<PrefKind>> out(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const PairJob& job = jobs[k];
    const PairOutcomes ab =
        census_winners(censuses[k * legs], job.first, job.second);
    std::vector<PrefKind>& kinds = out[k];
    kinds.resize(ab.winner.size(), PrefKind::kUnknown);
    if (options_.account_order) {
      // The second leg's winners are relative to (second, first); flip to
      // the (first, second) orientation before classifying.
      const PairOutcomes ba =
          census_winners(censuses[k * legs + 1], job.second, job.first);
      for (std::size_t t = 0; t < kinds.size(); ++t) {
        const std::uint8_t ba_as_ab =
            ba.winner[t] == 2 ? std::uint8_t{2}
                              : static_cast<std::uint8_t>(1 - ba.winner[t]);
        kinds[t] = classify(ab.winner[t], ba_as_ab);
      }
    } else {
      for (std::size_t t = 0; t < kinds.size(); ++t) {
        kinds[t] = ab.winner[t] == 2  ? PrefKind::kUnknown
                   : ab.winner[t] == 0 ? PrefKind::kStrictFirst
                                       : PrefKind::kStrictSecond;
      }
    }
  }
  if (telemetry::enabled()) {
    // Tally (pair, target) classifications; runs only when telemetry is on
    // and observes the already-final `out`, so results are untouched.
    std::array<std::uint64_t, 5> tally{};
    for (const auto& kinds : out) {
      for (const PrefKind k : kinds) ++tally[static_cast<int>(k)];
    }
    const DiscoveryMetrics& m = DiscoveryMetrics::get();
    m.pairs_classified->add(jobs.size());
    m.prefs_strict->add(tally[static_cast<int>(PrefKind::kStrictFirst)] +
                        tally[static_cast<int>(PrefKind::kStrictSecond)]);
    m.prefs_order_dependent->add(
        tally[static_cast<int>(PrefKind::kOrderDependent)]);
    m.prefs_inconsistent->add(
        tally[static_cast<int>(PrefKind::kInconsistent)]);
    m.prefs_unknown->add(tally[static_cast<int>(PrefKind::kUnknown)]);
  }
  return out;
}

PairwiseTable Discovery::provider_level(std::size_t* experiments) const {
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t providers = deployment.provider_count();
  const std::size_t targets = orchestrator_.world().targets().size();
  PairwiseTable table;
  table.init(providers, targets);

  std::vector<PairJob> jobs;
  std::vector<std::pair<std::size_t, std::size_t>> job_pairs;
  jobs.reserve(pair_count(providers));
  job_pairs.reserve(pair_count(providers));
  for (std::size_t p = 0; p < providers; ++p) {
    for (std::size_t q = p + 1; q < providers; ++q) {
      const SiteId rep_p =
          representative(ProviderId{static_cast<ProviderId::underlying_type>(p)});
      const SiteId rep_q =
          representative(ProviderId{static_cast<ProviderId::underlying_type>(q)});
      // A provider without a representative (no attached sites) cannot be
      // announced; its pairs stay kUnknown.
      if (!rep_p.valid() || !rep_q.valid()) continue;
      jobs.push_back({rep_p, rep_q});
      job_pairs.push_back({p, q});
    }
  }

  std::size_t runs = 0;
  const auto classified = classify_jobs(jobs, &runs, options_.ordinal_base);
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const auto [p, q] = job_pairs[k];
    for (std::size_t t = 0; t < targets; ++t) {
      table.set(p, q, t, classified[k][t]);
    }
  }
  if (experiments != nullptr) *experiments = runs;
  return table;
}

Discovery::ProviderLevelViews Discovery::provider_level_views(
    std::size_t* experiments) const {
  ProviderLevelViews views;
  if (!options_.account_order) {
    // No per-order legs to derive the naive view from: both views ARE the
    // naive table.
    views.ordered = provider_level(experiments);
    views.naive = views.ordered;
    return views;
  }
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t providers = deployment.provider_count();
  const std::size_t targets = orchestrator_.world().targets().size();
  views.ordered.init(providers, targets);
  views.naive.init(providers, targets);

  std::vector<PairJob> jobs;
  std::vector<std::pair<std::size_t, std::size_t>> job_pairs;
  jobs.reserve(pair_count(providers));
  job_pairs.reserve(pair_count(providers));
  for (std::size_t p = 0; p < providers; ++p) {
    for (std::size_t q = p + 1; q < providers; ++q) {
      const SiteId rep_p = representative(
          ProviderId{static_cast<ProviderId::underlying_type>(p)});
      const SiteId rep_q = representative(
          ProviderId{static_cast<ProviderId::underlying_type>(q)});
      if (!rep_p.valid() || !rep_q.valid()) continue;
      jobs.push_back({rep_p, rep_q});
      job_pairs.push_back({p, q});
    }
  }

  std::size_t runs = 0;
  const std::vector<measure::Census> censuses =
      measure_jobs(jobs, &runs, options_.ordinal_base);
  const auto classified = classify_from_censuses(jobs, censuses);
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const auto [p, q] = job_pairs[k];
    const PairJob& job = jobs[k];
    const PairOutcomes ab =
        census_winners(censuses[2 * k], job.first, job.second);
    const PairOutcomes ba =
        census_winners(censuses[2 * k + 1], job.second, job.first);
    for (std::size_t t = 0; t < targets; ++t) {
      views.ordered.set(p, q, t, classified[k][t]);
      // The naive view, derived: a naive campaign announces once and
      // takes the winner as strict.  Targets whose winner flips with
      // announcement order would produce contradicting "strict"
      // conclusions across campaigns — record them as inconsistent, the
      // failure Fig. 4b charges the naive approach with.
      const std::uint8_t w_ab = ab.winner[t];
      const std::uint8_t w_ba_as_ab =
          ba.winner[t] == 2 ? std::uint8_t{2}
                            : static_cast<std::uint8_t>(1 - ba.winner[t]);
      PrefKind naive_kind = PrefKind::kUnknown;
      if (w_ab != 2 && w_ba_as_ab != 2) {
        if (w_ab == w_ba_as_ab) {
          naive_kind = w_ab == 0 ? PrefKind::kStrictFirst
                                 : PrefKind::kStrictSecond;
        } else {
          naive_kind = PrefKind::kInconsistent;
        }
      }
      views.naive.set(p, q, t, naive_kind);
    }
  }
  if (experiments != nullptr) *experiments = runs;
  return views;
}

std::vector<PairwiseTable> Discovery::site_level(
    std::size_t* experiments) const {
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t providers = deployment.provider_count();
  const std::size_t targets = orchestrator_.world().targets().size();
  std::vector<PairwiseTable> tables(providers);

  // One batch across ALL providers: intra-provider pairs are independent
  // experiments, so they parallelize together.
  struct Slot {
    std::size_t provider;
    std::size_t i;
    std::size_t j;
  };
  std::vector<PairJob> jobs;
  std::vector<Slot> slots;
  for (std::size_t p = 0; p < providers; ++p) {
    const auto sites = deployment.sites_of_provider(
        ProviderId{static_cast<ProviderId::underlying_type>(p)});
    tables[p].init(sites.size(), targets);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      for (std::size_t j = i + 1; j < sites.size(); ++j) {
        jobs.push_back({sites[i], sites[j]});
        slots.push_back({p, i, j});
      }
    }
  }

  // Site-level ordinals start after the provider level's so one FaultPlan
  // timeline covers a whole `run()` campaign.
  std::size_t runs = 0;
  const auto classified = classify_jobs(
      jobs, &runs, options_.ordinal_base + provider_level_spec_count());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const Slot& slot = slots[k];
    for (std::size_t t = 0; t < targets; ++t) {
      tables[slot.provider].set(slot.i, slot.j, t, classified[k][t]);
    }
  }
  if (experiments != nullptr) *experiments = runs;
  return tables;
}

std::size_t Discovery::provider_level_spec_count() const {
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t providers = deployment.provider_count();
  const std::size_t legs = options_.account_order ? 2 : 1;
  std::size_t pairs = 0;
  for (std::size_t p = 0; p < providers; ++p) {
    for (std::size_t q = p + 1; q < providers; ++q) {
      const SiteId rep_p = representative(
          ProviderId{static_cast<ProviderId::underlying_type>(p)});
      const SiteId rep_q = representative(
          ProviderId{static_cast<ProviderId::underlying_type>(q)});
      if (rep_p.valid() && rep_q.valid()) ++pairs;
    }
  }
  return pairs * legs;
}

std::vector<PrefKind> Discovery::classify_pair(
    SiteId first, SiteId second, std::size_t* experiments) const {
  const PairJob job{first, second};
  return classify_jobs({&job, 1}, experiments, options_.ordinal_base).front();
}

std::vector<std::vector<PrefKind>> Discovery::classify_pairs(
    std::span<const std::pair<SiteId, SiteId>> pairs,
    std::size_t* experiments) const {
  std::vector<PairJob> jobs;
  jobs.reserve(pairs.size());
  for (const auto& [first, second] : pairs) jobs.push_back({first, second});
  return classify_jobs(jobs, experiments, options_.ordinal_base);
}

PairwiseTable Discovery::flat_site_level(std::size_t* experiments) const {
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t sites = deployment.site_count();
  const std::size_t targets = orchestrator_.world().targets().size();
  PairwiseTable table;
  table.init(sites, targets);

  std::vector<PairJob> jobs;
  jobs.reserve(pair_count(sites));
  for (std::size_t i = 0; i < sites; ++i) {
    for (std::size_t j = i + 1; j < sites; ++j) {
      jobs.push_back({SiteId{static_cast<SiteId::underlying_type>(i)},
                      SiteId{static_cast<SiteId::underlying_type>(j)}});
    }
  }

  std::size_t runs = 0;
  const auto classified = classify_jobs(jobs, &runs, options_.ordinal_base);
  std::size_t k = 0;
  for (std::size_t i = 0; i < sites; ++i) {
    for (std::size_t j = i + 1; j < sites; ++j, ++k) {
      for (std::size_t t = 0; t < targets; ++t) {
        table.set(i, j, t, classified[k][t]);
      }
    }
  }
  if (experiments != nullptr) *experiments = runs;
  return table;
}

DiscoveryResult Discovery::run() const {
  DiscoveryResult result;
  std::size_t provider_runs = 0;
  std::size_t site_runs = 0;
  result.provider_prefs = provider_level(&provider_runs);
  result.site_prefs = site_level(&site_runs);
  const auto& deployment = orchestrator_.world().deployment();
  result.provider_sites.resize(deployment.provider_count());
  for (std::size_t p = 0; p < deployment.provider_count(); ++p) {
    result.provider_sites[p] = deployment.sites_of_provider(
        ProviderId{static_cast<ProviderId::underlying_type>(p)});
  }
  result.experiments = provider_runs + site_runs;
  return result;
}

double Discovery::order_flip_fraction(ProviderId p, ProviderId q) const {
  const SiteId rep_p = representative(p);
  const SiteId rep_q = representative(q);
  if (!rep_p.valid() || !rep_q.valid()) return 0.0;
  const std::vector<measure::ExperimentSpec> specs = {
      make_spec(rep_p, rep_q, options_.spacing_s, 0),
      make_spec(rep_q, rep_p, options_.spacing_s, 1),
  };
  const std::vector<measure::Census> censuses = runner_.run(specs);
  const PairOutcomes ab = census_winners(censuses[0], rep_p, rep_q);
  const PairOutcomes ba = census_winners(censuses[1], rep_q, rep_p);
  std::size_t both = 0;
  std::size_t flipped = 0;
  for (std::size_t t = 0; t < ab.winner.size(); ++t) {
    if (ab.winner[t] == 2 || ba.winner[t] == 2) continue;
    ++both;
    // ba encodes winner relative to (q, p): 0 there means q.
    const std::uint8_t ba_as_ab = static_cast<std::uint8_t>(1 - ba.winner[t]);
    if (ab.winner[t] != ba_as_ab) ++flipped;
  }
  if (telemetry::enabled()) DiscoveryMetrics::get().order_flips->add(flipped);
  return both == 0 ? 0.0
                   : static_cast<double>(flipped) / static_cast<double>(both);
}

}  // namespace anyopt::core
