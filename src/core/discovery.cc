#include "core/discovery.h"

#include <cassert>

#include "anycast/config.h"

namespace anyopt::core {

Discovery::Discovery(const measure::Orchestrator& orchestrator,
                     DiscoveryOptions options)
    : orchestrator_(orchestrator),
      options_(std::move(options)),
      next_nonce_(options_.nonce_base) {}

SiteId Discovery::representative(ProviderId provider) const {
  if (provider.value() < options_.representatives.size() &&
      options_.representatives[provider.value()].valid()) {
    return options_.representatives[provider.value()];
  }
  const auto sites =
      orchestrator_.world().deployment().sites_of_provider(provider);
  assert(!sites.empty());
  return sites.front();
}

Discovery::PairOutcomes Discovery::run_pair(SiteId first, SiteId second,
                                            double spacing_s,
                                            std::uint64_t nonce) const {
  anycast::AnycastConfig cfg;
  cfg.announce_order = {first, second};
  cfg.spacing_s = spacing_s;
  const measure::Census census = orchestrator_.measure(cfg, nonce);
  PairOutcomes out;
  out.winner.resize(census.site_of_target.size(), 2);
  for (std::size_t t = 0; t < census.site_of_target.size(); ++t) {
    if (census.site_of_target[t] == first) {
      out.winner[t] = 0;
    } else if (census.site_of_target[t] == second) {
      out.winner[t] = 1;
    }
  }
  return out;
}

PrefKind Discovery::classify(std::uint8_t winner_when_ab,
                             std::uint8_t winner_when_ba) {
  // winner encoding: 0 = item a, 1 = item b, 2 = unreachable.
  if (winner_when_ab == 2 || winner_when_ba == 2) return PrefKind::kUnknown;
  if (winner_when_ab == winner_when_ba) {
    return winner_when_ab == 0 ? PrefKind::kStrictFirst
                               : PrefKind::kStrictSecond;
  }
  // Preference followed the announcement order: first announced won both
  // times => arrival-order tie (the "equivalent preference" of §4.2).
  if (winner_when_ab == 0 && winner_when_ba == 1) {
    return PrefKind::kOrderDependent;
  }
  // Newest-wins or multipath flap: no usable preference.
  return PrefKind::kInconsistent;
}

PairwiseTable Discovery::provider_level(std::size_t* experiments) const {
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t providers = deployment.provider_count();
  const std::size_t targets = orchestrator_.world().targets().size();
  PairwiseTable table;
  table.init(providers, targets);
  std::size_t runs = 0;

  for (std::size_t p = 0; p < providers; ++p) {
    for (std::size_t q = p + 1; q < providers; ++q) {
      const SiteId rep_p =
          representative(ProviderId{static_cast<ProviderId::underlying_type>(p)});
      const SiteId rep_q =
          representative(ProviderId{static_cast<ProviderId::underlying_type>(q)});
      if (options_.account_order) {
        const PairOutcomes ab =
            run_pair(rep_p, rep_q, options_.spacing_s, next_nonce_++);
        const PairOutcomes ba =
            run_pair(rep_q, rep_p, options_.spacing_s, next_nonce_++);
        runs += 2;
        for (std::size_t t = 0; t < targets; ++t) {
          // ba.winner is relative to (q, p); flip to (p, q) orientation.
          const std::uint8_t ba_as_ab =
              ba.winner[t] == 2 ? std::uint8_t{2}
                                : static_cast<std::uint8_t>(1 - ba.winner[t]);
          table.set(p, q, t, classify(ab.winner[t], ba_as_ab));
        }
      } else {
        // Naive mode: one simultaneous announcement; whatever wins is taken
        // as the (supposed) strict preference.
        const PairOutcomes sim = run_pair(rep_p, rep_q, 0.0, next_nonce_++);
        runs += 1;
        for (std::size_t t = 0; t < targets; ++t) {
          table.set(p, q, t,
                    sim.winner[t] == 2  ? PrefKind::kUnknown
                    : sim.winner[t] == 0 ? PrefKind::kStrictFirst
                                         : PrefKind::kStrictSecond);
        }
      }
    }
  }
  if (experiments != nullptr) *experiments = runs;
  return table;
}

std::vector<PairwiseTable> Discovery::site_level(
    std::size_t* experiments) const {
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t providers = deployment.provider_count();
  const std::size_t targets = orchestrator_.world().targets().size();
  std::vector<PairwiseTable> tables(providers);
  std::size_t runs = 0;

  for (std::size_t p = 0; p < providers; ++p) {
    const auto sites = deployment.sites_of_provider(
        ProviderId{static_cast<ProviderId::underlying_type>(p)});
    tables[p].init(sites.size(), targets);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      for (std::size_t j = i + 1; j < sites.size(); ++j) {
        if (options_.account_order) {
          const PairOutcomes ab = run_pair(sites[i], sites[j],
                                           options_.spacing_s, next_nonce_++);
          const PairOutcomes ba = run_pair(sites[j], sites[i],
                                           options_.spacing_s, next_nonce_++);
          runs += 2;
          for (std::size_t t = 0; t < targets; ++t) {
            const std::uint8_t ba_as_ab =
                ba.winner[t] == 2
                    ? std::uint8_t{2}
                    : static_cast<std::uint8_t>(1 - ba.winner[t]);
            tables[p].set(i, j, t, classify(ab.winner[t], ba_as_ab));
          }
        } else {
          const PairOutcomes sim =
              run_pair(sites[i], sites[j], 0.0, next_nonce_++);
          runs += 1;
          for (std::size_t t = 0; t < targets; ++t) {
            tables[p].set(i, j, t,
                          sim.winner[t] == 2  ? PrefKind::kUnknown
                          : sim.winner[t] == 0 ? PrefKind::kStrictFirst
                                               : PrefKind::kStrictSecond);
          }
        }
      }
    }
  }
  if (experiments != nullptr) *experiments = runs;
  return tables;
}

std::vector<PrefKind> Discovery::classify_pair(
    SiteId first, SiteId second, std::size_t* experiments) const {
  const std::size_t targets = orchestrator_.world().targets().size();
  std::vector<PrefKind> out(targets, PrefKind::kUnknown);
  if (options_.account_order) {
    const PairOutcomes ab =
        run_pair(first, second, options_.spacing_s, next_nonce_++);
    const PairOutcomes ba =
        run_pair(second, first, options_.spacing_s, next_nonce_++);
    if (experiments != nullptr) *experiments += 2;
    for (std::size_t t = 0; t < targets; ++t) {
      const std::uint8_t ba_as_ab =
          ba.winner[t] == 2 ? std::uint8_t{2}
                            : static_cast<std::uint8_t>(1 - ba.winner[t]);
      out[t] = classify(ab.winner[t], ba_as_ab);
    }
  } else {
    const PairOutcomes sim = run_pair(first, second, 0.0, next_nonce_++);
    if (experiments != nullptr) *experiments += 1;
    for (std::size_t t = 0; t < targets; ++t) {
      out[t] = sim.winner[t] == 2  ? PrefKind::kUnknown
               : sim.winner[t] == 0 ? PrefKind::kStrictFirst
                                    : PrefKind::kStrictSecond;
    }
  }
  return out;
}

PairwiseTable Discovery::flat_site_level(std::size_t* experiments) const {
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t sites = deployment.site_count();
  const std::size_t targets = orchestrator_.world().targets().size();
  PairwiseTable table;
  table.init(sites, targets);
  std::size_t runs = 0;
  for (std::size_t i = 0; i < sites; ++i) {
    for (std::size_t j = i + 1; j < sites; ++j) {
      const SiteId si{static_cast<SiteId::underlying_type>(i)};
      const SiteId sj{static_cast<SiteId::underlying_type>(j)};
      if (options_.account_order) {
        const PairOutcomes ab =
            run_pair(si, sj, options_.spacing_s, next_nonce_++);
        const PairOutcomes ba =
            run_pair(sj, si, options_.spacing_s, next_nonce_++);
        runs += 2;
        for (std::size_t t = 0; t < targets; ++t) {
          const std::uint8_t ba_as_ab =
              ba.winner[t] == 2 ? std::uint8_t{2}
                                : static_cast<std::uint8_t>(1 - ba.winner[t]);
          table.set(i, j, t, classify(ab.winner[t], ba_as_ab));
        }
      } else {
        const PairOutcomes sim = run_pair(si, sj, 0.0, next_nonce_++);
        runs += 1;
        for (std::size_t t = 0; t < targets; ++t) {
          table.set(i, j, t,
                    sim.winner[t] == 2  ? PrefKind::kUnknown
                    : sim.winner[t] == 0 ? PrefKind::kStrictFirst
                                         : PrefKind::kStrictSecond);
        }
      }
    }
  }
  if (experiments != nullptr) *experiments = runs;
  return table;
}

DiscoveryResult Discovery::run() const {
  DiscoveryResult result;
  std::size_t provider_runs = 0;
  std::size_t site_runs = 0;
  result.provider_prefs = provider_level(&provider_runs);
  result.site_prefs = site_level(&site_runs);
  const auto& deployment = orchestrator_.world().deployment();
  result.provider_sites.resize(deployment.provider_count());
  for (std::size_t p = 0; p < deployment.provider_count(); ++p) {
    result.provider_sites[p] = deployment.sites_of_provider(
        ProviderId{static_cast<ProviderId::underlying_type>(p)});
  }
  result.experiments = provider_runs + site_runs;
  return result;
}

double Discovery::order_flip_fraction(ProviderId p, ProviderId q) const {
  const SiteId rep_p = representative(p);
  const SiteId rep_q = representative(q);
  const PairOutcomes ab =
      run_pair(rep_p, rep_q, options_.spacing_s, next_nonce_++);
  const PairOutcomes ba =
      run_pair(rep_q, rep_p, options_.spacing_s, next_nonce_++);
  std::size_t both = 0;
  std::size_t flipped = 0;
  for (std::size_t t = 0; t < ab.winner.size(); ++t) {
    if (ab.winner[t] == 2 || ba.winner[t] == 2) continue;
    ++both;
    // ba encodes winner relative to (q, p): 0 there means q.
    const std::uint8_t ba_as_ab = static_cast<std::uint8_t>(1 - ba.winner[t]);
    if (ab.winner[t] != ba_as_ab) ++flipped;
  }
  return both == 0 ? 0.0
                   : static_cast<double>(flipped) / static_cast<double>(both);
}

}  // namespace anyopt::core
