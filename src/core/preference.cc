#include "core/preference.h"

namespace anyopt::core {

PairwiseStats tabulate(const PairwiseTable& table) {
  PairwiseStats stats;
  for (const auto& pair : table.outcome) {
    for (const PrefKind k : pair) {
      switch (k) {
        case PrefKind::kStrictFirst:
        case PrefKind::kStrictSecond:
          ++stats.strict;
          break;
        case PrefKind::kOrderDependent:
          ++stats.order_dependent;
          break;
        case PrefKind::kInconsistent:
          ++stats.inconsistent;
          break;
        case PrefKind::kUnknown:
          ++stats.unknown;
          break;
      }
    }
  }
  return stats;
}

}  // namespace anyopt::core
