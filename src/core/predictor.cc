#include "core/predictor.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "netbase/stats.h"

namespace anyopt::core {

std::size_t Prediction::predicted_count() const {
  std::size_t n = 0;
  for (const SiteId s : site_of_target) {
    if (s.valid()) ++n;
  }
  return n;
}

double Prediction::mean_rtt() const {
  stats::Online acc;
  for (const double r : rtt_ms) {
    if (r >= 0) acc.add(r);
  }
  return acc.mean();
}

double Prediction::accuracy_against(const measure::Census& census) const {
  std::size_t comparable = 0;
  std::size_t correct = 0;
  for (std::size_t t = 0; t < site_of_target.size(); ++t) {
    if (!site_of_target[t].valid()) continue;
    if (!census.site_of_target[t].valid()) continue;
    ++comparable;
    if (site_of_target[t] == census.site_of_target[t]) ++correct;
  }
  return comparable == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(comparable);
}

Predictor::Predictor(const anycast::Deployment& deployment,
                     DiscoveryResult discovery, RttMatrix rtts,
                     SitePrefMode mode)
    : deployment_(deployment),
      discovery_(std::move(discovery)),
      rtts_(std::move(rtts)),
      mode_(mode) {}

Predictor::ConfigView Predictor::view_of(
    const anycast::AnycastConfig& config) const {
  ConfigView view;
  const std::size_t nproviders = deployment_.provider_count();
  view.arrival_rank.assign(nproviders,
                           std::numeric_limits<std::size_t>::max());
  view.enabled_sites.resize(nproviders);
  view.enabled_pos.resize(nproviders);

  for (std::size_t pos = 0; pos < config.announce_order.size(); ++pos) {
    const SiteId site = config.announce_order[pos];
    const std::size_t p = deployment_.site(site).provider.value();
    if (view.enabled_sites[p].empty()) {
      view.providers.push_back(p);
      // A provider's AS-level announcement appears when its *first* site
      // announces; later same-provider sites do not change the AS level.
      view.arrival_rank[p] = pos;
    }
    view.enabled_sites[p].push_back(site);
    // Local position of this site within the provider's site list.
    const auto& all = discovery_.provider_sites[p];
    const auto it = std::find(all.begin(), all.end(), site);
    assert(it != all.end());
    view.enabled_pos[p].push_back(
        static_cast<std::size_t>(it - all.begin()));
  }
  std::sort(view.providers.begin(), view.providers.end());
  return view;
}

SiteId Predictor::best_site_within(std::size_t provider,
                                   const ConfigView& view,
                                   std::size_t target) const {
  const auto& sites = view.enabled_sites[provider];
  if (sites.size() == 1) return sites.front();

  if (mode_ == SitePrefMode::kRttRanking) {
    // §4.3 heuristic: the client prefers the site it has the lowest
    // unicast RTT to (IGP distance tracks RTT inside a transit AS).
    SiteId best;
    double best_rtt = std::numeric_limits<double>::infinity();
    for (const SiteId s : sites) {
      const double r =
          rtts_.rtt(s, TargetId{static_cast<TargetId::underlying_type>(target)});
      if (r >= 0 && r < best_rtt) {
        best_rtt = r;
        best = s;
      }
    }
    return best;  // invalid if nothing measured
  }

  // Experimental site-level preferences: announcement order cannot matter
  // within an AS, so pass equal arrival ranks.
  const PairwiseTable& table = discovery_.site_prefs[provider];
  static thread_local std::vector<std::size_t> zero_rank;
  if (zero_rank.size() < table.item_count) {
    zero_rank.assign(table.item_count, 0);
  }
  const auto ranking = target_total_order(table, target,
                                          view.enabled_pos[provider],
                                          zero_rank);
  if (!ranking.has_value()) return SiteId{};
  return sites[ranking->front()];
}

void Predictor::predict_target(const ConfigView& view, std::size_t target,
                               Prediction& out) const {
  const auto provider_ranking =
      target_total_order(discovery_.provider_prefs, target, view.providers,
                         view.arrival_rank);
  if (!provider_ranking.has_value()) return;
  const std::size_t winner = view.providers[provider_ranking->front()];
  const SiteId site = best_site_within(winner, view, target);
  if (!site.valid()) return;
  out.site_of_target[target] = site;
  out.rtt_ms[target] = rtts_.rtt(
      site, TargetId{static_cast<TargetId::underlying_type>(target)});
}

Prediction Predictor::predict(const anycast::AnycastConfig& config) const {
  const std::size_t targets = discovery_.provider_prefs.target_count;
  Prediction out;
  out.site_of_target.assign(targets, SiteId{});
  out.rtt_ms.assign(targets, -1.0);
  if (config.announce_order.empty()) return out;

  const ConfigView view = view_of(config);
  for (std::size_t t = 0; t < targets; ++t) {
    predict_target(view, t, out);
  }
  return out;
}

Prediction Predictor::predict_subset(
    const anycast::AnycastConfig& config,
    std::span<const TargetId> clients) const {
  const std::size_t targets = discovery_.provider_prefs.target_count;
  Prediction out;
  out.site_of_target.assign(targets, SiteId{});
  out.rtt_ms.assign(targets, -1.0);
  if (config.announce_order.empty()) return out;

  const ConfigView view = view_of(config);
  for (const TargetId client : clients) {
    const std::size_t t = client.value();
    if (t >= targets) continue;
    predict_target(view, t, out);
  }
  return out;
}

std::optional<std::vector<SiteId>> Predictor::total_order(
    TargetId target, const anycast::AnycastConfig& config) const {
  const ConfigView view = view_of(config);
  const std::size_t t = target.value();
  const auto provider_ranking = target_total_order(
      discovery_.provider_prefs, t, view.providers, view.arrival_rank);
  if (!provider_ranking.has_value()) return std::nullopt;

  std::vector<SiteId> order;
  for (const std::size_t local : *provider_ranking) {
    const std::size_t p = view.providers[local];
    const auto& sites = view.enabled_sites[p];
    if (sites.size() == 1) {
      order.push_back(sites.front());
      continue;
    }
    if (mode_ == SitePrefMode::kRttRanking) {
      std::vector<std::pair<double, SiteId>> by_rtt;
      for (const SiteId s : sites) {
        const double r = rtts_.rtt(
            s, TargetId{static_cast<TargetId::underlying_type>(t)});
        if (r < 0) return std::nullopt;
        by_rtt.push_back({r, s});
      }
      std::sort(by_rtt.begin(), by_rtt.end());
      for (const auto& [r, s] : by_rtt) order.push_back(s);
      continue;
    }
    static thread_local std::vector<std::size_t> zero_rank;
    const PairwiseTable& table = discovery_.site_prefs[p];
    if (zero_rank.size() < table.item_count) {
      zero_rank.assign(table.item_count, 0);
    }
    const auto site_ranking =
        target_total_order(table, t, view.enabled_pos[p], zero_rank);
    if (!site_ranking.has_value()) return std::nullopt;
    for (const std::size_t local_site : *site_ranking) {
      order.push_back(sites[local_site]);
    }
  }
  return order;
}

double Predictor::fraction_ordered(
    const anycast::AnycastConfig& config) const {
  const std::size_t targets = discovery_.provider_prefs.target_count;
  if (targets == 0) return 0;
  std::size_t ordered = 0;
  for (std::size_t t = 0; t < targets; ++t) {
    if (total_order(TargetId{static_cast<TargetId::underlying_type>(t)},
                    config)
            .has_value()) {
      ++ordered;
    }
  }
  return static_cast<double>(ordered) / static_cast<double>(targets);
}

double Predictor::fraction_ordered_providers(
    std::span<const std::size_t> providers,
    std::span<const std::size_t> arrival_rank) const {
  return fraction_with_total_order(discovery_.provider_prefs, providers,
                                   arrival_rank);
}

}  // namespace anyopt::core
