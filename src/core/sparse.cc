#include "core/sparse.h"

#include <algorithm>

namespace anyopt::core {
namespace {

/// Per-client strict-preference closure over up to 8 items, stored as a
/// beats-bit matrix (bit i*8+j: i strictly beats j).
struct Closure {
  std::uint64_t beats = 0;

  [[nodiscard]] bool wins(std::size_t i, std::size_t j) const {
    return beats >> (i * 8 + j) & 1;
  }
  void set(std::size_t i, std::size_t j) {
    beats |= std::uint64_t{1} << (i * 8 + j);
  }
  /// Warshall closure (n <= 8, bit tricks unnecessary at this size).
  void close(std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!wins(i, k)) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (wins(k, j)) set(i, j);
        }
      }
    }
  }
};

}  // namespace

std::size_t transitive_complete(PairwiseTable& table) {
  const std::size_t n = table.item_count;
  std::size_t inferred = 0;
  for (std::size_t t = 0; t < table.target_count; ++t) {
    Closure closure;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const PrefKind k = table.get(i, j, t);
        if (k == PrefKind::kStrictFirst) closure.set(i, j);
        if (k == PrefKind::kStrictSecond) closure.set(j, i);
      }
    }
    closure.close(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (table.get(i, j, t) != PrefKind::kUnknown) continue;
        const bool fwd = closure.wins(i, j);
        const bool bwd = closure.wins(j, i);
        if (fwd == bwd) continue;  // undetermined (or contradictory)
        table.set(i, j, t,
                  fwd ? PrefKind::kStrictFirst : PrefKind::kStrictSecond);
        ++inferred;
      }
    }
  }
  return inferred;
}

SparseDiscovery::SparseDiscovery(const measure::Orchestrator& orchestrator,
                                 DiscoveryOptions options)
    : orchestrator_(orchestrator), options_(std::move(options)) {}

SparseResult SparseDiscovery::run(std::size_t max_pairs) const {
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t providers = deployment.provider_count();
  const std::size_t targets = orchestrator_.world().targets().size();
  const Discovery discovery(orchestrator_, options_);

  SparseResult result;
  result.table.init(providers, targets);

  // Per-client strict closures, updated after every measurement.
  std::vector<Closure> closures(targets);
  std::vector<char> measured(pair_count(providers), 0);

  const auto unresolved_count = [&](std::size_t i, std::size_t j) {
    std::size_t count = 0;
    for (std::size_t t = 0; t < targets; ++t) {
      if (result.table.get(i, j, t) != PrefKind::kUnknown) continue;
      if (closures[t].wins(i, j) != closures[t].wins(j, i)) continue;
      ++count;
    }
    return count;
  };

  for (std::size_t round = 0; round < max_pairs; ++round) {
    // Pick the unmeasured pair that is unresolved for the most clients.
    std::size_t best_i = 0;
    std::size_t best_j = 0;
    std::size_t best_value = 0;
    bool found = false;
    for (std::size_t i = 0; i < providers; ++i) {
      for (std::size_t j = i + 1; j < providers; ++j) {
        if (measured[pair_index(i, j, providers)]) continue;
        const std::size_t value = unresolved_count(i, j);
        if (!found || value > best_value) {
          found = true;
          best_value = value;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (!found || best_value == 0) break;  // everything else is inferable

    const SiteId rep_i = discovery.representative(
        ProviderId{static_cast<ProviderId::underlying_type>(best_i)});
    const SiteId rep_j = discovery.representative(
        ProviderId{static_cast<ProviderId::underlying_type>(best_j)});
    const std::vector<PrefKind> outcome =
        discovery.classify_pair(rep_i, rep_j, &result.experiments);
    measured[pair_index(best_i, best_j, providers)] = 1;
    ++result.pairs_measured;
    result.schedule.push_back({best_i, best_j});

    for (std::size_t t = 0; t < targets; ++t) {
      result.table.set(best_i, best_j, t, outcome[t]);
      if (outcome[t] == PrefKind::kStrictFirst) {
        closures[t].set(best_i, best_j);
        closures[t].close(providers);
      } else if (outcome[t] == PrefKind::kStrictSecond) {
        closures[t].set(best_j, best_i);
        closures[t].close(providers);
      }
    }
  }

  result.inferred_entries = transitive_complete(result.table);

  std::size_t covered = 0;
  std::size_t resolved = 0;
  for (std::size_t t = 0; t < targets; ++t) {
    bool complete = true;
    for (std::size_t i = 0; i < providers; ++i) {
      for (std::size_t j = i + 1; j < providers; ++j) {
        if (result.table.get(i, j, t) != PrefKind::kUnknown) {
          ++resolved;
        } else {
          complete = false;
        }
      }
    }
    covered += complete;
  }
  const std::size_t entries = targets * pair_count(providers);
  result.coverage =
      targets ? static_cast<double>(covered) / static_cast<double>(targets)
              : 0;
  result.resolved_fraction =
      entries ? static_cast<double>(resolved) / static_cast<double>(entries)
              : 0;
  return result;
}

}  // namespace anyopt::core
