#include "core/sparse.h"

#include <algorithm>
#include <vector>

#include "netbase/telemetry.h"

namespace anyopt::core {
namespace {

/// Per-client strict-preference closure, stored as a beats-bit matrix with
/// one bitset row per item (row i, bit j: i strictly beats j).  Sized from
/// `n` at construction — the paper's deployment has 6 transit providers,
/// but nothing caps a deployment at 8, so the matrix must not either (the
/// previous single-word packing shifted by i*8+j, UB from 8 items up).
class Closure {
 public:
  explicit Closure(std::size_t n)
      : words_per_row_((n + 63) / 64), bits_(n * words_per_row_, 0) {}

  [[nodiscard]] bool wins(std::size_t i, std::size_t j) const {
    return bits_[i * words_per_row_ + j / 64] >> (j % 64) & 1;
  }
  void set(std::size_t i, std::size_t j) {
    bits_[i * words_per_row_ + j / 64] |= std::uint64_t{1} << (j % 64);
  }
  /// Warshall closure, word-parallel: if i beats k, i inherits k's whole
  /// beats-row in one OR per word.
  void close(std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!wins(i, k)) continue;
        const std::size_t row_i = i * words_per_row_;
        const std::size_t row_k = k * words_per_row_;
        for (std::size_t w = 0; w < words_per_row_; ++w) {
          bits_[row_i + w] |= bits_[row_k + w];
        }
      }
    }
  }

 private:
  std::size_t words_per_row_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

std::size_t transitive_complete(PairwiseTable& table) {
  const std::size_t n = table.item_count;
  std::size_t inferred = 0;
  for (std::size_t t = 0; t < table.target_count; ++t) {
    Closure closure(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const PrefKind k = table.get(i, j, t);
        if (k == PrefKind::kStrictFirst) closure.set(i, j);
        if (k == PrefKind::kStrictSecond) closure.set(j, i);
      }
    }
    closure.close(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (table.get(i, j, t) != PrefKind::kUnknown) continue;
        const bool fwd = closure.wins(i, j);
        const bool bwd = closure.wins(j, i);
        if (fwd == bwd) continue;  // undetermined (or contradictory)
        table.set(i, j, t,
                  fwd ? PrefKind::kStrictFirst : PrefKind::kStrictSecond);
        ++inferred;
      }
    }
  }
  return inferred;
}

SparseDiscovery::SparseDiscovery(const measure::Orchestrator& orchestrator,
                                 DiscoveryOptions options)
    : orchestrator_(orchestrator), options_(std::move(options)) {}

SparseResult SparseDiscovery::run(std::size_t max_pairs,
                                  std::size_t batch) const {
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t providers = deployment.provider_count();
  const std::size_t targets = orchestrator_.world().targets().size();
  // ONE Discovery spans every adaptive round: with
  // `options_.incremental` set, its shared-base cache persists across the
  // per-round `classify_pairs` batches, so a base converges at most once
  // per first-announced site no matter how many rounds revisit it.
  const Discovery discovery(orchestrator_, options_);
  if (batch == 0) batch = 1;

  SparseResult result;
  result.table.init(providers, targets);

  // Per-client strict closures, updated after every measurement.
  std::vector<Closure> closures(targets, Closure(providers));
  std::vector<char> measured(pair_count(providers), 0);

  const auto unresolved_count = [&](std::size_t i, std::size_t j) {
    std::size_t count = 0;
    for (std::size_t t = 0; t < targets; ++t) {
      if (result.table.get(i, j, t) != PrefKind::kUnknown) continue;
      if (closures[t].wins(i, j) != closures[t].wins(j, i)) continue;
      ++count;
    }
    return count;
  };

  while (result.pairs_measured < max_pairs) {
    if (telemetry::enabled()) {
      telemetry::Registry::global().counter("sparse.rounds").add(1);
    }
    // Select up to `batch` unmeasured pairs for this round, repeatedly
    // taking the one unresolved for the most clients.  The selection is
    // adaptive BETWEEN rounds; pairs within a round are measured
    // concurrently as one campaign batch.
    struct Candidate {
      std::size_t i;
      std::size_t j;
      std::size_t value;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < providers; ++i) {
      for (std::size_t j = i + 1; j < providers; ++j) {
        if (measured[pair_index(i, j, providers)]) continue;
        const std::size_t value = unresolved_count(i, j);
        if (value > 0) candidates.push_back({i, j, value});
      }
    }
    if (candidates.empty()) break;  // everything else is inferable
    // Highest value first; ties by pair order, matching the sequential
    // scan's first-wins choice.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.value > b.value;
                     });
    const std::size_t take = std::min(
        {candidates.size(), batch, max_pairs - result.pairs_measured});
    candidates.resize(take);

    std::vector<std::pair<SiteId, SiteId>> reps;
    std::vector<Candidate> chosen;
    for (const Candidate& c : candidates) {
      const SiteId rep_i = discovery.representative(
          ProviderId{static_cast<ProviderId::underlying_type>(c.i)});
      const SiteId rep_j = discovery.representative(
          ProviderId{static_cast<ProviderId::underlying_type>(c.j)});
      measured[pair_index(c.i, c.j, providers)] = 1;
      // A provider without sites cannot be announced; its pairs stay
      // kUnknown but are marked measured so they are never retried.
      if (!rep_i.valid() || !rep_j.valid()) continue;
      reps.push_back({rep_i, rep_j});
      chosen.push_back(c);
    }
    if (chosen.empty()) continue;

    const std::vector<std::vector<PrefKind>> outcomes =
        discovery.classify_pairs(reps, &result.experiments);

    for (std::size_t k = 0; k < chosen.size(); ++k) {
      const auto [best_i, best_j, value] = chosen[k];
      const std::vector<PrefKind>& outcome = outcomes[k];
      ++result.pairs_measured;
      result.schedule.push_back({best_i, best_j});
      for (std::size_t t = 0; t < targets; ++t) {
        result.table.set(best_i, best_j, t, outcome[t]);
        if (outcome[t] == PrefKind::kStrictFirst) {
          closures[t].set(best_i, best_j);
          closures[t].close(providers);
        } else if (outcome[t] == PrefKind::kStrictSecond) {
          closures[t].set(best_j, best_i);
          closures[t].close(providers);
        }
      }
    }
  }

  result.inferred_entries = transitive_complete(result.table);

  std::size_t covered = 0;
  std::size_t resolved = 0;
  for (std::size_t t = 0; t < targets; ++t) {
    bool complete = true;
    for (std::size_t i = 0; i < providers; ++i) {
      for (std::size_t j = i + 1; j < providers; ++j) {
        if (result.table.get(i, j, t) != PrefKind::kUnknown) {
          ++resolved;
        } else {
          complete = false;
        }
      }
    }
    covered += complete;
  }
  const std::size_t entries = targets * pair_count(providers);
  result.coverage =
      targets ? static_cast<double>(covered) / static_cast<double>(targets)
              : 0;
  result.resolved_fraction =
      entries ? static_cast<double>(resolved) / static_cast<double>(entries)
              : 0;
  return result;
}

}  // namespace anyopt::core
