#include "core/peers.h"

#include <algorithm>

#include "measure/campaign_runner.h"
#include "netbase/rng.h"
#include "netbase/stats.h"

namespace anyopt::core {

OnePassPeerSelector::OnePassPeerSelector(
    const measure::Orchestrator& orchestrator, OnePassOptions options)
    : orchestrator_(orchestrator), options_(options) {}

OnePassResult OnePassPeerSelector::run(
    const anycast::AnycastConfig& baseline) const {
  const auto& deployment = orchestrator_.world().deployment();
  OnePassResult result;

  // Enumerate the whole campaign up front — the baseline plus one config
  // per peer — and submit it as one batch.  Nonces are content-derived
  // (hashed from the peer's attachment index, not a running counter), so
  // each peer's measurement is the same no matter which peers are measured
  // alongside it or on which thread it runs.
  const auto peers = deployment.all_peer_attachments();
  const measure::CampaignRunner runner(
      orchestrator_,
      measure::CampaignRunnerOptions{.threads = options_.threads,
                                     .store = options_.store});
  const std::uint64_t baseline_nonce =
      mix64(options_.nonce_base, 0xBA5E11E5ULL);
  std::vector<measure::Census> censuses;
  // Session flaps rewrite the base schedule itself — no overlay can
  // express them, so flapped campaigns run classic end to end (with
  // classic nonces, bit-identical to a non-incremental selector).
  const bool flaps_planned =
      orchestrator_.faults() != nullptr &&
      !orchestrator_.faults()->flaps().empty();
  if (options_.incremental && baseline.enabled_peers.empty() &&
      !flaps_planned) {
    // Incremental: converge the transit-only baseline once with the
    // classic baseline nonce — the empty-delta overlay over it reproduces
    // the classic baseline census bit for bit — then fork one overlay per
    // peer, each propagating only that peer's announcement at the slot
    // the classic schedule would give it.
    const bgp::BaseState base =
        orchestrator_.converge_base(baseline, baseline_nonce);
    const double peer_t =
        static_cast<double>(baseline.announce_order.size()) *
        baseline.spacing_s;
    // Tagged nonce family: a per-peer overlay draws different jitter
    // streams than the classic run of the same config, so its census —
    // and store key — must never collide with a classic campaign's.
    const std::uint64_t tag =
        mix64(mix64(options_.nonce_base, 0x1C2E57ULL), 0x9EE2ULL);
    std::vector<measure::OverlaySpec> specs;
    specs.reserve(peers.size() + 1);
    measure::OverlaySpec base_spec;
    base_spec.base = &base;
    base_spec.config = baseline;
    base_spec.nonce = baseline_nonce;
    specs.push_back(std::move(base_spec));
    for (const bgp::AttachmentIndex peer : peers) {
      measure::OverlaySpec spec;
      spec.base = &base;
      spec.config = baseline;
      spec.config.enabled_peers = {peer};
      spec.delta = {bgp::Injection{peer_t, peer, false}};
      spec.nonce = mix64(tag, peer);
      specs.push_back(std::move(spec));
    }
    censuses = runner.run_overlays(specs);
  } else {
    std::vector<measure::ExperimentSpec> specs;
    specs.reserve(peers.size() + 1);
    specs.push_back({baseline, baseline_nonce});
    for (const bgp::AttachmentIndex peer : peers) {
      anycast::AnycastConfig cfg = baseline;
      cfg.enabled_peers = {peer};
      specs.push_back(
          {std::move(cfg), mix64(mix64(options_.nonce_base, 0x9EE2ULL), peer)});
    }
    censuses = runner.run(specs);
  }

  const measure::Census& base = censuses.front();
  // Empty-census contract (see Census::mean_rtt): 0.0 here means "no
  // target measured" — an unreachable baseline deployment or a round
  // killed by fault injection — not a zero-latency network.  Downstream
  // delta_ms comparisons still order peers consistently in that case
  // (every peer census is compared against the same baseline), and
  // callers that must distinguish check base.reachable_count().
  result.baseline_mean_rtt = base.mean_rtt();

  for (std::size_t k = 0; k < peers.size(); ++k) {
    const bgp::AttachmentIndex peer = peers[k];
    const measure::Census& census = censuses[k + 1];
    ++result.experiments;

    PeerMeasurement m;
    m.attachment = peer;
    m.site = deployment.attachments()[peer].site;
    // Same contract: a peer whose census measured nothing reports
    // mean_rtt() == 0.0.  Such a peer also has catchment_size == 0, so the
    // `beneficial` flag below can never be set by the misleading
    // 0.0 - baseline < 0 delta.
    m.mean_rtt_ms = census.mean_rtt();
    m.delta_ms = m.mean_rtt_ms - result.baseline_mean_rtt;
    for (std::size_t t = 0; t < census.attachment_of_target.size(); ++t) {
      if (census.attachment_of_target[t] == peer) {
        ++m.catchment_size;
        if (census.rtt_ms[t] >= 0) {
          m.catchment_rtts.push_back(
              {static_cast<std::uint32_t>(t), census.rtt_ms[t]});
        }
      }
    }
    m.beneficial = m.catchment_size > 0 && m.delta_ms < 0;
    if (m.catchment_size > 0) ++result.reachable_peers;
    result.peers.push_back(std::move(m));
  }

  // Conservative greedy inclusion: rank beneficial peers by catchment size
  // (descending) and add one at a time, assuming each added peer attracts
  // its entire one-pass catchment; keep it only if the estimated mean RTT
  // drops.
  std::vector<const PeerMeasurement*> ranked;
  for (const PeerMeasurement& m : result.peers) {
    if (m.beneficial) ranked.push_back(&m);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const PeerMeasurement* a, const PeerMeasurement* b) {
              return a->catchment_size > b->catchment_size;
            });

  // Current per-target RTT estimate, starting from the baseline census.
  std::vector<double> current = base.rtt_ms;
  auto mean_of = [](const std::vector<double>& rtts) {
    stats::Online acc;
    for (const double r : rtts) {
      if (r >= 0) acc.add(r);
    }
    return acc.mean();
  };
  double current_mean = mean_of(current);

  for (const PeerMeasurement* peer : ranked) {
    std::vector<double> candidate = current;
    for (const auto& [t, rtt] : peer->catchment_rtts) {
      candidate[t] = rtt;
    }
    const double candidate_mean = mean_of(candidate);
    if (candidate_mean < current_mean) {
      result.chosen.push_back(peer->attachment);
      current = std::move(candidate);
      current_mean = candidate_mean;
    }
  }

  result.with_beneficial_peers = baseline;
  result.with_beneficial_peers.enabled_peers = result.chosen;
  result.predicted_mean_rtt = current_mean;
  return result;
}

}  // namespace anyopt::core
