#pragma once
// Persistence of discovered preference tables (core ↔ measure/store glue).
//
// `measure::ResultStore` persists censuses and RTT rows natively but treats
// everything else as opaque `kTable` payloads — the store lives below core
// in the module order and cannot know core's types.  This header owns the
// encoding: pairwise preference tables and whole discovery results are
// rendered into codec sections (run-length encoded — campaign tables are
// dominated by long runs of one classification) and stored under
// caller-chosen keys, so an optimizer session can reload a finished
// discovery without re-running a single BGP experiment.

#include <cstdint>

#include "core/discovery.h"
#include "core/preference.h"
#include "measure/store.h"
#include "netbase/result.h"

namespace anyopt::core {

/// \brief The conventional store key of a discovery run's persisted result.
/// \param nonce_base the campaign's `DiscoveryOptions::nonce_base`.
/// \param account_order the campaign's order-accounting mode (the naive
///        and ordered tables differ and must not collide).
/// \return the 64-bit store key.
[[nodiscard]] std::uint64_t discovery_key(std::uint64_t nonce_base,
                                          bool account_order);

/// \brief Persists one pairwise table as a `kTable` record.
/// \param store the destination store.
/// \param key the record key (caller-chosen; see `discovery_key`).
/// \param table the table to persist.
/// \return ok, or the I/O error.
Status save_table(measure::ResultStore& store, std::uint64_t key,
                  const PairwiseTable& table);

/// \brief Loads a pairwise table persisted by `save_table`.
/// \param store the source store.
/// \param key the record key.
/// \return the table; `not_found` on a miss, `parse` on a malformed
///         payload.
[[nodiscard]] Result<PairwiseTable> load_table(
    const measure::ResultStore& store, std::uint64_t key);

/// \brief Persists a whole discovery result (provider table, per-provider
///        site tables, provider→sites map, experiment count) under one key.
/// \param store the destination store.
/// \param key the record key (see `discovery_key`).
/// \param result the discovery result to persist.
/// \return ok, or the I/O error.
Status save_discovery(measure::ResultStore& store, std::uint64_t key,
                      const DiscoveryResult& result);

/// \brief Loads a discovery result persisted by `save_discovery`.
/// \param store the source store.
/// \param key the record key.
/// \return the result; `not_found` on a miss, `parse` on a malformed
///         payload.
[[nodiscard]] Result<DiscoveryResult> load_discovery(
    const measure::ResultStore& store, std::uint64_t key);

}  // namespace anyopt::core
