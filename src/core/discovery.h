#pragma once
// Two-level pairwise preference discovery (§3.3, §4.3, §4.5 steps 1-2).
//
// Provider level: one representative site per transit provider; for every
// provider pair, two BGP experiments (second with reversed announcement
// order) classify each target's preference as strict / order-dependent /
// inconsistent.  Site level: within each provider, pairwise experiments
// among its sites (announcement order provably cannot matter there, and the
// experiments confirm it).  The naive single-experiment mode (simultaneous
// announcement, no order accounting) is retained for the Fig. 4 ablations.
//
// Every method enumerates its experiment specs up front and submits them as
// one batch to a `measure::CampaignRunner`, so campaigns parallelize across
// `DiscoveryOptions::threads` workers.  Experiment nonces are
// content-derived — hash(nonce_base, first, second, order_leg) — so a
// pair's outcome is identical whether it runs alone, inside a full
// campaign, inside a sparse adaptive campaign, or on any thread.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/preference.h"
#include "measure/campaign_runner.h"
#include "measure/orchestrator.h"
#include "netbase/ids.h"

namespace anyopt::core {

struct DiscoveryOptions {
  /// Announcement spacing within an experiment; must exceed global BGP
  /// convergence (the paper uses six minutes).
  double spacing_s = 360.0;
  /// true: run each pair twice (reversed order) and classify order
  /// dependence.  false: the naive approach — announce both items
  /// simultaneously and take the observed winner as a strict preference.
  bool account_order = true;
  /// Representative site per provider slot; empty = the provider's first
  /// site in site-id order.
  std::vector<SiteId> representatives;
  std::uint64_t nonce_base = 0xD15C0;
  /// Worker threads for batched experiment execution; 1 = serial,
  /// 0 = hardware concurrency.  Results are bit-identical at any setting.
  std::size_t threads = 1;
};

/// Output of the full two-level discovery.
struct DiscoveryResult {
  /// Pairwise preferences among provider slots.
  PairwiseTable provider_prefs;
  /// Per provider slot: pairwise preferences among its sites (items indexed
  /// by position in `provider_sites[p]`).
  std::vector<PairwiseTable> site_prefs;
  /// Per provider slot: its sites in site-id order.
  std::vector<std::vector<SiteId>> provider_sites;
  /// Number of BGP experiments performed.
  std::size_t experiments = 0;
};

class Discovery {
 public:
  Discovery(const measure::Orchestrator& orchestrator,
            DiscoveryOptions options = {});

  /// Full two-level discovery (§4.5 step 2).
  [[nodiscard]] DiscoveryResult run() const;

  /// Provider-level only.
  [[nodiscard]] PairwiseTable provider_level(std::size_t* experiments) const;

  /// Site-level only (all providers).
  [[nodiscard]] std::vector<PairwiseTable> site_level(
      std::size_t* experiments) const;

  /// The naive flat approach used as the baseline in Fig. 4c: pairwise
  /// experiments over ALL site pairs, ignoring the provider structure
  /// (honours `options().account_order`).  O(|S|²) experiments.
  [[nodiscard]] PairwiseTable flat_site_level(std::size_t* experiments) const;

  /// One classified pairwise measurement between two sites (two BGP
  /// experiments when order accounting is on, one otherwise).  Returns the
  /// per-target classification with `first`/`second` as the pair items,
  /// and adds the experiment count to `*experiments` if non-null.
  [[nodiscard]] std::vector<PrefKind> classify_pair(
      SiteId first, SiteId second, std::size_t* experiments) const;

  /// Batch variant of `classify_pair`: all pairs' experiments are submitted
  /// as one campaign batch (parallel across `options().threads`).  Returns
  /// one per-target classification vector per input pair, in input order.
  [[nodiscard]] std::vector<std::vector<PrefKind>> classify_pairs(
      std::span<const std::pair<SiteId, SiteId>> pairs,
      std::size_t* experiments) const;

  /// Fig. 4a primitive: announce the representative sites of providers
  /// `p` then `q` (spaced), re-run reversed, and return the fraction of
  /// targets whose catchment changed between the two runs.  0.0 when either
  /// provider has no representative.
  [[nodiscard]] double order_flip_fraction(ProviderId p, ProviderId q) const;

  /// The representative site used for a provider.  Returns an INVALID
  /// SiteId when the provider has no attached sites and no configured
  /// representative; callers must check `.valid()` before announcing.
  [[nodiscard]] SiteId representative(ProviderId provider) const;

  /// The content-derived nonce of one experiment leg: depends only on
  /// (nonce_base, announced first, announced second, leg), never on how
  /// many experiments ran before it.
  [[nodiscard]] std::uint64_t experiment_nonce(SiteId first, SiteId second,
                                               std::uint64_t order_leg) const;

  [[nodiscard]] const DiscoveryOptions& options() const { return options_; }

 private:
  struct PairOutcomes {
    // Winner per target: 0 = first item, 1 = second, 2 = unreachable.
    std::vector<std::uint8_t> winner;
  };

  /// One logical pairwise measurement (expands to 1 or 2 experiment specs).
  struct PairJob {
    SiteId first;
    SiteId second;
  };

  /// Runs all jobs as one experiment batch and classifies each: returns one
  /// per-target PrefKind vector per job, in job order.
  [[nodiscard]] std::vector<std::vector<PrefKind>> classify_jobs(
      std::span<const PairJob> jobs, std::size_t* experiments) const;

  /// The spec of one experiment leg of a pair measurement.
  [[nodiscard]] measure::ExperimentSpec make_spec(SiteId first, SiteId second,
                                                  double spacing_s,
                                                  std::uint64_t order_leg) const;

  /// Extracts per-target winners from a census of the (first, second) pair.
  [[nodiscard]] static PairOutcomes census_winners(
      const measure::Census& census, SiteId first, SiteId second);

  static PrefKind classify(std::uint8_t winner_when_ab,
                           std::uint8_t winner_when_ba);

  const measure::Orchestrator& orchestrator_;
  DiscoveryOptions options_;
  measure::CampaignRunner runner_;
};

}  // namespace anyopt::core
