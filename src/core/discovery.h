#pragma once
// Two-level pairwise preference discovery (§3.3, §4.3, §4.5 steps 1-2).
//
// Provider level: one representative site per transit provider; for every
// provider pair, two BGP experiments (second with reversed announcement
// order) classify each target's preference as strict / order-dependent /
// inconsistent.  Site level: within each provider, pairwise experiments
// among its sites (announcement order provably cannot matter there, and the
// experiments confirm it).  The naive single-experiment mode (simultaneous
// announcement, no order accounting) is retained for the Fig. 4 ablations.

#include <cstdint>
#include <vector>

#include "core/preference.h"
#include "measure/orchestrator.h"
#include "netbase/ids.h"

namespace anyopt::core {

struct DiscoveryOptions {
  /// Announcement spacing within an experiment; must exceed global BGP
  /// convergence (the paper uses six minutes).
  double spacing_s = 360.0;
  /// true: run each pair twice (reversed order) and classify order
  /// dependence.  false: the naive approach — announce both items
  /// simultaneously and take the observed winner as a strict preference.
  bool account_order = true;
  /// Representative site per provider slot; empty = the provider's first
  /// site in site-id order.
  std::vector<SiteId> representatives;
  std::uint64_t nonce_base = 0xD15C0;
};

/// Output of the full two-level discovery.
struct DiscoveryResult {
  /// Pairwise preferences among provider slots.
  PairwiseTable provider_prefs;
  /// Per provider slot: pairwise preferences among its sites (items indexed
  /// by position in `provider_sites[p]`).
  std::vector<PairwiseTable> site_prefs;
  /// Per provider slot: its sites in site-id order.
  std::vector<std::vector<SiteId>> provider_sites;
  /// Number of BGP experiments performed.
  std::size_t experiments = 0;
};

class Discovery {
 public:
  Discovery(const measure::Orchestrator& orchestrator,
            DiscoveryOptions options = {});

  /// Full two-level discovery (§4.5 step 2).
  [[nodiscard]] DiscoveryResult run() const;

  /// Provider-level only.
  [[nodiscard]] PairwiseTable provider_level(std::size_t* experiments) const;

  /// Site-level only (all providers).
  [[nodiscard]] std::vector<PairwiseTable> site_level(
      std::size_t* experiments) const;

  /// The naive flat approach used as the baseline in Fig. 4c: pairwise
  /// experiments over ALL site pairs, ignoring the provider structure
  /// (honours `options().account_order`).  O(|S|²) experiments.
  [[nodiscard]] PairwiseTable flat_site_level(std::size_t* experiments) const;

  /// One classified pairwise measurement between two sites (two BGP
  /// experiments when order accounting is on, one otherwise).  Returns the
  /// per-target classification with `first`/`second` as the pair items,
  /// and adds the experiment count to `*experiments` if non-null.
  [[nodiscard]] std::vector<PrefKind> classify_pair(
      SiteId first, SiteId second, std::size_t* experiments) const;

  /// Fig. 4a primitive: announce the representative sites of providers
  /// `p` then `q` (spaced), re-run reversed, and return the fraction of
  /// targets whose catchment changed between the two runs.
  [[nodiscard]] double order_flip_fraction(ProviderId p, ProviderId q) const;

  /// The representative site used for a provider.
  [[nodiscard]] SiteId representative(ProviderId provider) const;

  [[nodiscard]] const DiscoveryOptions& options() const { return options_; }

 private:
  struct PairOutcomes {
    // Winner per target: 0 = first item, 1 = second, 2 = unreachable.
    std::vector<std::uint8_t> winner;
  };

  /// One pairwise experiment: announce `first` then `second` (or both at
  /// t=0 when spacing==0) and classify each target's winner.
  [[nodiscard]] PairOutcomes run_pair(SiteId first, SiteId second,
                                      double spacing_s,
                                      std::uint64_t nonce) const;

  static PrefKind classify(std::uint8_t winner_when_ab,
                           std::uint8_t winner_when_ba);

  const measure::Orchestrator& orchestrator_;
  DiscoveryOptions options_;
  mutable std::uint64_t next_nonce_;
};

}  // namespace anyopt::core
