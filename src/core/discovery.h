#pragma once
// Two-level pairwise preference discovery (§3.3, §4.3, §4.5 steps 1-2).
//
// Provider level: one representative site per transit provider; for every
// provider pair, two BGP experiments (second with reversed announcement
// order) classify each target's preference as strict / order-dependent /
// inconsistent.  Site level: within each provider, pairwise experiments
// among its sites (announcement order provably cannot matter there, and the
// experiments confirm it).  The naive single-experiment mode (simultaneous
// announcement, no order accounting) is retained for the Fig. 4 ablations.
//
// Every method enumerates its experiment specs up front and submits them as
// one batch to a `measure::CampaignRunner`, so campaigns parallelize across
// `DiscoveryOptions::threads` workers.  Experiment nonces are
// content-derived — hash(nonce_base, first, second, order_leg) — so a
// pair's outcome is identical whether it runs alone, inside a full
// campaign, inside a sparse adaptive campaign, or on any thread.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/simulator.h"
#include "core/preference.h"
#include "measure/campaign_runner.h"
#include "measure/orchestrator.h"
#include "netbase/ids.h"

namespace anyopt::core {

/// \brief Configuration of a discovery campaign.
struct DiscoveryOptions {
  /// Announcement spacing within an experiment; must exceed global BGP
  /// convergence (the paper uses six minutes).
  double spacing_s = 360.0;
  /// true: run each pair twice (reversed order) and classify order
  /// dependence.  false: the naive approach — announce both items
  /// simultaneously and take the observed winner as a strict preference.
  bool account_order = true;
  /// Representative site per provider slot; empty = the provider's first
  /// site in site-id order.
  std::vector<SiteId> representatives;
  std::uint64_t nonce_base = 0xD15C0;  ///< root of content-derived nonces
  /// Worker threads for batched experiment execution; 1 = serial,
  /// 0 = hardware concurrency.  Results are bit-identical at any setting.
  std::size_t threads = 1;
  /// Resilience: extra campaign rounds re-enqueueing experiments whose
  /// census came back empty (a round lost to fault injection or a real
  /// orchestrator outage).  0 — the default — disables requeueing.  A
  /// requeued experiment keeps its content-derived nonce and bumps only the
  /// fault-layer attempt, so a retry that survives reproduces the
  /// fault-free census bit for bit and the discovered tables converge to
  /// the fault-free preference order.
  std::size_t retry_rounds = 0;
  /// Campaign-global ordinal of this discovery's first experiment, for the
  /// fault layer's timeline (site failures "at experiment k" count from
  /// here).  Irrelevant unless the orchestrator carries a fault injector.
  std::size_t ordinal_base = 0;
  /// Optional persistent result store (checkpoint/resume and warm starts):
  /// persisted censuses are replayed instead of re-simulated, and every
  /// fresh census is flushed as it completes.  Not owned; must outlive the
  /// discovery.  See `measure::CampaignRunnerOptions::store`.
  measure::ResultStore* store = nullptr;
  /// Incremental re-convergence: converge one shared base per
  /// first-announced site, then measure each pair as a copy-on-write
  /// overlay pair (leg 0 propagates only the second item's announcement
  /// delta; leg 1 resumes leg 0 and re-ages the first item's sessions).
  /// Requires `account_order` — naive campaigns announce simultaneously,
  /// so there is no base to share and they fall back to classic runs.
  /// Incremental censuses carry tagged nonces (see `incremental_nonce`),
  /// so a store shared with classic campaigns never serves a classic
  /// census to an incremental leg or vice versa.
  bool incremental = false;
  /// Testing knob for the shared-base invariant: converge a fresh private
  /// base per pair (same nonce) instead of reusing the cache.  Results
  /// must be bit-identical to the shared-base path; the sharing is purely
  /// an allocation/latency optimization.
  bool incremental_private_bases = false;
};

/// \brief Output of the full two-level discovery.
struct DiscoveryResult {
  /// Pairwise preferences among provider slots.
  PairwiseTable provider_prefs;
  /// Per provider slot: pairwise preferences among its sites (items indexed
  /// by position in `provider_sites[p]`).
  std::vector<PairwiseTable> site_prefs;
  /// Per provider slot: its sites in site-id order.
  std::vector<std::vector<SiteId>> provider_sites;
  /// Number of BGP experiments performed (including requeued retries).
  std::size_t experiments = 0;
};

/// \brief Runs the paper's pairwise preference-discovery campaigns.
class Discovery {
 public:
  /// \brief Builds a discovery engine over a measurement orchestrator.
  /// \param orchestrator the measurement engine (must outlive this).
  /// \param options campaign parameters; see `DiscoveryOptions`.
  Discovery(const measure::Orchestrator& orchestrator,
            DiscoveryOptions options = {});

  /// \brief Full two-level discovery (§4.5 step 2): provider level, then
  ///        per-provider site level.
  /// \return both preference tables plus the experiment count.
  [[nodiscard]] DiscoveryResult run() const;

  /// \brief Provider-level discovery only (representative site per
  ///        provider, all provider pairs).
  /// \param experiments if non-null, receives the experiment count.
  /// \return pairwise preferences among provider slots.
  [[nodiscard]] PairwiseTable provider_level(std::size_t* experiments) const;

  /// \brief Both Fig. 4b views of one provider-level campaign.
  ///
  /// The ordered view is `provider_level` with order accounting.  The
  /// naive view is DERIVED from the same two ordered legs instead of
  /// re-measured: a naive campaign takes whatever wins as a strict
  /// preference, so a target whose winner depends on announcement order
  /// shows up as an inconsistency (its two legs disagree), and a target
  /// unreachable in either leg stays unknown.  Deriving it costs zero
  /// extra experiments while preserving the ablation's direction — the
  /// naive view can only be as good as or worse than the ordered one.
  struct ProviderLevelViews {
    PairwiseTable ordered;  ///< order-accounted classification
    PairwiseTable naive;    ///< what a naive campaign would conclude
  };

  /// \brief Runs ONE provider-level campaign and returns both views.
  ///
  /// With `options().account_order` off there are no per-order legs to
  /// derive from; both views then equal the naive `provider_level` table.
  /// \param experiments if non-null, receives the experiment count.
  /// \return ordered and naive tables over provider slots.
  [[nodiscard]] ProviderLevelViews provider_level_views(
      std::size_t* experiments) const;

  /// \brief Site-level discovery only (pairs within each provider).
  /// \param experiments if non-null, receives the experiment count.
  /// \return one table per provider slot, sites in site-id order.
  [[nodiscard]] std::vector<PairwiseTable> site_level(
      std::size_t* experiments) const;

  /// \brief The naive flat approach used as the baseline in Fig. 4c:
  ///        pairwise experiments over ALL site pairs, ignoring the provider
  ///        structure (honours `options().account_order`).
  /// \param experiments if non-null, receives the O(|S|²) experiment count.
  /// \return pairwise preferences among all sites.
  [[nodiscard]] PairwiseTable flat_site_level(std::size_t* experiments) const;

  /// \brief One classified pairwise measurement between two sites (two BGP
  ///        experiments when order accounting is on, one otherwise).
  /// \param first the pair's first item (announced first in leg 0).
  /// \param second the pair's second item.
  /// \param experiments if non-null, the experiment count is added to it.
  /// \return per-target classification with `first`/`second` as the items.
  [[nodiscard]] std::vector<PrefKind> classify_pair(
      SiteId first, SiteId second, std::size_t* experiments) const;

  /// \brief Batch variant of `classify_pair`: all pairs' experiments are
  ///        submitted as one campaign batch (parallel across
  ///        `options().threads`).
  /// \param pairs the site pairs to measure.
  /// \param experiments if non-null, the experiment count is added to it.
  /// \return one per-target classification vector per pair, in input order.
  [[nodiscard]] std::vector<std::vector<PrefKind>> classify_pairs(
      std::span<const std::pair<SiteId, SiteId>> pairs,
      std::size_t* experiments) const;

  /// \brief Fig. 4a primitive: announce the representative sites of
  ///        providers `p` then `q` (spaced), re-run reversed.
  /// \param p first provider slot.
  /// \param q second provider slot.
  /// \return fraction of targets whose catchment changed between the two
  ///         runs; 0.0 when either provider has no representative.
  [[nodiscard]] double order_flip_fraction(ProviderId p, ProviderId q) const;

  /// \brief The representative site used for a provider.
  /// \param provider the provider slot.
  /// \return the configured (or first-attached) site; an INVALID SiteId
  ///         when the provider has no attached sites and no configured
  ///         representative — callers must check `.valid()` before
  ///         announcing.
  [[nodiscard]] SiteId representative(ProviderId provider) const;

  /// \brief The content-derived nonce of one experiment leg.
  ///
  /// Depends only on (nonce_base, announced first, announced second, leg),
  /// never on how many experiments ran before it — and deliberately NOT on
  /// the fault-layer attempt, so a requeued experiment reproduces the
  /// fault-free census when it survives.
  /// \param first the site announced first.
  /// \param second the site announced second.
  /// \param order_leg 0 for the (first, second) leg, 1 for the reversed.
  /// \return the experiment's nonce.
  [[nodiscard]] std::uint64_t experiment_nonce(SiteId first, SiteId second,
                                               std::uint64_t order_leg) const;

  /// \brief This discovery's options.
  /// \return the options passed at construction.
  [[nodiscard]] const DiscoveryOptions& options() const { return options_; }

 private:
  struct PairOutcomes {
    // Winner per target: 0 = first item, 1 = second, 2 = unreachable.
    std::vector<std::uint8_t> winner;
  };

  /// One logical pairwise measurement (expands to 1 or 2 experiment specs).
  struct PairJob {
    SiteId first;
    SiteId second;
  };

  /// Runs all jobs as one experiment batch and classifies each: returns one
  /// per-target PrefKind vector per job, in job order.  `ordinal_base` is
  /// the campaign-global ordinal of the batch's first spec (fault-layer
  /// timeline).  Empty censuses are re-enqueued with a bumped attempt for
  /// up to `options().retry_rounds` extra rounds.
  [[nodiscard]] std::vector<std::vector<PrefKind>> classify_jobs(
      std::span<const PairJob> jobs, std::size_t* experiments,
      std::size_t ordinal_base) const;

  /// Measures all jobs (classic specs or incremental overlay pairs,
  /// per `options().incremental`) including the retry rounds; returns
  /// `jobs.size() * legs` censuses in job-major, leg-minor order.
  [[nodiscard]] std::vector<measure::Census> measure_jobs(
      std::span<const PairJob> jobs, std::size_t* experiments,
      std::size_t ordinal_base) const;

  /// Classifies already-measured jobs (the tail of `classify_jobs`) and
  /// tallies the per-kind telemetry.
  [[nodiscard]] std::vector<std::vector<PrefKind>> classify_from_censuses(
      std::span<const PairJob> jobs,
      std::span<const measure::Census> censuses) const;

  /// True when this campaign runs overlay pairs: incremental mode is on,
  /// order accounting gives it a per-order base to share, and no session
  /// flaps are planned (flaps rewrite the base schedule itself, which an
  /// overlay cannot express — such campaigns run classic end to end, with
  /// classic nonces, so they stay bit-identical to a classic discovery).
  [[nodiscard]] bool incremental_active() const {
    return options_.incremental && options_.account_order &&
           (orchestrator_.faults() == nullptr ||
            orchestrator_.faults()->flaps().empty());
  }

  /// The content-derived nonce of one incremental experiment leg.  Same
  /// shape as `experiment_nonce` but under a distinct tag: an overlay leg
  /// draws different jitter streams than the classic run of the same
  /// config, so its census — and its store key — must never collide with
  /// a classic campaign's.
  [[nodiscard]] std::uint64_t incremental_nonce(SiteId first, SiteId second,
                                                std::uint64_t order_leg) const;

  /// The nonce of the shared base that announces `first` alone.
  [[nodiscard]] std::uint64_t base_nonce(SiteId first) const;

  /// The converged single-site base for `first`: cached and shared across
  /// pairs (and across `classify_pairs` batches — sparse discovery's
  /// adaptive rounds reuse one Discovery), or converged fresh per call
  /// when `options().incremental_private_bases` is set.  A base depends
  /// only on its schedule and nonce, so shared and private copies are
  /// interchangeable bit for bit.
  [[nodiscard]] std::shared_ptr<const bgp::BaseState> base_for(
      SiteId first) const;

  /// Number of specs the provider-level campaign enumerates (site-level
  /// ordinals start after them so one FaultPlan timeline spans `run()`).
  [[nodiscard]] std::size_t provider_level_spec_count() const;

  /// The spec of one experiment leg of a pair measurement.
  [[nodiscard]] measure::ExperimentSpec make_spec(SiteId first, SiteId second,
                                                  double spacing_s,
                                                  std::uint64_t order_leg) const;

  /// Extracts per-target winners from a census of the (first, second) pair.
  [[nodiscard]] static PairOutcomes census_winners(
      const measure::Census& census, SiteId first, SiteId second);

  static PrefKind classify(std::uint8_t winner_when_ab,
                           std::uint8_t winner_when_ba);

  const measure::Orchestrator& orchestrator_;
  DiscoveryOptions options_;
  measure::CampaignRunner runner_;
  // Shared-base cache for incremental campaigns, keyed by base nonce.
  // Bases are converged serially on the calling thread before a batch
  // fans out (workers only fork read-only overlays), so the mutex guards
  // nothing hot; it exists because a const Discovery may be driven from
  // multiple threads.  shared_ptr keeps a base alive while private-base
  // batches or earlier batches still reference it.
  mutable std::mutex base_mutex_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<const bgp::BaseState>>
      base_cache_;
};

}  // namespace anyopt::core
