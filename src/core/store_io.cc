#include "core/store_io.h"

#include "netbase/rng.h"

namespace anyopt::core {

namespace {

/// Section tags of the `kTable` payloads this file writes.  The store's
/// key section occupies tag 1, so table sections start at 2.
enum TableTag : std::uint64_t {
  kTagShape = 2,     ///< varint item count + varint target count
  kTagOutcomes = 3,  ///< run-length encoded PrefKind stream
  kTagProviderTable = 4,  ///< nested table (DiscoveryResult)
  kTagSiteTables = 5,     ///< varint count + length-prefixed nested tables
  kTagProviderSites = 6,  ///< provider → sites map
  kTagExperiments = 7,    ///< varint experiment count
};

/// Encodes a table body: shape plus the flattened [pair][target] outcome
/// stream, run-length encoded (campaign tables are dominated by long runs
/// of one classification).
void encode_table(const PairwiseTable& table, codec::Writer& out) {
  codec::Writer shape;
  shape.put_varint(table.item_count);
  shape.put_varint(table.target_count);
  out.put_section(kTagShape, shape);

  codec::Writer runs;
  std::uint64_t current = 0;
  std::uint64_t run = 0;
  const auto flush = [&] {
    if (run == 0) return;
    runs.put_varint(current);
    runs.put_varint(run);
  };
  for (const auto& row : table.outcome) {
    for (const PrefKind kind : row) {
      const auto v = static_cast<std::uint64_t>(kind);
      if (run > 0 && v == current) {
        ++run;
        continue;
      }
      flush();
      current = v;
      run = 1;
    }
  }
  flush();
  out.put_section(kTagOutcomes, runs);
}

Result<PairwiseTable> decode_table(std::span<const std::uint8_t> body) {
  codec::Reader reader(body);
  PairwiseTable table;
  bool saw_shape = false;
  bool saw_outcomes = false;
  std::span<const std::uint8_t> outcomes;
  while (!reader.at_end()) {
    Result<codec::Section> section = reader.read_section();
    if (!section.ok()) return section.error();
    switch (section.value().tag) {
      case kTagShape: {
        codec::Reader s(section.value().body);
        Result<std::uint64_t> items = s.read_varint();
        if (!items.ok()) return items.error();
        Result<std::uint64_t> targets = s.read_varint();
        if (!targets.ok()) return targets.error();
        table.init(static_cast<std::size_t>(items.value()),
                   static_cast<std::size_t>(targets.value()));
        saw_shape = true;
        break;
      }
      case kTagOutcomes:
        outcomes = section.value().body;
        saw_outcomes = true;
        break;
      default:
        break;  // forward compatibility
    }
  }
  if (!saw_shape || !saw_outcomes) {
    return Error::parse("table record is missing a required section");
  }
  codec::Reader runs(outcomes);
  std::size_t pair = 0;
  std::size_t target = 0;
  const std::size_t total = table.outcome.size() * table.target_count;
  std::size_t filled = 0;
  while (!runs.at_end()) {
    Result<std::uint64_t> value = runs.read_varint();
    if (!value.ok()) return value.error();
    Result<std::uint64_t> length = runs.read_varint();
    if (!length.ok()) return length.error();
    if (value.value() > static_cast<std::uint64_t>(PrefKind::kInconsistent)) {
      return Error::parse("table outcome out of range");
    }
    if (filled + length.value() > total) {
      return Error::parse("table outcome run overflows the table shape");
    }
    const auto kind = static_cast<PrefKind>(value.value());
    for (std::uint64_t k = 0; k < length.value(); ++k) {
      table.outcome[pair][target] = kind;
      if (++target == table.target_count) {
        target = 0;
        ++pair;
      }
    }
    filled += static_cast<std::size_t>(length.value());
  }
  if (filled != total) {
    return Error::parse("table outcome stream is shorter than its shape");
  }
  return table;
}

}  // namespace

std::uint64_t discovery_key(std::uint64_t nonce_base, bool account_order) {
  return mix64(mix64(0xD15C0B1EULL, nonce_base),
               account_order ? 1ULL : 0ULL);
}

Status save_table(measure::ResultStore& store, std::uint64_t key,
                  const PairwiseTable& table) {
  codec::Writer body;
  encode_table(table, body);
  return store.put_payload(measure::RecordKind::kTable, key, body);
}

Result<PairwiseTable> load_table(const measure::ResultStore& store,
                                 std::uint64_t key) {
  const std::optional<std::vector<std::uint8_t>> body =
      store.find_payload(measure::RecordKind::kTable, key);
  if (!body.has_value()) {
    return Error::not_found("no table record for this key");
  }
  return decode_table(*body);
}

Status save_discovery(measure::ResultStore& store, std::uint64_t key,
                      const DiscoveryResult& result) {
  codec::Writer body;

  codec::Writer provider;
  encode_table(result.provider_prefs, provider);
  body.put_section(kTagProviderTable, provider);

  codec::Writer sites;
  sites.put_varint(result.site_prefs.size());
  for (const PairwiseTable& table : result.site_prefs) {
    codec::Writer one;
    encode_table(table, one);
    sites.put_varint(one.size());
    sites.put_bytes(one.bytes());
  }
  body.put_section(kTagSiteTables, sites);

  codec::Writer map;
  map.put_varint(result.provider_sites.size());
  for (const auto& provider_sites : result.provider_sites) {
    map.put_varint(provider_sites.size());
    for (const SiteId site : provider_sites) {
      map.put_varint(site.valid() ? std::uint64_t{site.value()} + 1 : 0);
    }
  }
  body.put_section(kTagProviderSites, map);

  codec::Writer experiments;
  experiments.put_varint(result.experiments);
  body.put_section(kTagExperiments, experiments);

  return store.put_payload(measure::RecordKind::kTable, key, body);
}

Result<DiscoveryResult> load_discovery(const measure::ResultStore& store,
                                       std::uint64_t key) {
  const std::optional<std::vector<std::uint8_t>> body =
      store.find_payload(measure::RecordKind::kTable, key);
  if (!body.has_value()) {
    return Error::not_found("no discovery record for this key");
  }
  codec::Reader reader(*body);
  DiscoveryResult result;
  bool saw_provider = false;
  while (!reader.at_end()) {
    Result<codec::Section> section = reader.read_section();
    if (!section.ok()) return section.error();
    switch (section.value().tag) {
      case kTagProviderTable: {
        Result<PairwiseTable> table = decode_table(section.value().body);
        if (!table.ok()) return table.error();
        result.provider_prefs = std::move(table).value();
        saw_provider = true;
        break;
      }
      case kTagSiteTables: {
        codec::Reader s(section.value().body);
        Result<std::uint64_t> count = s.read_varint();
        if (!count.ok()) return count.error();
        for (std::uint64_t k = 0; k < count.value(); ++k) {
          Result<std::uint64_t> len = s.read_varint();
          if (!len.ok()) return len.error();
          if (s.remaining() < len.value()) {
            return Error::parse("nested table truncated");
          }
          Result<PairwiseTable> table =
              decode_table(section.value().body.subspan(
                  s.offset(), static_cast<std::size_t>(len.value())));
          if (!table.ok()) return table.error();
          result.site_prefs.push_back(std::move(table).value());
          s.skip(static_cast<std::size_t>(len.value()));
        }
        break;
      }
      case kTagProviderSites: {
        codec::Reader s(section.value().body);
        Result<std::uint64_t> providers = s.read_varint();
        if (!providers.ok()) return providers.error();
        for (std::uint64_t p = 0; p < providers.value(); ++p) {
          Result<std::uint64_t> count = s.read_varint();
          if (!count.ok()) return count.error();
          std::vector<SiteId> sites;
          sites.reserve(static_cast<std::size_t>(count.value()));
          for (std::uint64_t k = 0; k < count.value(); ++k) {
            Result<std::uint64_t> v = s.read_varint();
            if (!v.ok()) return v.error();
            sites.push_back(v.value() == 0
                                ? SiteId{}
                                : SiteId{static_cast<SiteId::underlying_type>(
                                      v.value() - 1)});
          }
          result.provider_sites.push_back(std::move(sites));
        }
        break;
      }
      case kTagExperiments: {
        codec::Reader s(section.value().body);
        Result<std::uint64_t> count = s.read_varint();
        if (!count.ok()) return count.error();
        result.experiments = static_cast<std::size_t>(count.value());
        break;
      }
      default:
        break;  // forward compatibility
    }
  }
  if (!saw_provider) {
    return Error::parse("discovery record is missing its provider table");
  }
  return result;
}

}  // namespace anyopt::core
