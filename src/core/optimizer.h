#pragma once
// Offline configuration search (§5.3).
//
// Enumerates site subsets, picks for each an announcement order that
// maximizes the number of clients with a consistent total order (§4.5 step
// 3), predicts the mean client RTT with the two-level tables, and returns
// the best configuration per subset size and overall — the computation the
// paper ran for six hours to find its 12-site configuration.
//
// Also provides the two baselines of Fig. 6: greedy-by-unicast-latency and
// random provider/site picks.

#include <cstdint>
#include <vector>

#include "anycast/config.h"
#include "core/predictor.h"
#include "netbase/rng.h"

namespace anyopt::core {

/// \brief Search-space and objective parameters of the offline search.
struct OptimizerOptions {
  std::size_t min_sites = 1;  ///< smallest enabled-site count examined
  /// Largest enabled-site count examined.
  std::size_t max_sites = std::numeric_limits<std::size_t>::max();
  /// Wall-clock bound for the search (the paper used six hours; seconds
  /// suffice here because evaluation is cached and vectorized).
  double time_budget_s = 60.0;
  /// Candidate announcement orders examined per provider subset when
  /// maximizing the consistent-client fraction.
  std::size_t order_candidates = 24;
  /// Evaluate configurations on a uniform sample of this many targets
  /// (0 = all).  The best-per-size configurations are always re-scored on
  /// the full target set afterwards.
  std::size_t target_sample = 0;
  /// Per-site workload capacity (in summed target weight); empty =
  /// uncapacitated.  Configurations whose predicted catchment overloads a
  /// site are discarded, the Appendix-B load constraint (Eq. 7) applied
  /// during the search.  The gate is a strict comparison (`load > cap`)
  /// and never divides by capacity, so the edge cases are well defined:
  /// load exactly at capacity passes, and a zero-capacity site is feasible
  /// as long as every target in its predicted catchment has weight 0 (a
  /// drained site under a drained workload is compliant, not overloaded).
  /// Sites beyond the vector's length are uncapacitated.
  std::vector<double> site_capacity;
  /// Per-target workload weights (empty = uniform).  The objective becomes
  /// the workload-weighted mean RTT, the Appendix-B weighting extension.
  std::vector<double> target_weight;
  std::uint64_t seed = 0x0F7;  ///< seeds order-candidate sampling
};

/// \brief One evaluated configuration.
struct EvaluatedConfig {
  anycast::AnycastConfig config;  ///< the configuration scored
  /// Population-wide mean RTT estimate used for ranking: predictable
  /// targets contribute their predicted catchment's unicast RTT; targets
  /// without a total order are *imputed* with their mean unicast RTT over
  /// the enabled sites.  Without imputation the search would favour
  /// configurations that simply exclude their worst clients from
  /// prediction (a winner's-curse artifact the paper's measured
  /// evaluation would expose).
  double predicted_mean_rtt = std::numeric_limits<double>::infinity();
  /// Mean over predictable targets only (comparable to
  /// Prediction::mean_rtt).
  double predictable_mean_rtt = std::numeric_limits<double>::infinity();
  double fraction_ordered = 0;  ///< targets with a usable total order
};

/// \brief Search output.
struct SearchOutcome {
  EvaluatedConfig best;  ///< overall best configuration found
  /// Best configuration found for each enabled-site count (index = count;
  /// index 0 unused).
  std::vector<EvaluatedConfig> best_per_size;
  std::size_t configurations_evaluated = 0;  ///< total subsets scored
  bool exhausted = false;  ///< true if every subset in range was evaluated
};

/// \brief The offline configuration search of §5.3.
class Optimizer {
 public:
  /// \brief Builds the optimizer over a predictor.
  /// \param predictor the offline predictor (must outlive this).
  /// \param options search-space parameters; see `OptimizerOptions`.
  Optimizer(const Predictor& predictor, OptimizerOptions options = {});

  /// \brief Full subset search under the time budget.
  /// \return the best configurations found plus the search trace.
  [[nodiscard]] SearchOutcome search() const;

  /// \brief Fast predicted evaluation of one configuration using the
  ///        caches (same result as Predictor::predict but O(targets)).
  ///
  /// NOT safe for concurrent callers: the first evaluation of a provider
  /// subset fills the mutable `subset_cache_` slot.  Concurrent query
  /// workloads use `evaluate_uncached`.
  /// \param config the configuration to score.
  /// \return its predicted means and ordered fraction.
  [[nodiscard]] EvaluatedConfig evaluate(
      const anycast::AnycastConfig& config) const;

  /// \brief Pure (cache-free) evaluation of one configuration — the
  ///        serve-layer query entry point.  Bit-identical scores to
  ///        `evaluate`, but the provider-subset precomputation is built
  ///        into a local and discarded, so this method mutates nothing and
  ///        any number of threads may call it concurrently on one const
  ///        Optimizer.  Costs the subset precomputation on every call;
  ///        batch searches should keep using `evaluate`/`search`.
  /// \param config the configuration to score.
  /// \return its predicted means and ordered fraction.
  [[nodiscard]] EvaluatedConfig evaluate_uncached(
      const anycast::AnycastConfig& config) const;

  /// \brief Baseline: the k sites with the lowest mean unicast RTT,
  ///        announced in that order (the "12-Greedy" line of Fig. 6).
  /// \param rtts the unicast RTT matrix to rank sites by.
  /// \param k number of sites to pick.
  /// \return the greedy configuration.
  [[nodiscard]] static anycast::AnycastConfig greedy_unicast(
      const RttMatrix& rtts, std::size_t k);

  /// \brief Baseline: random providers with random sites from each (the
  ///        "4-Random" line of Fig. 6).
  /// \param deployment the deployment to draw from.
  /// \param providers number of providers to pick.
  /// \param sites_per_provider number of sites per picked provider.
  /// \param rng the draw stream (advanced).
  /// \return the random configuration.
  [[nodiscard]] static anycast::AnycastConfig random_config(
      const anycast::Deployment& deployment, std::size_t providers,
      std::size_t sites_per_provider, Rng& rng);

 private:
  struct ProviderSubsetCache {
    bool ready = false;
    std::vector<std::size_t> providers;      ///< member provider slots
    std::vector<std::size_t> arrival_rank;   ///< chosen order (per slot)
    double fraction_ordered = 0;
    /// Per target: providers in preference order (provider slot values),
    /// empty = unpredictable at provider level.
    std::vector<std::vector<std::uint8_t>> ranking;
  };

  struct MaskScore {
    double imputed_mean = std::numeric_limits<double>::infinity();
    double predictable_mean = std::numeric_limits<double>::infinity();
    double fraction_ordered = 0;
  };
  /// Builds one provider subset's precomputation (order choice + per-target
  /// ranking) without touching `subset_cache_` — the pure core shared by
  /// `ensure_cache` and `evaluate_uncached`.
  [[nodiscard]] ProviderSubsetCache build_cache(std::size_t provider_mask) const;
  void ensure_cache(std::size_t provider_mask) const;
  [[nodiscard]] MaskScore score_mask(
      std::uint32_t site_mask, const ProviderSubsetCache& cache,
      const std::vector<std::uint32_t>& sample) const;

  const Predictor& predictor_;
  OptimizerOptions options_;

  // Immutable precomputation.
  std::vector<std::size_t> provider_of_site_;
  std::vector<std::uint32_t> provider_site_mask_;  ///< per provider slot
  /// Per target, per provider: the provider's sites (local positions in
  /// deployment site-id space) in that target's preference order; empty =
  /// inconsistent site-level prefs.
  std::vector<std::vector<std::vector<std::uint8_t>>> site_ranking_;
  mutable std::vector<ProviderSubsetCache> subset_cache_;
};

}  // namespace anyopt::core
