#pragma once
// Pairwise preference data model (§3.3, §4.2).
//
// A pairwise experiment announces the anycast prefix from two items (two
// providers' representative sites, or two sites of one provider) and
// observes which one each client network's reply reaches.  Running the
// experiment twice with reversed announcement order classifies each client:
//
//   kStrict          — same winner in both orders (a real preference)
//   kOrderDependent  — the first-announced item wins in both experiments
//                      (the router tie-breaks on arrival order, §4.2)
//   kInconsistent    — anything else (multipath, newest-wins, probe loss
//                      flaps); such clients are excluded from prediction
//   kUnknown         — the client answered in neither experiment

#include <cstdint>
#include <vector>

#include "netbase/ids.h"

namespace anyopt::core {

/// \brief Classification of one client's preference between a pair of
///        items.
enum class PrefKind : std::uint8_t {
  kUnknown = 0,
  kStrictFirst,      ///< strictly prefers the pair's first item
  kStrictSecond,     ///< strictly prefers the pair's second item
  kOrderDependent,   ///< prefers whichever item announced first
  kInconsistent,     ///< no stable preference
};

/// \brief Index of the unordered pair (i, j), i < j, within n items: pairs
///        are enumerated (0,1), (0,2), ..., (0,n-1), (1,2), ...
/// \param i the pair's smaller item index (must be < j).
/// \param j the pair's larger item index (must be < n).
/// \param n the item count.
/// \return the pair's position in the enumeration.
[[nodiscard]] constexpr std::size_t pair_index(std::size_t i, std::size_t j,
                                               std::size_t n) {
  // assumes i < j < n
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

/// \brief Number of unordered pairs among n items.
/// \param n the item count.
/// \return n choose 2.
[[nodiscard]] constexpr std::size_t pair_count(std::size_t n) {
  return n * (n - 1) / 2;
}

/// \brief Pairwise preference table over `items` (providers or sites) for
///        every target: outcome[pair_index][target].
struct PairwiseTable {
  std::size_t item_count = 0;    ///< items the pairs range over
  std::size_t target_count = 0;  ///< targets (clients) per pair
  std::vector<std::vector<PrefKind>> outcome;  ///< [pair][target]

  /// \brief Resets to the given shape with every entry kUnknown.
  /// \param items the item count.
  /// \param targets the target count.
  void init(std::size_t items, std::size_t targets) {
    item_count = items;
    target_count = targets;
    outcome.assign(pair_count(items),
                   std::vector<PrefKind>(targets, PrefKind::kUnknown));
  }

  /// \brief One entry, from the (i, j) point of view.
  /// \param i the pair's first item (either order).
  /// \param j the pair's second item.
  /// \param target the target (client).
  /// \return the classification with `i` as the pair's first item; strict
  ///         winners flip under the swapped view, order-dependence is
  ///         symmetric.
  [[nodiscard]] PrefKind get(std::size_t i, std::size_t j,
                             std::size_t target) const {
    if (i == j) return PrefKind::kUnknown;
    if (i < j) return outcome[pair_index(i, j, item_count)][target];
    // Swapped view: strict winners flip, order-dependence is symmetric.
    const PrefKind k = outcome[pair_index(j, i, item_count)][target];
    switch (k) {
      case PrefKind::kStrictFirst: return PrefKind::kStrictSecond;
      case PrefKind::kStrictSecond: return PrefKind::kStrictFirst;
      default: return k;
    }
  }

  /// \brief Overwrites one entry (canonical i < j orientation).
  /// \param i the pair's smaller item index (must be < j).
  /// \param j the pair's larger item index.
  /// \param target the target (client).
  /// \param kind the classification with `i` as the pair's first item.
  void set(std::size_t i, std::size_t j, std::size_t target, PrefKind kind) {
    outcome[pair_index(i, j, item_count)][target] = kind;
  }

  /// \brief Bytes this table retains (outcome storage + row headers) —
  ///        feeds the serve layer's `bytes.snapshot` gauge.
  ///
  /// Thread safety: a fully built table is immutable under const access;
  /// concurrent readers (`get`, `retained_bytes`) need no locking.
  [[nodiscard]] std::size_t retained_bytes() const {
    std::size_t bytes = outcome.capacity() * sizeof(outcome[0]);
    for (const auto& row : outcome) {
      bytes += row.capacity() * sizeof(PrefKind);
    }
    return bytes;
  }
};

/// \brief Statistics over a pairwise table (used by the Fig. 4 benches).
struct PairwiseStats {
  std::size_t strict = 0;           ///< kStrictFirst + kStrictSecond entries
  std::size_t order_dependent = 0;  ///< kOrderDependent entries
  std::size_t inconsistent = 0;     ///< kInconsistent entries
  std::size_t unknown = 0;          ///< kUnknown entries
};

/// \brief Tallies a table's entries by classification.
/// \param table the table to tally.
/// \return per-classification entry counts.
[[nodiscard]] PairwiseStats tabulate(const PairwiseTable& table);

}  // namespace anyopt::core
