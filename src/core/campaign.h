#pragma once
// Persistence of a measurement campaign.
//
// The paper's measurements take days to weeks of wall-clock time (§4.5:
// two-hour experiment spacing); an operator runs them once a month and
// reuses the results for every subsequent prediction and optimization.
// This module serializes the complete campaign — the two-level pairwise
// tables and the unicast RTT matrix — to a line-oriented text artifact
// with exact round-trip, so predictions can run without re-measuring.

#include <string>

#include "core/discovery.h"
#include "core/rtt_matrix.h"
#include "netbase/result.h"

namespace anyopt::core {

/// \brief Everything a Predictor needs, bundled for storage.
struct Campaign {
  DiscoveryResult discovery;  ///< the two-level pairwise tables
  RttMatrix rtts;             ///< the unicast RTT matrix
};

/// \brief Serializes the campaign (text, ~100 bytes + 1 byte per table
///        entry + ~8 bytes per RTT sample).
/// \param campaign the campaign to store.
/// \return the line-oriented text artifact (exact round-trip).
[[nodiscard]] std::string save_campaign(const Campaign& campaign);

/// \brief Parses a campaign back; validates structural consistency.
/// \param text an artifact produced by `save_campaign`.
/// \return the campaign, or a descriptive parse/validation error.
[[nodiscard]] Result<Campaign> load_campaign(const std::string& text);

}  // namespace anyopt::core
