#pragma once
// Persistence of a measurement campaign.
//
// The paper's measurements take days to weeks of wall-clock time (§4.5:
// two-hour experiment spacing); an operator runs them once a month and
// reuses the results for every subsequent prediction and optimization.
// This module serializes the complete campaign — the two-level pairwise
// tables and the unicast RTT matrix — to a line-oriented text artifact
// with exact round-trip, so predictions can run without re-measuring.

#include <string>

#include "core/discovery.h"
#include "core/rtt_matrix.h"
#include "netbase/result.h"

namespace anyopt::core {

/// Everything a Predictor needs, bundled for storage.
struct Campaign {
  DiscoveryResult discovery;
  RttMatrix rtts;
};

/// Serializes the campaign (text, ~100 bytes + 1 byte per table entry +
/// ~8 bytes per RTT sample).
[[nodiscard]] std::string save_campaign(const Campaign& campaign);

/// Parses a campaign back; validates structural consistency.
[[nodiscard]] Result<Campaign> load_campaign(const std::string& text);

}  // namespace anyopt::core
