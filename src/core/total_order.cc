#include "core/total_order.h"

#include <algorithm>

namespace anyopt::core {

std::optional<std::vector<std::size_t>> total_order_of(const Tournament& t) {
  const std::size_t n = t.n;
  std::vector<std::size_t> out_degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && t.wins(i, j)) ++out_degree[i];
    }
  }
  // A tournament is transitive iff out-degrees are a permutation of
  // {0, ..., n-1}; the ranking is by descending out-degree.
  std::vector<char> seen(n, 0);
  for (const std::size_t d : out_degree) {
    if (d >= n || seen[d]) return std::nullopt;
    seen[d] = 1;
  }
  std::vector<std::size_t> ranking(n);
  for (std::size_t i = 0; i < n; ++i) {
    ranking[n - 1 - out_degree[i]] = i;
  }
  return ranking;
}

std::optional<Tournament> build_tournament(
    const PairwiseTable& table, std::size_t target,
    std::span<const std::size_t> items,
    std::span<const std::size_t> arrival_rank) {
  Tournament t;
  t.init(items.size());
  for (std::size_t a = 0; a < items.size(); ++a) {
    for (std::size_t b = a + 1; b < items.size(); ++b) {
      const PrefKind kind = table.get(items[a], items[b], target);
      switch (kind) {
        case PrefKind::kStrictFirst:
          t.set_winner(a, b);
          break;
        case PrefKind::kStrictSecond:
          t.set_winner(b, a);
          break;
        case PrefKind::kOrderDependent:
          if (arrival_rank[items[a]] < arrival_rank[items[b]]) {
            t.set_winner(a, b);
          } else {
            t.set_winner(b, a);
          }
          break;
        case PrefKind::kUnknown:
        case PrefKind::kInconsistent:
          return std::nullopt;
      }
    }
  }
  return t;
}

std::optional<std::vector<std::size_t>> target_total_order(
    const PairwiseTable& table, std::size_t target,
    std::span<const std::size_t> items,
    std::span<const std::size_t> arrival_rank) {
  const auto t = build_tournament(table, target, items, arrival_rank);
  if (!t.has_value()) return std::nullopt;
  return total_order_of(*t);
}

double fraction_with_total_order(const PairwiseTable& table,
                                 std::span<const std::size_t> items,
                                 std::span<const std::size_t> arrival_rank) {
  if (table.target_count == 0) return 0;
  std::size_t ordered = 0;
  for (std::size_t t = 0; t < table.target_count; ++t) {
    if (target_total_order(table, t, items, arrival_rank).has_value()) {
      ++ordered;
    }
  }
  return static_cast<double>(ordered) /
         static_cast<double>(table.target_count);
}

}  // namespace anyopt::core
