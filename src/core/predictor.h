#pragma once
// Catchment and RTT prediction (§3.4, §4.5 step 3).
//
// Given the two-level discovery result and the unicast RTT matrix, predicts
// — entirely offline, no BGP experiment — which site each client network
// will reach under an arbitrary anycast configuration with a specific
// announcement order, and what the average RTT will be.

#include <optional>
#include <span>
#include <vector>

#include "anycast/config.h"
#include "core/discovery.h"
#include "core/rtt_matrix.h"
#include "core/total_order.h"
#include "measure/orchestrator.h"

namespace anyopt::core {

/// \brief How site-level (intra-provider) preferences are resolved.
enum class SitePrefMode {
  /// From the intra-provider pairwise experiments (§4.3, default).
  kExperiments,
  /// From unicast RTT ranking — the scaling heuristic for networks too
  /// large to run site-level experiments (§4.3).
  kRttRanking,
};

/// \brief Result of predicting one configuration.
struct Prediction {
  /// Predicted catchment per target; invalid = target has no usable total
  /// order (excluded from prediction, §4.2).
  std::vector<SiteId> site_of_target;
  /// Predicted RTT per target (from the unicast matrix); negative if the
  /// target is excluded or its RTT to the predicted site was unmeasured.
  std::vector<double> rtt_ms;

  /// \brief Targets the prediction covers.
  /// \return number of targets with a valid predicted site.
  [[nodiscard]] std::size_t predicted_count() const;
  /// \brief Mean predicted RTT over the covered targets.
  /// \return the mean; 0.0 when no target has a valid predicted RTT.
  [[nodiscard]] double mean_rtt() const;

  /// \brief Catchment accuracy against a measured census.
  /// \param census the deployed measurement to compare with.
  /// \return the fraction of targets (predicted and measured) whose
  ///         predicted site matches the measurement.
  [[nodiscard]] double accuracy_against(const measure::Census& census) const;
};

/// \brief Offline catchment and RTT prediction from discovered preferences
///        (§3.4, §4.5 step 3).
class Predictor {
 public:
  /// \brief Builds a predictor from the measurement products.
  /// \param deployment the deployment under study (must outlive this).
  /// \param discovery the two-level pairwise discovery result (taken over).
  /// \param rtts the per-site unicast RTT matrix (taken over).
  /// \param mode how intra-provider site preferences are resolved.
  Predictor(const anycast::Deployment& deployment, DiscoveryResult discovery,
            RttMatrix rtts, SitePrefMode mode = SitePrefMode::kExperiments);

  /// \brief Predicts catchments and RTTs for a configuration (site subset +
  ///        announcement order; enabled peers are ignored — peers are
  ///        handled by the one-pass method of §4.4).
  ///
  /// Thread safety: `predict` (and every other const method) is a pure
  /// read of the construction-time tables — concurrent calls from any
  /// number of threads are safe with no external locking.  This is the
  /// contract the serve layer's lock-free snapshot queries rely on.
  /// \param config the configuration to predict.
  /// \return per-target catchment and RTT prediction.
  [[nodiscard]] Prediction predict(const anycast::AnycastConfig& config) const;

  /// \brief Predicts only the given clients (the serve-layer query entry
  ///        point): same per-target results as `predict`, but the
  ///        per-client preference walk runs only for `clients`, so a query
  ///        over a small client set costs O(|clients|), not O(targets).
  ///
  /// The returned vectors still span every target; targets outside
  /// `clients` are left unpredicted (invalid site, negative RTT) — exactly
  /// what masking a full `predict` down to `clients` would produce, bit for
  /// bit.  Out-of-range client ids are ignored.
  /// \param config the configuration to predict.
  /// \param clients the targets to predict for.
  /// \return per-target catchment and RTT prediction over `clients`.
  [[nodiscard]] Prediction predict_subset(
      const anycast::AnycastConfig& config,
      std::span<const TargetId> clients) const;

  /// \brief The full total preference order over the enabled sites for one
  ///        target, most preferred first (lexicographic: provider rank,
  ///        then site rank within provider).
  /// \param target the target to order for.
  /// \param config the configuration whose enabled sites are ranked.
  /// \return the ordered site list; nullopt if the target has no total
  ///         order under this configuration.
  [[nodiscard]] std::optional<std::vector<SiteId>> total_order(
      TargetId target, const anycast::AnycastConfig& config) const;

  /// \brief Fraction of targets with a usable two-level total order over
  ///        the given configuration (Fig. 4c with order accounting).
  /// \param config the configuration to evaluate.
  /// \return the orderable fraction in [0, 1].
  [[nodiscard]] double fraction_ordered(
      const anycast::AnycastConfig& config) const;

  /// \brief Fraction of targets with a total order among the given provider
  ///        slots under the given arrival ranks (Fig. 4b).
  /// \param providers the enabled provider slots.
  /// \param arrival_rank per provider slot, the position of its first
  ///        announcement.
  /// \return the orderable fraction in [0, 1].
  [[nodiscard]] double fraction_ordered_providers(
      std::span<const std::size_t> providers,
      std::span<const std::size_t> arrival_rank) const;

  /// \brief The discovery result this predictor ranks by.
  /// \return the discovery result passed at construction.
  [[nodiscard]] const DiscoveryResult& discovery() const { return discovery_; }
  /// \brief The unicast RTT matrix backing RTT predictions.
  /// \return the matrix passed at construction.
  [[nodiscard]] const RttMatrix& rtts() const { return rtts_; }
  /// \brief The deployment under study.
  /// \return the deployment passed at construction.
  [[nodiscard]] const anycast::Deployment& deployment() const {
    return deployment_;
  }
  /// \brief How intra-provider site preferences are resolved.
  /// \return the mode passed at construction.
  [[nodiscard]] SitePrefMode mode() const { return mode_; }

 private:
  struct ConfigView {
    std::vector<std::size_t> providers;          ///< enabled provider slots
    std::vector<std::size_t> arrival_rank;       ///< per provider slot
    std::vector<std::vector<SiteId>> enabled_sites;  ///< per provider slot
    std::vector<std::vector<std::size_t>> enabled_pos;  ///< local positions
  };
  [[nodiscard]] ConfigView view_of(const anycast::AnycastConfig& config) const;

  /// Predicts one target under a prepared view, writing its slot in `out`.
  /// Shared by `predict` (all targets) and `predict_subset` (query path).
  void predict_target(const ConfigView& view, std::size_t target,
                      Prediction& out) const;

  /// Best enabled site of provider `p` for `target`, or invalid on
  /// inconsistency.
  [[nodiscard]] SiteId best_site_within(std::size_t provider,
                                        const ConfigView& view,
                                        std::size_t target) const;

  const anycast::Deployment& deployment_;
  DiscoveryResult discovery_;
  RttMatrix rtts_;
  SitePrefMode mode_;
};

}  // namespace anyopt::core
