#pragma once
// Catchment and RTT prediction (§3.4, §4.5 step 3).
//
// Given the two-level discovery result and the unicast RTT matrix, predicts
// — entirely offline, no BGP experiment — which site each client network
// will reach under an arbitrary anycast configuration with a specific
// announcement order, and what the average RTT will be.

#include <optional>
#include <span>
#include <vector>

#include "anycast/config.h"
#include "core/discovery.h"
#include "core/rtt_matrix.h"
#include "core/total_order.h"
#include "measure/orchestrator.h"

namespace anyopt::core {

/// How site-level (intra-provider) preferences are resolved.
enum class SitePrefMode {
  /// From the intra-provider pairwise experiments (§4.3, default).
  kExperiments,
  /// From unicast RTT ranking — the scaling heuristic for networks too
  /// large to run site-level experiments (§4.3).
  kRttRanking,
};

/// Result of predicting one configuration.
struct Prediction {
  /// Predicted catchment per target; invalid = target has no usable total
  /// order (excluded from prediction, §4.2).
  std::vector<SiteId> site_of_target;
  /// Predicted RTT per target (from the unicast matrix); negative if the
  /// target is excluded or its RTT to the predicted site was unmeasured.
  std::vector<double> rtt_ms;

  [[nodiscard]] std::size_t predicted_count() const;
  [[nodiscard]] double mean_rtt() const;

  /// Catchment accuracy against a measured census: the fraction of targets
  /// (predicted and measured) whose predicted site matches the measurement.
  [[nodiscard]] double accuracy_against(const measure::Census& census) const;
};

class Predictor {
 public:
  Predictor(const anycast::Deployment& deployment, DiscoveryResult discovery,
            RttMatrix rtts, SitePrefMode mode = SitePrefMode::kExperiments);

  /// Predicts catchments and RTTs for `config` (site subset + announcement
  /// order; enabled peers are ignored — peers are handled by the one-pass
  /// method of §4.4).
  [[nodiscard]] Prediction predict(const anycast::AnycastConfig& config) const;

  /// The full total preference order over the enabled sites for one
  /// target, most preferred first (lexicographic: provider rank, then site
  /// rank within provider); nullopt if the target has no total order.
  [[nodiscard]] std::optional<std::vector<SiteId>> total_order(
      TargetId target, const anycast::AnycastConfig& config) const;

  /// Fraction of targets with a usable two-level total order over the
  /// given configuration (Fig. 4c with order accounting).
  [[nodiscard]] double fraction_ordered(
      const anycast::AnycastConfig& config) const;

  /// Fraction of targets with a total order among the given provider slots
  /// under the given arrival ranks (Fig. 4b); `arrival_rank[p]` = position
  /// of provider p's first announcement.
  [[nodiscard]] double fraction_ordered_providers(
      std::span<const std::size_t> providers,
      std::span<const std::size_t> arrival_rank) const;

  [[nodiscard]] const DiscoveryResult& discovery() const { return discovery_; }
  [[nodiscard]] const RttMatrix& rtts() const { return rtts_; }
  [[nodiscard]] const anycast::Deployment& deployment() const {
    return deployment_;
  }
  [[nodiscard]] SitePrefMode mode() const { return mode_; }

 private:
  struct ConfigView {
    std::vector<std::size_t> providers;          ///< enabled provider slots
    std::vector<std::size_t> arrival_rank;       ///< per provider slot
    std::vector<std::vector<SiteId>> enabled_sites;  ///< per provider slot
    std::vector<std::vector<std::size_t>> enabled_pos;  ///< local positions
  };
  [[nodiscard]] ConfigView view_of(const anycast::AnycastConfig& config) const;

  /// Best enabled site of provider `p` for `target`, or invalid on
  /// inconsistency.
  [[nodiscard]] SiteId best_site_within(std::size_t provider,
                                        const ConfigView& view,
                                        std::size_t target) const;

  const anycast::Deployment& deployment_;
  DiscoveryResult discovery_;
  RttMatrix rtts_;
  SitePrefMode mode_;
};

}  // namespace anyopt::core
