#include "core/anyopt.h"

#include "netbase/telemetry.h"

namespace anyopt::core {

namespace {

/// Pre-resolved pipeline metrics (one registry lookup per process).
struct PipelineMetrics {
  telemetry::Counter* experiments;
  telemetry::Histogram* discover_ms;
  telemetry::Histogram* rtt_matrix_ms;
  telemetry::Histogram* optimize_ms;
  telemetry::Histogram* tune_peers_ms;
  telemetry::Histogram* predict_ms;

  static const PipelineMetrics& get() {
    static const PipelineMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return PipelineMetrics{&reg.counter("pipeline.experiments"),
                             &reg.histogram("pipeline.discover_ms"),
                             &reg.histogram("pipeline.rtt_matrix_ms"),
                             &reg.histogram("pipeline.optimize_ms"),
                             &reg.histogram("pipeline.tune_peers_ms"),
                             &reg.histogram("pipeline.predict_ms")};
    }();
    return m;
  }
};

}  // namespace

AnyOptPipeline::AnyOptPipeline(const measure::Orchestrator& orchestrator,
                               PipelineOptions options)
    : orchestrator_(orchestrator), options_(std::move(options)) {
  if (options_.store != nullptr) {
    options_.discovery.store = options_.store;
  }
}

const DiscoveryResult& AnyOptPipeline::discover() {
  if (!discovery_.has_value()) {
    const bool telem = telemetry::enabled();
    telemetry::ScopedTimer span(
        "pipeline.discover", "pipeline",
        telem ? PipelineMetrics::get().discover_ms : nullptr);
    const Discovery discovery(orchestrator_, options_.discovery);
    discovery_ = discovery.run();
    experiments_ += discovery_->experiments;
    if (telem) {
      PipelineMetrics::get().experiments->add(discovery_->experiments);
    }
  }
  return *discovery_;
}

const RttMatrix& AnyOptPipeline::measure_rtts() {
  if (!rtts_.has_value()) {
    const bool telem = telemetry::enabled();
    telemetry::ScopedTimer span(
        "pipeline.rtt_matrix", "pipeline",
        telem ? PipelineMetrics::get().rtt_matrix_ms : nullptr);
    rtts_ = RttMatrix::measure(orchestrator_, options_.rtt_nonce_base,
                               options_.store);
    experiments_ += rtts_->site_count();
    if (telem) {
      PipelineMetrics::get().experiments->add(rtts_->site_count());
    }
  }
  return *rtts_;
}

const Predictor& AnyOptPipeline::predictor() {
  if (predictor_ == nullptr) {
    predictor_ = std::make_unique<Predictor>(
        orchestrator_.world().deployment(), discover(), measure_rtts(),
        options_.site_pref_mode);
  }
  return *predictor_;
}

Prediction AnyOptPipeline::predict(const anycast::AnycastConfig& config) {
  const Predictor& p = predictor();  // may trigger the measurement stages
  telemetry::ScopedTimer span(
      "pipeline.predict", "pipeline",
      telemetry::enabled() ? PipelineMetrics::get().predict_ms : nullptr);
  return p.predict(config);
}

SearchOutcome AnyOptPipeline::optimize(OptimizerOptions options) {
  const Optimizer optimizer(predictor(), options);
  telemetry::ScopedTimer span(
      "pipeline.optimize", "pipeline",
      telemetry::enabled() ? PipelineMetrics::get().optimize_ms : nullptr);
  return optimizer.search();
}

OnePassResult AnyOptPipeline::tune_peers(
    const anycast::AnycastConfig& baseline) const {
  telemetry::ScopedTimer span(
      "pipeline.tune_peers", "pipeline",
      telemetry::enabled() ? PipelineMetrics::get().tune_peers_ms : nullptr);
  OnePassOptions options;
  options.threads = options_.discovery.threads;
  options.store = options_.store;
  const OnePassPeerSelector selector(orchestrator_, options);
  return selector.run(baseline);
}

SplpoInstance AnyOptPipeline::splpo_instance(
    const anycast::AnycastConfig& order) {
  const Predictor& pred = predictor();
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t sites = deployment.site_count();
  const std::size_t targets = orchestrator_.world().targets().size();

  // Collect targets with a usable total order under this announcement
  // order; they become the SPLPO clients.
  std::vector<std::pair<TargetId, std::vector<SiteId>>> ordered;
  for (std::size_t t = 0; t < targets; ++t) {
    const TargetId id{static_cast<TargetId::underlying_type>(t)};
    if (auto total = pred.total_order(id, order)) {
      ordered.push_back({id, std::move(*total)});
    }
  }

  SplpoInstance inst = SplpoInstance::make(sites, ordered.size());
  for (std::size_t c = 0; c < ordered.size(); ++c) {
    const auto& [target, preference] = ordered[c];
    for (const SiteId s : preference) {
      inst.preference[c].push_back(s.value());
      const double r = pred.rtts().rtt(s, target);
      inst.set_cost(c, s.value(),
                    r >= 0 ? r : SplpoInstance::kInf);
    }
  }
  return inst;
}

}  // namespace anyopt::core
