#include "core/anyopt.h"

namespace anyopt::core {

AnyOptPipeline::AnyOptPipeline(const measure::Orchestrator& orchestrator,
                               PipelineOptions options)
    : orchestrator_(orchestrator), options_(std::move(options)) {}

const DiscoveryResult& AnyOptPipeline::discover() {
  if (!discovery_.has_value()) {
    const Discovery discovery(orchestrator_, options_.discovery);
    discovery_ = discovery.run();
    experiments_ += discovery_->experiments;
  }
  return *discovery_;
}

const RttMatrix& AnyOptPipeline::measure_rtts() {
  if (!rtts_.has_value()) {
    rtts_ = RttMatrix::measure(orchestrator_, options_.rtt_nonce_base);
    experiments_ += rtts_->site_count();
  }
  return *rtts_;
}

const Predictor& AnyOptPipeline::predictor() {
  if (predictor_ == nullptr) {
    predictor_ = std::make_unique<Predictor>(
        orchestrator_.world().deployment(), discover(), measure_rtts(),
        options_.site_pref_mode);
  }
  return *predictor_;
}

Prediction AnyOptPipeline::predict(const anycast::AnycastConfig& config) {
  return predictor().predict(config);
}

SearchOutcome AnyOptPipeline::optimize(OptimizerOptions options) {
  const Optimizer optimizer(predictor(), options);
  return optimizer.search();
}

OnePassResult AnyOptPipeline::tune_peers(
    const anycast::AnycastConfig& baseline) const {
  OnePassOptions options;
  options.threads = options_.discovery.threads;
  const OnePassPeerSelector selector(orchestrator_, options);
  return selector.run(baseline);
}

SplpoInstance AnyOptPipeline::splpo_instance(
    const anycast::AnycastConfig& order) {
  const Predictor& pred = predictor();
  const auto& deployment = orchestrator_.world().deployment();
  const std::size_t sites = deployment.site_count();
  const std::size_t targets = orchestrator_.world().targets().size();

  // Collect targets with a usable total order under this announcement
  // order; they become the SPLPO clients.
  std::vector<std::pair<TargetId, std::vector<SiteId>>> ordered;
  for (std::size_t t = 0; t < targets; ++t) {
    const TargetId id{static_cast<TargetId::underlying_type>(t)};
    if (auto total = pred.total_order(id, order)) {
      ordered.push_back({id, std::move(*total)});
    }
  }

  SplpoInstance inst = SplpoInstance::make(sites, ordered.size());
  for (std::size_t c = 0; c < ordered.size(); ++c) {
    const auto& [target, preference] = ordered[c];
    for (const SiteId s : preference) {
      inst.preference[c].push_back(s.value());
      const double r = pred.rtts().rtt(s, target);
      inst.set_cost(c, s.value(),
                    r >= 0 ? r : SplpoInstance::kInf);
    }
  }
  return inst;
}

}  // namespace anyopt::core
