#pragma once
// AnyOpt — umbrella header and end-to-end pipeline (§4.5 "Putting it
// Together").
//
//   #include "core/anyopt.h"
//
//   auto world = anycast::World::create(anycast::WorldParams::paper_scale());
//   measure::Orchestrator orch(*world);
//   core::AnyOptPipeline anyopt(orch);
//   anyopt.discover();                       // steps 1-2: measurements
//   auto best = anyopt.optimize({.max_sites = 12});   // step 3: offline
//   auto peers = anyopt.tune_peers(best.best.config); // §4.4: one-pass
//
// All heavy stages are cached: discovery and the RTT matrix run once.

#include <memory>
#include <optional>

#include "core/discovery.h"
#include "core/optimizer.h"
#include "core/peers.h"
#include "core/planner.h"
#include "core/predictor.h"
#include "core/rtt_matrix.h"
#include "core/sparse.h"
#include "core/splpo.h"
#include "core/total_order.h"

namespace anyopt::core {

/// \brief Configuration of the end-to-end pipeline.
struct PipelineOptions {
  DiscoveryOptions discovery;  ///< campaign parameters for `discover()`
  /// How intra-provider site preferences are resolved (experiments vs the
  /// RTT-ranking scaling heuristic of §4.3).
  SitePrefMode site_pref_mode = SitePrefMode::kExperiments;
  /// Root of the content-derived nonces of the per-site RTT experiments.
  std::uint64_t rtt_nonce_base = 0x5111;
  /// Optional persistent result store, threaded through every measurement
  /// stage — discovery campaigns, the RTT matrix and peer tuning — so a
  /// warm pipeline replays persisted results instead of re-simulating.
  /// Overrides `discovery.store`.  Not owned; must outlive the pipeline.
  measure::ResultStore* store = nullptr;
};

/// \brief Facade wiring the measurement and optimization stages together.
class AnyOptPipeline {
 public:
  /// \brief Builds the pipeline over a measurement orchestrator.
  /// \param orchestrator the measurement engine (must outlive this).
  /// \param options stage parameters; see `PipelineOptions`.
  explicit AnyOptPipeline(const measure::Orchestrator& orchestrator,
                          PipelineOptions options = {});

  /// \brief Runs (or returns the cached) two-level pairwise discovery.
  /// \return the discovery result; owned by the pipeline.
  const DiscoveryResult& discover();

  /// \brief Runs (or returns the cached) per-site unicast RTT measurements.
  /// \return the site-by-target RTT matrix; owned by the pipeline.
  const RttMatrix& measure_rtts();

  /// \brief The catchment/RTT predictor (triggers discovery + RTT
  ///        measurement on first use).
  /// \return the predictor; owned by the pipeline.
  const Predictor& predictor();

  /// \brief Predicts one configuration (offline; no BGP experiment).
  /// \param config the anycast configuration to predict.
  /// \return per-target catchment and RTT prediction.
  [[nodiscard]] Prediction predict(const anycast::AnycastConfig& config);

  /// \brief Offline configuration search over the predictor.
  /// \param options search-space and objective parameters.
  /// \return the best configuration found plus the search trace.
  [[nodiscard]] SearchOutcome optimize(OptimizerOptions options = {});

  /// \brief One-pass peer incorporation on top of a transit-only baseline
  ///        (§4.4).
  /// \param baseline the transit-only configuration to extend.
  /// \return the per-peer decisions and the resulting configuration.
  [[nodiscard]] OnePassResult tune_peers(
      const anycast::AnycastConfig& baseline) const;

  /// \brief Builds the SPLPO instance (Appendix B) for the current
  ///        discovery: sites are facilities, targets are clients, unicast
  ///        RTTs are costs and total orders (under `order`) are the
  ///        preference lists.  Targets without a total order are omitted,
  ///        as §4.5 step 3 prescribes.
  /// \param order the announcement order defining each target's preference
  ///        list.
  /// \return the facility-location instance.
  [[nodiscard]] SplpoInstance splpo_instance(
      const anycast::AnycastConfig& order);

  /// \brief The orchestrator this pipeline measures through.
  /// \return the orchestrator passed at construction.
  [[nodiscard]] const measure::Orchestrator& orchestrator() const {
    return orchestrator_;
  }
  /// \brief Total BGP experiments the pipeline has run so far.
  /// \return the cumulative experiment count across all cached stages.
  [[nodiscard]] std::size_t experiments_run() const { return experiments_; }

 private:
  const measure::Orchestrator& orchestrator_;
  PipelineOptions options_;
  std::optional<DiscoveryResult> discovery_;
  std::optional<RttMatrix> rtts_;
  std::unique_ptr<Predictor> predictor_;
  std::size_t experiments_ = 0;
};

}  // namespace anyopt::core
