#pragma once
// AnyOpt — umbrella header and end-to-end pipeline (§4.5 "Putting it
// Together").
//
//   #include "core/anyopt.h"
//
//   auto world = anycast::World::create(anycast::WorldParams::paper_scale());
//   measure::Orchestrator orch(*world);
//   core::AnyOptPipeline anyopt(orch);
//   anyopt.discover();                       // steps 1-2: measurements
//   auto best = anyopt.optimize({.max_sites = 12});   // step 3: offline
//   auto peers = anyopt.tune_peers(best.best.config); // §4.4: one-pass
//
// All heavy stages are cached: discovery and the RTT matrix run once.

#include <memory>
#include <optional>

#include "core/discovery.h"
#include "core/optimizer.h"
#include "core/peers.h"
#include "core/planner.h"
#include "core/predictor.h"
#include "core/rtt_matrix.h"
#include "core/sparse.h"
#include "core/splpo.h"
#include "core/total_order.h"

namespace anyopt::core {

struct PipelineOptions {
  DiscoveryOptions discovery;
  SitePrefMode site_pref_mode = SitePrefMode::kExperiments;
  std::uint64_t rtt_nonce_base = 0x5111;
};

/// Facade wiring the measurement and optimization stages together.
class AnyOptPipeline {
 public:
  explicit AnyOptPipeline(const measure::Orchestrator& orchestrator,
                          PipelineOptions options = {});

  /// Runs (or returns the cached) two-level pairwise discovery.
  const DiscoveryResult& discover();

  /// Runs (or returns the cached) per-site unicast RTT measurements.
  const RttMatrix& measure_rtts();

  /// The catchment/RTT predictor (triggers discovery + RTT measurement).
  const Predictor& predictor();

  /// Predicts one configuration (offline; no BGP experiment).
  [[nodiscard]] Prediction predict(const anycast::AnycastConfig& config);

  /// Offline configuration search.
  [[nodiscard]] SearchOutcome optimize(OptimizerOptions options = {});

  /// One-pass peer incorporation on top of a transit-only baseline.
  [[nodiscard]] OnePassResult tune_peers(
      const anycast::AnycastConfig& baseline) const;

  /// Builds the SPLPO instance (Appendix B) for the current discovery:
  /// sites are facilities, targets are clients, unicast RTTs are costs and
  /// total orders (under `order`) are the preference lists.  Targets
  /// without a total order are omitted, as §4.5 step 3 prescribes.
  [[nodiscard]] SplpoInstance splpo_instance(
      const anycast::AnycastConfig& order);

  [[nodiscard]] const measure::Orchestrator& orchestrator() const {
    return orchestrator_;
  }
  /// Total BGP experiments the pipeline has run so far.
  [[nodiscard]] std::size_t experiments_run() const { return experiments_; }

 private:
  const measure::Orchestrator& orchestrator_;
  PipelineOptions options_;
  std::optional<DiscoveryResult> discovery_;
  std::optional<RttMatrix> rtts_;
  std::unique_ptr<Predictor> predictor_;
  std::size_t experiments_ = 0;
};

}  // namespace anyopt::core
