#pragma once
// Total-order construction from pairwise preferences.
//
// For one client and a set of items, the pairwise outcomes (with
// order-dependent pairs oriented by a given arrival order) form a
// tournament.  A tournament is consistent with a total order iff it is
// transitive, which for tournaments is equivalent to all out-degrees being
// distinct — an O(n²) check that the optimizer runs millions of times.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/preference.h"

namespace anyopt::core {

/// \brief A complete orientation of the pairs among `n` items:
///        beats[i*n + j] == true means item i beats item j.
struct Tournament {
  std::size_t n = 0;          ///< item count
  std::vector<char> beats;    ///< row-major orientation matrix

  /// \brief Resets to `items` items with every pair unoriented.
  /// \param items the item count.
  void init(std::size_t items) {
    n = items;
    beats.assign(items * items, 0);
  }
  /// \brief Orients one pair.
  /// \param winner the preferred item.
  /// \param loser the beaten item.
  void set_winner(std::size_t winner, std::size_t loser) {
    beats[winner * n + loser] = 1;
    beats[loser * n + winner] = 0;
  }
  /// \brief Whether item `i` beats item `j`.
  /// \param i first item.
  /// \param j second item.
  /// \return true iff `i` is preferred over `j`.
  [[nodiscard]] bool wins(std::size_t i, std::size_t j) const {
    return beats[i * n + j] != 0;
  }
};

/// \brief Ranks a transitive tournament.
/// \param t the tournament to rank.
/// \return the items from most to least preferred; nullopt if the
///         tournament is not transitive (the client has no total order).
[[nodiscard]] std::optional<std::vector<std::size_t>> total_order_of(
    const Tournament& t);

/// \brief Builds the tournament for one target over a subset of items.
/// \param table the pairwise preference table.
/// \param target the target (client) whose preferences are read.
/// \param items the item subset (indices into the table's item space).
/// \param arrival_rank per item, orients order-dependent pairs: lower rank
///        = announced earlier = wins such ties.
/// \return the oriented tournament; nullopt if any pair among the subset
///         is kUnknown or kInconsistent.
[[nodiscard]] std::optional<Tournament> build_tournament(
    const PairwiseTable& table, std::size_t target,
    std::span<const std::size_t> items,
    std::span<const std::size_t> arrival_rank);

/// \brief Convenience: total order for a target over `items`.
/// \param table the pairwise preference table.
/// \param target the target (client) whose preferences are read.
/// \param items the item subset (indices into the table's item space).
/// \param arrival_rank see `build_tournament`.
/// \return positions into `items`, most preferred first; nullopt if the
///         target's preferences are incomplete or inconsistent.
[[nodiscard]] std::optional<std::vector<std::size_t>> target_total_order(
    const PairwiseTable& table, std::size_t target,
    std::span<const std::size_t> items,
    std::span<const std::size_t> arrival_rank);

/// \brief Fraction of targets whose pairwise preferences over `items` form
///        a total order under the given arrival ranks.
/// \param table the pairwise preference table.
/// \param items the item subset (indices into the table's item space).
/// \param arrival_rank see `build_tournament`.
/// \return the orderable fraction in [0, 1].
[[nodiscard]] double fraction_with_total_order(
    const PairwiseTable& table, std::span<const std::size_t> items,
    std::span<const std::size_t> arrival_rank);

}  // namespace anyopt::core
