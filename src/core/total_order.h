#pragma once
// Total-order construction from pairwise preferences.
//
// For one client and a set of items, the pairwise outcomes (with
// order-dependent pairs oriented by a given arrival order) form a
// tournament.  A tournament is consistent with a total order iff it is
// transitive, which for tournaments is equivalent to all out-degrees being
// distinct — an O(n²) check that the optimizer runs millions of times.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/preference.h"

namespace anyopt::core {

/// A complete orientation of the pairs among `n` items.
/// beats[i*n + j] == true means item i beats item j.
struct Tournament {
  std::size_t n = 0;
  std::vector<char> beats;

  void init(std::size_t items) {
    n = items;
    beats.assign(items * items, 0);
  }
  void set_winner(std::size_t winner, std::size_t loser) {
    beats[winner * n + loser] = 1;
    beats[loser * n + winner] = 0;
  }
  [[nodiscard]] bool wins(std::size_t i, std::size_t j) const {
    return beats[i * n + j] != 0;
  }
};

/// If the tournament is transitive, returns the items ranked from most to
/// least preferred; otherwise nullopt (the client has no total order).
[[nodiscard]] std::optional<std::vector<std::size_t>> total_order_of(
    const Tournament& t);

/// Builds the tournament for one target over a subset of items.
/// `arrival_rank[i]` orients order-dependent pairs: lower rank = announced
/// earlier = wins such ties.  Returns nullopt if any pair among the subset
/// is kUnknown or kInconsistent.
[[nodiscard]] std::optional<Tournament> build_tournament(
    const PairwiseTable& table, std::size_t target,
    std::span<const std::size_t> items,
    std::span<const std::size_t> arrival_rank);

/// Convenience: total order for a target over `items` (indices into the
/// table's item space), or nullopt if inconsistent.  The returned ranking
/// contains positions into `items`.
[[nodiscard]] std::optional<std::vector<std::size_t>> target_total_order(
    const PairwiseTable& table, std::size_t target,
    std::span<const std::size_t> items,
    std::span<const std::size_t> arrival_rank);

/// Fraction of targets whose pairwise preferences over `items` form a total
/// order under the given arrival ranks.
[[nodiscard]] double fraction_with_total_order(
    const PairwiseTable& table, std::span<const std::size_t> items,
    std::span<const std::size_t> arrival_rank);

}  // namespace anyopt::core
