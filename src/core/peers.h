#pragma once
// One-pass peer incorporation (§4.4).
//
// Starting from the optimized transit-only configuration, each peering
// session is enabled alone (M BGP experiments for M peers), measuring its
// catchment and the resulting mean-RTT change.  Beneficial peers (those
// that reduce the mean RTT) are then added greedily, largest catchment
// first, under the conservative assumption that a peer attracts its whole
// one-pass catchment even when other peers are present.

#include <cstdint>
#include <vector>

#include "anycast/config.h"
#include "measure/orchestrator.h"
#include "netbase/ids.h"

namespace anyopt::measure {
class ResultStore;
}  // namespace anyopt::measure

namespace anyopt::core {

/// \brief One peer's one-pass measurement.
struct PeerMeasurement {
  bgp::AttachmentIndex attachment = bgp::kNoAttachment;
  SiteId site;                        ///< the site terminating the session
  std::size_t catchment_size = 0;     ///< targets attracted in the one-pass run
  double mean_rtt_ms = 0;             ///< deployment mean RTT with this peer on
  double delta_ms = 0;                ///< mean_rtt_ms - baseline mean
  bool beneficial = false;            ///< delta < 0
  /// (target, RTT-via-peer) for every target in the peer's catchment;
  /// feeds the conservative greedy estimate.
  std::vector<std::pair<std::uint32_t, double>> catchment_rtts;
};

/// \brief Output of the full one-pass peer-selection procedure.
struct OnePassResult {
  /// Mean RTT of the transit-only baseline deployment.  Computed via
  /// `Census::mean_rtt()`, so an unreachable baseline reports 0.0 (empty
  /// census, "no data") rather than a real latency; see
  /// `Census::reachable_count()`.
  double baseline_mean_rtt = 0;
  /// All measured peers, in attachment order.
  std::vector<PeerMeasurement> peers;
  /// Peers that reached at least one target.
  std::size_t reachable_peers = 0;
  /// Attachments chosen by the conservative greedy pass.
  std::vector<bgp::AttachmentIndex> chosen;
  /// Baseline configuration plus the chosen peers.
  anycast::AnycastConfig with_beneficial_peers;
  /// Greedy's predicted mean RTT after adding the chosen peers.
  double predicted_mean_rtt = 0;
  /// BGP experiments performed (== number of peers measured).
  std::size_t experiments = 0;
};

/// \brief Configuration of the one-pass procedure.
struct OnePassOptions {
  std::uint64_t nonce_base = 0x9EE5;  ///< root of content-derived nonces
  /// Worker threads for the per-peer experiment batch; 1 = serial,
  /// 0 = hardware concurrency.  Results are bit-identical at any setting.
  std::size_t threads = 1;
  /// Optional persistent result store (see
  /// `measure::CampaignRunnerOptions::store`).  Not owned.
  measure::ResultStore* store = nullptr;
  /// Incremental re-convergence: converge the transit-only baseline once,
  /// then measure each peer as a copy-on-write overlay propagating only
  /// that peer's announcement.  The baseline census is the empty-delta
  /// overlay over the same base with the classic baseline nonce — bit
  /// identical to the classic run, so it may share a store with classic
  /// campaigns; per-peer overlay censuses carry tagged nonces (their
  /// jitter streams differ from classic runs of the same configs).  Falls
  /// back to classic runs when the baseline already enables peers (there
  /// is no peer-free base to share).
  bool incremental = false;
};

/// \brief Runs the paper's one-pass peer incorporation (§4.4).
class OnePassPeerSelector {
 public:
  /// \brief Builds the selector over a measurement orchestrator.
  /// \param orchestrator the measurement engine (must outlive this).
  /// \param options nonce root and parallelism; see `OnePassOptions`.
  OnePassPeerSelector(const measure::Orchestrator& orchestrator,
                      OnePassOptions options = {});

  /// \brief Runs the full one-pass procedure on top of a baseline.
  /// \param baseline a transit-only configuration, typically the
  ///        optimizer's output.
  /// \return per-peer measurements plus the greedy peer selection.
  [[nodiscard]] OnePassResult run(
      const anycast::AnycastConfig& baseline) const;

 private:
  const measure::Orchestrator& orchestrator_;
  OnePassOptions options_;
};

}  // namespace anyopt::core
