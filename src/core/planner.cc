#include "core/planner.h"

#include <cmath>
#include <limits>

namespace anyopt::core {

MeasurementPlan plan_measurements(const PlannerInput& input) {
  MeasurementPlan plan;
  plan.singleton_experiments = input.sites;
  plan.provider_pairwise =
      input.transit_providers * (input.transit_providers - 1);  // C(P,2) * 2
  if (input.site_level_pairwise) {
    const double per_provider =
        input.avg_sites_per_provider * (input.avg_sites_per_provider - 1) /
        2.0;
    plan.site_pairwise = static_cast<std::size_t>(
        std::llround(per_provider *
                     static_cast<double>(input.transit_providers)));
  }
  plan.total_experiments = plan.singleton_experiments +
                           plan.provider_pairwise + plan.site_pairwise;

  const double hours_per_experiment =
      input.spacing_hours / static_cast<double>(input.parallel_prefixes);
  plan.singleton_days =
      static_cast<double>(plan.singleton_experiments) * hours_per_experiment /
      24.0;
  plan.pairwise_days =
      static_cast<double>(plan.provider_pairwise + plan.site_pairwise) *
      hours_per_experiment / 24.0;
  plan.total_days = plan.singleton_days + plan.pairwise_days;

  plan.naive_configurations =
      input.sites >= 63 ? std::numeric_limits<std::size_t>::max()
                        : (std::size_t{1} << input.sites);
  return plan;
}

}  // namespace anyopt::core
