#include "serve/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "netbase/json.h"

namespace anyopt::serve {

namespace {

/// Extracts an id array ("sites"/"clients"): every element must be a
/// non-negative integer number.
Result<std::vector<std::uint32_t>> parse_ids(const json::Value& value,
                                             const char* key) {
  if (!value.is_array()) {
    return Error::parse(std::string(key) + " must be an array");
  }
  std::vector<std::uint32_t> ids;
  ids.reserve(value.items.size());
  for (const json::Value& item : value.items) {
    if (!item.is_number() || item.number_value < 0 ||
        item.number_value != std::floor(item.number_value) ||
        item.number_value > 4294967295.0) {
      return Error::parse(std::string(key) +
                          " entries must be non-negative integers");
    }
    ids.push_back(static_cast<std::uint32_t>(item.number_value));
  }
  return ids;
}

}  // namespace

Result<Request> parse_request(std::string_view line) {
  Result<json::Value> doc = json::parse(line);
  if (!doc.ok()) {
    return Error::parse("request is not valid JSON: " + doc.error().message);
  }
  if (!doc.value().is_object()) {
    return Error::parse("request must be a JSON object");
  }

  Request request;
  bool saw_op = false;
  bool saw_sites = false;
  bool saw_clients = false;
  bool saw_intensity = false;
  for (const auto& [key, value] : doc.value().members) {
    if (key == "op") {
      if (!value.is_string()) return Error::parse("op must be a string");
      if (value.string_value == "predict") {
        request.op = Op::kPredict;
      } else if (value.string_value == "score") {
        request.op = Op::kScore;
      } else if (value.string_value == "mitigate") {
        request.op = Op::kMitigate;
      } else if (value.string_value == "info") {
        request.op = Op::kInfo;
      } else if (value.string_value == "reload") {
        request.op = Op::kReload;
      } else {
        return Error::parse("unknown op \"" + value.string_value + "\"");
      }
      saw_op = true;
    } else if (key == "sites") {
      Result<std::vector<std::uint32_t>> ids = parse_ids(value, "sites");
      if (!ids.ok()) return ids.error();
      request.sites = std::move(ids).value();
      saw_sites = true;
    } else if (key == "clients") {
      Result<std::vector<std::uint32_t>> ids = parse_ids(value, "clients");
      if (!ids.ok()) return ids.error();
      request.clients = std::move(ids).value();
      saw_clients = true;
    } else if (key == "detail") {
      if (!value.is_bool()) return Error::parse("detail must be a boolean");
      request.detail = value.bool_value;
    } else if (key == "intensity") {
      if (!value.is_number() || !(value.number_value > 1.0)) {
        return Error::parse("intensity must be a number greater than 1");
      }
      request.intensity = value.number_value;
      saw_intensity = true;
    } else {
      return Error::parse("unknown request key \"" + key + "\"");
    }
  }
  if (!saw_op) return Error::parse("request has no op");

  const bool takes_config =
      request.op == Op::kPredict || request.op == Op::kScore;
  if (takes_config) {
    if (!saw_sites || request.sites.empty()) {
      return Error::parse("predict/score require a non-empty sites array");
    }
  } else if (saw_sites && request.op != Op::kMitigate) {
    return Error::parse("sites is only valid for predict/score/mitigate");
  }
  if (saw_sites) {
    // mitigate accepts an absent sites array (all sites) but a present one
    // must be a real configuration, same as predict/score.
    if (request.sites.empty()) {
      return Error::parse("sites must be non-empty when present");
    }
    const std::unordered_set<std::uint32_t> unique(request.sites.begin(),
                                                   request.sites.end());
    if (unique.size() != request.sites.size()) {
      return Error::parse("sites must not repeat (a site announces once)");
    }
  }
  if (saw_clients && request.op != Op::kPredict) {
    return Error::parse("clients is only valid for predict");
  }
  if (request.detail && request.op != Op::kPredict) {
    return Error::parse("detail is only valid for predict");
  }
  if (saw_intensity && request.op != Op::kMitigate) {
    return Error::parse("intensity is only valid for mitigate");
  }
  return request;
}

std::string render_error(std::string_view message) {
  std::string out = "{\"ok\":false,\"error\":\"";
  out += json::escape(message);
  out += "\"}";
  return out;
}

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace anyopt::serve
