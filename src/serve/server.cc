#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace anyopt::serve {

namespace {

/// Writes the whole buffer, riding out short writes.  False on error.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.threads == 0) options_.threads = 1;
}

Server::~Server() { shutdown(); }

Status Server::serve() {
  if (options_.socket_path.empty()) {
    return Error::invalid("server needs a socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    return Error::invalid("socket path too long: " + options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error::state(std::string("socket: ") + std::strerror(errno));
  }
  // A previous daemon's socket file would make bind fail with EADDRINUSE;
  // a stale path is indistinguishable from a live one here, so the caller
  // owns the path and we take it over.
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    return Error::state("bind " + options_.socket_path + ": " +
                        std::strerror(err));
  }
  if (::listen(fd, options_.backlog) < 0) {
    const int err = errno;
    ::close(fd);
    return Error::state("listen " + options_.socket_path + ": " +
                        std::strerror(err));
  }
  listen_fd_.store(fd, std::memory_order_release);

  {
    // Pool scope: its destructor joins the connection workers, so serve()
    // returns only after every in-flight request has been answered.
    ThreadPool pool(options_.threads);
    while (!stopping_.load(std::memory_order_acquire)) {
      const int conn = ::accept(fd, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR) continue;
        break;  // listen socket shut down (or a fatal accept error)
      }
      {
        const std::lock_guard<std::mutex> lock(connections_mutex_);
        connections_.push_back(conn);
      }
      (void)pool.submit([this, conn] { handle_connection(conn); });
    }
  }

  ::close(fd);
  listen_fd_.store(-1, std::memory_order_release);
  ::unlink(options_.socket_path.c_str());
  return {};
}

void Server::shutdown() {
  stopping_.store(true, std::memory_order_release);
  // Unblock accept(2): shutdown on the listening socket makes it return
  // with an error on Linux; the loop then exits via `stopping_`.
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const int conn : connections_) ::shutdown(conn, SHUT_RDWR);
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      std::string response = service_.handle_line(line);
      response += '\n';
      if (!send_all(fd, response.data(), response.size())) {
        forget_connection(fd);
        ::close(fd);
        return;
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  forget_connection(fd);
  ::close(fd);
}

void Server::forget_connection(int fd) {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.erase(
      std::remove(connections_.begin(), connections_.end(), fd),
      connections_.end());
}

}  // namespace anyopt::serve
