#pragma once
// The what-if query service: a lock-free read path over refcounted
// immutable snapshots.
//
// Design.  All query state lives in one `Snapshot` (serve/snapshot.h),
// immutable once built.  The service holds the current snapshot in a
// mutex-guarded slot plus an atomic, monotonically increasing version
// counter.  Readers go through a thread-local epoch cache {owner,
// version, shared_ptr}: the steady-state hot path is ONE acquire atomic
// load of the version — no mutex, no refcount traffic, no allocation —
// and only when the version moved does a thread take the swap mutex to
// re-read the slot, a cost paid once per thread per swap, never per
// query.  (The slot is deliberately NOT a std::atomic<std::shared_ptr>:
// libstdc++'s _Sp_atomic unlocks the reader side with a *relaxed* RMW,
// which leaves the internal pointer handoff unordered under the strict
// C++ memory model — ThreadSanitizer rightly flags it.  The mutex slot
// is provably ordered, costs the same number of contended operations on
// the cold path, and keeps the hot path untouched.)
//
// Publication protocol ("a query never observes a partially-loaded
// snapshot"): `publish` stores the FULLY BUILT snapshot into the slot
// and release-bumps the version, both under the swap mutex.  A reader
// that sees the new version takes the mutex and finds a pointer that is
// either the new snapshot or an even newer one — never a partial one,
// never the outgoing one under that version... and the outgoing snapshot
// stays alive (shared_ptr refcount) until the last in-flight query and
// the last thread-local epoch cache drop it.  A query concurrent with
// `publish` answers from exactly one of the two snapshots, bit for bit
// (tests/serve/serve_concurrency_test.cc).
//
// Pinning caveat: an idle reader thread's epoch cache keeps its last
// snapshot alive until that thread issues another query or exits — after
// a swap, memory peaks at (live snapshots) ≤ 1 + idle reader threads.
// The `bytes.snapshot` gauge's value/max expose exactly that.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "netbase/result.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"

namespace anyopt::serve {

/// \brief Snapshot holder + query executor.
class Service {
 public:
  Service() = default;
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// \brief Atomically swaps in a fully built snapshot; assigns it the
  ///        next version.  Safe against any number of concurrent readers
  ///        (they keep answering from the outgoing snapshot until they
  ///        observe the new version).
  /// \param snapshot the snapshot to publish (must not be null).
  /// \return the version assigned.
  std::uint64_t publish(std::shared_ptr<Snapshot> snapshot);

  /// \brief The current snapshot via the thread-local epoch cache (one
  ///        atomic load steady-state, no lock; the swap mutex is taken
  ///        only on the first query after a publish).  Null until the
  ///        first `publish`.
  [[nodiscard]] std::shared_ptr<const Snapshot> current() const;

  /// \brief The current published version (0 = nothing published yet).
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// \brief Installs the `reload` op's rebuilder (e.g. "re-run
  ///        Snapshot::build over the same options").  Call before serving
  ///        starts; not synchronized against in-flight reloads.
  void set_reloader(
      std::function<Result<std::shared_ptr<Snapshot>>()> reloader) {
    reloader_ = std::move(reloader);
  }

  /// \brief Parses, executes and renders one protocol line — the complete
  ///        per-query path.  Counts `serve.queries`/`serve.errors`, times
  ///        `serve.query_ms` (a traced span) and samples
  ///        `serve.snapshot_age_us`.  Steady state takes no lock; the
  ///        swap mutex is touched only by a thread's first query after a
  ///        publish and by the `reload` op (which builds a new snapshot,
  ///        then publishes).
  /// \param line one request line (no trailing newline needed).
  /// \return the response line (no trailing newline).
  [[nodiscard]] std::string handle_line(std::string_view line);

  /// \brief Executes a parsed request against one specific snapshot —
  ///        the pure core of `handle_line`, exposed so tests can compare
  ///        concurrent responses against single-threaded runs over a
  ///        known snapshot.  `reload` is not executable here.
  /// \param snapshot the snapshot to answer from.
  /// \param request the parsed request.
  /// \return the response line (no trailing newline).
  [[nodiscard]] static std::string execute(const Snapshot& snapshot,
                                           const Request& request);

 private:
  /// \brief Process-unique id of this instance.  The thread-local epoch
  ///        cache is keyed by (service id, version), NOT by `this`: a
  ///        short-lived Service reusing a destroyed one's address at the
  ///        same version would otherwise hit a stale cache entry and
  ///        answer from the dead service's snapshot (classic ABA).
  [[nodiscard]] static std::uint64_t next_id();
  const std::uint64_t id_ = next_id();

  /// Version allocator (concurrent publishers draw distinct numbers) —
  /// distinct from `version_`, which advertises only published snapshots.
  std::atomic<std::uint64_t> next_version_{0};
  std::atomic<std::uint64_t> version_{0};
  /// Guards `snapshot_`.  Taken by publishers and by readers whose epoch
  /// cache went stale — never on the steady-state query path.
  mutable std::mutex swap_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;
  std::function<Result<std::shared_ptr<Snapshot>>()> reloader_;
};

}  // namespace anyopt::serve
