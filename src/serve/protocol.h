#pragma once
// anyoptd wire protocol: line-oriented JSON request/response.
//
// One request per line, one response line back — the simplest protocol
// that composes with every socket tool (`nc -U`, a shell heredoc, a test's
// stdin pipe) while staying machine-parseable.  Requests are strict JSON
// objects with an `op` discriminator:
//
//   {"op":"predict","sites":[3,1,12]}
//   {"op":"predict","sites":[3,1,12],"clients":[0,17,44],"detail":true}
//   {"op":"score","sites":[3,1,12]}
//   {"op":"mitigate","sites":[3,1,12],"intensity":4}
//   {"op":"info"}
//   {"op":"reload"}
//
// `sites` is the announcement order (order matters, §4.2); `clients`
// restricts prediction to a target subset (absent = every target);
// `detail` adds per-client catchment and RTT arrays to the response.
// `mitigate` runs the agility engine's what-if playbook search: an attack
// of `intensity` (a demand multiplier, default 2) on the busiest site's
// predicted catchment under the requested configuration (`sites` optional
// here; absent = every site announced).  Unknown keys are rejected — a
// typoed key must fail loudly, not silently predict something else than
// the caller asked for.
//
// Responses are a single JSON object line: `{"ok":true,...}` on success,
// `{"ok":false,"error":"..."}` on failure.  Successful responses carry
// `"snapshot":N`, the version of the immutable snapshot that answered (see
// serve/service.h) — two responses with equal version are answers over
// identical data.  All rendering is deterministic (`%.17g` doubles,
// field order fixed), so byte-comparing response lines is a valid way to
// assert two queries saw the same snapshot; the concurrency tests do.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/result.h"

namespace anyopt::serve {

/// \brief Request operations.
enum class Op : std::uint8_t {
  kPredict,   ///< catchment + RTT stats for a site subset over clients
  kScore,     ///< optimizer-style evaluation of one configuration
  kMitigate,  ///< agility what-if: attack the config, search playbooks
  kInfo,      ///< snapshot metadata (version, shape, provenance)
  kReload,    ///< rebuild the snapshot and swap it in (daemon only)
};

/// \brief One parsed request line.
struct Request {
  Op op = Op::kInfo;
  /// Sites in announcement order (`predict`/`score`: must be non-empty;
  /// `mitigate`: optional, empty = all sites; elsewhere: must be absent).
  std::vector<std::uint32_t> sites;
  /// Targets to predict for (`predict` only; empty = all targets).
  std::vector<std::uint32_t> clients;
  bool detail = false;  ///< include per-client arrays in the response
  /// Attack demand multiplier (`mitigate` only; must be > 1 — an attack
  /// that adds no demand is not an attack).
  double intensity = 2.0;
};

/// \brief Parses one request line (strict: unknown keys, duplicate sites,
///        non-integer ids and op/field mismatches are all errors).
/// \param line the JSON request text (no trailing newline needed).
/// \return the request, or a diagnostic suitable for `render_error`.
[[nodiscard]] Result<Request> parse_request(std::string_view line);

/// \brief Renders the error response line: `{"ok":false,"error":"..."}`.
/// \param message the human-readable reason (JSON-escaped here).
/// \return the response line, without trailing newline.
[[nodiscard]] std::string render_error(std::string_view message);

/// \brief Appends a shortest-round-trip double (`%.17g`) to `out`.
///
/// Every response number goes through this one formatter so equal doubles
/// always render to equal bytes — the contract the bit-identity tests
/// compare response lines under.
void append_double(std::string& out, double value);

/// \brief Median of the values: sorted midpoint, averaging the two middle
///        elements for even counts; 0.0 for an empty vector.
/// \param values the samples (taken by value; sorted internally).
/// \return the median.
[[nodiscard]] double median(std::vector<double> values);

}  // namespace anyopt::serve
