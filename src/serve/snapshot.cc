#include "serve/snapshot.h"

#include <utility>

#include "core/anyopt.h"
#include "measure/orchestrator.h"
#include "netbase/telemetry.h"
#include "topo/serialize.h"

namespace anyopt::serve {

namespace {

/// Retained-bytes estimate of the query-path data: the two-level preference
/// tables plus the RTT matrix (the optimizer's per-target rankings are
/// derived from the same tables and of the same order).
std::size_t estimate_bytes(const core::Predictor& predictor) {
  const core::DiscoveryResult& discovery = predictor.discovery();
  std::size_t bytes = discovery.provider_prefs.retained_bytes();
  for (const core::PairwiseTable& table : discovery.site_prefs) {
    bytes += table.retained_bytes();
  }
  for (const auto& sites : discovery.provider_sites) {
    bytes += sites.capacity() * sizeof(SiteId);
  }
  bytes += predictor.rtts().site_count() * predictor.rtts().target_count() *
           sizeof(double);
  return bytes;
}

}  // namespace

Result<std::shared_ptr<Snapshot>> Snapshot::build(
    const SnapshotOptions& options) {
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot());
  snapshot->options_ = options;
  snapshot->world_ = anycast::World::create(
      options.ases > 0
          ? anycast::WorldParams::at_scale(options.ases, options.seed)
      : options.test_scale ? anycast::WorldParams::test_scale(options.seed)
                           : anycast::WorldParams::paper_scale(options.seed));

  // The orchestrator, pipeline and store are build-time machinery only:
  // they die with this scope, and the snapshot keeps just the immutable
  // products (predictor tables, RTT matrix) plus the world they reference.
  measure::OrchestratorOptions orchestrator_options;
  orchestrator_options.compact_resolve = options.compact_resolve;
  measure::Orchestrator orchestrator(*snapshot->world_, orchestrator_options);
  std::unique_ptr<measure::ResultStore> store;
  if (!options.store_path.empty()) {
    const std::uint64_t fingerprint =
        topo::topology_fingerprint(snapshot->world_->internet());
    Result<std::unique_ptr<measure::ResultStore>> opened =
        options.store_read_only
            ? measure::ResultStore::open_read_only(options.store_path)
            : measure::ResultStore::open(options.store_path, fingerprint);
    if (!opened.ok()) return opened.error();
    store = std::move(opened).value();
    // A read-only open adopts the file's fingerprint; serving another
    // topology's results would be silent lies, so check it ourselves.
    if (store->fingerprint() != fingerprint) {
      return Error::state(options.store_path +
                          ": topology fingerprint mismatch (store " +
                          std::to_string(store->fingerprint()) + ", world " +
                          std::to_string(fingerprint) + ")");
    }
    snapshot->store_records_ = store->size();
  }

  core::PipelineOptions pipeline_options;
  pipeline_options.discovery.threads = options.threads;
  pipeline_options.site_pref_mode = options.site_pref_mode;
  pipeline_options.store = store.get();
  core::AnyOptPipeline pipeline(orchestrator, pipeline_options);
  const core::DiscoveryResult& discovery = pipeline.discover();
  const core::RttMatrix& rtts = pipeline.measure_rtts();
  snapshot->experiments_ = pipeline.experiments_run();
  if (store != nullptr) snapshot->store_records_ = store->size();

  snapshot->predictor_ = std::make_unique<core::Predictor>(
      snapshot->world_->deployment(), discovery, rtts,
      options.site_pref_mode);
  snapshot->optimizer_ =
      std::make_unique<core::Optimizer>(*snapshot->predictor_);

  // The all-sites baseline load (predicted catchment size per site, uniform
  // target weight) and the modeled capacity the mitigate op defends: load
  // plus 50% headroom plus a flat floor, so the quiet deployment passes the
  // Eq. 7 gate by construction and an attack's overload budget is defined.
  const std::size_t sites = snapshot->site_count();
  const core::Prediction baseline = snapshot->predictor_->predict(
      anycast::AnycastConfig::all_sites(snapshot->world_->deployment()));
  snapshot->site_load_.assign(sites, 0.0);
  for (const SiteId s : baseline.site_of_target) {
    if (s.valid()) snapshot->site_load_[s.value()] += 1.0;
  }
  snapshot->site_capacity_.resize(sites);
  snapshot->slo_ok_ = true;
  for (std::size_t s = 0; s < sites; ++s) {
    snapshot->site_capacity_[s] = snapshot->site_load_[s] * 1.5 + 8.0;
    if (snapshot->site_load_[s] > snapshot->site_capacity_[s]) {
      snapshot->slo_ok_ = false;
    }
  }

  snapshot->retained_bytes_ = estimate_bytes(*snapshot->predictor_);
  if (telemetry::enabled()) {
    telemetry::Registry::global()
        .gauge("bytes.snapshot")
        .add(static_cast<std::int64_t>(snapshot->retained_bytes_));
    snapshot->bytes_accounted_ = true;
  }
  snapshot->loaded_at_us_ = telemetry::now_us();
  return snapshot;
}

Snapshot::~Snapshot() {
  if (bytes_accounted_) {
    telemetry::Registry::global()
        .gauge("bytes.snapshot")
        .add(-static_cast<std::int64_t>(retained_bytes_));
  }
}

}  // namespace anyopt::serve
