#include "serve/service.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "agility/engine.h"
#include "measure/orchestrator.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"

namespace anyopt::serve {

namespace {

/// Pre-resolved serve metrics (one registry lookup per process).
struct ServeMetrics {
  telemetry::Counter* queries;
  telemetry::Counter* errors;
  telemetry::Counter* reloads;
  telemetry::Histogram* query_ms;
  telemetry::Gauge* snapshot_age_us;

  static const ServeMetrics& get() {
    static const ServeMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return ServeMetrics{&reg.counter("serve.queries"),
                          &reg.counter("serve.errors"),
                          &reg.counter("serve.reloads"),
                          &reg.histogram("serve.query_ms"),
                          &reg.gauge("serve.snapshot_age_us")};
    }();
    return m;
  }
};

/// The reader-side epoch cache: steady state re-validates with one version
/// load and returns the cached shared_ptr without touching the
/// mutex-guarded slot or its refcount.
struct Epoch {
  std::uint64_t owner = 0;  ///< Service id (0 = empty; see Service::id_)
  std::uint64_t version = 0;
  std::shared_ptr<const Snapshot> snapshot;
};
thread_local Epoch t_epoch;

void append_common(std::string& out, const Snapshot& snapshot,
                   const char* op) {
  out += "{\"ok\":true,\"snapshot\":";
  out += std::to_string(snapshot.version());
  out += ",\"op\":\"";
  out += op;
  out += "\"";
}

std::string execute_info(const Snapshot& snapshot) {
  std::string out;
  append_common(out, snapshot, "info");
  out += ",\"seed\":" + std::to_string(snapshot.seed());
  out += ",\"scale\":\"";
  out += snapshot.options().test_scale ? "test" : "paper";
  out += "\",\"sites\":" + std::to_string(snapshot.site_count());
  out += ",\"providers\":" +
         std::to_string(snapshot.deployment().provider_count());
  out += ",\"targets\":" + std::to_string(snapshot.target_count());
  out += ",\"retained_bytes\":" + std::to_string(snapshot.retained_bytes());
  out += ",\"store_records\":" + std::to_string(snapshot.store_records());
  out += ",\"experiments\":" + std::to_string(snapshot.experiments_run());
  // The agility baseline: predicted per-site load of the all-sites
  // deployment, the modeled capacities the mitigate op defends, and the
  // Eq. 7 verdict over them.
  out += ",\"site_load\":[";
  for (std::size_t s = 0; s < snapshot.site_load().size(); ++s) {
    if (s > 0) out += ",";
    append_double(out, snapshot.site_load()[s]);
  }
  out += "],\"site_capacity\":[";
  for (std::size_t s = 0; s < snapshot.site_capacity().size(); ++s) {
    if (s > 0) out += ",";
    append_double(out, snapshot.site_capacity()[s]);
  }
  out += "],\"slo_ok\":";
  out += snapshot.slo_ok() ? "true" : "false";
  out += "}";
  return out;
}

/// Validates the request's site ids and builds the announcement order.
Result<anycast::AnycastConfig> config_of(const Snapshot& snapshot,
                                         const Request& request) {
  std::vector<SiteId> order;
  order.reserve(request.sites.size());
  for (const std::uint32_t s : request.sites) {
    if (s >= snapshot.site_count()) {
      return Error::invalid("site " + std::to_string(s) +
                            " out of range (deployment has " +
                            std::to_string(snapshot.site_count()) +
                            " sites)");
    }
    order.push_back(SiteId{s});
  }
  return anycast::AnycastConfig::of_sites(std::move(order));
}

std::string execute_predict(const Snapshot& snapshot,
                            const Request& request) {
  Result<anycast::AnycastConfig> config = config_of(snapshot, request);
  if (!config.ok()) return render_error(config.error().message);
  for (const std::uint32_t c : request.clients) {
    if (c >= snapshot.target_count()) {
      return render_error("client " + std::to_string(c) +
                          " out of range (population has " +
                          std::to_string(snapshot.target_count()) +
                          " targets)");
    }
  }

  // Full-population queries walk every target; subset queries reuse the
  // same per-client preference walk but only over the requested clients.
  core::Prediction prediction;
  std::vector<std::uint32_t> considered;
  if (request.clients.empty()) {
    prediction = snapshot.predictor().predict(config.value());
    considered.resize(snapshot.target_count());
    for (std::uint32_t t = 0; t < considered.size(); ++t) considered[t] = t;
  } else {
    std::vector<TargetId> clients;
    clients.reserve(request.clients.size());
    for (const std::uint32_t c : request.clients) clients.push_back(TargetId{c});
    prediction = snapshot.predictor().predict_subset(config.value(), clients);
    considered = request.clients;
  }

  std::size_t predicted = 0;
  std::vector<double> rtts;
  for (const std::uint32_t t : considered) {
    if (prediction.site_of_target[t].valid()) ++predicted;
    if (prediction.rtt_ms[t] >= 0) rtts.push_back(prediction.rtt_ms[t]);
  }
  double sum = 0;
  for (const double r : rtts) sum += r;
  const double mean = rtts.empty() ? 0.0 : sum / static_cast<double>(rtts.size());

  std::string out;
  append_common(out, snapshot, "predict");
  out += ",\"clients\":" + std::to_string(considered.size());
  out += ",\"predicted\":" + std::to_string(predicted);
  out += ",\"mean_rtt_ms\":";
  append_double(out, mean);
  out += ",\"median_rtt_ms\":";
  append_double(out, median(std::move(rtts)));
  if (request.detail) {
    out += ",\"catchment\":[";
    for (std::size_t i = 0; i < considered.size(); ++i) {
      if (i > 0) out += ",";
      const SiteId site = prediction.site_of_target[considered[i]];
      out += site.valid() ? std::to_string(site.value()) : std::string("-1");
    }
    out += "],\"rtt_ms\":[";
    for (std::size_t i = 0; i < considered.size(); ++i) {
      if (i > 0) out += ",";
      append_double(out, prediction.rtt_ms[considered[i]]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string execute_score(const Snapshot& snapshot, const Request& request) {
  Result<anycast::AnycastConfig> config = config_of(snapshot, request);
  if (!config.ok()) return render_error(config.error().message);
  // evaluate_uncached: bit-identical to Optimizer::evaluate but mutates
  // nothing, so concurrent queries need no locking (core/optimizer.h).
  const core::EvaluatedConfig scored =
      snapshot.optimizer().evaluate_uncached(config.value());
  std::string out;
  append_common(out, snapshot, "score");
  out += ",\"predicted_mean_rtt_ms\":";
  append_double(out, scored.predicted_mean_rtt);
  out += ",\"predictable_mean_rtt_ms\":";
  append_double(out, scored.predictable_mean_rtt);
  out += ",\"fraction_ordered\":";
  append_double(out, scored.fraction_ordered);
  out += "}";
  return out;
}

std::string execute_mitigate(const Snapshot& snapshot,
                             const Request& request) {
  // Deployed configuration: the requested sites, or every site.
  anycast::AnycastConfig deployed;
  if (request.sites.empty()) {
    deployed = anycast::AnycastConfig::all_sites(snapshot.deployment());
  } else {
    Result<anycast::AnycastConfig> config = config_of(snapshot, request);
    if (!config.ok()) return render_error(config.error().message);
    deployed = std::move(config).value();
  }

  // The what-if attack: a sustained pulse of `intensity` on the predicted
  // catchment of the busiest site under `deployed` (ties break to the
  // lowest site id) — the worst single-site volumetric scenario the
  // predictor can name without running an experiment.
  const core::Prediction prediction = snapshot.predictor().predict(deployed);
  std::vector<double> load(snapshot.site_count(), 0.0);
  for (const SiteId s : prediction.site_of_target) {
    if (s.valid()) load[s.value()] += 1.0;
  }
  std::size_t attacked = 0;
  for (std::size_t s = 1; s < load.size(); ++s) {
    if (load[s] > load[attacked]) attacked = s;
  }
  if (load[attacked] <= 0.0) {
    return render_error("no predictable clients to attack");
  }
  agility::DemandModel demand;
  agility::AttackPulse pulse;
  pulse.intensity = request.intensity;
  for (std::uint32_t t = 0; t < prediction.site_of_target.size(); ++t) {
    if (prediction.site_of_target[t].valid() &&
        prediction.site_of_target[t].value() == attacked) {
      pulse.targets.push_back(t);
    }
  }
  demand.pulses = {pulse};

  // Capacities: the snapshot's modeled (all-sites) capacity, raised where
  // the requested deployment concentrates more load than the all-sites
  // baseline — so the quiet deployment is compliant by construction and
  // the attack's overload budget is the modeled headroom.
  agility::AgilityOptions options;
  options.slo.site_capacity.resize(load.size());
  for (std::size_t s = 0; s < load.size(); ++s) {
    options.slo.site_capacity[s] =
        std::max(snapshot.site_capacity()[s], load[s] * 1.5 + 8.0);
  }
  options.seed = mix64(snapshot.seed(), 0xA617ULL);

  // Request-local measurement plane over the snapshot's immutable world:
  // queries stay lock-free (nothing on the snapshot mutates) at the cost
  // of simulating per mitigate call — this op is an operator what-if, not
  // a hot-path prediction.
  measure::OrchestratorOptions orchestrator_options;
  orchestrator_options.compact_resolve = snapshot.options().compact_resolve;
  const measure::Orchestrator orchestrator(snapshot.world(),
                                           orchestrator_options);
  const agility::AgilityEngine engine(orchestrator, std::move(demand),
                                      std::move(options));
  const agility::MitigationResult result = engine.mitigate(deployed);

  std::string out;
  append_common(out, snapshot, "mitigate");
  out += ",\"intensity\":";
  append_double(out, request.intensity);
  out += ",\"attacked_site\":" + std::to_string(attacked);
  out += ",\"attacked_clients\":" + std::to_string(pulse.targets.size());
  out += ",\"slo_violated\":";
  out += result.slo_violated ? "true" : "false";
  out += ",\"overloaded_sites\":[";
  for (std::size_t i = 0; i < result.baseline.overloaded.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(result.baseline.overloaded[i].value());
  }
  out += "],\"mitigated\":";
  out += result.best.mitigated ? "true" : "false";
  // -1 = the search found no SLO-restoring playbook (never infinity: the
  // response line must stay valid JSON).
  out += ",\"time_to_mitigate_s\":";
  append_double(out,
                result.best.mitigated ? result.best.time_to_mitigate_s : -1.0);
  out += ",\"post_mean_rtt_ms\":";
  append_double(out, result.best.post_mean_rtt_ms);
  out += ",\"playbook\":\"" + result.best.playbook.describe() + "\"";
  out += ",\"steps\":" + std::to_string(result.best.playbook.steps.size());
  out += ",\"candidates\":" + std::to_string(result.candidates);
  out += ",\"pruned\":" + std::to_string(result.pruned);
  out += ",\"sim_events\":" + std::to_string(result.total_sim_events);
  out += "}";
  return out;
}

}  // namespace

std::uint64_t Service::next_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t Service::publish(std::shared_ptr<Snapshot> snapshot) {
  // Versions are assigned here (not taken from the caller) so they are
  // monotone across every publisher.  The relaxed add is safe: the number
  // only becomes meaningful to readers via the release bump below.
  const std::uint64_t version =
      next_version_.fetch_add(1, std::memory_order_relaxed) + 1;
  snapshot->version_ = version;
  // Order matters: the fully built snapshot must land in the slot before
  // any reader can observe its version — see the publication protocol in
  // the header comment.  Both writes sit under the swap mutex so a stale
  // reader taking it always finds a slot at least as new as the version
  // that sent it here.
  {
    const std::lock_guard<std::mutex> lock(swap_mutex_);
    snapshot_ = std::shared_ptr<const Snapshot>(std::move(snapshot));
    version_.store(version, std::memory_order_release);
  }
  return version;
}

std::shared_ptr<const Snapshot> Service::current() const {
  const std::uint64_t version = version_.load(std::memory_order_acquire);
  Epoch& epoch = t_epoch;
  if (epoch.owner == id_ && epoch.version == version) {
    return epoch.snapshot;  // steady state: one atomic load, nothing else
  }
  // Version moved (or first query on this thread): take the cold path
  // through the mutex-guarded slot.  A publish racing us may already have
  // bumped past `version`; caching the newer snapshot under the newer
  // number it was published with keeps the pair consistent — both
  // snapshots are fully built, and the next query re-validates.
  {
    const std::lock_guard<std::mutex> lock(swap_mutex_);
    epoch.snapshot = snapshot_;
    epoch.version = version_.load(std::memory_order_relaxed);
  }
  epoch.owner = id_;
  return epoch.snapshot;
}

std::string Service::handle_line(std::string_view line) {
  const bool telem = telemetry::enabled();
  if (telem) ServeMetrics::get().queries->add(1);

  Result<Request> request = parse_request(line);
  if (!request.ok()) {
    if (telem) ServeMetrics::get().errors->add(1);
    return render_error(request.error().message);
  }

  if (request.value().op == Op::kReload) {
    if (!reloader_) {
      if (telem) ServeMetrics::get().errors->add(1);
      return render_error("this endpoint cannot reload");
    }
    Result<std::shared_ptr<Snapshot>> rebuilt = reloader_();
    if (!rebuilt.ok()) {
      if (telem) ServeMetrics::get().errors->add(1);
      return render_error("reload failed: " + rebuilt.error().message);
    }
    const std::uint64_t version = publish(std::move(rebuilt).value());
    if (telem) ServeMetrics::get().reloads->add(1);
    return "{\"ok\":true,\"snapshot\":" + std::to_string(version) +
           ",\"op\":\"reload\"}";
  }

  const std::shared_ptr<const Snapshot> snapshot = current();
  if (snapshot == nullptr) {
    if (telem) ServeMetrics::get().errors->add(1);
    return render_error("no snapshot published yet");
  }
  if (telem) {
    ServeMetrics::get().snapshot_age_us->set(static_cast<std::int64_t>(
        telemetry::now_us() - snapshot->loaded_at_us()));
  }
  telemetry::ScopedTimer timer("serve.query", "serve",
                               telem ? ServeMetrics::get().query_ms : nullptr);
  std::string response = execute(*snapshot, request.value());
  timer.finish();
  if (telem && response.compare(0, 11, "{\"ok\":false") == 0) {
    ServeMetrics::get().errors->add(1);
  }
  return response;
}

std::string Service::execute(const Snapshot& snapshot,
                             const Request& request) {
  switch (request.op) {
    case Op::kInfo:
      return execute_info(snapshot);
    case Op::kPredict:
      return execute_predict(snapshot, request);
    case Op::kScore:
      return execute_score(snapshot, request);
    case Op::kMitigate:
      return execute_mitigate(snapshot, request);
    case Op::kReload:
      return render_error("reload is not executable against a snapshot");
  }
  return render_error("unreachable");
}

}  // namespace anyopt::serve
