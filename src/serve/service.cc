#include "serve/service.h"

#include <utility>
#include <vector>

#include "netbase/telemetry.h"

namespace anyopt::serve {

namespace {

/// Pre-resolved serve metrics (one registry lookup per process).
struct ServeMetrics {
  telemetry::Counter* queries;
  telemetry::Counter* errors;
  telemetry::Counter* reloads;
  telemetry::Histogram* query_ms;
  telemetry::Gauge* snapshot_age_us;

  static const ServeMetrics& get() {
    static const ServeMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return ServeMetrics{&reg.counter("serve.queries"),
                          &reg.counter("serve.errors"),
                          &reg.counter("serve.reloads"),
                          &reg.histogram("serve.query_ms"),
                          &reg.gauge("serve.snapshot_age_us")};
    }();
    return m;
  }
};

/// The reader-side epoch cache: steady state re-validates with one version
/// load and returns the cached shared_ptr without touching the
/// mutex-guarded slot or its refcount.
struct Epoch {
  std::uint64_t owner = 0;  ///< Service id (0 = empty; see Service::id_)
  std::uint64_t version = 0;
  std::shared_ptr<const Snapshot> snapshot;
};
thread_local Epoch t_epoch;

void append_common(std::string& out, const Snapshot& snapshot,
                   const char* op) {
  out += "{\"ok\":true,\"snapshot\":";
  out += std::to_string(snapshot.version());
  out += ",\"op\":\"";
  out += op;
  out += "\"";
}

std::string execute_info(const Snapshot& snapshot) {
  std::string out;
  append_common(out, snapshot, "info");
  out += ",\"seed\":" + std::to_string(snapshot.seed());
  out += ",\"scale\":\"";
  out += snapshot.options().test_scale ? "test" : "paper";
  out += "\",\"sites\":" + std::to_string(snapshot.site_count());
  out += ",\"providers\":" +
         std::to_string(snapshot.deployment().provider_count());
  out += ",\"targets\":" + std::to_string(snapshot.target_count());
  out += ",\"retained_bytes\":" + std::to_string(snapshot.retained_bytes());
  out += ",\"store_records\":" + std::to_string(snapshot.store_records());
  out += ",\"experiments\":" + std::to_string(snapshot.experiments_run());
  out += "}";
  return out;
}

/// Validates the request's site ids and builds the announcement order.
Result<anycast::AnycastConfig> config_of(const Snapshot& snapshot,
                                         const Request& request) {
  std::vector<SiteId> order;
  order.reserve(request.sites.size());
  for (const std::uint32_t s : request.sites) {
    if (s >= snapshot.site_count()) {
      return Error::invalid("site " + std::to_string(s) +
                            " out of range (deployment has " +
                            std::to_string(snapshot.site_count()) +
                            " sites)");
    }
    order.push_back(SiteId{s});
  }
  return anycast::AnycastConfig::of_sites(std::move(order));
}

std::string execute_predict(const Snapshot& snapshot,
                            const Request& request) {
  Result<anycast::AnycastConfig> config = config_of(snapshot, request);
  if (!config.ok()) return render_error(config.error().message);
  for (const std::uint32_t c : request.clients) {
    if (c >= snapshot.target_count()) {
      return render_error("client " + std::to_string(c) +
                          " out of range (population has " +
                          std::to_string(snapshot.target_count()) +
                          " targets)");
    }
  }

  // Full-population queries walk every target; subset queries reuse the
  // same per-client preference walk but only over the requested clients.
  core::Prediction prediction;
  std::vector<std::uint32_t> considered;
  if (request.clients.empty()) {
    prediction = snapshot.predictor().predict(config.value());
    considered.resize(snapshot.target_count());
    for (std::uint32_t t = 0; t < considered.size(); ++t) considered[t] = t;
  } else {
    std::vector<TargetId> clients;
    clients.reserve(request.clients.size());
    for (const std::uint32_t c : request.clients) clients.push_back(TargetId{c});
    prediction = snapshot.predictor().predict_subset(config.value(), clients);
    considered = request.clients;
  }

  std::size_t predicted = 0;
  std::vector<double> rtts;
  for (const std::uint32_t t : considered) {
    if (prediction.site_of_target[t].valid()) ++predicted;
    if (prediction.rtt_ms[t] >= 0) rtts.push_back(prediction.rtt_ms[t]);
  }
  double sum = 0;
  for (const double r : rtts) sum += r;
  const double mean = rtts.empty() ? 0.0 : sum / static_cast<double>(rtts.size());

  std::string out;
  append_common(out, snapshot, "predict");
  out += ",\"clients\":" + std::to_string(considered.size());
  out += ",\"predicted\":" + std::to_string(predicted);
  out += ",\"mean_rtt_ms\":";
  append_double(out, mean);
  out += ",\"median_rtt_ms\":";
  append_double(out, median(std::move(rtts)));
  if (request.detail) {
    out += ",\"catchment\":[";
    for (std::size_t i = 0; i < considered.size(); ++i) {
      if (i > 0) out += ",";
      const SiteId site = prediction.site_of_target[considered[i]];
      out += site.valid() ? std::to_string(site.value()) : std::string("-1");
    }
    out += "],\"rtt_ms\":[";
    for (std::size_t i = 0; i < considered.size(); ++i) {
      if (i > 0) out += ",";
      append_double(out, prediction.rtt_ms[considered[i]]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string execute_score(const Snapshot& snapshot, const Request& request) {
  Result<anycast::AnycastConfig> config = config_of(snapshot, request);
  if (!config.ok()) return render_error(config.error().message);
  // evaluate_uncached: bit-identical to Optimizer::evaluate but mutates
  // nothing, so concurrent queries need no locking (core/optimizer.h).
  const core::EvaluatedConfig scored =
      snapshot.optimizer().evaluate_uncached(config.value());
  std::string out;
  append_common(out, snapshot, "score");
  out += ",\"predicted_mean_rtt_ms\":";
  append_double(out, scored.predicted_mean_rtt);
  out += ",\"predictable_mean_rtt_ms\":";
  append_double(out, scored.predictable_mean_rtt);
  out += ",\"fraction_ordered\":";
  append_double(out, scored.fraction_ordered);
  out += "}";
  return out;
}

}  // namespace

std::uint64_t Service::next_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t Service::publish(std::shared_ptr<Snapshot> snapshot) {
  // Versions are assigned here (not taken from the caller) so they are
  // monotone across every publisher.  The relaxed add is safe: the number
  // only becomes meaningful to readers via the release bump below.
  const std::uint64_t version =
      next_version_.fetch_add(1, std::memory_order_relaxed) + 1;
  snapshot->version_ = version;
  // Order matters: the fully built snapshot must land in the slot before
  // any reader can observe its version — see the publication protocol in
  // the header comment.  Both writes sit under the swap mutex so a stale
  // reader taking it always finds a slot at least as new as the version
  // that sent it here.
  {
    const std::lock_guard<std::mutex> lock(swap_mutex_);
    snapshot_ = std::shared_ptr<const Snapshot>(std::move(snapshot));
    version_.store(version, std::memory_order_release);
  }
  return version;
}

std::shared_ptr<const Snapshot> Service::current() const {
  const std::uint64_t version = version_.load(std::memory_order_acquire);
  Epoch& epoch = t_epoch;
  if (epoch.owner == id_ && epoch.version == version) {
    return epoch.snapshot;  // steady state: one atomic load, nothing else
  }
  // Version moved (or first query on this thread): take the cold path
  // through the mutex-guarded slot.  A publish racing us may already have
  // bumped past `version`; caching the newer snapshot under the newer
  // number it was published with keeps the pair consistent — both
  // snapshots are fully built, and the next query re-validates.
  {
    const std::lock_guard<std::mutex> lock(swap_mutex_);
    epoch.snapshot = snapshot_;
    epoch.version = version_.load(std::memory_order_relaxed);
  }
  epoch.owner = id_;
  return epoch.snapshot;
}

std::string Service::handle_line(std::string_view line) {
  const bool telem = telemetry::enabled();
  if (telem) ServeMetrics::get().queries->add(1);

  Result<Request> request = parse_request(line);
  if (!request.ok()) {
    if (telem) ServeMetrics::get().errors->add(1);
    return render_error(request.error().message);
  }

  if (request.value().op == Op::kReload) {
    if (!reloader_) {
      if (telem) ServeMetrics::get().errors->add(1);
      return render_error("this endpoint cannot reload");
    }
    Result<std::shared_ptr<Snapshot>> rebuilt = reloader_();
    if (!rebuilt.ok()) {
      if (telem) ServeMetrics::get().errors->add(1);
      return render_error("reload failed: " + rebuilt.error().message);
    }
    const std::uint64_t version = publish(std::move(rebuilt).value());
    if (telem) ServeMetrics::get().reloads->add(1);
    return "{\"ok\":true,\"snapshot\":" + std::to_string(version) +
           ",\"op\":\"reload\"}";
  }

  const std::shared_ptr<const Snapshot> snapshot = current();
  if (snapshot == nullptr) {
    if (telem) ServeMetrics::get().errors->add(1);
    return render_error("no snapshot published yet");
  }
  if (telem) {
    ServeMetrics::get().snapshot_age_us->set(static_cast<std::int64_t>(
        telemetry::now_us() - snapshot->loaded_at_us()));
  }
  telemetry::ScopedTimer timer("serve.query", "serve",
                               telem ? ServeMetrics::get().query_ms : nullptr);
  std::string response = execute(*snapshot, request.value());
  timer.finish();
  if (telem && response.compare(0, 11, "{\"ok\":false") == 0) {
    ServeMetrics::get().errors->add(1);
  }
  return response;
}

std::string Service::execute(const Snapshot& snapshot,
                             const Request& request) {
  switch (request.op) {
    case Op::kInfo:
      return execute_info(snapshot);
    case Op::kPredict:
      return execute_predict(snapshot, request);
    case Op::kScore:
      return execute_score(snapshot, request);
    case Op::kReload:
      return render_error("reload is not executable against a snapshot");
  }
  return render_error("unreachable");
}

}  // namespace anyopt::serve
