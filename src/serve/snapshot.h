#pragma once
// Immutable what-if query snapshot: everything a prediction query needs,
// loaded once, then never mutated.
//
// A snapshot bundles the world (the predictor holds a reference into its
// deployment), a Predictor built from copies of the pipeline's discovery
// tables and RTT matrix, and an Optimizer for configuration scoring.  After
// `build` returns, every byte of it is immutable: queries run exclusively
// through const methods documented as concurrently callable
// (Predictor::predict/predict_subset, Optimizer::evaluate_uncached), so any
// number of reader threads share one snapshot with no locking at all.  The
// serve invariant — "a query never observes a partially-loaded snapshot" —
// holds because a snapshot becomes reachable (via Service::publish) only
// after `build` has fully constructed it.
//
// Warm starts: with `store_path` set, the build threads the persistent
// ResultStore through every measurement stage, so a store populated by an
// earlier run (or another process) replays each experiment instead of
// re-simulating — a daemon restart over a warm store rebuilds the exact
// same tables bit for bit.  With `store_read_only` the file is never
// written (many daemons may share one store; see measure/store.h).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anycast/world.h"
#include "core/optimizer.h"
#include "core/predictor.h"
#include "measure/store.h"
#include "netbase/result.h"

namespace anyopt::serve {

/// \brief Build parameters of one snapshot.
struct SnapshotOptions {
  std::uint64_t seed = 1897;  ///< world seed (1897 = the paper environment)
  bool test_scale = false;    ///< reduced world for tests/quick runs
  /// When nonzero, serve an `at_scale` world of approximately this many
  /// ASes (the daemon's `--ases=N` knob; exercised up to 75,000) instead
  /// of the paper/test world.  Overrides `test_scale`.
  std::size_t ases = 0;
  /// Resolve the build's censuses against the frozen structure-of-arrays
  /// RIB (see `measure::OrchestratorOptions::compact_resolve`).  Tables and
  /// every query answer are bit-identical either way; the layout-invariance
  /// suite flips this to prove it end to end.
  bool compact_resolve = true;
  /// Worker threads for the build's discovery campaigns (1 = serial,
  /// 0 = hardware concurrency); tables are bit-identical at any setting.
  std::size_t threads = 1;
  /// Persistent result store: warm-start every measurement stage from it
  /// and (unless read-only) flush fresh results back.  Empty = cold build.
  std::string store_path;
  /// Never write the store file (daemons sharing one store).  Missing
  /// results are then recomputed per build and not persisted.
  bool store_read_only = false;
  /// How intra-provider site preferences are resolved (§4.3).
  core::SitePrefMode site_pref_mode = core::SitePrefMode::kExperiments;
};

/// \brief One immutable, refcounted query snapshot.
class Snapshot {
 public:
  /// \brief Builds a snapshot: world, discovery (store-warmed when
  ///        available), RTT matrix, predictor, optimizer.
  ///
  /// Feeds the `bytes.snapshot` gauge with the snapshot's retained-bytes
  /// estimate (byte-accounting idiom: added here, subtracted by the
  /// destructor, so the gauge's value is the live total across overlapping
  /// snapshots and its max the swap high-water mark).
  /// \param options build parameters; see `SnapshotOptions`.
  /// \return the snapshot, or the store/build error.
  [[nodiscard]] static Result<std::shared_ptr<Snapshot>> build(
      const SnapshotOptions& options);

  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// \brief The catchment/RTT predictor (const methods only; see
  ///        core/predictor.h for the concurrency contract).
  [[nodiscard]] const core::Predictor& predictor() const {
    return *predictor_;
  }
  /// \brief The configuration scorer (queries must use the concurrent-safe
  ///        `evaluate_uncached`; see core/optimizer.h).
  [[nodiscard]] const core::Optimizer& optimizer() const {
    return *optimizer_;
  }
  [[nodiscard]] const anycast::Deployment& deployment() const {
    return world_->deployment();
  }
  /// \brief The immutable world the tables were measured on.  The mitigate
  ///        op builds a request-local measurement orchestrator over it
  ///        (the world itself is const and concurrently shareable).
  [[nodiscard]] const anycast::World& world() const { return *world_; }
  [[nodiscard]] std::size_t site_count() const {
    return deployment().site_count();
  }
  [[nodiscard]] std::size_t target_count() const {
    return predictor_->discovery().provider_prefs.target_count;
  }

  /// \brief Publish version (0 until `Service::publish` assigns one).
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t seed() const { return options_.seed; }
  [[nodiscard]] const SnapshotOptions& options() const { return options_; }
  /// \brief `telemetry::now_us()` when the build completed (feeds the
  ///        `serve.snapshot_age_us` gauge).
  [[nodiscard]] double loaded_at_us() const { return loaded_at_us_; }
  /// \brief Retained-bytes estimate (preference tables + RTT matrix).
  [[nodiscard]] std::size_t retained_bytes() const { return retained_bytes_; }
  /// \brief Records in the backing store when the snapshot loaded (0
  ///        without a store).
  [[nodiscard]] std::size_t store_records() const { return store_records_; }
  /// \brief BGP experiments the build issued.  A warm (store-backed) build
  ///        issues the same count but answers them from the store instead
  ///        of re-simulating — `store.hits` is the replay evidence.
  [[nodiscard]] std::size_t experiments_run() const { return experiments_; }

  /// \brief Predicted per-site load of the all-sites deployment (uniform
  ///        target weight — each site's predicted catchment size).  The
  ///        `info` op reports it so operators see where demand lands.
  [[nodiscard]] const std::vector<double>& site_load() const {
    return site_load_;
  }
  /// \brief The modeled per-site capacity the mitigate op defends (Eq. 7
  ///        units): baseline load plus headroom, so the quiet deployment is
  ///        compliant by construction and attacks have a defined budget.
  [[nodiscard]] const std::vector<double>& site_capacity() const {
    return site_capacity_;
  }
  /// \brief Whether the all-sites baseline meets the modeled capacity SLO
  ///        (Eq. 7 strict comparison; true by construction unless a build
  ///        ever ships tighter capacities).
  [[nodiscard]] bool slo_ok() const { return slo_ok_; }

 private:
  friend class Service;  // publish assigns the version
  Snapshot() = default;

  SnapshotOptions options_;
  std::unique_ptr<anycast::World> world_;
  std::unique_ptr<core::Predictor> predictor_;
  std::unique_ptr<core::Optimizer> optimizer_;
  std::uint64_t version_ = 0;
  std::vector<double> site_load_;      ///< predicted all-sites catchment load
  std::vector<double> site_capacity_;  ///< modeled capacity (load + headroom)
  bool slo_ok_ = true;                 ///< baseline Eq. 7 verdict
  double loaded_at_us_ = 0;
  std::size_t retained_bytes_ = 0;
  std::size_t store_records_ = 0;
  std::size_t experiments_ = 0;
  bool bytes_accounted_ = false;  ///< gauge delta to undo at destruction
};

}  // namespace anyopt::serve
