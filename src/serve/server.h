#pragma once
// AF_UNIX line server for the what-if service.
//
// Listens on a local socket; each accepted connection is handed to a
// worker from a ThreadPool, which reads newline-delimited requests and
// writes one response line per request (serve/protocol.h).  Locking exists
// only on the connection control path (accept/teardown registry); the
// per-query path is `Service::handle_line` — lock-free by construction.
//
// `shutdown()` may be called from any thread (e.g. a signal-ish control
// path while `serve()` blocks another thread): it stops the accept loop
// and shuts down every live connection, and `serve()` returns after the
// workers drain.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "netbase/result.h"
#include "netbase/thread_pool.h"
#include "serve/service.h"

namespace anyopt::serve {

/// \brief Server parameters.
struct ServerOptions {
  std::string socket_path;   ///< AF_UNIX path (unlinked before bind)
  std::size_t threads = 2;   ///< connection workers (clamped to >= 1)
  int backlog = 16;          ///< listen(2) backlog
};

/// \brief Blocking accept-loop server over a Service.
class Server {
 public:
  /// \param service the query service (must outlive this).
  /// \param options socket path and worker count.
  Server(Service& service, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds, listens and serves until `shutdown()`.  Returns the
  ///        bind/listen error, or ok after a clean shutdown.
  [[nodiscard]] Status serve();

  /// \brief Stops the accept loop and closes every live connection
  ///        (callable from any thread, idempotent).
  void shutdown();

 private:
  void handle_connection(int fd);
  void forget_connection(int fd);

  Service& service_;
  ServerOptions options_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  std::mutex connections_mutex_;       ///< control path only, never per query
  std::vector<int> connections_;
};

}  // namespace anyopt::serve
