#pragma once
// Plain-text table rendering used by the benchmark binaries to print the
// same rows the paper's tables and figures report.

#include <string>
#include <vector>

namespace anyopt {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  /// Renders with column padding and a separator under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anyopt
