#pragma once
// IPv4 addresses and prefixes.  The simulator assigns synthetic addresses to
// routers, anycast prefixes and ping targets; these types give parsing,
// formatting and containment tests with value semantics.

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "netbase/result.h"

namespace anyopt::net {

/// IPv4 address stored in host byte order.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t host_order) : bits_(host_order) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("192.0.2.1").
  [[nodiscard]] static Result<Ipv4> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(bits_ >> (24 - 8 * i));
  }
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(Ipv4, Ipv4) = default;
  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// CIDR prefix (address + length), normalized so host bits are zero.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4 addr, int length)
      : addr_(Ipv4{length == 0 ? 0u : (addr.bits() & mask_for(length))}),
        length_(static_cast<std::uint8_t>(length)) {}

  /// Parses CIDR notation ("198.51.100.0/24").
  [[nodiscard]] static Result<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4 address() const { return addr_; }
  [[nodiscard]] constexpr int length() const { return length_; }
  [[nodiscard]] constexpr bool contains(Ipv4 ip) const {
    if (length_ == 0) return true;
    return (ip.bits() & mask_for(length_)) == addr_.bits();
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.addr_);
  }
  /// Number of addresses covered by the prefix.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }
  /// The enclosing /24 of this prefix's network address (used to group ping
  /// targets into client networks as the paper does).
  [[nodiscard]] constexpr Prefix slash24() const {
    return Prefix{addr_, 24};
  }
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Prefix&, const Prefix&) = default;
  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t mask_for(int length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }
  Ipv4 addr_;
  std::uint8_t length_ = 0;
};

}  // namespace anyopt::net

namespace std {
template <>
struct hash<anyopt::net::Ipv4> {
  size_t operator()(anyopt::net::Ipv4 ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.bits());
  }
};
template <>
struct hash<anyopt::net::Prefix> {
  size_t operator()(const anyopt::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.address().bits()} << 8) |
        static_cast<std::uint64_t>(p.length()));
  }
};
}  // namespace std
