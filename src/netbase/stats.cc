#include "netbase/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace anyopt::stats {

void Online::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Online::merge(const Online& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Online::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Online::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double median(std::vector<double> sample) {
  return quantile(std::move(sample), 0.5);
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double sum = 0;
  for (const double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> sample,
                                    std::size_t max_points) {
  std::vector<CdfPoint> out;
  if (sample.empty()) return out;
  std::sort(sample.begin(), sample.end());
  const std::size_t n = sample.size();
  const std::size_t points = std::min(max_points, n);
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const std::size_t idx =
        (i * n) / points == 0 ? 0 : (i * n) / points - 1;
    out.push_back({sample[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return out;
}

std::string format_cdf(const std::vector<CdfPoint>& cdf,
                       const std::string& value_label,
                       const std::string& series_name) {
  std::string out = "# CDF series: " + series_name + "\n";
  out += "# " + value_label + "\tP(X<=x)\n";
  char buf[64];
  for (const auto& p : cdf) {
    std::snprintf(buf, sizeof buf, "%10.3f\t%6.4f\n", p.value, p.fraction);
    out += buf;
  }
  return out;
}

}  // namespace anyopt::stats
