#include "netbase/ip.h"

#include <charconv>

namespace anyopt::net {
namespace {

bool parse_u32(std::string_view text, std::uint32_t& out,
               std::uint32_t max_value) {
  if (text.empty() || text.size() > 10) return false;
  std::uint32_t v = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end || v > max_value) return false;
  out = v;
  return true;
}

}  // namespace

Result<Ipv4> Ipv4::parse(std::string_view text) {
  std::uint32_t bits = 0;
  int octets = 0;
  while (octets < 4) {
    const size_t dot = text.find('.');
    const std::string_view part =
        octets == 3 ? text : text.substr(0, dot);
    if (octets < 3 && dot == std::string_view::npos) {
      return Error::parse("IPv4 literal has fewer than four octets");
    }
    std::uint32_t v = 0;
    if (!parse_u32(part, v, 255)) {
      return Error::parse("invalid IPv4 octet: '" + std::string(part) + "'");
    }
    bits = (bits << 8) | v;
    if (octets < 3) text.remove_prefix(dot + 1);
    ++octets;
  }
  return Ipv4{bits};
}

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

Result<Prefix> Prefix::parse(std::string_view text) {
  const size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return Error::parse("prefix is missing '/length'");
  }
  auto addr = Ipv4::parse(text.substr(0, slash));
  if (!addr) return addr.error();
  std::uint32_t length = 0;
  if (!parse_u32(text.substr(slash + 1), length, 32)) {
    return Error::parse("invalid prefix length");
  }
  return Prefix{addr.value(), static_cast<int>(length)};
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace anyopt::net
