#include "netbase/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace anyopt {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace anyopt
