#pragma once
// Deterministic random number generation.
//
// Every stochastic component of the reproduction (topology synthesis, probe
// jitter, packet loss, tie-break identifiers) derives its stream from a
// single experiment seed so that each table and figure is exactly
// reproducible.  We use SplitMix64 for seeding and xoshiro256** as the bulk
// generator; both are tiny, fast and well studied.

#include <array>
#include <cstdint>
#include <cmath>
#include <string_view>

namespace anyopt {

/// SplitMix64 step; used to expand one seed into many.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One-shot SplitMix64 finalizer: a stateless, well-mixed 64-bit hash of a
/// single word.  Used wherever a value (not a stream) must be derived
/// deterministically from structured inputs.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive combination: folds `value` into `seed` and remixes.
/// Chaining this derives content-addressed identifiers — e.g. an experiment
/// nonce from (nonce_base, first_site, second_site, order_leg) — so the
/// result depends only on the inputs, never on how many other derivations
/// happened before.
constexpr std::uint64_t mix64(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (0x9e3779b97f4a7c15ULL * (value + 1)));
}

/// Stable 64-bit FNV-1a hash, used to derive named sub-streams
/// ("probe-jitter", "topology", ...) from the experiment seed.
constexpr std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** PRNG.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xA17C0DEULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent child stream; `label` names the consumer so two
  /// components never share a stream by accident.
  [[nodiscard]] Rng fork(std::string_view label) const {
    std::uint64_t mix = state_[0] ^ (state_[2] * 0x9e3779b97f4a7c15ULL);
    mix ^= fnv1a(label);
    return Rng{mix};
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0;
    double v = 0;
    double s = 0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    have_spare_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Bernoulli trial with success probability `p`.
  bool chance(double p) { return uniform() < p; }

  /// Exponential variate with the given mean.
  double exponential(double mean) {
    return -mean * std::log1p(-uniform());
  }

  /// Pareto variate (heavy tail) with scale `xm` and shape `alpha`.
  double pareto(double xm, double alpha) {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <class Container>
  void shuffle(Container& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks one element uniformly (container must be non-empty).
  template <class Container>
  auto& pick(Container& items) {
    return items[below(items.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0;
  bool have_spare_ = false;
};

}  // namespace anyopt
