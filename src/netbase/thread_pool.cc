#include "netbase/thread_pool.h"

#include <algorithm>

namespace anyopt {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the task's future
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pending.push_back(submit([&fn, i] { fn(i); }));
  }
  // Collect in index order so the first failure is deterministic.
  std::exception_ptr first_error;
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace anyopt
