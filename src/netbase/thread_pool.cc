#include "netbase/thread_pool.h"

#include <algorithm>

#include "netbase/telemetry.h"

namespace anyopt {

namespace {

/// Pre-resolved pool metrics (one registry lookup per process).
struct PoolMetrics {
  telemetry::Counter* tasks;
  telemetry::Counter* busy_us;
  telemetry::Counter* worker_us;
  telemetry::Gauge* workers;
  telemetry::Histogram* queue_wait_ms;
  telemetry::Histogram* task_ms;

  static const PoolMetrics& get() {
    static const PoolMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return PoolMetrics{&reg.counter("pool.tasks"),
                         &reg.counter("pool.busy_us"),
                         &reg.counter("pool.worker_us"),
                         &reg.gauge("pool.workers"),
                         &reg.histogram("pool.queue_wait_ms"),
                         &reg.histogram("pool.task_ms")};
    }();
    return m;
  }
};

/// Worker identity for `ThreadPool::current_worker()`.  Workers set it once
/// at loop entry; it never changes for the thread's lifetime, and threads
/// outside any pool keep the default.
thread_local std::size_t current_worker_index = ThreadPool::kNotAWorker;

}  // namespace

std::size_t ThreadPool::current_worker() noexcept {
  return current_worker_index;
}

double ThreadPool::enqueue_stamp_us() {
  return telemetry::enabled() ? telemetry::now_us() : -1.0;
}

void ThreadPool::note_queue_depth(std::size_t depth) {
  if (!telemetry::enabled()) return;
  static telemetry::Gauge& bytes =
      telemetry::Registry::global().gauge("bytes.pool_queue");
  // Control-block footprint of the pending tasks; the closures' captured
  // state is owned elsewhere, so sizeof(Task) is the honest queue cost.
  bytes.set(static_cast<std::int64_t>(depth * sizeof(Task)));
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  created_us_ = enqueue_stamp_us();
  if (created_us_ >= 0) {
    PoolMetrics::get().workers->update_max(
        static_cast<std::int64_t>(threads));
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      current_worker_index = i;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Utilization accounting: worker-seconds offered over the pool's life vs
  // worker-seconds actually spent in tasks (`pool.busy_us / pool.worker_us`
  // in the metrics summary).  Only when telemetry spanned the whole life.
  if (created_us_ >= 0 && telemetry::enabled()) {
    const double wall_us = telemetry::now_us() - created_us_;
    const auto& m = PoolMetrics::get();
    m.busy_us->add(busy_us_.load(std::memory_order_relaxed));
    m.worker_us->add(static_cast<std::uint64_t>(
        wall_us * static_cast<double>(workers_.size())));
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      note_queue_depth(queue_.size());
    }
    if (task.enqueue_us >= 0 && telemetry::enabled()) {
      const auto& m = PoolMetrics::get();
      const double start_us = telemetry::now_us();
      m.queue_wait_ms->record((start_us - task.enqueue_us) / 1e3);
      task.fn();  // packaged_task: exceptions land in the task's future
      const double dur_us = telemetry::now_us() - start_us;
      m.task_ms->record(dur_us / 1e3);
      m.tasks->add(1);
      busy_us_.fetch_add(static_cast<std::uint64_t>(dur_us),
                         std::memory_order_relaxed);
    } else {
      task.fn();  // packaged_task: exceptions land in the task's future
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pending.push_back(submit([&fn, i] { fn(i); }));
  }
  // Collect in index order so the first failure is deterministic.
  std::exception_ptr first_error;
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace anyopt
