#pragma once
// Versioned binary record encoding — the substrate of the persistent
// result store (measure/store) and any future on-disk artifact.
//
// Layers, bottom up:
//   * primitives: LEB128 varints, zigzag signed varints, fixed-width
//     little-endian words, bit-cast doubles, length-prefixed strings;
//   * sections: a payload is a sequence of `[varint tag][varint len][bytes]`
//     sections, so a new writer can add sections that an old reader skips
//     (forward compatibility) and an old writer's payload still decodes;
//   * record frames: `[u8 kind][u32le len][u32le crc32c][payload]` — every
//     record is independently CRC-protected so corruption is detected at
//     the record that carries it, and a torn tail (crash mid-append) is
//     distinguishable from a flipped bit;
//   * file header: `[8-byte magic][u32le schema version][u64le app word]
//     [u32le crc32c]` — the app word carries a caller-defined compatibility
//     key (the store puts its topology fingerprint there).
//
// Decoding is strict: truncation, bad CRCs, malformed varints and version
// mismatches all surface as `Result`/`Status` errors with byte offsets —
// never UB, never silently wrong data.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/result.h"

namespace anyopt::codec {

/// \brief CRC32C (Castagnoli) of a byte range.
/// \param data the bytes to checksum.
/// \param chain a previous CRC to extend (0 starts a fresh checksum).
/// \return the (final) CRC value.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data,
                                   std::uint32_t chain = 0);

/// \brief Zigzag-maps a signed value to an unsigned one so small-magnitude
///        negatives stay short under varint encoding.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
/// \brief Inverse of `zigzag_encode`.
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// \brief Append-only byte builder with the codec's primitive encoders.
class Writer {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u32le(std::uint32_t v);
  void put_u64le(std::uint64_t v);
  /// LEB128 unsigned varint (1-10 bytes).
  void put_varint(std::uint64_t v);
  /// Zigzag + varint for signed values.
  void put_svarint(std::int64_t v) { put_varint(zigzag_encode(v)); }
  /// IEEE-754 bits as a fixed u64le (exact round-trip, any value).
  void put_double(double v);
  void put_bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (varint) UTF-8/opaque string.
  void put_string(std::string_view s);
  /// One section: `[varint tag][varint len][body]`.  Readers that do not
  /// know `tag` skip `len` bytes — the forward-compatibility hook.
  void put_section(std::uint64_t tag, const Writer& body);

  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  void clear() { bytes_.clear(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// \brief One decoded section: its tag and a view of its body.
struct Section {
  std::uint64_t tag = 0;
  std::span<const std::uint8_t> body;
};

/// \brief Strict sequential decoder over a byte view.  Every read returns
///        a `Result`; errors carry the failing byte offset.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> read_u8();
  [[nodiscard]] Result<std::uint32_t> read_u32le();
  [[nodiscard]] Result<std::uint64_t> read_u64le();
  [[nodiscard]] Result<std::uint64_t> read_varint();
  [[nodiscard]] Result<std::int64_t> read_svarint();
  [[nodiscard]] Result<double> read_double();
  [[nodiscard]] Result<std::string> read_string();
  /// Next `[tag][len][body]` section; errors on truncation.
  [[nodiscard]] Result<Section> read_section();

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - offset_;
  }
  /// Advances past `n` bytes the caller consumed directly (clamped to the
  /// end of the view).
  void skip(std::size_t n) { offset_ += n <= remaining() ? n : remaining(); }
  [[nodiscard]] bool at_end() const { return offset_ == data_.size(); }

 private:
  [[nodiscard]] Error truncated(const char* what) const;

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

/// \brief Decoded file header (see the format comment at the top).
struct FileHeader {
  std::uint32_t version = 0;
  std::uint64_t app_word = 0;  ///< caller-defined compatibility key
};

/// Magic length; `encode_header` asserts the magic is exactly this long.
inline constexpr std::size_t kMagicSize = 8;
/// Encoded size of a file header on disk.
inline constexpr std::size_t kHeaderSize = kMagicSize + 4 + 8 + 4;

/// \brief Renders a file header (magic + version + app word, CRC-sealed).
/// \param magic exactly `kMagicSize` bytes identifying the file type.
/// \param version schema version of the records that follow.
/// \param app_word caller-defined compatibility key.
/// \return the `kHeaderSize` header bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_header(std::string_view magic,
                                                      std::uint32_t version,
                                                      std::uint64_t app_word);

/// \brief Validates and decodes a file header.
/// \param file the file's bytes (at least the header prefix).
/// \param magic the expected magic.
/// \return the header, or a diagnostic (wrong magic, bad CRC, truncation).
[[nodiscard]] Result<FileHeader> decode_header(
    std::span<const std::uint8_t> file, std::string_view magic);

/// \brief Appends one CRC-framed record (`[kind][len][crc][payload]`).
/// \param kind application-defined record type.
/// \param payload the record body (typically a `Writer`'s bytes).
/// \param out the destination buffer (appended to).
void frame_record(std::uint8_t kind, std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>& out);

/// \brief A record frame located inside a file view.
struct FrameView {
  std::uint8_t kind = 0;
  std::span<const std::uint8_t> payload;
  std::size_t next_offset = 0;  ///< offset of the byte after this record
};

/// \brief Outcome of scanning for a record frame.
enum class FrameScan {
  kOk,         ///< frame decoded, CRC verified
  kTruncated,  ///< the frame extends past the end of the file (torn tail)
  kBadCrc,     ///< frame is complete but fails its CRC (header or payload)
};

/// \brief Scans the record frame at `offset` (no allocation, no throw).
///
/// `kTruncated` vs `kBadCrc` is the crash-recovery distinction: a torn
/// tail (interrupted append) is recoverable — every complete record before
/// it is intact — while a complete record with a failing CRC is corruption
/// and must be surfaced, never skipped.
/// \param file the whole file view.
/// \param offset where the frame starts.
/// \param out receives the frame when the scan returns `kOk`.
/// \return the scan outcome.
[[nodiscard]] FrameScan scan_frame(std::span<const std::uint8_t> file,
                                   std::size_t offset, FrameView* out);

/// \brief `scan_frame` with diagnostics: errors name the outcome and byte
///        offset.
[[nodiscard]] Result<FrameView> read_frame(std::span<const std::uint8_t> file,
                                           std::size_t offset);

}  // namespace anyopt::codec
