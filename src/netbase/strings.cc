#include "netbase/strings.h"

namespace anyopt::strings {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace anyopt::strings
