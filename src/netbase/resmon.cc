#include "netbase/resmon.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "netbase/telemetry.h"

namespace anyopt::resmon {

namespace {
/// Process-wide RSS ceiling; 0 = unlimited.  Relaxed: the budget is a
/// degradation hint, not a synchronization point.
std::atomic<std::size_t> g_mem_budget_bytes{0};
}  // namespace

void set_mem_budget_bytes(std::size_t bytes) {
  g_mem_budget_bytes.store(bytes, std::memory_order_relaxed);
}

std::size_t mem_budget_bytes() {
  return g_mem_budget_bytes.load(std::memory_order_relaxed);
}

bool over_mem_budget() {
  const std::size_t budget = mem_budget_bytes();
  if (budget == 0) return false;
  const MemorySample mem = read_memory();
  return static_cast<std::size_t>(mem.rss_kb) * 1024 > budget;
}

MemorySample read_memory() {
  MemorySample out;
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return out;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    long long kb = 0;
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      if (std::sscanf(line + 6, "%lld", &kb) == 1) out.rss_kb = kb;
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      if (std::sscanf(line + 6, "%lld", &kb) == 1) out.peak_rss_kb = kb;
    }
    if (out.rss_kb != 0 && out.peak_rss_kb != 0) break;
  }
  std::fclose(f);
  return out;
}

Sampler::Sampler(std::chrono::milliseconds period) : period_(period) {
  thread_ = std::thread([this] { loop(); });
}

Sampler::~Sampler() { stop(); }

void Sampler::stop() {
  {
    const std::lock_guard lock(mutex_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t Sampler::samples() const {
  const std::lock_guard lock(mutex_);
  return samples_;
}

void Sampler::loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    sample_once();
    ++samples_;
    if (stopping_) return;
    cv_.wait_for(lock, period_, [this] { return stopping_; });
    if (stopping_) {
      // Final sample on the way out so short runs still record a footprint.
      sample_once();
      ++samples_;
      return;
    }
  }
}

void Sampler::sample_once() {
  auto& reg = telemetry::Registry::global();
  const MemorySample mem = read_memory();
  if (mem.rss_kb != 0) reg.gauge(kRssGauge).set(mem.rss_kb);
  if (mem.peak_rss_kb != 0) reg.gauge(kPeakRssGauge).set(mem.peak_rss_kb);
  if (!telemetry::enabled() || !telemetry::tracing()) return;
  reg.counter_sample(kRssGauge, "resmon", mem.rss_kb);
  for (const char* name : kByteGauges) {
    reg.counter_sample(name, "resmon", reg.gauge_value(name));
  }
}

}  // namespace anyopt::resmon
