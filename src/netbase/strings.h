#pragma once
// Small string utilities (split/trim/join) used by the serialization code.

#include <string>
#include <string_view>
#include <vector>

namespace anyopt::strings {

/// Splits on a delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char delim);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace anyopt::strings
