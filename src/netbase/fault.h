#pragma once
// Deterministic fault injection (graceful-degradation testbed).
//
// The paper's measurements lived through real failures: lossy probe rounds,
// transit sessions that flap, sites that withdraw mid-campaign, censuses
// that come back partial (cf. the Tangled testbed experience and the
// anycast-playbook literature on operating under site loss).  This module
// describes such failures as data — a seeded, reproducible `FaultPlan` —
// so every layer above (prober, orchestrator, campaign runner, discovery)
// can rehearse them without a single nondeterministic branch.
//
// Determinism contract.  Every stochastic fault decision is a pure function
// of (plan seed, experiment ordinal, retry attempt[, target]) via the
// stateless mix64 chain — never of thread interleaving or of how many
// decisions were made before.  Two consequences the tests rely on:
//
//   * a faulted campaign is bit-identical across worker thread counts, and
//   * a *retried* experiment re-rolls only its fault decisions (the attempt
//     is part of the key); its content-derived nonce — and therefore its
//     BGP jitter and probe noise — is unchanged, so an experiment that
//     survives a retry reproduces the fault-free census bit for bit.
//
// Everything is off by default: an empty plan (or no plan at all) leaves
// every measurement bit-identical to a build without this module.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "netbase/ids.h"
#include "netbase/rng.h"

namespace anyopt::fault {

/// Ordinal sentinel: a fault window that never starts / never ends.
inline constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

/// \brief Hard failure of one anycast site for a window of the campaign.
///
/// From experiment ordinal `at_experiment` (inclusive) until `recover_at`
/// (exclusive), every announcement from the site is suppressed — the site
/// has withdrawn, exactly as a mid-campaign outage looks to the
/// orchestrator.  The default `recover_at` of `kNever` keeps it down for
/// the rest of the campaign.
struct SiteFailure {
  SiteId site;                          ///< the failed site
  std::size_t at_experiment = 0;        ///< first affected ordinal (inclusive)
  std::size_t recover_at = kNever;      ///< first healthy ordinal again
};

/// \brief A transit/peering session flap with configurable dwell times.
///
/// Starting `first_down_s` after the session's announcement, the session is
/// withdrawn for `down_dwell_s`, re-advertised, stays up `up_dwell_s`, and
/// repeats for `cycles` cycles.  The re-advertisement replays the full BGP
/// decision process downstream; because deployed routers tie-break on
/// arrival order, a flap can permanently change the winner even when the
/// final topology is identical (§4.1/§4.2 of the paper).
struct SessionFlap {
  /// Attachment index into the deployment's attachment table (a
  /// `bgp::AttachmentIndex`; kept as a plain integer so the base layer does
  /// not depend on the BGP types).
  std::uint32_t attachment = ~std::uint32_t{0};
  double first_down_s = 30.0;           ///< delay after announce until drop
  double down_dwell_s = 60.0;           ///< time spent withdrawn
  double up_dwell_s = 600.0;            ///< healthy dwell between cycles
  std::size_t cycles = 1;               ///< number of down/up cycles
};

/// \brief A probe-loss storm over a window of campaign ordinals.
///
/// During [first_experiment, last_experiment] every probe suffers an
/// additional independent loss probability of `loss_rate` on top of the
/// probe model's base rate.
struct LossStorm {
  std::size_t first_experiment = 0;     ///< window start (inclusive)
  std::size_t last_experiment = 0;      ///< window end (inclusive)
  double loss_rate = 0.5;               ///< extra per-probe loss probability
};

/// \brief A complete, seeded description of the faults to inject.
///
/// A default-constructed plan injects nothing.  All probabilistic knobs are
/// resolved deterministically from `seed` by the `FaultInjector`.
struct FaultPlan {
  /// Seed of every stochastic fault decision; two runs of the same plan
  /// over the same campaign make identical decisions.
  std::uint64_t seed = 0xFA177;
  std::vector<SiteFailure> site_failures;   ///< scheduled site outages
  std::vector<SessionFlap> session_flaps;   ///< scheduled session flaps
  std::vector<LossStorm> loss_storms;       ///< scheduled probe-loss storms
  /// Probability that a whole experiment round is lost (census comes back
  /// empty — orchestrator crash, tunnel outage, withdrawn measurement
  /// prefix).  Rolled per (ordinal, attempt).
  double experiment_failure_prob = 0.0;
  /// Probability that a round is *degraded*: it completes but silently
  /// drops a fraction of its targets (partial census — the common failure
  /// mode of real measurement rounds).  Rolled per (ordinal, attempt).
  double degraded_round_prob = 0.0;
  /// Fraction of targets dropped from a degraded round, rolled per target.
  double degraded_drop_fraction = 0.3;

  /// \brief True when the plan injects nothing at all.
  /// \return true iff every fault list is empty and every probability zero.
  [[nodiscard]] bool empty() const {
    return site_failures.empty() && session_flaps.empty() &&
           loss_storms.empty() && experiment_failure_prob <= 0.0 &&
           degraded_round_prob <= 0.0;
  }
};

/// \brief The per-experiment fault decisions resolved from a plan.
struct RoundFaults {
  bool fail_round = false;     ///< whole census lost this attempt
  bool degraded = false;       ///< round drops a fraction of targets
  double extra_loss_rate = 0;  ///< combined extra loss of active storms
};

/// \brief Resolves a `FaultPlan` into concrete, reproducible decisions.
///
/// Pure and thread-safe: every query is a stateless hash of the plan seed
/// and the query coordinates, so concurrent campaign workers can share one
/// injector.
class FaultInjector {
 public:
  /// \brief Wraps a plan for querying.
  /// \param plan the fault schedule to resolve (copied).
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// \brief The wrapped plan.
  /// \return the plan this injector resolves.
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// \brief Round-level fault decisions for one experiment attempt.
  /// \param ordinal campaign-global experiment ordinal (position of the
  ///        experiment in its campaign's spec enumeration).
  /// \param attempt retry attempt, 0 for the first run.  Fault decisions
  ///        re-roll per attempt; the experiment's nonce does not.
  /// \return the resolved round faults (loss storms depend on `ordinal`
  ///         only; failure/degradation rolls depend on both).
  [[nodiscard]] RoundFaults round(std::size_t ordinal,
                                  std::uint32_t attempt) const;

  /// \brief Whether `site` is down for the experiment at `ordinal`.
  /// \param site the site to test.
  /// \param ordinal campaign-global experiment ordinal.
  /// \return true iff any `SiteFailure` window covers `ordinal`.
  [[nodiscard]] bool site_failed(SiteId site, std::size_t ordinal) const;

  /// \brief Whether a degraded round drops `target`.
  ///
  /// Only meaningful when `round(ordinal, attempt).degraded` is true; the
  /// per-target roll is independent of every other target's.
  /// \param ordinal campaign-global experiment ordinal.
  /// \param attempt retry attempt of the round.
  /// \param target dense target id being probed.
  /// \return true iff the target is silently dropped from this round.
  [[nodiscard]] bool target_dropped(std::size_t ordinal, std::uint32_t attempt,
                                    std::uint32_t target) const;

  /// \brief The plan's session flaps (the orchestrator expands them into
  ///        timed withdraw/re-advertise injections).
  /// \return the flap list, in plan order.
  [[nodiscard]] std::span<const SessionFlap> flaps() const {
    return plan_.session_flaps;
  }

 private:
  /// Uniform [0,1) draw keyed by (seed, purpose tag, ordinal, attempt).
  [[nodiscard]] double roll(std::uint64_t tag, std::size_t ordinal,
                            std::uint32_t attempt,
                            std::uint64_t extra = 0) const;

  FaultPlan plan_;
};

}  // namespace anyopt::fault
