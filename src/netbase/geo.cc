#include "netbase/geo.h"

#include <cmath>
#include <cstdlib>
#include <numbers>
#include <stdexcept>

namespace anyopt::geo {
namespace {

constexpr double kEarthRadiusKm = 6371.0;

double deg2rad(double deg) { return deg * std::numbers::pi / 180.0; }

}  // namespace

double great_circle_km(const Coordinates& a, const Coordinates& b) {
  const double lat1 = deg2rad(a.latitude_deg);
  const double lat2 = deg2rad(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.longitude_deg - a.longitude_deg);
  const double s1 = std::sin(dlat / 2);
  const double s2 = std::sin(dlon / 2);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double one_way_latency_ms(const Coordinates& a, const Coordinates& b,
                          const LatencyModel& model) {
  const double km = great_circle_km(a, b) * model.path_inflation;
  return km * model.ms_per_km_one_way + model.per_hop_ms;
}

const std::vector<Metro>& metro_database() {
  // Table 1 metros first (the anycast sites), then a global spread used to
  // place transit PoPs and client networks.
  static const std::vector<Metro> kMetros = {
      {"Atlanta", {33.749, -84.388}},
      {"Amsterdam", {52.370, 4.895}},
      {"Los Angeles", {34.052, -118.244}},
      {"Singapore", {1.352, 103.820}},
      {"London", {51.507, -0.128}},
      {"Tokyo", {35.676, 139.650}},
      {"Osaka", {34.694, 135.502}},
      {"Miami", {25.762, -80.192}},
      {"Newark", {40.736, -74.172}},
      {"Stockholm", {59.329, 18.069}},
      {"Toronto", {43.653, -79.383}},
      {"Sao Paulo", {-23.551, -46.633}},
      {"Chicago", {41.878, -87.630}},
      {"New York", {40.713, -74.006}},
      {"San Jose", {37.338, -121.886}},
      {"Seattle", {47.606, -122.332}},
      {"Dallas", {32.777, -96.797}},
      {"Denver", {39.739, -104.990}},
      {"Washington", {38.907, -77.037}},
      {"Mexico City", {19.433, -99.133}},
      {"Bogota", {4.711, -74.072}},
      {"Buenos Aires", {-34.604, -58.382}},
      {"Santiago", {-33.449, -70.669}},
      {"Lima", {-12.046, -77.043}},
      {"Paris", {48.857, 2.352}},
      {"Frankfurt", {50.110, 8.682}},
      {"Madrid", {40.417, -3.704}},
      {"Milan", {45.464, 9.190}},
      {"Vienna", {48.208, 16.374}},
      {"Warsaw", {52.230, 21.012}},
      {"Zurich", {47.377, 8.542}},
      {"Dublin", {53.349, -6.260}},
      {"Oslo", {59.914, 10.752}},
      {"Helsinki", {60.170, 24.938}},
      {"Copenhagen", {55.676, 12.568}},
      {"Lisbon", {38.722, -9.139}},
      {"Prague", {50.075, 14.438}},
      {"Bucharest", {44.427, 26.103}},
      {"Athens", {37.984, 23.728}},
      {"Istanbul", {41.008, 28.978}},
      {"Moscow", {55.756, 37.617}},
      {"Dubai", {25.204, 55.271}},
      {"Tel Aviv", {32.085, 34.782}},
      {"Johannesburg", {-26.204, 28.047}},
      {"Cairo", {30.044, 31.236}},
      {"Lagos", {6.524, 3.379}},
      {"Nairobi", {-1.292, 36.822}},
      {"Mumbai", {19.076, 72.878}},
      {"Delhi", {28.704, 77.102}},
      {"Chennai", {13.083, 80.270}},
      {"Bangkok", {13.756, 100.502}},
      {"Jakarta", {-6.209, 106.846}},
      {"Kuala Lumpur", {3.139, 101.687}},
      {"Manila", {14.600, 120.984}},
      {"Hong Kong", {22.319, 114.169}},
      {"Taipei", {25.033, 121.565}},
      {"Seoul", {37.566, 126.978}},
      {"Shanghai", {31.230, 121.474}},
      {"Beijing", {39.904, 116.407}},
      {"Sydney", {-33.869, 151.209}},
      {"Melbourne", {-37.814, 144.963}},
      {"Auckland", {-36.849, 174.763}},
      {"Perth", {-31.953, 115.857}},
      {"Vancouver", {49.283, -123.121}},
      {"Montreal", {45.502, -73.567}},
      {"Boston", {42.360, -71.059}},
      {"Phoenix", {33.448, -112.074}},
      {"Minneapolis", {44.978, -93.265}},
      {"Houston", {29.760, -95.370}},
      {"Kansas City", {39.100, -94.579}},
      {"Salt Lake City", {40.761, -111.891}},
      {"Honolulu", {21.307, -157.858}},
  };
  return kMetros;
}

const Metro& metro(const std::string& name) {
  for (const auto& m : metro_database()) {
    if (m.name == name) return m;
  }
  throw std::invalid_argument("unknown metro: " + name);
}

}  // namespace anyopt::geo
