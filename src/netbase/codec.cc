#include "netbase/codec.h"

#include <array>
#include <bit>
#include <cassert>

namespace anyopt::codec {

namespace {

/// CRC32C lookup table (reflected Castagnoli polynomial 0x82F63B78),
/// generated once at compile time.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

/// Frame layout: kind byte, payload length, payload CRC.
constexpr std::size_t kFrameOverhead = 1 + 4 + 4;

std::uint32_t peek_u32le(std::span<const std::uint8_t> d, std::size_t at) {
  return static_cast<std::uint32_t>(d[at]) |
         static_cast<std::uint32_t>(d[at + 1]) << 8 |
         static_cast<std::uint32_t>(d[at + 2]) << 16 |
         static_cast<std::uint32_t>(d[at + 3]) << 24;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t chain) {
  std::uint32_t crc = ~chain;
  for (const std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

void Writer::put_u32le(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::put_u64le(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::put_double(double v) { put_u64le(std::bit_cast<std::uint64_t>(v)); }

void Writer::put_bytes(std::span<const std::uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void Writer::put_string(std::string_view s) {
  put_varint(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void Writer::put_section(std::uint64_t tag, const Writer& body) {
  put_varint(tag);
  put_varint(body.size());
  put_bytes(body.bytes());
}

Error Reader::truncated(const char* what) const {
  return Error::parse("truncated " + std::string(what) + " at offset " +
                      std::to_string(offset_));
}

Result<std::uint8_t> Reader::read_u8() {
  if (remaining() < 1) return truncated("u8");
  return data_[offset_++];
}

Result<std::uint32_t> Reader::read_u32le() {
  if (remaining() < 4) return truncated("u32");
  const std::uint32_t v = peek_u32le(data_, offset_);
  offset_ += 4;
  return v;
}

Result<std::uint64_t> Reader::read_u64le() {
  if (remaining() < 8) return truncated("u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

Result<std::uint64_t> Reader::read_varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (remaining() < 1) return truncated("varint");
    const std::uint8_t byte = data_[offset_++];
    // The 10th byte may only carry the final bit of a 64-bit value.
    if (shift == 63 && (byte & 0x7E) != 0) {
      return Error::parse("varint overflows 64 bits at offset " +
                          std::to_string(offset_ - 1));
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Error::parse("varint longer than 10 bytes at offset " +
                      std::to_string(offset_));
}

Result<std::int64_t> Reader::read_svarint() {
  Result<std::uint64_t> raw = read_varint();
  if (!raw.ok()) return raw.error();
  return zigzag_decode(raw.value());
}

Result<double> Reader::read_double() {
  Result<std::uint64_t> raw = read_u64le();
  if (!raw.ok()) return raw.error();
  return std::bit_cast<double>(raw.value());
}

Result<std::string> Reader::read_string() {
  Result<std::uint64_t> len = read_varint();
  if (!len.ok()) return len.error();
  if (remaining() < len.value()) return truncated("string body");
  std::string s(reinterpret_cast<const char*>(data_.data() + offset_),
                static_cast<std::size_t>(len.value()));
  offset_ += static_cast<std::size_t>(len.value());
  return s;
}

Result<Section> Reader::read_section() {
  Result<std::uint64_t> tag = read_varint();
  if (!tag.ok()) return tag.error();
  Result<std::uint64_t> len = read_varint();
  if (!len.ok()) return len.error();
  if (remaining() < len.value()) return truncated("section body");
  Section section;
  section.tag = tag.value();
  section.body = data_.subspan(offset_, static_cast<std::size_t>(len.value()));
  offset_ += static_cast<std::size_t>(len.value());
  return section;
}

std::vector<std::uint8_t> encode_header(std::string_view magic,
                                        std::uint32_t version,
                                        std::uint64_t app_word) {
  assert(magic.size() == kMagicSize);
  Writer w;
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic.data()),
               magic.size()});
  w.put_u32le(version);
  w.put_u64le(app_word);
  w.put_u32le(crc32c(w.bytes()));
  return {w.bytes().begin(), w.bytes().end()};
}

Result<FileHeader> decode_header(std::span<const std::uint8_t> file,
                                 std::string_view magic) {
  assert(magic.size() == kMagicSize);
  if (file.size() < kHeaderSize) {
    return Error::parse("file too short for header (" +
                        std::to_string(file.size()) + " < " +
                        std::to_string(kHeaderSize) + " bytes)");
  }
  const std::string_view found(reinterpret_cast<const char*>(file.data()),
                               kMagicSize);
  if (found != magic) {
    return Error::parse("bad magic; not a '" + std::string(magic) + "' file");
  }
  const std::uint32_t stored_crc = peek_u32le(file, kHeaderSize - 4);
  if (crc32c(file.subspan(0, kHeaderSize - 4)) != stored_crc) {
    return Error::parse("file header fails its CRC");
  }
  Reader r(file.subspan(kMagicSize, kHeaderSize - kMagicSize - 4));
  FileHeader header;
  header.version = r.read_u32le().value();
  header.app_word = r.read_u64le().value();
  return header;
}

void frame_record(std::uint8_t kind, std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>& out) {
  // The CRC covers the kind and length bytes chained with the payload, so
  // a flipped header bit is caught as surely as a flipped payload bit.
  Writer w;
  w.put_u8(kind);
  w.put_u32le(static_cast<std::uint32_t>(payload.size()));
  const std::uint32_t crc = crc32c(payload, crc32c(w.bytes()));
  w.put_u32le(crc);
  w.put_bytes(payload);
  out.insert(out.end(), w.bytes().begin(), w.bytes().end());
}

FrameScan scan_frame(std::span<const std::uint8_t> file, std::size_t offset,
                     FrameView* out) {
  if (file.size() - offset < kFrameOverhead) return FrameScan::kTruncated;
  const std::uint8_t kind = file[offset];
  const std::uint32_t len = peek_u32le(file, offset + 1);
  const std::uint32_t stored_crc = peek_u32le(file, offset + 5);
  if (file.size() - offset - kFrameOverhead < len) {
    return FrameScan::kTruncated;
  }
  const std::span<const std::uint8_t> payload =
      file.subspan(offset + kFrameOverhead, len);
  const std::uint32_t header_crc = crc32c(file.subspan(offset, 5));
  if (crc32c(payload, header_crc) != stored_crc) return FrameScan::kBadCrc;
  if (out != nullptr) {
    out->kind = kind;
    out->payload = payload;
    out->next_offset = offset + kFrameOverhead + len;
  }
  return FrameScan::kOk;
}

Result<FrameView> read_frame(std::span<const std::uint8_t> file,
                             std::size_t offset) {
  FrameView view;
  switch (scan_frame(file, offset, &view)) {
    case FrameScan::kOk:
      return view;
    case FrameScan::kTruncated:
      return Error::parse("truncated record at offset " +
                          std::to_string(offset));
    case FrameScan::kBadCrc:
      return Error::parse("record fails its CRC at offset " +
                          std::to_string(offset));
  }
  return Error::parse("unreachable");
}

}  // namespace anyopt::codec
