#pragma once
// Statistics helpers shared by the measurement layer and the benchmark
// harnesses: online mean/variance, exact quantiles, CDF series, and the
// median-of-k filter the paper uses for RTT sampling (§3.1).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace anyopt::stats {

/// Welford online accumulator for mean / variance / extrema.
class Online {
 public:
  void add(double x);
  void merge(const Online& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Exact quantile of a sample (linear interpolation between order
/// statistics); `q` in [0, 1].  Returns 0 for an empty sample.
[[nodiscard]] double quantile(std::vector<double> sample, double q);

/// Median, the paper's outlier filter for repeated RTT probes.
[[nodiscard]] double median(std::vector<double> sample);

/// Arithmetic mean (0 for empty).
[[nodiscard]] double mean(std::span<const double> sample);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0;  ///< x: the sample value
  double fraction = 0;  ///< y: P(X <= value)
};

/// Builds an empirical CDF, decimated to at most `max_points` points so a
/// bench can print the same series a paper figure plots.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::vector<double> sample,
                                                  std::size_t max_points = 50);

/// Renders a CDF as aligned two-column text for bench output.
[[nodiscard]] std::string format_cdf(const std::vector<CdfPoint>& cdf,
                                     const std::string& value_label,
                                     const std::string& series_name);

}  // namespace anyopt::stats
