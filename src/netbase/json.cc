#include "netbase/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace anyopt::json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::uint64_t Value::as_u64() const {
  if (kind != Kind::kNumber || !(number_value > 0.0)) return 0;
  return static_cast<std::uint64_t>(number_value);
}

namespace {

/// Recursive-descent parser over a string_view; `pos_` is the next unread
/// byte and doubles as the error offset.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    skip_ws();
    Value root;
    if (auto st = parse_value(root, /*depth=*/0); !st.ok()) return st.error();
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after document");
    return root;
  }

 private:
  // Deep enough for any artifact this repo writes; prevents stack overflow
  // on adversarial input (the record tests feed arbitrary files through).
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] Error fail(std::string what) const {
    return Error::parse("json: " + std::move(what) + " at byte " +
                        std::to_string(pos_));
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Status parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.string_value);
      case 't':
        if (!consume_word("true")) return fail("bad literal");
        out.kind = Value::Kind::kBool;
        out.bool_value = true;
        return {};
      case 'f':
        if (!consume_word("false")) return fail("bad literal");
        out.kind = Value::Kind::kBool;
        out.bool_value = false;
        return {};
      case 'n':
        if (!consume_word("null")) return fail("bad literal");
        out.kind = Value::Kind::kNull;
        return {};
      default: return parse_number(out);
    }
  }

  Status parse_object(Value& out, int depth) {
    ++pos_;  // '{'
    out.kind = Value::Kind::kObject;
    skip_ws();
    if (consume('}')) return {};
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (auto st = parse_string(key); !st.ok()) return st;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Value member;
      if (auto st = parse_value(member, depth + 1); !st.ok()) return st;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return {};
      return fail("expected ',' or '}'");
    }
  }

  Status parse_array(Value& out, int depth) {
    ++pos_;  // '['
    out.kind = Value::Kind::kArray;
    skip_ws();
    if (consume(']')) return {};
    while (true) {
      skip_ws();
      Value item;
      if (auto st = parse_value(item, depth + 1); !st.ok()) return st;
      out.items.push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return {};
      return fail("expected ',' or ']'");
    }
  }

  Status parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return {};
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (auto st = parse_unicode_escape(out); !st.ok()) return st;
          break;
        }
        default:
          pos_ -= 1;
          return fail("bad escape character");
      }
    }
  }

  Status parse_unicode_escape(std::string& out) {
    unsigned cp = 0;
    if (auto st = parse_hex4(cp); !st.ok()) return st;
    // Surrogate pair: a high surrogate must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (!consume_word("\\u")) return fail("unpaired high surrogate");
      unsigned lo = 0;
      if (auto st = parse_hex4(lo); !st.ok()) return st;
      if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      return fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return {};
  }

  Status parse_hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) return fail("truncated \\u escape");
      const char c = text_[pos_];
      unsigned digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A') + 10;
      } else {
        return fail("bad hex digit in \\u escape");
      }
      out = out * 16 + digit;
      ++pos_;
    }
    return {};
  }

  Status parse_number(Value& out) {
    const std::size_t start = pos_;
    consume('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      pos_ = start;
      return fail("expected value");
    }
    // Integer part: a single 0, or a nonzero digit run (no leading zeros).
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (consume('.')) {
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected digits after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected exponent digits");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.kind = Value::Kind::kNumber;
    out.number_value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out.number_value)) return fail("number out of range");
    return {};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).run(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace anyopt::json
