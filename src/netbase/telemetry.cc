#include "netbase/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "netbase/json.h"
#include "netbase/table.h"

namespace anyopt::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_tracing{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_tracing(bool on) {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

double now_us() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

namespace {

/// Bucket index: log2 of the value, offset so [2^-32, 2^31) maps onto
/// [1, 63]; non-positive and tiny values share bucket 0.
int bucket_of(double v) {
  if (!(v > 0x1.0p-32)) return 0;
  const int b = std::ilogb(v) + 33;  // ilogb(2^-32) = -32 -> bucket 1
  return std::clamp(b, 1, Histogram::kBuckets - 1);
}

/// Geometric midpoint of a bucket (inverse of `bucket_of`).
double bucket_mid(int b) {
  if (b <= 0) return 0.0;
  return std::ldexp(1.4142135623730951, b - 33);  // sqrt(2) * 2^(b-33)
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void Histogram::record(double v) {
  if (!std::isfinite(v)) {
    non_finite_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_min(min_, v);
  detail::atomic_max(max_, v);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  // Contract: out-of-range p clamps into [0, 1].  NaN must be handled
  // before std::clamp — clamp(NaN, 0, 1) returns NaN (both comparisons are
  // false), and casting NaN to an integer rank below is undefined.
  if (!(p >= 0.0)) {
    p = 0.0;
  } else if (p > 1.0) {
    p = 1.0;
  }
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank && seen > 0) {
      // Clamp the estimate into the observed range so p0/p100 make sense.
      return std::clamp(bucket_mid(b), min(), max());
    }
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  non_finite_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return counters_[std::string(name)];
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return gauges_[std::string(name)];
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return histograms_[std::string(name)];
}

std::uint32_t Registry::tid_of_current_thread() {
  const auto [it, inserted] = tids_.try_emplace(
      std::this_thread::get_id(),
      static_cast<std::uint32_t>(tids_.size() + 1));
  return it->second;
}

void Registry::span(const char* name, const char* category, double ts_us,
                    double dur_us, std::string args_json) {
  if (!enabled() || !tracing()) return;
  const std::lock_guard lock(mutex_);
  if (events_.size() >= kMaxTraceEvents) {
    ++events_dropped_;
    return;
  }
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.ts_us = ts_us;
  ev.dur_us = std::max(0.0, dur_us);
  ev.tid = tid_of_current_thread();
  ev.phase = 'X';
  ev.args_json = std::move(args_json);
  events_.push_back(std::move(ev));
}

void Registry::instant(const char* name, const char* category,
                       std::string args_json) {
  if (!enabled() || !tracing()) return;
  const std::lock_guard lock(mutex_);
  if (events_.size() >= kMaxTraceEvents) {
    ++events_dropped_;
    return;
  }
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.ts_us = now_us();
  ev.dur_us = -1;
  ev.tid = tid_of_current_thread();
  ev.phase = 'i';
  ev.args_json = std::move(args_json);
  events_.push_back(std::move(ev));
}

void Registry::counter_sample(const char* name, const char* category,
                              std::int64_t value) {
  if (!enabled() || !tracing()) return;
  const std::lock_guard lock(mutex_);
  if (events_.size() >= kMaxTraceEvents) {
    ++events_dropped_;
    return;
  }
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.ts_us = now_us();
  ev.dur_us = -1;
  ev.tid = tid_of_current_thread();
  ev.phase = 'C';
  ev.args_json = "{\"value\":" + std::to_string(value) + "}";
  events_.push_back(std::move(ev));
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const std::lock_guard lock(mutex_);
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second.value();
}

std::int64_t Registry::gauge_value(std::string_view name) const {
  const std::lock_guard lock(mutex_);
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0 : it->second.value();
}

std::int64_t Registry::gauge_max(std::string_view name) const {
  const std::lock_guard lock(mutex_);
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0 : it->second.max();
}

std::size_t Registry::trace_event_count() const {
  const std::lock_guard lock(mutex_);
  return events_.size();
}

void Registry::reset() {
  const std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
  events_.clear();
  events_dropped_ = 0;
}

namespace {

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// JSON string escaping for names and keys (the shared escaper lives in
/// netbase/json so the trace writer and the serve protocol agree).
std::string json_escape(std::string_view s) { return json::escape(s); }

}  // namespace

std::string Registry::summary(bool include_empty) const {
  const std::lock_guard lock(mutex_);

  const auto sorted_names = [](const auto& map) {
    std::vector<std::string_view> names;
    names.reserve(map.size());
    for (const auto& [name, metric] : map) names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
  };

  std::string out;
  // The counters table must stay deterministically sorted by metric name —
  // including synthetic rows like the trace-drop tally — so two runs'
  // summaries diff cleanly line against line.
  std::vector<std::pair<std::string, std::uint64_t>> counter_rows;
  for (const auto name : sorted_names(counters_)) {
    const Counter& c = counters_.at(std::string(name));
    if (c.value() == 0 && !include_empty) continue;
    counter_rows.emplace_back(std::string(name), c.value());
  }
  if (events_dropped_ > 0) {
    counter_rows.emplace_back("telemetry.trace.dropped", events_dropped_);
  }
  std::sort(counter_rows.begin(), counter_rows.end());
  TextTable counters({"counter", "value"});
  for (const auto& [name, value] : counter_rows) {
    counters.add_row({name, std::to_string(value)});
  }
  if (!counter_rows.empty()) out += counters.render();

  TextTable gauges({"gauge", "last", "peak"});
  bool have_gauges = false;
  for (const auto name : sorted_names(gauges_)) {
    const Gauge& g = gauges_.at(std::string(name));
    if (g.value() == 0 && g.max() == 0 && !include_empty) continue;
    gauges.add_row({std::string(name), std::to_string(g.value()),
                    std::to_string(g.max())});
    have_gauges = true;
  }
  if (have_gauges) {
    if (!out.empty()) out += "\n";
    out += gauges.render();
  }

  TextTable hists({"histogram", "count", "mean", "p50", "p95", "max"});
  bool have_hists = false;
  for (const auto name : sorted_names(histograms_)) {
    const Histogram& h = histograms_.at(std::string(name));
    if (h.count() == 0 && !include_empty) continue;
    hists.add_row({std::string(name), std::to_string(h.count()),
                   format_value(h.mean()), format_value(h.percentile(0.5)),
                   format_value(h.percentile(0.95)), format_value(h.max())});
    have_hists = true;
  }
  if (have_hists) {
    if (!out.empty()) out += "\n";
    out += hists.render();
  }
  if (out.empty()) out = "(no telemetry recorded)\n";
  return out;
}

std::string Registry::chrome_trace_json() const {
  const std::lock_guard lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    if (i != 0) out += ",";
    out += "\n{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
           json_escape(ev.category) + "\",";
    if (ev.phase == 'C') {
      std::snprintf(buf, sizeof buf, "\"ph\":\"C\",\"ts\":%.3f,", ev.ts_us);
    } else if (ev.dur_us >= 0 && ev.phase == 'X') {
      std::snprintf(buf, sizeof buf,
                    "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,", ev.ts_us,
                    ev.dur_us);
    } else {
      std::snprintf(buf, sizeof buf, "\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,",
                    ev.ts_us);
    }
    out += buf;
    std::snprintf(buf, sizeof buf, "\"pid\":1,\"tid\":%u", ev.tid);
    out += buf;
    if (!ev.args_json.empty()) {
      out += ",\"args\":" + ev.args_json;
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void ScopedTimer::finish() {
  if (!active_) return;
  active_ = false;
  const double end_us = now_us();
  const double dur_us = end_us - start_us_;
  if (hist_ != nullptr) hist_->record(dur_us / 1e3);
  if (tracing()) {
    Registry::global().span(name_, category_, start_us_, dur_us,
                            std::move(args_json_));
  }
}

std::string make_args(const char* key, std::uint64_t value) {
  return "{\"" + json_escape(key) + "\":" + std::to_string(value) + "}";
}

std::string make_args(const char* key, std::uint64_t value, const char* key2,
                      std::uint64_t value2) {
  return "{\"" + json_escape(key) + "\":" + std::to_string(value) + ",\"" +
         json_escape(key2) + "\":" + std::to_string(value2) + "}";
}

}  // namespace anyopt::telemetry
