#pragma once
// Resource monitor: process memory telemetry for long-lived campaigns.
//
// Two pieces:
//   * `read_memory()` — one snapshot of the process's resident-set size and
//     its lifetime high-water mark, parsed from `/proc/self/status`
//     (VmRSS / VmHWM).  Returns zeros on platforms without procfs, so
//     callers degrade to "no RSS data" rather than failing.
//   * `Sampler` — a background thread that periodically feeds the snapshot
//     into the `res.rss_kb` / `res.peak_rss_kb` gauges and, when tracing is
//     on, emits Chrome counter-sample rows for RSS plus every registered
//     `bytes.*` subsystem gauge (sim scratch arenas, overlay pages, resolve
//     cache, store index, pool queues).  Opening the resulting trace in
//     Perfetto shows memory as stacked time-series charts alongside the
//     experiment spans.
//
// The sampler only ever *reads* simulation state through relaxed-atomic
// gauges — it never touches an experiment RNG or mutates shared state — so
// running it cannot change a measurement result (enforced by the
// observability invariance test).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace anyopt::resmon {

/// One memory snapshot, in kilobytes as reported by the kernel.
struct MemorySample {
  std::int64_t rss_kb = 0;       ///< VmRSS: current resident set
  std::int64_t peak_rss_kb = 0;  ///< VmHWM: lifetime peak resident set
};

/// Reads `/proc/self/status`; all-zero sample when unavailable.
[[nodiscard]] MemorySample read_memory();

/// Gauge names the sampler maintains (also the BENCH json field sources).
inline constexpr const char* kRssGauge = "res.rss_kb";
inline constexpr const char* kPeakRssGauge = "res.peak_rss_kb";

/// Per-subsystem retained-byte gauges sampled into the trace.  Central
/// list so the sampler, the bench-json writer, and the record schema agree.
/// `bytes.snapshot` (the serve layer's resident snapshot) is only nonzero
/// in processes that build a serve snapshot; the bench record writer emits
/// it as an optional field for exactly that reason.
inline constexpr const char* kByteGauges[] = {
    "bytes.sim_scratch", "bytes.overlay_pages", "bytes.resolve_cache",
    "bytes.store_index", "bytes.pool_queue",   "bytes.snapshot",
};

/// Background sampler thread.  Construction starts it; destruction (or
/// `stop()`) joins it after one final sample, so even a run shorter than
/// the period records its memory footprint.
class Sampler {
 public:
  explicit Sampler(std::chrono::milliseconds period =
                       std::chrono::milliseconds(50));
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stops and joins the sampler thread (idempotent).
  void stop();

  /// Samples taken so far (monotonic; for tests and overhead accounting).
  [[nodiscard]] std::uint64_t samples() const;

 private:
  void loop();
  void sample_once();

  std::chrono::milliseconds period_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t samples_ = 0;
  std::thread thread_;
};

}  // namespace anyopt::resmon
