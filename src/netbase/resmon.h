#pragma once
// Resource monitor: process memory telemetry for long-lived campaigns.
//
// Two pieces:
//   * `read_memory()` — one snapshot of the process's resident-set size and
//     its lifetime high-water mark, parsed from `/proc/self/status`
//     (VmRSS / VmHWM).  Returns zeros on platforms without procfs, so
//     callers degrade to "no RSS data" rather than failing.
//   * `Sampler` — a background thread that periodically feeds the snapshot
//     into the `res.rss_kb` / `res.peak_rss_kb` gauges and, when tracing is
//     on, emits Chrome counter-sample rows for RSS plus every registered
//     `bytes.*` subsystem gauge (sim scratch arenas, overlay pages, resolve
//     cache, store index, pool queues).  Opening the resulting trace in
//     Perfetto shows memory as stacked time-series charts alongside the
//     experiment spans.
//
// The sampler only ever *reads* simulation state through relaxed-atomic
// gauges — it never touches an experiment RNG or mutates shared state — so
// running it cannot change a measurement result (enforced by the
// observability invariance test).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace anyopt::resmon {

/// One memory snapshot, in kilobytes as reported by the kernel.
struct MemorySample {
  std::int64_t rss_kb = 0;       ///< VmRSS: current resident set
  std::int64_t peak_rss_kb = 0;  ///< VmHWM: lifetime peak resident set
};

/// Reads `/proc/self/status`; all-zero sample when unavailable.
[[nodiscard]] MemorySample read_memory();

/// Gauge names the sampler maintains (also the BENCH json field sources).
inline constexpr const char* kRssGauge = "res.rss_kb";
inline constexpr const char* kPeakRssGauge = "res.peak_rss_kb";

/// Per-subsystem retained-byte gauges sampled into the trace.  Central
/// list so the sampler, the bench-json writer, and the record schema agree
/// (docs/SCALING.md documents every gauge here; docs_test enforces the
/// coverage).  `bytes.snapshot` (the serve layer's resident snapshot) is
/// only nonzero in processes that build a serve snapshot; `bytes.rib`
/// (frozen structure-of-arrays RIB tables) and `bytes.census_shards`
/// (sharded census aggregation) are only nonzero in processes that run the
/// compact resolve path — the bench record writer emits all three as
/// optional fields for exactly that reason.
inline constexpr const char* kByteGauges[] = {
    "bytes.sim_scratch", "bytes.overlay_pages", "bytes.resolve_cache",
    "bytes.store_index", "bytes.pool_queue",   "bytes.snapshot",
    "bytes.rib",         "bytes.census_shards",
};

/// \name Hard memory budget
/// A process-wide RSS ceiling for Internet-scale runs (`--mem-budget-mb`).
/// The budget does not kill anything: subsystems consult
/// `over_mem_budget()` at their retention decision points and degrade to
/// streaming — the orchestrator stops parking recycled simulation arenas,
/// the census plane releases aggregation shards as they drain, the compact
/// resolve layer caps its walk cache.  Every degradation is
/// result-invariant (bit-identical censuses), only peak RSS changes.
/// @{

/// Sets the budget in bytes; 0 (the default) disables enforcement.
void set_mem_budget_bytes(std::size_t bytes);
/// Currently configured budget in bytes (0 = unlimited).
[[nodiscard]] std::size_t mem_budget_bytes();
/// True when the process RSS currently exceeds the configured budget.
/// Reads procfs on each call — poll at decision points (per census), not
/// per target; always false when no budget is set or procfs is missing.
[[nodiscard]] bool over_mem_budget();
/// @}

/// Background sampler thread.  Construction starts it; destruction (or
/// `stop()`) joins it after one final sample, so even a run shorter than
/// the period records its memory footprint.
class Sampler {
 public:
  explicit Sampler(std::chrono::milliseconds period =
                       std::chrono::milliseconds(50));
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stops and joins the sampler thread (idempotent).
  void stop();

  /// Samples taken so far (monotonic; for tests and overhead accounting).
  [[nodiscard]] std::uint64_t samples() const;

 private:
  void loop();
  void sample_once();

  std::chrono::milliseconds period_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t samples_ = 0;
  std::thread thread_;
};

}  // namespace anyopt::resmon
