#pragma once
// Thread-safe, near-zero-overhead-when-disabled instrumentation layer.
//
// Three pieces:
//   * a process-global Registry of named counters / gauges / histograms
//     (lock-free recording on pre-resolved metric handles);
//   * RAII ScopedTimer spans that feed a duration histogram and, when
//     tracing is on, a structured event sink;
//   * the event sink itself, exporting both a human-readable summary table
//     and Chrome trace-event JSON (open in Perfetto / chrome://tracing).
//
// Cost model.  Telemetry is OFF by default.  Every instrumentation site is
// guarded by `enabled()` — one relaxed atomic load — so the disabled hot
// path pays exactly that and nothing else: no clock reads, no allocation,
// no locks.  When enabled, counters/gauges/histograms record with relaxed
// atomics (no locking); only trace-event capture and metric *registration*
// take a mutex.  Instrumentation never touches any experiment RNG, so
// enabling telemetry cannot change a measurement result.
//
// Naming convention: `<module>.<component>.<metric>` with unit suffixes on
// histograms (`_ms`, `_s`, `_us`).  See DESIGN.md "Observability".

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace anyopt::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_tracing;

inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}
inline void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Master switch.  The ONLY check instrumented hot paths perform when
/// telemetry is off: a single relaxed atomic load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Trace-event capture (implies work per span; independent of `enabled`
/// but inert unless telemetry is also enabled).
inline bool tracing() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}
void set_tracing(bool on);

/// Microseconds since process telemetry epoch (steady clock).
[[nodiscard]] double now_us();

/// Monotonically increasing event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-set value plus the running maximum (e.g. peak queue depth).
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    update_max(v);
  }
  /// Adjusts the value by a (possibly negative) delta and raises the
  /// maximum.  The byte-accounting idiom: concurrent subsystems each add
  /// their own retained-bytes delta, so `value()` is the live total and
  /// `max()` its high-water mark.
  void add(std::int64_t delta) {
    const std::int64_t now =
        v_.fetch_add(delta, std::memory_order_relaxed) + delta;
    update_max(now);
  }
  /// Raises the maximum without touching the last-set value.
  void update_max(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Log2-bucketed distribution with exact count/sum/min/max.  Buckets span
/// [2^-32, 2^31); values at or below zero land in bucket 0.  Recording is
/// lock-free (relaxed atomics), so concurrent recorders never serialize.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Records one sample.  Non-finite values (NaN, ±inf) are counted in
  /// `non_finite()` and otherwise dropped — one bad sample must not poison
  /// the mean/min/max of the whole run.
  void record(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Samples rejected by `record` for being NaN or ±inf.
  [[nodiscard]] std::uint64_t non_finite() const {
    return non_finite_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// 0.0 / lowest-recorded when empty / populated.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Bucket-resolution estimate (geometric bucket midpoint) of the p-th
  /// quantile.  Contract: returns 0.0 on an empty histogram (any p,
  /// including NaN); p outside [0, 1] — and NaN — clamps into the range
  /// (NaN clamps to 0), so a summary table can never print garbage for a
  /// never-hit span.  The estimate is always inside [min(), max()].
  [[nodiscard]] double percentile(double p) const;
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> non_finite_{0};
  std::atomic<double> sum_{0.0};
  // ±inf sentinels: any recorded value replaces them race-free.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One captured trace event (Chrome trace-event format).
struct TraceEvent {
  std::string name;
  const char* category = "";
  double ts_us = 0;      ///< start, microseconds since telemetry epoch
  double dur_us = -1;    ///< span duration; negative = instant event
  std::uint32_t tid = 0;
  /// Chrome phase: 'X' complete span, 'i' instant, 'C' counter sample
  /// (time-series row; `args_json` carries the sampled values).
  char phase = 'X';
  std::string args_json;  ///< pre-rendered JSON object ("{...}") or empty
};

/// Named-metric registry plus the structured event sink.  `global()` is the
/// process-wide instance every instrumentation site uses.  Metric handles
/// returned by `counter()/gauge()/histogram()` are stable for the life of
/// the registry — resolve them once (static local) and record lock-free.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Structured event sink: a completed span.  No-op unless both telemetry
  /// and tracing are on.
  void span(const char* name, const char* category, double ts_us,
            double dur_us, std::string args_json = {});

  /// Structured event sink: an instant (point-in-time) event — the library
  /// diagnostics channel; library code routes here instead of stdio.
  void instant(const char* name, const char* category,
               std::string args_json = {});

  /// Structured event sink: one time-series sample (Chrome counter event,
  /// rendered as a stacked chart row in Perfetto).  The resource-monitor
  /// sampler feeds RSS and per-subsystem byte totals through here.  No-op
  /// unless both telemetry and tracing are on.
  void counter_sample(const char* name, const char* category,
                      std::int64_t value);

  /// Human-readable summary of every registered metric (counters, gauges,
  /// histograms), sorted by name.  Metrics with no recorded data are
  /// omitted unless `include_empty`.
  [[nodiscard]] std::string summary(bool include_empty = false) const;

  /// Chrome trace-event JSON for everything the event sink captured.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Value lookups for derived reporting (0 / nullptr-like when absent).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  /// Last-set value of a gauge (0 when absent).
  [[nodiscard]] std::int64_t gauge_value(std::string_view name) const;
  /// Running maximum of a gauge (0 when absent).
  [[nodiscard]] std::int64_t gauge_max(std::string_view name) const;

  /// Zeroes every metric and drops all captured trace events.
  void reset();

  [[nodiscard]] std::size_t trace_event_count() const;

 private:
  std::uint32_t tid_of_current_thread();  // callers must hold mutex_

  mutable std::mutex mutex_;
  // node-based maps: handle pointers stay valid across registration.
  std::unordered_map<std::string, Counter> counters_;
  std::unordered_map<std::string, Gauge> gauges_;
  std::unordered_map<std::string, Histogram> histograms_;
  std::vector<TraceEvent> events_;
  std::uint64_t events_dropped_ = 0;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

/// Hard cap on captured trace events (drops beyond, counted in the summary
/// as `telemetry.trace.dropped`); keeps long campaigns bounded.
inline constexpr std::size_t kMaxTraceEvents = 1u << 20;

/// RAII span: times a scope into `hist` (milliseconds) and, when tracing,
/// emits a trace event.  When telemetry is disabled the constructor costs
/// one relaxed load and the destructor one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, const char* category,
                       Histogram* hist = nullptr, std::string args_json = {})
      : name_(name), category_(category), hist_(hist), active_(enabled()) {
    if (active_) {
      if (tracing()) args_json_ = std::move(args_json);
      start_us_ = now_us();
    }
  }
  ~ScopedTimer() { finish(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Ends the span early (idempotent).
  void finish();

 private:
  const char* name_;
  const char* category_;
  Histogram* hist_;
  bool active_;
  double start_us_ = 0;
  std::string args_json_;
};

/// Renders a small JSON args object: `make_args("i", 4)` -> `{"i":4}`.
[[nodiscard]] std::string make_args(const char* key, std::uint64_t value);
[[nodiscard]] std::string make_args(const char* key, std::uint64_t value,
                                    const char* key2, std::uint64_t value2);

}  // namespace anyopt::telemetry
