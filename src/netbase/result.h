#pragma once
// Minimal expected-like result type used for recoverable failures across
// the public API (parse errors, infeasible optimizations, ...).  Programmer
// errors (contract violations) use assertions instead.

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace anyopt {

/// Lightweight error payload: a machine-checkable code plus human message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kNotFound,
    kParse,
    kInfeasible,
    kState,
    kTimeout,
  };
  Code code = Code::kInvalidArgument;
  std::string message;

  [[nodiscard]] static Error invalid(std::string msg) {
    return {Code::kInvalidArgument, std::move(msg)};
  }
  [[nodiscard]] static Error not_found(std::string msg) {
    return {Code::kNotFound, std::move(msg)};
  }
  [[nodiscard]] static Error parse(std::string msg) {
    return {Code::kParse, std::move(msg)};
  }
  [[nodiscard]] static Error infeasible(std::string msg) {
    return {Code::kInfeasible, std::move(msg)};
  }
  [[nodiscard]] static Error state(std::string msg) {
    return {Code::kState, std::move(msg)};
  }
  [[nodiscard]] static Error timeout(std::string msg) {
    return {Code::kTimeout, std::move(msg)};
  }
};

/// `Result<T>` holds either a value or an `Error`.
template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace anyopt
