#pragma once
// Fixed-size worker pool with one shared FIFO task queue (deliberately
// work-stealing-free: tasks here are whole BGP experiments, milliseconds
// each, so a single locked queue is nowhere near contention).
//
// The pool powers `measure::CampaignRunner`: experiment batches are
// submitted as independent tasks over shared *immutable* state (topology,
// deployment, simulator), each writing only its own result slot, so no
// synchronization beyond the queue itself is needed and results are
// bit-identical to the serial path regardless of worker count or
// completion order.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace anyopt {

class ThreadPool {
 public:
  /// Spawns `threads` workers; `threads == 0` selects the hardware
  /// concurrency (at least 1).  Contract: the pool NEVER has zero workers —
  /// `size() >= 1` for every argument — so submitted work always drains.
  /// Callers that want "0 means serial" semantics (e.g. the bench CLI's
  /// `--threads` flag) must clamp before constructing.
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: pending tasks are abandoned (their futures broken),
  /// the currently running tasks finish, and all workers are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Returned by `current_worker()` on threads that are not pool workers.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// Index of the calling pool worker in [0, size()), or `kNotAWorker` when
  /// called from any other thread.  Lets per-worker resources (e.g. the
  /// campaign runner's `SimScratch` arenas) be indexed without locks.
  [[nodiscard]] static std::size_t current_worker() noexcept;

  /// Enqueues `task`; the returned future delivers its result, or rethrows
  /// the exception it exited with.
  template <class F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    {
      const std::lock_guard lock(mutex_);
      queue_.push_back({[packaged] { (*packaged)(); }, enqueue_stamp_us()});
      note_queue_depth(queue_.size());
    }
    ready_.notify_one();
    return future;
  }

  /// Runs `fn(i)` for every i in [0, count) across the workers and blocks
  /// until all complete.  If any invocation throws, the exception of the
  /// LOWEST failing index is rethrown (deterministic regardless of
  /// completion order); the remaining iterations still run to completion.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
    double enqueue_us;  ///< telemetry stamp; < 0 when telemetry is off
  };

  void worker_loop();

  /// Now-stamp for queue-wait accounting; -1 (no clock read) when
  /// telemetry is disabled.
  [[nodiscard]] static double enqueue_stamp_us();

  /// Feeds the `bytes.pool_queue` gauge with the pending queue's footprint
  /// (no-op when telemetry is off).  Callers must hold `mutex_`.
  static void note_queue_depth(std::size_t depth);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
  double created_us_;                      ///< construction stamp
  std::atomic<std::uint64_t> busy_us_{0};  ///< summed task execution time
};

}  // namespace anyopt
