#include "netbase/fault.h"

namespace anyopt::fault {
namespace {

// Purpose tags keep the roll streams for distinct decisions independent
// even when they share (ordinal, attempt).
constexpr std::uint64_t kTagFailRound = 0xF41'15'0FULL;
constexpr std::uint64_t kTagDegraded = 0xDE6'4A'DEULL;
constexpr std::uint64_t kTagTargetDrop = 0xD40'77'EDULL;

}  // namespace

double FaultInjector::roll(std::uint64_t tag, std::size_t ordinal,
                           std::uint32_t attempt, std::uint64_t extra) const {
  std::uint64_t key = mix64(plan_.seed, tag);
  key = mix64(key, static_cast<std::uint64_t>(ordinal));
  key = mix64(key, static_cast<std::uint64_t>(attempt));
  if (extra != 0) key = mix64(key, extra);
  // Same 53-bit mantissa construction as Rng::uniform(): exact [0, 1).
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

RoundFaults FaultInjector::round(std::size_t ordinal,
                                 std::uint32_t attempt) const {
  RoundFaults out;
  if (plan_.experiment_failure_prob > 0.0 &&
      roll(kTagFailRound, ordinal, attempt) < plan_.experiment_failure_prob) {
    out.fail_round = true;
    return out;  // nothing else matters for a lost round
  }
  if (plan_.degraded_round_prob > 0.0 &&
      roll(kTagDegraded, ordinal, attempt) < plan_.degraded_round_prob) {
    out.degraded = true;
  }
  for (const LossStorm& storm : plan_.loss_storms) {
    if (ordinal < storm.first_experiment || ordinal > storm.last_experiment) {
      continue;
    }
    // Independent storms combine as 1 - prod(1 - p_i).
    out.extra_loss_rate =
        out.extra_loss_rate + storm.loss_rate -
        out.extra_loss_rate * storm.loss_rate;
  }
  return out;
}

bool FaultInjector::site_failed(SiteId site, std::size_t ordinal) const {
  for (const SiteFailure& failure : plan_.site_failures) {
    if (failure.site == site && ordinal >= failure.at_experiment &&
        ordinal < failure.recover_at) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::target_dropped(std::size_t ordinal, std::uint32_t attempt,
                                   std::uint32_t target) const {
  if (plan_.degraded_drop_fraction <= 0.0) return false;
  return roll(kTagTargetDrop, ordinal, attempt,
              mix64(0x7A46E7ULL, target)) < plan_.degraded_drop_fraction;
}

}  // namespace anyopt::fault
