#pragma once
// Strongly typed integer identifiers used across the AnyOpt libraries.
//
// Each entity class (AS, PoP router, anycast site, ping target, link) gets
// its own ID type so that an AsId cannot be silently passed where a SiteId
// is expected.  IDs are dense indices assigned by the owning container.

#include <cstdint>
#include <functional>
#include <limits>

namespace anyopt {

/// CRTP-free strong ID wrapper. `Tag` makes distinct instantiations
/// incompatible; `value()` exposes the dense index for array addressing.
template <class Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : v_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

 private:
  underlying_type v_ = kInvalid;
};

struct AsTag {};
struct RouterTag {};
struct SiteTag {};
struct TargetTag {};
struct LinkTag {};
struct ProviderTag {};
struct PeerLinkTag {};

/// Autonomous system (dense index into the AS graph, not the ASN itself).
using AsId = StrongId<AsTag>;
/// A PoP-level router inside a transit AS.
using RouterId = StrongId<RouterTag>;
/// An anycast site of the deployment under study.
using SiteId = StrongId<SiteTag>;
/// A ping target (a router representative of one client network).
using TargetId = StrongId<TargetTag>;
/// An inter-AS adjacency in the topology.
using LinkId = StrongId<LinkTag>;
/// A transit provider slot of the anycast deployment (e.g. "Telia").
using ProviderId = StrongId<ProviderTag>;
/// A settlement-free peering attachment of one anycast site.
using PeerLinkId = StrongId<PeerLinkTag>;

}  // namespace anyopt

namespace std {
template <class Tag>
struct hash<anyopt::StrongId<Tag>> {
  size_t operator()(anyopt::StrongId<Tag> id) const noexcept {
    return std::hash<typename anyopt::StrongId<Tag>::underlying_type>{}(
        id.value());
  }
};
}  // namespace std
