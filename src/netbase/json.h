#pragma once
// Minimal JSON document reader for the observability toolchain.
//
// The repo's machine-readable artifacts — `BENCH_*.json` perf-trajectory
// records and the per-experiment provenance flight log — are plain JSON, and
// both the `anyopt_bench` CLI and the record-hygiene tests need to read them
// back without an external dependency.  This is a strict recursive-descent
// parser over the full value grammar (objects, arrays, strings with escapes,
// numbers, booleans, null) returning an owning tree; errors carry the byte
// offset so a malformed committed record is diagnosable from the test log.
//
// Numbers are held as double: every counter this repo emits fits 2^53
// exactly, and RFC 8259 interoperable parsers promise no more.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "netbase/result.h"

namespace anyopt::json {

/// One parsed JSON value.  Object member order is preserved (the record
/// hygiene tests check field order stability across regenerated records).
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kArray,
  };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<std::pair<std::string, Value>> members;  ///< object, in order
  std::vector<Value> items;                            ///< array elements

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }

  /// Member lookup on an object (first match); nullptr when absent or when
  /// this value is not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Number value as an unsigned counter (0 for non-numbers; negatives
  /// clamp to 0 — the records never carry negative counters).
  [[nodiscard]] std::uint64_t as_u64() const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
[[nodiscard]] Result<Value> parse(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (quotes, control
/// characters and backslashes become \-sequences; the surrounding quotes
/// are the caller's).  Shared by the telemetry trace writer and the serve
/// protocol, so every JSON emitter in the repo escapes identically.
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace anyopt::json
