#pragma once
// Geographic coordinates and the latency model.
//
// The paper's testbed measures real round-trip times between 15,300 router
// targets and 15 anycast sites.  Offline we substitute a geodesic model:
// propagation delay is great-circle distance over the speed of light in
// fibre, inflated by a path-circuity factor, plus per-hop processing.  The
// optimizer only consumes the *relative ordering and magnitude* of RTTs, so
// this model preserves the behaviour that matters (see DESIGN.md §1).

#include <string>
#include <vector>

namespace anyopt::geo {

/// A point on the Earth's surface (degrees).
struct Coordinates {
  double latitude_deg = 0;
  double longitude_deg = 0;
};

/// Great-circle distance in kilometres (haversine).
[[nodiscard]] double great_circle_km(const Coordinates& a,
                                     const Coordinates& b);

/// Latency model parameters.
struct LatencyModel {
  /// Speed of light in fibre ≈ 2e5 km/s → 0.005 ms/km one way.
  double ms_per_km_one_way = 1.0 / 200.0;
  /// Fibre paths are longer than geodesics (routing circuity).
  double path_inflation = 1.4;
  /// Fixed per-link forwarding/serialization latency, one way.
  double per_hop_ms = 0.30;
};

/// One-way propagation latency between two points under the model.
[[nodiscard]] double one_way_latency_ms(const Coordinates& a,
                                        const Coordinates& b,
                                        const LatencyModel& model = {});

/// Metro database used by the synthetic topology (city name → coordinates).
/// Covers every metro in the paper's Table 1 plus a worldwide set used to
/// place transit PoPs and client networks.
struct Metro {
  std::string name;
  Coordinates where;
};

/// All metros known to the generator, in a stable order.
[[nodiscard]] const std::vector<Metro>& metro_database();

/// Looks up a metro by name; aborts if unknown (programmer error).
[[nodiscard]] const Metro& metro(const std::string& name);

}  // namespace anyopt::geo
