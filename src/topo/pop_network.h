#pragma once
// PoP-level (intra-AS) topology for transit networks.
//
// The paper's two-level insight (§4.3): BGP decides which AS a client's
// traffic enters; the AS's *interior* routing decides which anycast site
// inside that AS it reaches (hot-potato over IGP metrics).  We therefore
// model each transit AS as a small graph of PoPs with latency-weighted IGP
// links, and precompute all-pairs shortest IGP costs.

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netbase/geo.h"
#include "netbase/ids.h"
#include "netbase/result.h"
#include "netbase/rng.h"

namespace anyopt::topo {

/// One point of presence of a transit AS.
struct Pop {
  std::string metro;
  geo::Coordinates where;
};

/// Intra-AS network of one transit AS.  Pops are indexed densely; IGP cost
/// between PoPs approximates one-way latency in ms.
class PopNetwork {
 public:
  PopNetwork() = default;

  /// Builds a PoP network over the given metros.  Each PoP is linked to its
  /// `degree` nearest PoPs plus a ring for connectedness; IGP weight is the
  /// geodesic one-way latency perturbed by `igp_noise` (so IGP cost is
  /// correlated with, but not equal to, latency — which is what makes the
  /// paper's RTT-ranking heuristic an *approximation*).
  static PopNetwork build(std::vector<Pop> pops, int degree, double igp_noise,
                          Rng rng);

  /// Reconstructs a network from an explicit all-pairs IGP cost matrix
  /// (row-major, size pops²).  Used by deserialization.
  static PopNetwork from_matrix(std::vector<Pop> pops,
                                std::vector<double> dist);

  /// The raw all-pairs matrix (row-major), for serialization.
  [[nodiscard]] const std::vector<double>& distance_matrix() const {
    return dist_;
  }

  [[nodiscard]] std::size_t pop_count() const { return pops_.size(); }
  [[nodiscard]] const Pop& pop(std::size_t idx) const { return pops_[idx]; }
  [[nodiscard]] const std::vector<Pop>& pops() const { return pops_; }

  /// Shortest IGP cost between two PoPs (ms-equivalent metric).
  [[nodiscard]] double igp_cost(std::size_t from, std::size_t to) const {
    return dist_[from * pops_.size() + to];
  }

  /// Index of the PoP nearest to a location (the assumed ingress PoP for a
  /// link landing at `where`).
  [[nodiscard]] std::size_t nearest_pop(const geo::Coordinates& where) const;

  /// Index of the PoP in this AS with the given metro name, if any.
  [[nodiscard]] Result<std::size_t> pop_by_metro(const std::string& metro) const;

 private:
  void compute_all_pairs(
      const std::vector<std::vector<std::pair<std::size_t, double>>>& adj);

  std::vector<Pop> pops_;
  std::vector<double> dist_;  // row-major all-pairs shortest IGP cost
};

/// Registry mapping transit ASes to their PoP networks.  ASes without an
/// entry are treated as single-location networks (stubs, small transits).
class PopRegistry {
 public:
  void attach(AsId as, PopNetwork network) {
    networks_[as] = std::move(network);
  }
  [[nodiscard]] bool has(AsId as) const { return networks_.contains(as); }
  [[nodiscard]] const PopNetwork& network(AsId as) const {
    return networks_.at(as);
  }
  [[nodiscard]] std::size_t size() const { return networks_.size(); }

  /// AS ids with attached networks, in ascending order (deterministic
  /// iteration for serialization).
  [[nodiscard]] std::vector<AsId> attached_ases() const {
    std::vector<AsId> ids;
    ids.reserve(networks_.size());
    for (const auto& [id, _] : networks_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

 private:
  std::unordered_map<AsId, PopNetwork> networks_;
};

}  // namespace anyopt::topo
