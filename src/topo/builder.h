#pragma once
// Synthetic Internet generator.
//
// Produces a tiered AS-level topology mirroring the routing environment of
// the paper's testbed: a full mesh of tier-1 backbones (each with a global
// PoP footprint), a layer of regional and access transit ASes, and a large
// population of stub (client) ASes.  All stochastic choices derive from the
// seed, so a given parameter set always yields the same Internet.

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/ids.h"
#include "netbase/rng.h"
#include "topo/as_graph.h"
#include "topo/pop_network.h"

namespace anyopt::topo {

/// Generator parameters.  Defaults are sized so the full evaluation (15,300
/// targets, §3.2) runs in seconds per BGP experiment.
struct InternetParams {
  /// Tier-1 providers, in order; defaults to the six transit providers of
  /// the paper's Table 1.
  std::vector<std::string> tier1_names = {"Telia", "Zayo",    "TATA",
                                          "GTT",   "NTT", "Sparkle"};
  /// Metros where each tier-1 must have a PoP (e.g. the anycast site
  /// locations).  Indexed like `tier1_names`; may be empty.
  std::vector<std::vector<std::string>> required_tier1_pops;

  int extra_pops_per_tier1_min = 6;   ///< random PoPs beyond the required
  int extra_pops_per_tier1_max = 12;
  int pop_degree = 3;                 ///< nearest-neighbor IGP links per PoP
  double igp_noise = 0.15;            ///< IGP weight jitter vs latency

  int regional_transit_count = 90;    ///< transits homed to tier-1s
  int access_transit_count = 160;     ///< transits homed to regional transits
  int stub_count = 5200;              ///< client ASes

  double transit_peer_within_km = 2500;  ///< IXP peering radius
  double transit_peer_prob = 0.18;       ///< peering prob within the radius

  double stub_tier1_home_prob = 0.04;  ///< stubs occasionally buy tier-1 transit

  double multipath_fraction = 0.08;    ///< ASes splitting equal-cost flows
  double deviant_fraction = 0.05;      ///< ASes with tier-1-sensitive policy
  double oldest_pref_fraction = 0.92;  ///< ASes with arrival-order tie-break
  /// Fraction of ASes whose eBGP next hops all have equal interior cost
  /// (their LOCAL_PREF/AS-path ties reach the arrival-order step); the rest
  /// get `igp_spread_levels` distinct next-hop cost levels.
  double flat_igp_fraction = 0.22;
  int igp_spread_levels = 7;

  std::uint64_t seed = 0x5EED;
};

/// A generated Internet: the AS graph, the PoP-level view of the transit
/// core, and the tier-1 index.
struct Internet {
  AsGraph graph;
  PopRegistry pops;
  std::vector<AsId> tier1s;  ///< aligned with InternetParams::tier1_names

  /// Tier-1 AS by provider name; aborts on unknown name.
  [[nodiscard]] AsId tier1_by_name(const std::string& name) const;

  /// Per-AS rank tables used by deviant import policies: rank_of[as][t]
  /// is the preference rank AS `as` gives to routes transiting tier-1 `t`
  /// (lower = preferred).  Empty for non-deviant ASes.
  std::vector<std::vector<int>> deviant_rank;
};

/// Total AS count the default `InternetParams` tier mix produces (six
/// tier-1s + 90 regional + 160 access transits + 5200 stubs) — the
/// reference point `scale_internet_params` scales from.
inline constexpr std::size_t kPaperScaleAses = 6 + 90 + 160 + 5200;

/// \brief Scales `base`'s tier mix to approximately `ases` total ASes
///        (the `--ases=N` topology knob; exercised up to 75,000).
///
/// The tier-1 mesh keeps `base`'s named backbones — a bigger Internet has
/// more customers, not more global backbones — while the regional and
/// access transit layers grow proportionally (factor `ases /
/// kPaperScaleAses`, at least one each) and stubs absorb the exact
/// remainder, so the returned mix sums to `ases` whenever `ases` exceeds
/// the non-stub layers.  All other knobs (peering radius, policy-mix
/// fractions, seed) pass through unchanged: a scaled Internet is the same
/// *kind* of Internet, just bigger.
/// \param ases the requested total AS count.
/// \param base the parameter set to scale (defaults preserved).
/// \return the scaled parameters.
[[nodiscard]] InternetParams scale_internet_params(std::size_t ases,
                                                   InternetParams base = {});

/// Builds the synthetic Internet.  Post-condition: graph.validate() passes.
[[nodiscard]] Internet build_internet(const InternetParams& params);

}  // namespace anyopt::topo
