#include "topo/pop_network.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace anyopt::topo {

PopNetwork PopNetwork::build(std::vector<Pop> pops, int degree,
                             double igp_noise, Rng rng) {
  assert(!pops.empty());
  PopNetwork net;
  net.pops_ = std::move(pops);
  const std::size_t n = net.pops_.size();

  std::vector<std::vector<std::pair<std::size_t, double>>> adj(n);
  auto link = [&](std::size_t a, std::size_t b) {
    if (a == b) return;
    for (const auto& [nb, _] : adj[a]) {
      if (nb == b) return;  // already linked
    }
    double w = geo::one_way_latency_ms(net.pops_[a].where, net.pops_[b].where);
    w = std::max(0.05, w * (1.0 + igp_noise * rng.normal()));
    adj[a].push_back({b, w});
    adj[b].push_back({a, w});
  };

  // Ring over the input order guarantees connectivity.
  for (std::size_t i = 0; i + 1 < n; ++i) link(i, i + 1);
  if (n > 2) link(n - 1, 0);

  // Plus `degree` nearest neighbors for each PoP (realistic mesh-ish core).
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::pair<double, std::size_t>> by_dist;
    by_dist.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      by_dist.push_back(
          {geo::great_circle_km(net.pops_[i].where, net.pops_[j].where), j});
    }
    std::sort(by_dist.begin(), by_dist.end());
    const std::size_t k =
        std::min<std::size_t>(static_cast<std::size_t>(degree),
                              by_dist.size());
    for (std::size_t j = 0; j < k; ++j) link(i, by_dist[j].second);
  }

  net.compute_all_pairs(adj);
  return net;
}

PopNetwork PopNetwork::from_matrix(std::vector<Pop> pops,
                                   std::vector<double> dist) {
  assert(dist.size() == pops.size() * pops.size());
  PopNetwork net;
  net.pops_ = std::move(pops);
  net.dist_ = std::move(dist);
  return net;
}

void PopNetwork::compute_all_pairs(
    const std::vector<std::vector<std::pair<std::size_t, double>>>& adj) {
  const std::size_t n = pops_.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist_.assign(n * n, kInf);
  using QEntry = std::pair<double, std::size_t>;
  for (std::size_t src = 0; src < n; ++src) {
    auto* row = &dist_[src * n];
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> q;
    row[src] = 0;
    q.push({0.0, src});
    while (!q.empty()) {
      const auto [d, u] = q.top();
      q.pop();
      if (d > row[u]) continue;
      for (const auto& [v, w] : adj[u]) {
        const double nd = d + w;
        if (nd < row[v]) {
          row[v] = nd;
          q.push({nd, v});
        }
      }
    }
  }
}

std::size_t PopNetwork::nearest_pop(const geo::Coordinates& where) const {
  std::size_t best = 0;
  double best_km = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    const double km = geo::great_circle_km(where, pops_[i].where);
    if (km < best_km) {
      best_km = km;
      best = i;
    }
  }
  return best;
}

Result<std::size_t> PopNetwork::pop_by_metro(const std::string& metro) const {
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    if (pops_[i].metro == metro) return i;
  }
  return Error::not_found("no PoP in metro " + metro);
}

}  // namespace anyopt::topo
