#include "topo/path_latency.h"

namespace anyopt::topo {

double polyline_latency_ms(std::span<const geo::Coordinates> waypoints,
                           const geo::LatencyModel& model) {
  double total = 0;
  for (std::size_t i = 0; i + 1 < waypoints.size(); ++i) {
    total += geo::one_way_latency_ms(waypoints[i], waypoints[i + 1], model);
  }
  return total;
}

std::vector<geo::Coordinates> waypoints_for(const AsGraph& graph,
                                            const geo::Coordinates& origin_point,
                                            std::span<const LinkId> links) {
  std::vector<geo::Coordinates> points;
  points.reserve(links.size() + 1);
  points.push_back(origin_point);
  for (const LinkId l : links) {
    points.push_back(graph.link(l).where);
  }
  return points;
}

}  // namespace anyopt::topo
