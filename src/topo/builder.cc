#include "topo/builder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "netbase/geo.h"

namespace anyopt::topo {
namespace {

/// Nearest PoP location of a tier-1 AS to a point (used to place links).
geo::Coordinates tier1_attach_point(const PopRegistry& pops, AsId tier1,
                                    const geo::Coordinates& where) {
  const PopNetwork& net = pops.network(tier1);
  return net.pop(net.nearest_pop(where)).where;
}

double link_latency(const geo::Coordinates& a, const geo::Coordinates& b) {
  return geo::one_way_latency_ms(a, b);
}

}  // namespace

AsId Internet::tier1_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    if (graph.node(tier1s[i]).name == name) return tier1s[i];
  }
  throw std::invalid_argument("unknown tier-1 provider: " + name);
}

InternetParams scale_internet_params(std::size_t ases, InternetParams base) {
  const double f = static_cast<double>(ases) / kPaperScaleAses;
  const std::size_t t1 = base.tier1_names.size();
  std::size_t regional = std::max<std::size_t>(
      1, static_cast<std::size_t>(base.regional_transit_count * f + 0.5));
  std::size_t access = std::max<std::size_t>(
      1, static_cast<std::size_t>(base.access_transit_count * f + 0.5));
  // Stubs take the exact remainder so the build lands on `ases` ASes.
  std::size_t stubs = ases > t1 + regional + access
                          ? ases - t1 - regional - access
                          : 1;
  base.regional_transit_count = static_cast<int>(regional);
  base.access_transit_count = static_cast<int>(access);
  base.stub_count = static_cast<int>(stubs);
  return base;
}

Internet build_internet(const InternetParams& params) {
  Internet net;
  Rng root{params.seed};
  Rng rng = root.fork("internet-builder");
  const auto& metros = geo::metro_database();
  std::uint32_t next_asn = 100;

  auto sample_policy_flags = [&](AsNode& node) {
    node.multipath = rng.chance(params.multipath_fraction);
    node.deviant_policy = rng.chance(params.deviant_fraction);
    node.prefers_oldest = rng.chance(params.oldest_pref_fraction);
    node.igp_spread =
        rng.chance(params.flat_igp_fraction) ? 0 : params.igp_spread_levels;
    node.router_id = static_cast<std::uint32_t>(rng() >> 33);
  };

  // --- Tier-1 backbones -------------------------------------------------
  const std::size_t t1_count = params.tier1_names.size();
  for (std::size_t t = 0; t < t1_count; ++t) {
    AsNode node;
    node.asn = next_asn++;
    node.tier = Tier::kTier1;
    node.name = params.tier1_names[t];
    sample_policy_flags(node);
    node.deviant_policy = false;  // backbones keep uniform policy
    // Tier-1 PoP footprint: required metros plus a random global spread.
    std::vector<Pop> pops;
    std::unordered_set<std::string> chosen;
    if (t < params.required_tier1_pops.size()) {
      for (const std::string& m : params.required_tier1_pops[t]) {
        if (chosen.insert(m).second) {
          pops.push_back(Pop{m, geo::metro(m).where});
        }
      }
    }
    const int extra = static_cast<int>(rng.uniform_int(
        params.extra_pops_per_tier1_min, params.extra_pops_per_tier1_max));
    int added = 0;
    int guard = 0;
    while (added < extra && guard++ < 1000) {
      const auto& m = metros[rng.below(metros.size())];
      if (chosen.insert(m.name).second) {
        pops.push_back(Pop{m.name, m.where});
        ++added;
      }
    }
    assert(!pops.empty());
    node.location = pops.front().where;
    const AsId id = net.graph.add_as(std::move(node));
    net.tier1s.push_back(id);
    net.pops.attach(id, PopNetwork::build(std::move(pops), params.pop_degree,
                                          params.igp_noise,
                                          rng.fork("igp-" + std::to_string(t))));
  }

  // Full tier-1 peer mesh (assumption (a) of §4.1).
  for (std::size_t i = 0; i < t1_count; ++i) {
    for (std::size_t j = i + 1; j < t1_count; ++j) {
      const AsId a = net.tier1s[i];
      const AsId b = net.tier1s[j];
      // Interconnect where their footprints are closest.
      const PopNetwork& na = net.pops.network(a);
      const PopNetwork& nb = net.pops.network(b);
      double best = 1e18;
      geo::Coordinates where = na.pop(0).where;
      for (std::size_t pa = 0; pa < na.pop_count(); ++pa) {
        for (std::size_t pb = 0; pb < nb.pop_count(); ++pb) {
          const double km =
              geo::great_circle_km(na.pop(pa).where, nb.pop(pb).where);
          if (km < best) {
            best = km;
            where = na.pop(pa).where;
          }
        }
      }
      auto link = net.graph.connect(a, b, Relation::kPeer, where,
                                    std::max(0.2, best / 200.0 * 1.4));
      assert(link.ok());
      (void)link;
    }
  }

  // --- Regional transits (customers of tier-1s) -------------------------
  std::vector<AsId> regionals;
  for (int i = 0; i < params.regional_transit_count; ++i) {
    AsNode node;
    node.asn = next_asn++;
    node.tier = Tier::kTransit;
    node.location = metros[rng.below(metros.size())].where;
    sample_policy_flags(node);
    const AsId id = net.graph.add_as(std::move(node));
    regionals.push_back(id);
    const int providers = static_cast<int>(rng.uniform_int(1, 3));
    std::vector<std::size_t> choice(t1_count);
    for (std::size_t k = 0; k < t1_count; ++k) choice[k] = k;
    rng.shuffle(choice);
    for (int p = 0; p < providers; ++p) {
      const AsId provider = net.tier1s[choice[p]];
      const geo::Coordinates at = tier1_attach_point(
          net.pops, provider, net.graph.node(id).location);
      auto link = net.graph.connect(
          id, provider, Relation::kProvider, at,
          link_latency(net.graph.node(id).location, at));
      assert(link.ok());
      (void)link;
    }
  }

  // --- Access transits (customers of regional transits) -----------------
  // Provider selection only ever reads the nearest handful of candidates,
  // so rank with partial_sort — the (distance, id) pairs are distinct, so
  // the selected prefix is byte-identical to a full sort's, and the
  // quadratic sort term drops out of Internet-scale builds (--ases=75000).
  // One scratch vector serves both this loop and the stub loop below.
  std::vector<AsId> accesses;
  std::vector<std::pair<double, AsId>> by_dist;
  for (int i = 0; i < params.access_transit_count; ++i) {
    AsNode node;
    node.asn = next_asn++;
    node.tier = Tier::kTransit;
    node.location = metros[rng.below(metros.size())].where;
    sample_policy_flags(node);
    const AsId id = net.graph.add_as(std::move(node));
    accesses.push_back(id);
    // Prefer geographically close regionals as providers.
    by_dist.clear();
    for (const AsId r : regionals) {
      by_dist.push_back({geo::great_circle_km(net.graph.node(id).location,
                                              net.graph.node(r).location),
                         r});
    }
    std::partial_sort(
        by_dist.begin(),
        by_dist.begin() + static_cast<std::ptrdiff_t>(
                              std::min<std::size_t>(8, by_dist.size())),
        by_dist.end());
    const int providers = static_cast<int>(rng.uniform_int(1, 2));
    for (int p = 0; p < providers && p < static_cast<int>(by_dist.size());
         ++p) {
      // Pick among the 8 nearest to add diversity.
      const std::size_t pick = rng.below(std::min<std::size_t>(8, by_dist.size()));
      const AsId provider = by_dist[pick].second;
      const auto rel = net.graph.relation(id, provider);
      if (rel.ok()) continue;  // already linked; skip
      auto link = net.graph.connect(
          id, provider, Relation::kProvider,
          net.graph.node(id).location,
          link_latency(net.graph.node(id).location,
                       net.graph.node(provider).location));
      assert(link.ok());
      (void)link;
    }
    // Occasionally also buy tier-1 transit directly.
    if (rng.chance(0.25)) {
      const AsId provider = net.tier1s[rng.below(t1_count)];
      const geo::Coordinates at = tier1_attach_point(
          net.pops, provider, net.graph.node(id).location);
      auto link = net.graph.connect(
          id, provider, Relation::kProvider, at,
          link_latency(net.graph.node(id).location, at));
      assert(link.ok());
      (void)link;
    }
  }

  // --- Transit-transit peering (IXP style, distance-bounded) ------------
  std::vector<AsId> all_transits = regionals;
  all_transits.insert(all_transits.end(), accesses.begin(), accesses.end());
  for (std::size_t i = 0; i < all_transits.size(); ++i) {
    for (std::size_t j = i + 1; j < all_transits.size(); ++j) {
      const AsId a = all_transits[i];
      const AsId b = all_transits[j];
      const double km = geo::great_circle_km(net.graph.node(a).location,
                                             net.graph.node(b).location);
      if (km > params.transit_peer_within_km) continue;
      if (!rng.chance(params.transit_peer_prob)) continue;
      if (net.graph.relation(a, b).ok()) continue;
      auto link = net.graph.connect(a, b, Relation::kPeer,
                                    net.graph.node(a).location,
                                    std::max(0.2, km / 200.0 * 1.4));
      assert(link.ok());
      (void)link;
    }
  }

  // --- Stub (client) ASes ------------------------------------------------
  for (int i = 0; i < params.stub_count; ++i) {
    AsNode node;
    node.asn = next_asn++;
    node.tier = Tier::kStub;
    node.location = metros[rng.below(metros.size())].where;
    // Scatter stubs around the metro so RTTs are not quantized.
    node.location.latitude_deg += rng.normal(0.0, 1.0);
    node.location.longitude_deg += rng.normal(0.0, 1.0);
    sample_policy_flags(node);
    const AsId id = net.graph.add_as(std::move(node));

    if (rng.chance(params.stub_tier1_home_prob)) {
      const AsId provider = net.tier1s[rng.below(t1_count)];
      const geo::Coordinates at = tier1_attach_point(
          net.pops, provider, net.graph.node(id).location);
      auto link = net.graph.connect(
          id, provider, Relation::kProvider, at,
          link_latency(net.graph.node(id).location, at));
      assert(link.ok());
      (void)link;
    }
    // 1-3 transit providers, geographically biased.  Only the 12 nearest
    // are ever candidates; see the access-transit loop for why
    // partial_sort picks the identical prefix.
    by_dist.clear();
    for (const AsId t : all_transits) {
      by_dist.push_back({geo::great_circle_km(net.graph.node(id).location,
                                              net.graph.node(t).location),
                         t});
    }
    std::partial_sort(
        by_dist.begin(),
        by_dist.begin() + static_cast<std::ptrdiff_t>(
                              std::min<std::size_t>(12, by_dist.size())),
        by_dist.end());
    const int providers = static_cast<int>(rng.uniform_int(1, 3));
    int connected = 0;
    for (std::size_t attempt = 0;
         attempt < by_dist.size() && connected < providers; ++attempt) {
      const std::size_t pick =
          rng.below(std::min<std::size_t>(12, by_dist.size()));
      const AsId provider = by_dist[pick].second;
      if (net.graph.relation(id, provider).ok()) continue;
      auto link = net.graph.connect(
          id, provider, Relation::kProvider,
          net.graph.node(id).location,
          link_latency(net.graph.node(id).location,
                       net.graph.node(provider).location));
      assert(link.ok());
      (void)link;
      ++connected;
    }
    assert(connected > 0 || net.graph.node(id).neighbors.size() > 0);
  }

  // --- Deviant import-policy rank tables ---------------------------------
  net.deviant_rank.assign(net.graph.as_count(), {});
  for (std::size_t i = 0; i < net.graph.as_count(); ++i) {
    if (!net.graph.nodes()[i].deviant_policy) continue;
    std::vector<int> rank(t1_count);
    for (std::size_t k = 0; k < t1_count; ++k) rank[k] = static_cast<int>(k);
    rng.shuffle(rank);
    net.deviant_rank[i] = std::move(rank);
  }

  const Status valid = net.graph.validate();
  if (!valid.ok()) {
    throw std::logic_error("generated topology failed validation: " +
                           valid.error().message);
  }
  return net;
}

}  // namespace anyopt::topo
