#pragma once
// Text serialization of a generated Internet.
//
// A line-oriented format so that a topology produced once (or curated by
// hand) can be checked into version control and reloaded bit-for-bit.
// Round-trip is exact: `load(save(net))` reproduces the AS graph, the PoP
// networks (with their IGP matrices) and the deviant policy tables.

#include <string>

#include "netbase/result.h"
#include "topo/builder.h"

namespace anyopt::topo {

/// Serializes the Internet to the text format.
[[nodiscard]] std::string save_internet(const Internet& net);

/// Parses the text format back into an Internet.
[[nodiscard]] Result<Internet> load_internet(const std::string& text);

/// \brief Stable 64-bit fingerprint of a topology.
///
/// Hashes the canonical serialized form (`save_internet`), so two Internets
/// share a fingerprint exactly when they serialize identically: any change
/// to a relationship, latency, coordinate, policy flag or PoP matrix
/// changes the value.  The persistent result store keys its files with
/// this so a measurement cache can never silently serve results from a
/// different topology.
[[nodiscard]] std::uint64_t topology_fingerprint(const Internet& net);

}  // namespace anyopt::topo
