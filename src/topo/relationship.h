#pragma once
// Inter-AS business relationships (Gao-Rexford model, §4.1 of the paper).

#include <cstdint>
#include <string_view>

namespace anyopt::topo {

/// How a neighbor relates to *this* AS: the neighbor is my customer, my
/// settlement-free peer, or my provider.
enum class Relation : std::uint8_t { kCustomer, kPeer, kProvider };

/// The same edge seen from the other endpoint.
[[nodiscard]] constexpr Relation reverse(Relation r) {
  switch (r) {
    case Relation::kCustomer: return Relation::kProvider;
    case Relation::kPeer: return Relation::kPeer;
    case Relation::kProvider: return Relation::kCustomer;
  }
  return Relation::kPeer;  // unreachable
}

[[nodiscard]] constexpr std::string_view to_string(Relation r) {
  switch (r) {
    case Relation::kCustomer: return "customer";
    case Relation::kPeer: return "peer";
    case Relation::kProvider: return "provider";
  }
  return "?";
}

/// Conventional Gao-Rexford LOCAL_PREF bands: customer-learned routes are
/// most profitable, provider-learned least.
[[nodiscard]] constexpr int default_local_pref(Relation learned_from) {
  switch (learned_from) {
    case Relation::kCustomer: return 300;
    case Relation::kPeer: return 200;
    case Relation::kProvider: return 100;
  }
  return 0;  // unreachable
}

}  // namespace anyopt::topo
