#include "topo/as_graph.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace anyopt::topo {

AsId AsGraph::add_as(AsNode spec) {
  assert(spec.neighbors.empty() && "adjacency is owned by AsGraph");
  const AsId id{static_cast<AsId::underlying_type>(nodes_.size())};
  nodes_.push_back(std::move(spec));
  return id;
}

Result<LinkId> AsGraph::connect(AsId a, AsId b, Relation b_is,
                                geo::Coordinates where, double latency_ms) {
  if (a == b) return Error::invalid("self-link not allowed");
  if (!a.valid() || a.value() >= nodes_.size() || !b.valid() ||
      b.value() >= nodes_.size()) {
    return Error::invalid("connect: unknown AS id");
  }
  for (const Neighbor& n : nodes_[a.value()].neighbors) {
    if (n.as == b) return Error::invalid("duplicate link between AS pair");
  }
  const LinkId id{static_cast<LinkId::underlying_type>(links_.size())};
  links_.push_back(AsLink{a, b, b_is, where, latency_ms});
  nodes_[a.value()].neighbors.push_back(Neighbor{b, b_is, id});
  nodes_[b.value()].neighbors.push_back(Neighbor{a, reverse(b_is), id});
  return id;
}

Result<Relation> AsGraph::relation(AsId from, AsId to) const {
  for (const Neighbor& n : nodes_[from.value()].neighbors) {
    if (n.as == to) return n.relation;
  }
  return Error::not_found("ASes are not adjacent");
}

std::vector<AsId> AsGraph::ases_of_tier(Tier tier) const {
  std::vector<AsId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].tier == tier) {
      out.emplace_back(static_cast<AsId::underlying_type>(i));
    }
  }
  return out;
}

Status AsGraph::validate() const {
  // Symmetry and self-link checks.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const Neighbor& n : nodes_[i].neighbors) {
      if (n.as.value() == i) return Error::state("self-link detected");
      const auto& peer_adj = nodes_[n.as.value()].neighbors;
      const auto it = std::find_if(
          peer_adj.begin(), peer_adj.end(),
          [&](const Neighbor& m) { return m.as.value() == i; });
      if (it == peer_adj.end()) {
        return Error::state("asymmetric adjacency");
      }
      if (it->relation != reverse(n.relation)) {
        return Error::state("inconsistent relationship on link");
      }
    }
  }

  // Tier-1 clique must be peer-connected (the paper's assumption (a):
  // every tier-1 peers with all tier-1s).
  const auto tier1 = ases_of_tier(Tier::kTier1);
  for (const AsId a : tier1) {
    for (const AsId b : tier1) {
      if (a == b) continue;
      const auto rel = relation(a, b);
      if (!rel.ok() || rel.value() != Relation::kPeer) {
        return Error::state("tier-1 ASes must form a full peer mesh");
      }
    }
  }

  // Every AS must reach a tier-1 by ascending customer→provider edges
  // (possibly via zero hops), so announcements from tier-1s reach everyone
  // valley-free.
  std::vector<char> reaches(nodes_.size(), 0);
  std::queue<AsId> frontier;
  for (const AsId t : tier1) {
    reaches[t.value()] = 1;
    frontier.push(t);
  }
  // Walk downward: from a provider to its customers.
  while (!frontier.empty()) {
    const AsId cur = frontier.front();
    frontier.pop();
    for (const Neighbor& n : nodes_[cur.value()].neighbors) {
      if (n.relation == Relation::kCustomer && !reaches[n.as.value()]) {
        reaches[n.as.value()] = 1;
        frontier.push(n.as);
      }
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!reaches[i]) {
      return Error::state("AS " + std::to_string(nodes_[i].asn) +
                          " has no provider path to the tier-1 clique");
    }
  }
  return {};
}

std::vector<AsId> AsGraph::customer_cone(AsId as) const {
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<AsId> cone;
  std::queue<AsId> frontier;
  seen[as.value()] = 1;
  frontier.push(as);
  while (!frontier.empty()) {
    const AsId cur = frontier.front();
    frontier.pop();
    cone.push_back(cur);
    for (const Neighbor& n : nodes_[cur.value()].neighbors) {
      if (n.relation == Relation::kCustomer && !seen[n.as.value()]) {
        seen[n.as.value()] = 1;
        frontier.push(n.as);
      }
    }
  }
  return cone;
}

}  // namespace anyopt::topo
