#include "topo/serialize.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "netbase/rng.h"
#include "netbase/strings.h"

namespace anyopt::topo {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Metro names may contain spaces; encode them.
std::string encode_token(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) out += (c == ' ') ? '_' : c;
  return out.empty() ? "-" : out;
}

std::string decode_token(std::string_view s) {
  if (s == "-") return {};
  std::string out(s);
  for (char& c : out) {
    if (c == '_') c = ' ';
  }
  return out;
}

template <class T>
bool parse_num(std::string_view text, T& out) {
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  if constexpr (std::is_floating_point_v<T>) {
    char* after = nullptr;
    const std::string copy(text);
    out = static_cast<T>(std::strtod(copy.c_str(), &after));
    return after == copy.c_str() + copy.size();
  } else {
    auto [ptr, ec] = std::from_chars(begin, end, out);
    return ec == std::errc{} && ptr == end;
  }
}

}  // namespace

std::string save_internet(const Internet& net) {
  std::ostringstream out;
  out << "anyopt-internet v1\n";
  const AsGraph& g = net.graph;
  out << "counts " << g.as_count() << ' ' << g.link_count() << ' '
      << net.tier1s.size() << '\n';
  for (const AsId t : net.tier1s) out << "tier1 " << t.value() << '\n';
  for (std::size_t i = 0; i < g.as_count(); ++i) {
    const AsNode& n = g.nodes()[i];
    out << "as " << n.asn << ' ' << static_cast<int>(n.tier) << ' '
        << fmt_double(n.location.latitude_deg) << ' '
        << fmt_double(n.location.longitude_deg) << ' '
        << encode_token(n.name) << ' ' << (n.multipath ? 1 : 0) << ' '
        << (n.deviant_policy ? 1 : 0) << ' ' << (n.prefers_oldest ? 1 : 0)
        << ' ' << n.router_id << ' ' << n.igp_spread << '\n';
  }
  for (const AsLink& l : g.links()) {
    out << "link " << l.a.value() << ' ' << l.b.value() << ' '
        << static_cast<int>(l.a_to_b) << ' '
        << fmt_double(l.where.latitude_deg) << ' '
        << fmt_double(l.where.longitude_deg) << ' '
        << fmt_double(l.latency_ms) << '\n';
  }
  for (const AsId as : net.pops.attached_ases()) {
    const PopNetwork& pn = net.pops.network(as);
    out << "popnet " << as.value() << ' ' << pn.pop_count() << '\n';
    for (std::size_t p = 0; p < pn.pop_count(); ++p) {
      const Pop& pop = pn.pop(p);
      out << "pop " << encode_token(pop.metro) << ' '
          << fmt_double(pop.where.latitude_deg) << ' '
          << fmt_double(pop.where.longitude_deg) << '\n';
    }
    out << "igp";
    for (const double d : pn.distance_matrix()) out << ' ' << fmt_double(d);
    out << '\n';
  }
  for (std::size_t i = 0; i < net.deviant_rank.size(); ++i) {
    if (net.deviant_rank[i].empty()) continue;
    out << "deviant " << i;
    for (const int r : net.deviant_rank[i]) out << ' ' << r;
    out << '\n';
  }
  out << "end\n";
  return out.str();
}

Result<Internet> load_internet(const std::string& text) {
  Internet net;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 1;
  // Every diagnostic names the offending line so a hand-edited topology
  // file can be fixed without bisecting it.
  const auto fail = [&lineno](const std::string& what) {
    return Error::parse(what + " at line " + std::to_string(lineno));
  };
  if (!std::getline(in, line) ||
      strings::trim(line) != "anyopt-internet v1") {
    return fail("bad header; expected 'anyopt-internet v1'");
  }
  std::size_t as_count = 0;
  std::size_t link_count = 0;
  std::size_t tier1_count = 0;
  std::vector<std::uint32_t> tier1_ids;
  bool saw_end = false;

  // For pop networks being parsed.
  AsId pending_pop_as;
  std::vector<Pop> pending_pops;
  std::size_t pending_pop_count = 0;

  bool in_popnet = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view trimmed = strings::trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string_view> tok = strings::split(trimmed, ' ');
    const std::string_view kind = tok[0];
    auto need = [&](std::size_t n) { return tok.size() >= n + 1; };

    if (kind == "counts") {
      if (!need(3) || !parse_num(tok[1], as_count) ||
          !parse_num(tok[2], link_count) || !parse_num(tok[3], tier1_count)) {
        return fail("bad counts line");
      }
    } else if (kind == "tier1") {
      std::uint32_t id = 0;
      if (!need(1) || !parse_num(tok[1], id)) {
        return fail("bad tier1 line");
      }
      tier1_ids.push_back(id);
    } else if (kind == "as") {
      if (!need(10)) return fail("bad as line");
      AsNode n;
      int tier = 0;
      int multipath = 0;
      int deviant = 0;
      int oldest = 0;
      if (!parse_num(tok[1], n.asn) || !parse_num(tok[2], tier) ||
          !parse_num(tok[3], n.location.latitude_deg) ||
          !parse_num(tok[4], n.location.longitude_deg) ||
          !parse_num(tok[6], multipath) || !parse_num(tok[7], deviant) ||
          !parse_num(tok[8], oldest) || !parse_num(tok[9], n.router_id) ||
          !parse_num(tok[10], n.igp_spread)) {
        return fail("bad as line fields");
      }
      n.tier = static_cast<Tier>(tier);
      n.name = decode_token(tok[5]);
      n.multipath = multipath != 0;
      n.deviant_policy = deviant != 0;
      n.prefers_oldest = oldest != 0;
      net.graph.add_as(std::move(n));
    } else if (kind == "link") {
      if (!need(6)) return fail("bad link line");
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      int rel = 0;
      geo::Coordinates where;
      double latency = 0;
      if (!parse_num(tok[1], a) || !parse_num(tok[2], b) ||
          !parse_num(tok[3], rel) ||
          !parse_num(tok[4], where.latitude_deg) ||
          !parse_num(tok[5], where.longitude_deg) ||
          !parse_num(tok[6], latency)) {
        return fail("bad link line fields");
      }
      auto r = net.graph.connect(AsId{a}, AsId{b},
                                 static_cast<Relation>(rel), where, latency);
      if (!r.ok()) return fail(r.error().message);
    } else if (kind == "popnet") {
      std::uint32_t as = 0;
      if (!need(2) || !parse_num(tok[1], as) ||
          !parse_num(tok[2], pending_pop_count)) {
        return fail("bad popnet line");
      }
      if (as >= net.graph.as_count()) {
        return fail("popnet references unknown AS");
      }
      pending_pop_as = AsId{as};
      pending_pops.clear();
      in_popnet = true;
    } else if (kind == "pop") {
      if (!in_popnet) return fail("pop record outside a popnet");
      if (!need(3)) return fail("bad pop line");
      Pop p;
      p.metro = decode_token(tok[1]);
      if (!parse_num(tok[2], p.where.latitude_deg) ||
          !parse_num(tok[3], p.where.longitude_deg)) {
        return fail("bad pop coordinates");
      }
      pending_pops.push_back(std::move(p));
    } else if (kind == "igp") {
      if (!in_popnet) return fail("igp record outside a popnet");
      if (pending_pops.size() != pending_pop_count) {
        return fail("pop count mismatch before igp matrix");
      }
      const std::size_t n = pending_pops.size();
      if (tok.size() != 1 + n * n) {
        return fail("igp matrix has wrong arity");
      }
      std::vector<double> dist(n * n);
      for (std::size_t i = 0; i < n * n; ++i) {
        if (!parse_num(tok[1 + i], dist[i])) {
          return fail("bad igp entry");
        }
      }
      net.pops.attach(pending_pop_as,
                      PopNetwork::from_matrix(std::move(pending_pops),
                                              std::move(dist)));
      pending_pops = {};
      in_popnet = false;
    } else if (kind == "deviant") {
      std::uint32_t as = 0;
      if (!need(1) || !parse_num(tok[1], as)) {
        return fail("bad deviant line");
      }
      std::vector<int> rank;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        int r = 0;
        if (!parse_num(tok[i], r)) return fail("bad deviant rank");
        rank.push_back(r);
      }
      if (net.deviant_rank.size() < net.graph.as_count()) {
        net.deviant_rank.resize(net.graph.as_count());
      }
      if (as >= net.deviant_rank.size()) {
        return fail("deviant line references unknown AS");
      }
      net.deviant_rank[as] = std::move(rank);
    } else if (kind == "end") {
      saw_end = true;
      break;
    } else {
      return fail("unknown record kind: " + std::string(kind));
    }
  }
  if (!saw_end) return Error::parse("missing 'end' record");
  if (net.graph.as_count() != as_count ||
      net.graph.link_count() != link_count ||
      tier1_ids.size() != tier1_count) {
    return Error::parse("counts record does not match file body");
  }
  for (const std::uint32_t id : tier1_ids) {
    if (id >= net.graph.as_count()) {
      return Error::parse("tier1 record references unknown AS");
    }
    net.tier1s.push_back(AsId{id});
  }
  if (net.deviant_rank.size() < net.graph.as_count()) {
    net.deviant_rank.resize(net.graph.as_count());
  }
  const Status valid = net.graph.validate();
  if (!valid.ok()) return valid.error();
  return net;
}

std::uint64_t topology_fingerprint(const Internet& net) {
  return fnv1a(save_internet(net));
}

}  // namespace anyopt::topo
