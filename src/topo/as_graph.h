#pragma once
// AS-level Internet graph with business relationships.
//
// This is the substrate the BGP simulator routes over.  Every node carries
// the policy knobs the paper's analysis cares about: whether the router
// implements the (non-standard) arrival-order tie-break, whether it splits
// traffic across equal-cost BGP paths, and whether it deviates from the
// uniform Gao-Rexford local-preference assignment (the mechanism that can
// destroy total preference orders, §4.1 / Fig. 3).

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/geo.h"
#include "netbase/ids.h"
#include "netbase/result.h"
#include "topo/relationship.h"

namespace anyopt::topo {

/// Position of an AS in the routing hierarchy.
enum class Tier : std::uint8_t { kTier1, kTransit, kStub };

[[nodiscard]] constexpr std::string_view to_string(Tier t) {
  switch (t) {
    case Tier::kTier1: return "tier1";
    case Tier::kTransit: return "transit";
    case Tier::kStub: return "stub";
  }
  return "?";
}

/// One adjacency of an AS.
struct Neighbor {
  AsId as;            ///< the neighboring AS
  Relation relation;  ///< what the neighbor is to this AS
  LinkId link;        ///< the shared link
};

/// Node attributes. `deviant_policy` marks ASes whose import policy ranks
/// routes by the tier-1 network they transit (cold-potato traffic
/// engineering) instead of uniform relationship bands — a realistic,
/// content-dependent policy that violates the paper's sufficient conditions
/// and can induce preference cycles downstream.
struct AsNode {
  std::uint32_t asn = 0;          ///< public AS number (display only)
  Tier tier = Tier::kStub;
  geo::Coordinates location;      ///< primary location (stubs/transits)
  std::string name;               ///< tier-1 provider name, else empty
  bool multipath = false;         ///< splits flows across equal best paths
  bool deviant_policy = false;    ///< tier-1-sensitive LOCAL_PREF (see above)
  bool prefers_oldest = true;     ///< vendor arrival-order tie-break (§4.2)
  /// Spread of interior (hot-potato) costs to eBGP next hops: the decision
  /// process compares IGP cost before arrival order, so ASes whose next-hop
  /// costs differ (spread > 0) resolve most ties there and only ASes/paths
  /// with equal costs fall through to the arrival-order step.  0 = all next
  /// hops equally close (every LOCAL_PREF/AS-path tie reaches step 7).
  int igp_spread = 0;
  std::uint32_t router_id = 0;    ///< BGP router-id used as final tie-break
  std::vector<Neighbor> neighbors;  ///< filled in by AsGraph::connect
};

/// One inter-AS adjacency.  `a_to_b` states what `b` is to `a`.
struct AsLink {
  AsId a;
  AsId b;
  Relation a_to_b = Relation::kPeer;
  geo::Coordinates where;  ///< interconnection point (IXP/PNI metro)
  double latency_ms = 0;   ///< one-way latency across the link
};

/// Mutable AS-level graph.  IDs are dense and stable once assigned.
class AsGraph {
 public:
  /// Adds a node; `spec.neighbors` must be empty (adjacency is owned here).
  AsId add_as(AsNode spec);

  /// Connects two distinct ASes. `b_is` states what `b` is to `a`
  /// (e.g. `Relation::kProvider` means b provides transit to a).
  /// Duplicate links between the same pair are rejected.
  Result<LinkId> connect(AsId a, AsId b, Relation b_is,
                         geo::Coordinates where, double latency_ms);

  [[nodiscard]] std::size_t as_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const AsNode& node(AsId id) const {
    return nodes_[id.value()];
  }
  [[nodiscard]] AsNode& node_mut(AsId id) { return nodes_[id.value()]; }
  [[nodiscard]] const AsLink& link(LinkId id) const {
    return links_[id.value()];
  }

  [[nodiscard]] const std::vector<AsNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<AsLink>& links() const { return links_; }

  /// The relation of `to` as seen from `from`, if adjacent.
  [[nodiscard]] Result<Relation> relation(AsId from, AsId to) const;

  /// All ASes of a tier, in id order.
  [[nodiscard]] std::vector<AsId> ases_of_tier(Tier tier) const;

  /// Structural validation: symmetric adjacency, no self-links, tier-1s
  /// form a connected peer mesh, every non-tier-1 AS has a provider path
  /// toward the tier-1 clique (so valley-free routing can reach everyone).
  [[nodiscard]] Status validate() const;

  /// Size of the customer cone of `as` (itself included): the set of ASes
  /// reachable by repeatedly descending provider→customer edges.
  [[nodiscard]] std::vector<AsId> customer_cone(AsId as) const;

 private:
  std::vector<AsNode> nodes_;
  std::vector<AsLink> links_;
};

}  // namespace anyopt::topo
