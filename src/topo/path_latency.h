#pragma once
// Latency accounting along AS-level forwarding paths.
//
// A forwarding path is a chain of inter-AS links; its latency is modelled
// as geodesic propagation between consecutive interconnection points (see
// DESIGN.md §1).  Intra-AS segments inside the anycast host AS are added by
// the caller from the PoP network's IGP costs.

#include <span>
#include <vector>

#include "netbase/geo.h"
#include "netbase/ids.h"
#include "topo/as_graph.h"

namespace anyopt::topo {

/// One-way latency of a polyline of waypoints under the latency model.
[[nodiscard]] double polyline_latency_ms(
    std::span<const geo::Coordinates> waypoints,
    const geo::LatencyModel& model = {});

/// Builds the waypoint sequence for a path that starts at `origin_point`
/// and then crosses `links` in order: origin, link1.where, link2.where, ...
[[nodiscard]] std::vector<geo::Coordinates> waypoints_for(
    const AsGraph& graph, const geo::Coordinates& origin_point,
    std::span<const LinkId> links);

}  // namespace anyopt::topo
