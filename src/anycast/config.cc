#include "anycast/config.h"

#include <algorithm>

namespace anyopt::anycast {

bool AnycastConfig::site_enabled(SiteId site) const {
  return std::find(announce_order.begin(), announce_order.end(), site) !=
         announce_order.end();
}

std::vector<bgp::Injection> AnycastConfig::schedule(
    const Deployment& deployment) const {
  std::vector<bgp::Injection> out;
  out.reserve(announce_order.size() + enabled_peers.size());
  double t = 0;
  for (std::size_t i = 0; i < announce_order.size(); ++i) {
    bgp::Injection inj{t, deployment.transit_attachment(announce_order[i]),
                       false};
    if (i < prepend.size()) inj.prepend = prepend[i];
    out.push_back(inj);
    t += spacing_s;
  }
  for (const bgp::AttachmentIndex peer : enabled_peers) {
    out.push_back(bgp::Injection{t, peer, false});
    t += spacing_s;
  }
  return out;
}

std::string AnycastConfig::describe() const {
  std::string out = "sites ";
  for (std::size_t i = 0; i < announce_order.size(); ++i) {
    if (i) out += '>';
    out += std::to_string(announce_order[i].value() + 1);
  }
  if (!enabled_peers.empty()) {
    out += ", peers: " + std::to_string(enabled_peers.size());
  }
  return out;
}

AnycastConfig AnycastConfig::all_sites(const Deployment& deployment) {
  AnycastConfig cfg;
  for (std::size_t i = 0; i < deployment.site_count(); ++i) {
    cfg.announce_order.emplace_back(static_cast<SiteId::underlying_type>(i));
  }
  return cfg;
}

AnycastConfig AnycastConfig::of_sites(std::vector<SiteId> order) {
  AnycastConfig cfg;
  cfg.announce_order = std::move(order);
  return cfg;
}

}  // namespace anyopt::anycast
