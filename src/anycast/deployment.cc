#include "anycast/deployment.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace anyopt::anycast {

std::vector<SiteSpec> table1_specs() {
  // Site, Location, Transit, #peers — verbatim from the paper's Table 1.
  return {
      {"Atlanta", "Telia", 4},    {"Amsterdam", "Telia", 1},
      {"Los Angeles", "Zayo", 6}, {"Singapore", "TATA", 15},
      {"London", "GTT", 14},      {"Tokyo", "NTT", 3},
      {"Osaka", "NTT", 4},        {"Los Angeles", "Zayo", 4},
      {"Miami", "NTT", 7},        {"London", "Sparkle", 2},
      {"Newark", "NTT", 7},       {"Stockholm", "Telia", 14},
      {"Toronto", "TATA", 9},     {"Sao Paulo", "Sparkle", 9},
      {"Chicago", "GTT", 5},
  };
}

std::vector<std::vector<std::string>> table1_required_pops() {
  return {
      /*Telia*/ {"Atlanta", "Amsterdam", "Stockholm"},
      /*Zayo*/ {"Los Angeles"},
      /*TATA*/ {"Singapore", "Toronto"},
      /*GTT*/ {"London", "Chicago"},
      /*NTT*/ {"Tokyo", "Osaka", "Miami", "Newark"},
      /*Sparkle*/ {"London", "Sao Paulo"},
  };
}

Deployment Deployment::realize(const topo::Internet& net,
                               std::span<const SiteSpec> specs, Rng rng,
                               double peer_filter_prob) {
  Deployment d;

  // Provider slot table from the spec order of first appearance.
  auto provider_slot = [&](const std::string& name) -> ProviderId {
    for (std::size_t i = 0; i < d.provider_names_.size(); ++i) {
      if (d.provider_names_[i] == name) {
        return ProviderId{static_cast<ProviderId::underlying_type>(i)};
      }
    }
    d.provider_names_.push_back(name);
    d.provider_as_.push_back(net.tier1_by_name(name));
    return ProviderId{
        static_cast<ProviderId::underlying_type>(d.provider_names_.size() - 1)};
  };

  // Pass 1: sites and their transit attachments (attachment idx == site id).
  for (const SiteSpec& spec : specs) {
    const ProviderId provider = provider_slot(spec.provider_name);
    Site site;
    site.metro = spec.metro;
    site.where = geo::metro(spec.metro).where;
    // Distinguish co-located sites (e.g. the two Los Angeles / Zayo sites
    // of Table 1) by a small deterministic offset.
    site.where.latitude_deg += 0.02 * static_cast<double>(d.sites_.size());
    site.provider = provider;
    site.provider_name = spec.provider_name;
    site.table1_peer_count = spec.peer_count;

    const AsId host = d.provider_as_[provider.value()];
    if (!net.pops.has(host)) {
      throw std::invalid_argument("provider " + spec.provider_name +
                                  " has no PoP network");
    }
    const topo::PopNetwork& pn = net.pops.network(host);
    const auto pop = pn.pop_by_metro(spec.metro);
    if (!pop.ok()) {
      throw std::invalid_argument("provider " + spec.provider_name +
                                  " has no PoP in " + spec.metro +
                                  "; pass table1_required_pops() to the "
                                  "topology builder");
    }

    bgp::OriginAttachment at;
    at.site = SiteId{static_cast<SiteId::underlying_type>(d.sites_.size())};
    at.neighbor = host;
    at.neighbor_is = topo::Relation::kProvider;
    at.where = pn.pop(pop.value()).where;
    at.latency_ms = 0.25;
    d.attachments_.push_back(at);
    d.sites_.push_back(std::move(site));
  }

  // Pass 2: peering links.  Candidates are non-tier-1 ASes near the site,
  // sampled without replacement across the whole deployment so each of the
  // (e.g.) 104 peer links lands on a distinct network, as in the testbed.
  std::unordered_set<std::uint32_t> used_peer_as;
  for (std::size_t s = 0; s < d.sites_.size(); ++s) {
    const Site& site = d.sites_[s];
    const std::size_t begin = d.attachments_.size();

    // Realistic IXP peers are small local networks: cap the customer-cone
    // size so no large transit becomes a peer (in the testbed >80% of
    // peers attract <2.5% of targets, Fig. 7a).
    const std::size_t max_cone = std::max<std::size_t>(
        3, static_cast<std::size_t>(0.012 * static_cast<double>(
                                        net.graph.as_count())));
    std::vector<std::pair<double, AsId>> candidates;
    for (std::size_t i = 0; i < net.graph.as_count(); ++i) {
      const topo::AsNode& node = net.graph.nodes()[i];
      if (node.tier == topo::Tier::kTier1) continue;
      const AsId id{static_cast<AsId::underlying_type>(i)};
      if (used_peer_as.contains(id.value())) continue;
      const double km = geo::great_circle_km(site.where, node.location);
      if (km > 3000) continue;  // IXP-reachable radius
      if (net.graph.customer_cone(id).size() > max_cone) continue;
      candidates.push_back({km, id});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    int provisioned = 0;
    // Sample among the nearest 4x pool to diversify peer sizes.
    const std::size_t pool = std::min<std::size_t>(
        candidates.size(), static_cast<std::size_t>(site.table1_peer_count) * 4);
    std::vector<std::size_t> order(pool);
    for (std::size_t i = 0; i < pool; ++i) order[i] = i;
    rng.shuffle(order);
    for (const std::size_t pick : order) {
      if (provisioned >= site.table1_peer_count) break;
      const AsId peer = candidates[pick].second;
      if (!used_peer_as.insert(peer.value()).second) continue;
      bgp::OriginAttachment at;
      at.site = SiteId{static_cast<SiteId::underlying_type>(s)};
      at.neighbor = peer;
      at.neighbor_is = topo::Relation::kPeer;
      at.where = site.where;
      at.latency_ms = 0.35;
      // Remote peering: a share of IXP ports are resold/backhauled, so the
      // BGP session looks local while the data path trombones.  These are
      // the peers that *worsen* latency despite shorter AS paths — the
      // reason the paper's one-pass method includes peers conservatively
      // (§4.4: "peer connections can worsen the performance").
      if (rng.chance(0.3)) {
        at.latency_ms += rng.exponential(25.0);
      }
      at.filtered = rng.chance(peer_filter_prob);
      d.peer_attachments_all_.push_back(
          static_cast<bgp::AttachmentIndex>(d.attachments_.size()));
      d.attachments_.push_back(at);
      ++provisioned;
    }
    d.peer_range_.emplace_back(begin, d.attachments_.size());
  }
  return d;
}

std::span<const bgp::AttachmentIndex> Deployment::peer_attachments(
    SiteId site) const {
  const auto [begin, end] = peer_range_[site.value()];
  // peer_attachments_all_ is ordered by site, so translate the attachment
  // range into a range over that vector.
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (std::size_t i = 0; i < peer_attachments_all_.size(); ++i) {
    if (peer_attachments_all_[i] < begin) lo = i + 1;
    if (peer_attachments_all_[i] < end) hi = i + 1;
  }
  return {peer_attachments_all_.data() + lo, hi - lo};
}

std::vector<SiteId> Deployment::sites_of_provider(ProviderId p) const {
  std::vector<SiteId> out;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].provider == p) {
      out.emplace_back(static_cast<SiteId::underlying_type>(i));
    }
  }
  return out;
}

}  // namespace anyopt::anycast
