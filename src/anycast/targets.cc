#include "anycast/targets.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace anyopt::anycast {

TargetPopulation TargetPopulation::generate(const topo::Internet& net,
                                            const TargetParams& params) {
  TargetPopulation pop;
  Rng rng{params.seed};

  std::vector<AsId> stubs = net.graph.ases_of_tier(topo::Tier::kStub);
  // A slice of small transit networks also hosts client networks.
  for (const AsId t : net.graph.ases_of_tier(topo::Tier::kTransit)) {
    if (rng.chance(0.25)) stubs.push_back(t);
  }
  rng.shuffle(stubs);
  const std::size_t covered = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(stubs.size()) *
                                  params.as_coverage));
  stubs.resize(covered);

  // Heavy-tailed targets-per-AS shares (normalized Pareto draws).
  std::vector<double> share(covered);
  double total_share = 0;
  for (std::size_t i = 0; i < covered; ++i) {
    share[i] = rng.pareto(1.0, params.pareto_shape);
    total_share += share[i];
  }

  std::unordered_set<std::uint32_t> as_seen;
  std::unordered_set<net::Prefix> net_seen;
  std::uint32_t next_block = (std::uint32_t{100} << 24) | (64u << 16);

  for (std::size_t i = 0; i < covered && pop.targets_.size() <
                                              static_cast<std::size_t>(params.count);
       ++i) {
    int quota = std::max(
        1, static_cast<int>(std::lround(share[i] / total_share *
                                        static_cast<double>(params.count))));
    const topo::AsNode& node = net.graph.node(stubs[i]);
    for (int t = 0; t < quota && pop.targets_.size() <
                                     static_cast<std::size_t>(params.count);
         ++t) {
      Target tgt;
      // Each target gets its own /24 most of the time; occasionally two
      // targets share one (paper: 15,300 targets over 12,143 /24s).
      if (t > 0 && rng.chance(0.21) && !pop.targets_.empty() &&
          pop.targets_.back().as == stubs[i]) {
        tgt.network = pop.targets_.back().network;
        tgt.address = net::Ipv4{tgt.network.address().bits() +
                                static_cast<std::uint32_t>(t) + 1};
      } else {
        tgt.network = net::Prefix{net::Ipv4{next_block}, 24};
        next_block += 256;
        tgt.address = net::Ipv4{tgt.network.address().bits() + 1};
      }
      tgt.as = stubs[i];
      tgt.where = node.location;
      tgt.where.latitude_deg += rng.normal(0.0, 0.35);
      tgt.where.longitude_deg += rng.normal(0.0, 0.35);
      tgt.weight = 1.0;
      net_seen.insert(tgt.network);
      pop.targets_.push_back(std::move(tgt));
    }
    as_seen.insert(stubs[i].value());
  }
  // Quota rounding can undershoot; top up round-robin over covered ASes.
  std::size_t next = 0;
  while (pop.targets_.size() < static_cast<std::size_t>(params.count) &&
         !stubs.empty()) {
    const AsId as = stubs[next++ % covered];
    const topo::AsNode& node = net.graph.node(as);
    Target tgt;
    tgt.network = net::Prefix{net::Ipv4{next_block}, 24};
    next_block += 256;
    tgt.address = net::Ipv4{tgt.network.address().bits() + 1};
    tgt.as = as;
    tgt.where = node.location;
    tgt.where.latitude_deg += rng.normal(0.0, 0.35);
    tgt.where.longitude_deg += rng.normal(0.0, 0.35);
    net_seen.insert(tgt.network);
    as_seen.insert(as.value());
    pop.targets_.push_back(std::move(tgt));
  }
  pop.distinct_ases_ = as_seen.size();
  pop.distinct_networks_ = net_seen.size();
  return pop;
}

}  // namespace anyopt::anycast
