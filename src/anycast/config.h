#pragma once
// An anycast configuration (§2.3): which sites announce the prefix, in
// which order, and which peering sessions are additionally enabled.

#include <string>
#include <vector>

#include "anycast/deployment.h"
#include "bgp/origin.h"

namespace anyopt::anycast {

/// A deployable configuration.  `announce_order` lists the enabled sites in
/// the order their transit announcements are made (the order matters
/// because deployed routers break ties by arrival, §4.2); enabled peers are
/// announced after all transit announcements.
struct AnycastConfig {
  std::vector<SiteId> announce_order;
  /// Optional per-announcement AS-path prepending, parallel to
  /// `announce_order` (§6's catchment-shaping knob); empty = no prepend.
  std::vector<std::uint8_t> prepend;
  std::vector<bgp::AttachmentIndex> enabled_peers;
  /// Spacing between consecutive announcements; must exceed global BGP
  /// convergence time so arrival order is globally consistent (the paper
  /// uses six minutes, §5.1).
  double spacing_s = 360.0;

  [[nodiscard]] bool site_enabled(SiteId site) const;
  [[nodiscard]] std::size_t enabled_site_count() const {
    return announce_order.size();
  }

  /// Expands into the injection schedule for the simulator.
  [[nodiscard]] std::vector<bgp::Injection> schedule(
      const Deployment& deployment) const;

  /// Human-readable summary ("sites 3>1>12, peers: 2").
  [[nodiscard]] std::string describe() const;

  /// All sites in site-id order, no peers.
  [[nodiscard]] static AnycastConfig all_sites(const Deployment& deployment);

  /// A specific site set, announced in the given order.
  [[nodiscard]] static AnycastConfig of_sites(std::vector<SiteId> order);
};

}  // namespace anyopt::anycast
