#include "anycast/world.h"

#include <algorithm>
#include <cmath>

#include "netbase/rng.h"

namespace anyopt::anycast {

WorldParams WorldParams::paper_scale(std::uint64_t seed) {
  WorldParams p;
  p.seed = seed;
  p.internet.required_tier1_pops = table1_required_pops();
  p.targets.count = 15300;
  return p;
}

WorldParams WorldParams::at_scale(std::size_t ases, std::uint64_t seed) {
  WorldParams p = paper_scale(seed);
  p.internet = topo::scale_internet_params(ases, std::move(p.internet));
  // Keep the paper's targets-per-AS density (15,300 over 5,456 ASes).
  p.targets.count = std::max(
      1, static_cast<int>(static_cast<double>(ases) * 15300.0 /
                              static_cast<double>(topo::kPaperScaleAses) +
                          0.5));
  return p;
}

WorldParams WorldParams::test_scale(std::uint64_t seed) {
  WorldParams p;
  p.seed = seed;
  p.internet.required_tier1_pops = table1_required_pops();
  p.internet.regional_transit_count = 18;
  p.internet.access_transit_count = 24;
  p.internet.stub_count = 220;
  p.internet.extra_pops_per_tier1_min = 2;
  p.internet.extra_pops_per_tier1_max = 4;
  p.targets.count = 900;
  p.peer_scale = 0.3;
  return p;
}

std::unique_ptr<World> World::create(WorldParams params) {
  return std::unique_ptr<World>(new World(std::move(params)));
}

World::World(WorldParams params) : params_(std::move(params)) {
  Rng master{params_.seed};
  params_.internet.seed = master.fork("internet")();
  params_.targets.seed = master.fork("targets")();
  params_.sim.seed = master.fork("simulator")();

  net_ = topo::build_internet(params_.internet);
  std::vector<SiteSpec> sites = params_.sites;
  if (params_.peer_scale != 1.0) {
    for (SiteSpec& s : sites) {
      s.peer_count = static_cast<int>(
          std::lround(params_.peer_scale * static_cast<double>(s.peer_count)));
    }
  }
  deployment_ = Deployment::realize(net_, sites, master.fork("deployment"));
  targets_ = TargetPopulation::generate(net_, params_.targets);
  sim_ = std::make_unique<bgp::Simulator>(net_, deployment_.attachments(),
                                          params_.sim);
}

}  // namespace anyopt::anycast
