#pragma once
// The "world": one bundle owning a generated Internet, the anycast
// deployment realized on it, the ping-target population and a ready BGP
// simulator.  This is the reproduction's stand-in for the paper's physical
// testbed (Table 1) plus the real Internet around it.

#include <cstdint>
#include <memory>

#include "anycast/deployment.h"
#include "anycast/targets.h"
#include "bgp/simulator.h"
#include "topo/builder.h"

namespace anyopt::anycast {

/// World construction parameters.  All nested seeds are derived from
/// `seed`, so one number reproduces the entire environment.
struct WorldParams {
  topo::InternetParams internet;
  TargetParams targets;
  bgp::SimulatorOptions sim;
  std::vector<SiteSpec> sites = table1_specs();
  /// Scale factor applied to per-site peer counts; reduced worlds should
  /// carry proportionally fewer peering links to keep the peer-to-AS ratio
  /// realistic.
  double peer_scale = 1.0;
  std::uint64_t seed = 1897;

  /// Full-scale world matching the paper's evaluation (15,300 targets).
  [[nodiscard]] static WorldParams paper_scale(std::uint64_t seed = 1897);

  /// Reduced world for unit and integration tests (seconds, not minutes).
  [[nodiscard]] static WorldParams test_scale(std::uint64_t seed = 7);

  /// Paper-style world scaled to approximately `ases` total ASes (the
  /// `--ases=N` knob; exercised up to 75,000): the tier mix scales via
  /// `topo::scale_internet_params` and the target population grows
  /// proportionally, keeping the paper's targets-per-AS density.
  [[nodiscard]] static WorldParams at_scale(std::size_t ases,
                                            std::uint64_t seed = 1897);
};

/// Immovable bundle (the simulator holds references into the Internet).
class World {
 public:
  [[nodiscard]] static std::unique_ptr<World> create(WorldParams params);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] const topo::Internet& internet() const { return net_; }
  [[nodiscard]] const Deployment& deployment() const { return deployment_; }
  [[nodiscard]] const TargetPopulation& targets() const { return targets_; }
  [[nodiscard]] const bgp::Simulator& simulator() const { return *sim_; }
  [[nodiscard]] const WorldParams& params() const { return params_; }

 private:
  explicit World(WorldParams params);

  WorldParams params_;
  topo::Internet net_;
  Deployment deployment_;
  TargetPopulation targets_;
  std::unique_ptr<bgp::Simulator> sim_;
};

}  // namespace anyopt::anycast
