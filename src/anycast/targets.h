#pragma once
// Ping-target population (§3.2 of the paper).
//
// The paper probes 15,300 router targets covering 12,143 /24 networks in
// 5,317 client ASes; each target is the common ancestor router of a set of
// end users and stands for one client network.  We generate an equivalent
// population over the synthetic Internet's stub ASes with a heavy-tailed
// targets-per-AS distribution.

#include <span>
#include <vector>

#include "netbase/geo.h"
#include "netbase/ids.h"
#include "netbase/ip.h"
#include "netbase/rng.h"
#include "topo/builder.h"

namespace anyopt::anycast {

/// One ping target: a router representative of a client network.
struct Target {
  net::Ipv4 address;
  net::Prefix network;       ///< the /24 the target represents
  AsId as;                   ///< client AS hosting the target
  geo::Coordinates where;    ///< physical location (near its AS)
  double weight = 1.0;       ///< client-network workload weight
};

/// Target generation parameters.
struct TargetParams {
  int count = 15300;              ///< total targets (paper: 15,300)
  double as_coverage = 0.92;      ///< fraction of stub ASes hosting targets
  double pareto_shape = 1.3;      ///< heavy tail of targets per AS
  std::uint64_t seed = 0x7A26;
};

/// Immutable target table.
class TargetPopulation {
 public:
  static TargetPopulation generate(const topo::Internet& net,
                                   const TargetParams& params);

  [[nodiscard]] std::size_t size() const { return targets_.size(); }
  [[nodiscard]] const Target& target(TargetId id) const {
    return targets_[id.value()];
  }
  [[nodiscard]] std::span<const Target> all() const { return targets_; }

  /// Number of distinct client ASes covered.
  [[nodiscard]] std::size_t distinct_ases() const { return distinct_ases_; }
  /// Number of distinct /24 networks covered.
  [[nodiscard]] std::size_t distinct_slash24() const {
    return distinct_networks_;
  }

 private:
  std::vector<Target> targets_;
  std::size_t distinct_ases_ = 0;
  std::size_t distinct_networks_ = 0;
};

}  // namespace anyopt::anycast
