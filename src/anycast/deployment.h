#pragma once
// The anycast deployment under study: sites, their transit attachments and
// their settlement-free peering links, mirroring the paper's Table 1.

#include <span>
#include <string>
#include <vector>

#include "bgp/origin.h"
#include "netbase/geo.h"
#include "netbase/ids.h"
#include "netbase/rng.h"
#include "topo/builder.h"

namespace anyopt::anycast {

/// One anycast site (a location with an onsite router, §2.1).
struct Site {
  std::string metro;
  geo::Coordinates where;
  ProviderId provider;          ///< transit provider slot (tier-1 index)
  std::string provider_name;
  int table1_peer_count = 0;    ///< peers at this site per Table 1
};

/// Specification of one site before realization.
struct SiteSpec {
  std::string metro;
  std::string provider_name;  ///< must be one of the Internet's tier-1s
  int peer_count = 0;
};

/// The deployment: site table plus the attachment table consumed by the
/// BGP simulator.  Attachment layout: one transit attachment per site (at
/// index == site id), followed by all peer attachments.
class Deployment {
 public:
  /// Realizes the deployment on a generated Internet: places each site at
  /// its metro, attaches it to the provider's PoP there, and provisions
  /// `peer_count` peering sessions to ASes near the site.  A fraction of
  /// peers silently filter the announcement on their side (the paper saw
  /// 32 of 104 peer links deliver no ping target, §5.4); the one-pass
  /// experiments discover them as empty catchments.
  static Deployment realize(const topo::Internet& net,
                            std::span<const SiteSpec> specs, Rng rng,
                            double peer_filter_prob = 0.25);

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] const Site& site(SiteId id) const {
    return sites_[id.value()];
  }
  [[nodiscard]] const std::vector<Site>& sites() const { return sites_; }

  /// All BGP sessions (transit first, then peers) for the simulator.
  [[nodiscard]] const std::vector<bgp::OriginAttachment>& attachments() const {
    return attachments_;
  }

  /// The transit attachment of a site (announcing here enables the site).
  [[nodiscard]] bgp::AttachmentIndex transit_attachment(SiteId site) const {
    return site.value();
  }

  /// Peer attachments of one site (indices into `attachments()`).
  [[nodiscard]] std::span<const bgp::AttachmentIndex> peer_attachments(
      SiteId site) const;

  /// All peer attachments of the deployment.
  [[nodiscard]] std::span<const bgp::AttachmentIndex> all_peer_attachments()
      const {
    return peer_attachments_all_;
  }

  /// Provider (tier-1) slots used by the deployment, by name.
  [[nodiscard]] const std::vector<std::string>& provider_names() const {
    return provider_names_;
  }
  [[nodiscard]] std::size_t provider_count() const {
    return provider_names_.size();
  }

  /// Sites homed to one provider, in site-id order.
  [[nodiscard]] std::vector<SiteId> sites_of_provider(ProviderId p) const;

  /// The tier-1 AS of a provider slot.
  [[nodiscard]] AsId provider_as(ProviderId p) const {
    return provider_as_[p.value()];
  }

 private:
  std::vector<Site> sites_;
  std::vector<bgp::OriginAttachment> attachments_;
  std::vector<bgp::AttachmentIndex> peer_attachments_all_;
  std::vector<std::pair<std::size_t, std::size_t>> peer_range_;  ///< per site
  std::vector<std::string> provider_names_;
  std::vector<AsId> provider_as_;
};

/// The 15-site / 6-provider / 104-peer deployment of the paper's Table 1.
[[nodiscard]] std::vector<SiteSpec> table1_specs();

/// Metros required per tier-1 so Table 1 sites can attach locally; aligned
/// with InternetParams::tier1_names order (Telia, Zayo, TATA, GTT, NTT,
/// Sparkle).
[[nodiscard]] std::vector<std::vector<std::string>> table1_required_pops();

}  // namespace anyopt::anycast
