#include "bgp/flap.h"

#include <algorithm>
#include <limits>

namespace anyopt::bgp {

std::vector<Injection> apply_flaps(std::vector<Injection> schedule,
                                   std::span<const fault::SessionFlap> flaps) {
  const std::size_t base = schedule.size();
  for (const fault::SessionFlap& flap : flaps) {
    // Anchor on the attachment's (first) announcement in the base schedule;
    // withdraw injections never anchor a flap.
    const auto anchor = std::find_if(
        schedule.begin(), schedule.begin() + static_cast<std::ptrdiff_t>(base),
        [&](const Injection& inj) {
          return !inj.withdraw && inj.attachment == flap.attachment;
        });
    if (anchor == schedule.begin() + static_cast<std::ptrdiff_t>(base)) {
      continue;  // session not announced in this experiment
    }
    const double t0 = anchor->time_s + flap.first_down_s;
    const std::uint8_t prepend = anchor->prepend;
    // Clip at the next base-schedule withdraw of this attachment: once the
    // experiment permanently withdraws the session, a later flap cycle must
    // not resurrect it.  Cycle withdraws landing before the clip are kept
    // even when their re-advertisement falls past it (the session simply
    // stays down until the base withdraw arrives).
    double clip_s = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < base; ++i) {
      const Injection& inj = schedule[i];
      if (inj.withdraw && inj.attachment == flap.attachment &&
          inj.time_s > anchor->time_s && inj.time_s < clip_s) {
        clip_s = inj.time_s;
      }
    }
    for (std::size_t cycle = 0; cycle < flap.cycles; ++cycle) {
      const double down =
          t0 + static_cast<double>(cycle) *
                   (flap.down_dwell_s + flap.up_dwell_s);
      if (down >= clip_s) break;
      schedule.push_back(Injection{down, flap.attachment, true, 0});
      const double up = down + flap.down_dwell_s;
      if (up >= clip_s) break;
      schedule.push_back(Injection{up, flap.attachment, false, prepend});
    }
  }
  // Always sort: the postcondition is a time-sorted schedule even when no
  // flap produced an entry (stable_sort of an already-sorted base is the
  // identity, so sorted callers see bit-identical output).
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Injection& a, const Injection& b) {
                     return a.time_s < b.time_s;
                   });
  return schedule;
}

}  // namespace anyopt::bgp
