#include "bgp/flap.h"

#include <algorithm>

namespace anyopt::bgp {

std::vector<Injection> apply_flaps(std::vector<Injection> schedule,
                                   std::span<const fault::SessionFlap> flaps) {
  const std::size_t base = schedule.size();
  for (const fault::SessionFlap& flap : flaps) {
    // Anchor on the attachment's (first) announcement in the base schedule;
    // withdraw injections never anchor a flap.
    const auto anchor = std::find_if(
        schedule.begin(), schedule.begin() + static_cast<std::ptrdiff_t>(base),
        [&](const Injection& inj) {
          return !inj.withdraw && inj.attachment == flap.attachment;
        });
    if (anchor == schedule.begin() + static_cast<std::ptrdiff_t>(base)) {
      continue;  // session not announced in this experiment
    }
    const double t0 = anchor->time_s + flap.first_down_s;
    const std::uint8_t prepend = anchor->prepend;
    for (std::size_t cycle = 0; cycle < flap.cycles; ++cycle) {
      const double down =
          t0 + static_cast<double>(cycle) *
                   (flap.down_dwell_s + flap.up_dwell_s);
      schedule.push_back(Injection{down, flap.attachment, true, 0});
      schedule.push_back(
          Injection{down + flap.down_dwell_s, flap.attachment, false, prepend});
    }
  }
  if (schedule.size() != base) {
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const Injection& a, const Injection& b) {
                       return a.time_s < b.time_s;
                     });
  }
  return schedule;
}

}  // namespace anyopt::bgp
