#pragma once
// Event-driven BGP propagation engine.
//
// Simulates the announcement of one anycast prefix from a set of origin
// attachments into the AS-level Internet.  Updates travel with per-link
// delays (geodesic latency plus exponential processing jitter), so the
// *arrival order* of announcements at every AS is well defined — which is
// what lets the reproduction exhibit the paper's central finding that
// deployed routers break ties by arrival order (§4.2).
//
// A run starts from clean state, processes a schedule of timed injections
// (announce/withdraw per attachment), and returns the converged routing
// state, from which catchments, forwarding paths and latencies can be
// resolved per client network.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bgp/decision.h"
#include "bgp/origin.h"
#include "bgp/policy.h"
#include "bgp/route.h"
#include "bgp/walk.h"
#include "netbase/geo.h"
#include "netbase/ids.h"
#include "netbase/rng.h"
#include "topo/builder.h"

namespace anyopt::bgp {

/// Engine tuning knobs.
struct SimulatorOptions {
  /// Mean of the per-hop processing delay (ms).  This component is
  /// *deterministic per link* (hash-derived), modelling stable router/
  /// session characteristics: the same race between two update waves
  /// resolves the same way in every experiment, as observed on the real
  /// Internet (the paper's §4.2 flip behaviour is order-driven, not
  /// noise-driven).  Announce spacing must dwarf hops × (latency + this).
  double processing_delay_mean_ms = 15.0;
  /// Mean of the additional per-run exponential jitter (ms), modelling the
  /// genuinely random per-wave component of update propagation (MRAI timer
  /// randomization): races between announcements made simultaneously
  /// re-roll between experiments, while spaced announcements stay ordered.
  double run_jitter_mean_ms = 3000.0;
  /// Global ablation switch for the arrival-order tie-break; ANDed with the
  /// per-AS `prefers_oldest` flag.
  bool arrival_order_tiebreak = true;
  /// Enables the per-RoutingState forwarding cache: `resolve()` memoizes
  /// each client AS's data-plane walk so targets sharing a client AS replay
  /// it instead of re-walking (hops whose choice depends on the flow hash —
  /// multipath splits, host-AS hot-potato from the client's own location —
  /// stay uncached).  Results are bit-identical on or off; `explain()`
  /// always bypasses the cache.  Note the cache makes `resolve()` mutate
  /// internal memoization state: a single RoutingState must not be resolved
  /// from multiple threads concurrently (census workers each own their
  /// state, so the campaign engine is unaffected).
  bool resolution_cache = true;
  /// Safety valve: abort if a run exceeds this many events (0 = auto).
  std::size_t max_events = 0;
  /// Base seed; combined with the per-run nonce.
  std::uint64_t seed = 0xB6F;
};

/// One hop of a routing explanation: which route an AS picked and how deep
/// into the decision process it had to go to beat its rivals.
struct ExplainedHop {
  AsId as;
  std::size_t candidates = 0;        ///< present Adj-RIB-In entries
  std::vector<AsId> chosen_path;     ///< AS path of the winning entry
  AsId next;                         ///< next-hop AS; invalid = exits to origin
  /// The deepest decision step needed against any rival (kLocalPref if
  /// the route won on LOCAL_PREF alone, kOldestRoute if only the
  /// arrival-order tie-break separated it, ...).  kLocalPref when
  /// unopposed.
  DecisionStep hardest_step = DecisionStep::kLocalPref;
  bool multipath_split = false;      ///< flow-hash picked among equals
};

/// Full "why did this client end up at that site" trace (§2's manual
/// diagnosis, automated).
struct Explanation {
  bool reachable = false;
  SiteId site;
  std::vector<ExplainedHop> hops;

  /// True if any hop's decision needed the vendor arrival-order step —
  /// i.e. this client's catchment is announcement-order-dependent.
  [[nodiscard]] bool order_dependent() const;

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string to_string(const topo::Internet& net) const;
};

class Simulator;
class RoutingState;
class BaseState;
class CompactState;

/// Per-call overlay accounting, filled by `Simulator::run_overlay` /
/// `resume_overlay` (telemetry counters `sim.overlay.*` aggregate the same
/// numbers process-wide).
struct OverlayStats {
  std::size_t copied_as = 0;     ///< base pages copied on first write
  std::size_t delta_events = 0;  ///< update events the delta generated
};

/// Recycled allocation arena for `Simulator::run`.  A clean-state BGP run
/// builds per-AS RIB vectors, an event queue, per-session clocks and
/// advertisement diffs from scratch; campaigns run thousands of such
/// experiments over the same topology, so the allocations dominate once the
/// event processing itself is fast.  A SimScratch keeps all of that storage
/// alive between runs: pass it to `run()` to seed the new state from the
/// recycled buffers, and hand the consumed RoutingState back via
/// `recycle()` once its results have been read.
///
/// A scratch is NOT thread-safe — it is meant to be owned by one worker
/// (`measure::CampaignRunner` keeps one per pool worker; the orchestrator
/// falls back to a thread-local one).  Reuse never changes results: every
/// recycled buffer is reset before the run and the engine only ever reads
/// state it wrote this run.
class SimScratch {
 public:
  SimScratch();
  ~SimScratch();
  SimScratch(SimScratch&&) noexcept;
  SimScratch& operator=(SimScratch&&) noexcept;
  SimScratch(const SimScratch&) = delete;
  SimScratch& operator=(const SimScratch&) = delete;

  /// Reclaims the storage of a RoutingState this scratch (or any scratch)
  /// helped build.  Call only once the state's results are consumed; the
  /// state is left empty.
  void recycle(RoutingState&& state);

  struct Impl;  // opaque; owns the recycled buffers (defined in the .cc)

 private:
  friend class Simulator;
  std::unique_ptr<Impl> impl_;
};

/// A fully converged campaign-shared base: the snapshot `Simulator::
/// converge_base` produces and `run_overlay` forks copy-on-write overlays
/// from.  It freezes everything an experiment continuation needs — the
/// per-AS RIBs, the per-neighbor advertisement ledger, the per-session
/// delivery clocks and the arrival-seq high-water mark — so an overlay
/// propagating only a delta schedule behaves exactly like a clean run that
/// replayed the base schedule first.  Immutable once built; any number of
/// overlays (including concurrent ones on different threads) may read it.
/// Must outlive every RoutingState forked from it.
class BaseState {
 public:
  BaseState();
  ~BaseState();
  BaseState(BaseState&&) noexcept;
  BaseState& operator=(BaseState&&) noexcept;
  BaseState(const BaseState&) = delete;
  BaseState& operator=(const BaseState&) = delete;

  /// Update events the base convergence processed.
  [[nodiscard]] std::size_t events() const;
  /// Simulated time of the base's last event (seconds); overlay delta
  /// injections are scheduled relative to this horizon.
  [[nodiscard]] double converged_at_s() const;

 private:
  friend class Simulator;
  friend class RoutingState;
  struct Impl;  // defined in the .cc; owns the frozen buffers
  std::unique_ptr<Impl> impl_;
};

/// Converged routing state of one run.  Valid only while the owning
/// Simulator is alive (and, for overlay states, the BaseState they were
/// forked from).  Move-only: a state may own copy-on-write pages and a
/// run continuation, which have a single owner.
class RoutingState {
 public:
  RoutingState();
  ~RoutingState();
  RoutingState(RoutingState&&) noexcept;
  RoutingState& operator=(RoutingState&&) noexcept;
  RoutingState(const RoutingState&) = delete;
  RoutingState& operator=(const RoutingState&) = delete;

  /// The single best route installed at `as`, or nullptr if unreachable.
  [[nodiscard]] const RibEntry* best(AsId as) const;

  /// All RIB entries installed at `as` (present and not).
  [[nodiscard]] std::span<const RibEntry> rib(AsId as) const;

  /// Multipath-eligible equal-best entries at `as` (indices into rib).
  [[nodiscard]] const BestSet& best_set(AsId as) const;

  /// Walks the data plane from a client at `from` / `from_loc` to its
  /// catchment site.  `flow_hash` seeds per-flow multipath splitting.
  ///
  /// When the owning simulator's `resolution_cache` option is on, the walk
  /// from each client AS is memoized on first use and replayed for later
  /// targets in the same AS (the per-hop decisions are pure functions of
  /// the converged RIBs; only the first-hop latency and the flow-dependent
  /// pieces are recomputed per call).  The memoization mutates internal
  /// state, so a cached RoutingState must not be resolved concurrently.
  [[nodiscard]] ResolvedPath resolve(AsId from, const geo::Coordinates& from_loc,
                                     std::uint64_t flow_hash) const;

  /// Like `resolve`, but records per-hop decision diagnostics: which entry
  /// each AS picked, against how many candidates, and the deepest decision
  /// step that was needed.
  [[nodiscard]] Explanation explain(AsId from,
                                    const geo::Coordinates& from_loc,
                                    std::uint64_t flow_hash) const;

  /// Number of update events processed before convergence.
  [[nodiscard]] std::size_t events_processed() const { return events_; }

  /// Simulated time of the last processed event (seconds).
  [[nodiscard]] double converged_at_s() const { return last_event_s_; }

  /// Per-state resolve-cache tallies: replayed / walked resolutions of THIS
  /// state (the global `bgp.resolve.cache_*` counters aggregate the same
  /// numbers process-wide).  Provenance records attribute cache behaviour
  /// to individual experiments through these.
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }

  /// Approximate heap bytes retained by the forwarding cache (capacities,
  /// not live sizes — this is the memory the arena actually holds).
  [[nodiscard]] std::size_t resolve_cache_bytes() const;

  /// Approximate heap bytes of the copy-on-write pages this overlay has
  /// privatized (0 for clean runs: their pages are plain state, accounted
  /// by the scratch that recycles them).
  [[nodiscard]] std::size_t overlay_copied_bytes() const;

 private:
  friend class Simulator;
  friend class SimScratch;
  friend class CompactState;  // freeze() reads the run nonce
  friend struct SimScratch::Impl;
  friend struct BaseState::Impl;
  struct AsState {
    std::vector<RibEntry> rib;  ///< slots: AS neighbors, then attachments
    BestSet best;
  };
  /// The memoized data-plane walk record (hoisted to namespace scope so the
  /// structure-of-arrays CompactState shares the exact machinery; see
  /// bgp/walk.h for the cacheability rules).
  using CachedWalk = ::anyopt::bgp::CachedWalk;
  /// The uncached walk (instantiates bgp/walk.h's shared `walk_resolve`
  /// over this layout).  If `record` is non-null the walk is captured into
  /// it (or marked kUncached when a flow/location-dependent hop is met).
  [[nodiscard]] ResolvedPath resolve_walk(AsId from,
                                          const geo::Coordinates& from_loc,
                                          std::uint64_t flow_hash,
                                          CachedWalk* record) const;

  /// The routing state of `as`: this state's own page when it was written
  /// during the run (or the run was not an overlay), else the shared base
  /// page.  Every read goes through here, so untouched ASes never copy.
  [[nodiscard]] const AsState& state_of(AsId as) const;

  const Simulator* sim_ = nullptr;
  std::vector<AsState> as_;
  /// Overlay bookkeeping: the base this state was forked from (null for
  /// clean runs) and the per-AS copied-on-write flags (`as_[i]` is live iff
  /// `copied_[i]`; empty for clean runs).
  const BaseState* base_ = nullptr;
  std::vector<std::uint8_t> copied_;
  /// Run continuation (advertisement ledger, session clocks, arrival-seq
  /// high-water mark), kept only when the run was asked to stay resumable
  /// (`keep_continuation`); consumed by `Simulator::resume_overlay`.
  struct Cont;
  std::unique_ptr<Cont> cont_;
  /// Forwarding cache, indexed by client AS; empty = cache disabled.
  /// Mutable: memoization from const `resolve()` (single-threaded use).
  mutable std::vector<CachedWalk> walk_cache_;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
  std::uint64_t run_nonce_ = 0;
  std::size_t events_ = 0;
  double last_event_s_ = 0;
};

/// The propagation engine.  Construct once per (Internet, attachment table);
/// `run` is const and cheap to call repeatedly with different schedules.
class Simulator {
 public:
  Simulator(const topo::Internet& net,
            std::vector<OriginAttachment> attachments,
            SimulatorOptions options = {});

  [[nodiscard]] const std::vector<OriginAttachment>& attachments() const {
    return attachments_;
  }
  [[nodiscard]] const topo::Internet& internet() const { return net_; }
  [[nodiscard]] const SimulatorOptions& options() const { return options_; }

  /// Runs one BGP experiment from clean state.  `injections` must be sorted
  /// by time; `run_nonce` individualizes jitter (two runs with the same
  /// schedule and nonce are identical).  `scratch`, when given, seeds the
  /// run from recycled buffers (see SimScratch) — results are bit-identical
  /// with or without it.
  [[nodiscard]] RoutingState run(std::span<const Injection> injections,
                                 std::uint64_t run_nonce,
                                 SimScratch* scratch = nullptr) const;

  /// Convenience: announce the given attachments in schedule order with
  /// `spacing_s` between consecutive announcements.
  [[nodiscard]] RoutingState announce_sequence(
      std::span<const AttachmentIndex> order, double spacing_s,
      std::uint64_t run_nonce, SimScratch* scratch = nullptr) const;

  /// Converges `injections` from clean state — exactly like `run` — and
  /// freezes the result (RIBs, advertisement ledger, session clocks,
  /// arrival-seq counter) into a campaign-shared BaseState that any number
  /// of overlays can fork from.
  [[nodiscard]] BaseState converge_base(std::span<const Injection> injections,
                                        std::uint64_t run_nonce) const;

  /// Runs one experiment as a copy-on-write overlay over `base`: only the
  /// `delta` injections are propagated (their times are relative to the
  /// base's convergence horizon), and only ASes the delta actually touches
  /// copy their base page.  `run_nonce` individualizes the overlay's jitter
  /// exactly as in `run`; arrival sequencing continues from the base's
  /// counter, so re-advertisements take fresh arrival_seq values exactly as
  /// `apply_flaps` replays do.  `reage` gives the listed attachments'
  /// routes fresh arrival-seq values (preserving their relative order)
  /// before the delta propagates — the overlay equivalent of those routes
  /// having been announced LAST, which is how a two-leg order experiment
  /// derives leg 1 from leg 0 without replaying the whole schedule.  With
  /// `keep_continuation` the returned state stays resumable via
  /// `resume_overlay`.  The returned state must not outlive `base`.
  [[nodiscard]] RoutingState run_overlay(
      const BaseState& base, std::span<const Injection> delta,
      std::uint64_t run_nonce, SimScratch* scratch = nullptr,
      std::span<const AttachmentIndex> reage = {},
      bool keep_continuation = false, OverlayStats* stats = nullptr) const;

  /// Continues a kept-continuation state (`run_overlay`/`converge_base`
  /// lineage) with a further delta and/or re-aging pass under a fresh
  /// nonce.  Consumes `prior`; throws std::logic_error if `prior` was not
  /// built with `keep_continuation`.
  [[nodiscard]] RoutingState resume_overlay(
      RoutingState&& prior, std::span<const Injection> delta,
      std::uint64_t run_nonce, SimScratch* scratch = nullptr,
      std::span<const AttachmentIndex> reage = {},
      bool keep_continuation = false, OverlayStats* stats = nullptr) const;

 private:
  friend class RoutingState;
  friend class CompactState;  // freeze() reads adj_/host_attach_/attachments_
  friend struct SimScratch::Impl;
  friend struct BaseState::Impl;
  friend struct RoutingState::Cont;

  struct DedupNeighbor {
    AsId as;
    topo::Relation relation;  ///< what the neighbor is to this AS
    LinkId link;
  };

  struct Event;
  struct Advertised;
  /// Internal run-mode descriptor threading the base/resume/re-age inputs
  /// through the single engine implementation (defined in the .cc).
  struct OverlayRun;

  [[nodiscard]] RoutingState run_impl(std::span<const Injection> injections,
                                      std::uint64_t run_nonce,
                                      SimScratch* scratch,
                                      OverlayRun* overlay) const;

  [[nodiscard]] int neighbor_slot(AsId as, AsId neighbor) const;
  [[nodiscard]] int attachment_slot(AsId as, AttachmentIndex idx) const;

  const topo::Internet& net_;
  std::vector<OriginAttachment> attachments_;
  SimulatorOptions options_;
  PolicyEngine policy_;
  std::vector<std::vector<DedupNeighbor>> adj_;          ///< per AS
  std::vector<std::vector<AttachmentIndex>> host_attach_;  ///< per AS
};

}  // namespace anyopt::bgp
