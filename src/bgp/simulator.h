#pragma once
// Event-driven BGP propagation engine.
//
// Simulates the announcement of one anycast prefix from a set of origin
// attachments into the AS-level Internet.  Updates travel with per-link
// delays (geodesic latency plus exponential processing jitter), so the
// *arrival order* of announcements at every AS is well defined — which is
// what lets the reproduction exhibit the paper's central finding that
// deployed routers break ties by arrival order (§4.2).
//
// A run starts from clean state, processes a schedule of timed injections
// (announce/withdraw per attachment), and returns the converged routing
// state, from which catchments, forwarding paths and latencies can be
// resolved per client network.

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/decision.h"
#include "bgp/origin.h"
#include "bgp/policy.h"
#include "bgp/route.h"
#include "netbase/geo.h"
#include "netbase/ids.h"
#include "netbase/rng.h"
#include "topo/builder.h"

namespace anyopt::bgp {

/// Engine tuning knobs.
struct SimulatorOptions {
  /// Mean of the per-hop processing delay (ms).  This component is
  /// *deterministic per link* (hash-derived), modelling stable router/
  /// session characteristics: the same race between two update waves
  /// resolves the same way in every experiment, as observed on the real
  /// Internet (the paper's §4.2 flip behaviour is order-driven, not
  /// noise-driven).  Announce spacing must dwarf hops × (latency + this).
  double processing_delay_mean_ms = 15.0;
  /// Mean of the additional per-run exponential jitter (ms), modelling the
  /// genuinely random per-wave component of update propagation (MRAI timer
  /// randomization): races between announcements made simultaneously
  /// re-roll between experiments, while spaced announcements stay ordered.
  double run_jitter_mean_ms = 3000.0;
  /// Global ablation switch for the arrival-order tie-break; ANDed with the
  /// per-AS `prefers_oldest` flag.
  bool arrival_order_tiebreak = true;
  /// Safety valve: abort if a run exceeds this many events (0 = auto).
  std::size_t max_events = 0;
  /// Base seed; combined with the per-run nonce.
  std::uint64_t seed = 0xB6F;
};

/// Forwarding resolution result for one client network.
struct ResolvedPath {
  bool reachable = false;
  SiteId site;                       ///< catchment site
  AttachmentIndex attachment = kNoAttachment;
  std::vector<AsId> as_path;         ///< client AS ... host AS
  double one_way_ms = 0;             ///< client location -> site
};

/// One hop of a routing explanation: which route an AS picked and how deep
/// into the decision process it had to go to beat its rivals.
struct ExplainedHop {
  AsId as;
  std::size_t candidates = 0;        ///< present Adj-RIB-In entries
  std::vector<AsId> chosen_path;     ///< AS path of the winning entry
  AsId next;                         ///< next-hop AS; invalid = exits to origin
  /// The deepest decision step needed against any rival (kLocalPref if
  /// the route won on LOCAL_PREF alone, kOldestRoute if only the
  /// arrival-order tie-break separated it, ...).  kLocalPref when
  /// unopposed.
  DecisionStep hardest_step = DecisionStep::kLocalPref;
  bool multipath_split = false;      ///< flow-hash picked among equals
};

/// Full "why did this client end up at that site" trace (§2's manual
/// diagnosis, automated).
struct Explanation {
  bool reachable = false;
  SiteId site;
  std::vector<ExplainedHop> hops;

  /// True if any hop's decision needed the vendor arrival-order step —
  /// i.e. this client's catchment is announcement-order-dependent.
  [[nodiscard]] bool order_dependent() const;

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string to_string(const topo::Internet& net) const;
};

class Simulator;

/// Converged routing state of one run.  Valid only while the owning
/// Simulator is alive.
class RoutingState {
 public:
  /// The single best route installed at `as`, or nullptr if unreachable.
  [[nodiscard]] const RibEntry* best(AsId as) const;

  /// All RIB entries installed at `as` (present and not).
  [[nodiscard]] std::span<const RibEntry> rib(AsId as) const;

  /// Multipath-eligible equal-best entries at `as` (indices into rib).
  [[nodiscard]] const BestSet& best_set(AsId as) const;

  /// Walks the data plane from a client at `from` / `from_loc` to its
  /// catchment site.  `flow_hash` seeds per-flow multipath splitting.
  [[nodiscard]] ResolvedPath resolve(AsId from, const geo::Coordinates& from_loc,
                                     std::uint64_t flow_hash) const;

  /// Like `resolve`, but records per-hop decision diagnostics: which entry
  /// each AS picked, against how many candidates, and the deepest decision
  /// step that was needed.
  [[nodiscard]] Explanation explain(AsId from,
                                    const geo::Coordinates& from_loc,
                                    std::uint64_t flow_hash) const;

  /// Number of update events processed before convergence.
  [[nodiscard]] std::size_t events_processed() const { return events_; }

  /// Simulated time of the last processed event (seconds).
  [[nodiscard]] double converged_at_s() const { return last_event_s_; }

 private:
  friend class Simulator;
  struct AsState {
    std::vector<RibEntry> rib;  ///< slots: AS neighbors, then attachments
    BestSet best;
  };
  const Simulator* sim_ = nullptr;
  std::vector<AsState> as_;
  std::uint64_t run_nonce_ = 0;
  std::size_t events_ = 0;
  double last_event_s_ = 0;
};

/// The propagation engine.  Construct once per (Internet, attachment table);
/// `run` is const and cheap to call repeatedly with different schedules.
class Simulator {
 public:
  Simulator(const topo::Internet& net,
            std::vector<OriginAttachment> attachments,
            SimulatorOptions options = {});

  [[nodiscard]] const std::vector<OriginAttachment>& attachments() const {
    return attachments_;
  }
  [[nodiscard]] const topo::Internet& internet() const { return net_; }
  [[nodiscard]] const SimulatorOptions& options() const { return options_; }

  /// Runs one BGP experiment from clean state.  `injections` must be sorted
  /// by time; `run_nonce` individualizes jitter (two runs with the same
  /// schedule and nonce are identical).
  [[nodiscard]] RoutingState run(std::span<const Injection> injections,
                                 std::uint64_t run_nonce) const;

  /// Convenience: announce the given attachments in schedule order with
  /// `spacing_s` between consecutive announcements.
  [[nodiscard]] RoutingState announce_sequence(
      std::span<const AttachmentIndex> order, double spacing_s,
      std::uint64_t run_nonce) const;

 private:
  friend class RoutingState;

  struct DedupNeighbor {
    AsId as;
    topo::Relation relation;  ///< what the neighbor is to this AS
    LinkId link;
  };

  struct Event;

  [[nodiscard]] int neighbor_slot(AsId as, AsId neighbor) const;
  [[nodiscard]] int attachment_slot(AsId as, AttachmentIndex idx) const;

  const topo::Internet& net_;
  std::vector<OriginAttachment> attachments_;
  SimulatorOptions options_;
  PolicyEngine policy_;
  std::vector<std::vector<DedupNeighbor>> adj_;          ///< per AS
  std::vector<std::vector<AttachmentIndex>> host_attach_;  ///< per AS
};

}  // namespace anyopt::bgp
