#pragma once
// The BGP decision process (RFC 4271 §9.1.2 order), including the
// vendor-specific arrival-order ("oldest route") tie-break the paper
// identified between the IGP-cost and router-id steps (§4.2).

#include "bgp/route.h"

namespace anyopt::bgp {

/// Which steps of the decision process an AS applies.
struct DecisionOptions {
  /// If true, ties surviving the IGP-cost step are broken in favour of the
  /// route that was installed first (Cisco/Juniper default behaviour).
  bool prefer_oldest = true;
};

/// Step at which a comparison was decided (for diagnostics and the
/// ablation benchmark).
enum class DecisionStep : int {
  kLocalPref = 1,
  kAsPathLength = 2,
  kOrigin = 3,
  kMed = 4,
  kEbgpOverIbgp = 5,
  kIgpCost = 6,
  kOldestRoute = 7,
  kRouterId = 8,
  kNeighborAddress = 9,
};

/// Compares two candidate routes.  Returns negative if `a` is preferred,
/// positive if `b` is preferred; never returns 0 (the neighbor-address step
/// is a total order).  If `decided_at` is non-null it receives the step
/// that produced the decision.
[[nodiscard]] int compare_routes(const RibEntry& a, const RibEntry& b,
                                 const DecisionOptions& opts,
                                 DecisionStep* decided_at = nullptr);

/// True if `a` and `b` are tied through the IGP-cost step (eligible for
/// multipath splitting).
[[nodiscard]] bool multipath_equal(const RibEntry& a, const RibEntry& b);

}  // namespace anyopt::bgp
