#pragma once
// Structure-of-arrays snapshot of a converged routing state — the
// Internet-scale resolve layout (ROADMAP's `bgp-rib4`).
//
// The propagation engine mutates an array-of-structs RIB (one
// `std::vector<RibEntry>` per AS, each entry owning an AS-path vector):
// the right shape for event processing, the wrong one for the measurement
// plane, which at ~75k ASes resolves millions of targets against state
// that never changes again.  `CompactState::freeze` converts a converged
// `RoutingState` into flat parallel arrays:
//
//   * one CSR slot table over all ASes (a slot = one Adj-RIB-In entry;
//     slot order is exactly the engine's: AS neighbors, then attachments),
//   * per-slot field columns (`present`, `neighbor`, `origin_prepend`,
//     `med`, `attachment`) — the fields the data-plane walk reads —
//     packed at their natural widths,
//   * a path-interning pool: every present entry's AS path is deduplicated
//     into one shared arena and referenced by (offset, length), so the
//     heavily shared route tails of a converged Internet are stored once,
//   * the best-route state (`best` + multipath-eligible set) as its own
//     CSR pair,
//   * a frozen copy of the walk environment (per-slot link ingress
//     coordinates, host-attachment lists), making `resolve` a pure
//     array-scan with no pointer chasing into the simulator.
//
// Decision-time attributes (local_pref, arrival_seq, router ids, ...) are
// consumed during convergence and deliberately NOT retained: the frozen
// layout stores what resolution and persistence need, which is the whole
// compression story (see docs/SCALING.md for measured bytes/AS).
//
// `resolve` instantiates the exact walk shared with `RoutingState`
// (bgp/walk.h), including the memoization state machine, so censuses taken
// over either layout are bit-identical — enforced end to end by the
// layout-invariance suite.
//
// The tables are prefix-keyed for persistence: this reproduction announces
// a single anycast prefix, so `prefix_key` defaults to 0, but the codec
// carries the key so a store can hold per-prefix RIB records side by side.
// A decoded `CompactState` is a table artifact (store round trips, diffs):
// it is not bound to a topology and cannot resolve.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "bgp/simulator.h"
#include "bgp/walk.h"
#include "netbase/codec.h"
#include "netbase/geo.h"
#include "netbase/ids.h"
#include "netbase/result.h"

namespace anyopt::bgp {

/// \brief Frozen structure-of-arrays RIB + best-route state of one
///        converged run.  Immutable tables; `resolve` memoizes walks
///        exactly like `RoutingState::resolve` (same single-thread rule).
class CompactState {
 public:
  CompactState() = default;

  /// \brief Freezes `state`'s converged tables into the compact layout.
  ///
  /// Reads through the copy-on-write view, so overlay states freeze to the
  /// same tables a from-scratch convergence would.  Non-present slots are
  /// normalized (invalid neighbor, zero attributes, empty path): the
  /// encoding is a pure function of the converged routes, never of
  /// recycled-buffer residue.
  /// \param sim the simulator that ran the state (topology binding).
  /// \param state the converged routing state (unchanged).
  /// \return the frozen snapshot; independent of `state`'s lifetime, but
  ///         `sim` (and its topology) must outlive it.
  [[nodiscard]] static CompactState freeze(const Simulator& sim,
                                           const RoutingState& state);

  /// \brief Walks the data plane from a client, exactly as
  ///        `RoutingState::resolve` does (shared implementation, shared
  ///        memoization rules; bit-identical results).
  ///
  /// Robust to sparse id spaces: a client AS beyond the frozen range
  /// resolves as unreachable, and ids beyond the cache capacity take the
  /// plain (uncached) walk instead of indexing out of bounds.
  /// \param from client AS the walk starts at.
  /// \param from_loc client location (first-hop geodesic).
  /// \param flow_hash seeds per-flow multipath splitting.
  /// \return the resolved forwarding path.
  [[nodiscard]] ResolvedPath resolve(AsId from,
                                     const geo::Coordinates& from_loc,
                                     std::uint64_t flow_hash) const;

  /// \brief ASes in the frozen tables.
  [[nodiscard]] std::size_t as_count() const { return as_count_; }
  /// \brief Total RIB slots across all ASes.
  [[nodiscard]] std::size_t slot_count() const { return present_.size(); }
  /// \brief Interned unique AS paths (the dedup win; see SCALING.md).
  [[nodiscard]] std::size_t unique_paths() const { return unique_paths_; }
  /// \brief AsId words in the shared path pool.
  [[nodiscard]] std::size_t path_pool_words() const {
    return path_pool_.size();
  }
  /// \brief The persistence key of the prefix these tables describe.
  [[nodiscard]] std::uint64_t prefix_key() const { return prefix_key_; }

  /// \brief Per-state resolve-cache tallies (see `RoutingState::cache_hits`).
  [[nodiscard]] std::uint64_t cache_hits() const {
    return cache_hits_.n.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cache_misses() const {
    return cache_misses_.n.load(std::memory_order_relaxed);
  }

  /// \brief Heap bytes retained by the frozen tables (feeds the
  ///        `bytes.rib` gauge; walk-cache bytes excluded — those are
  ///        `resolve_cache_bytes`).
  [[nodiscard]] std::size_t retained_bytes() const;
  /// \brief Heap bytes retained by the walk cache (capacities).
  [[nodiscard]] std::size_t resolve_cache_bytes() const;

  /// \brief Caps the walk cache at `capacity` client-AS slots (0 disables
  ///        memoization).  Client ASes at or beyond the cap take plain
  ///        walks; results are bit-identical at any capacity — this is the
  ///        `--mem-budget-mb` degradation knob, not a correctness knob.
  void set_cache_capacity(std::size_t capacity);

  /// \brief Serializes the RIB tables (slots, fields, interned paths,
  ///        best-route CSR) as codec sections; the walk environment and
  ///        cache are run-local and not persisted.
  /// \param out destination writer (appended to).
  void encode(codec::Writer& out) const;

  /// \brief Strict inverse of `encode`.
  /// \param payload the encoded bytes.
  /// \return the decoded (table-only, unresolvable) state, or a
  ///         diagnostic on truncation/malformed sections.
  [[nodiscard]] static Result<CompactState> decode(
      std::span<const std::uint8_t> payload);

  /// \brief True when `other` carries byte-for-byte the same RIB tables
  ///        (everything `encode` persists).
  [[nodiscard]] bool rib_equals(const CompactState& other) const;

 private:
  struct View;  // the bgp/walk.h view over the SoA arrays (defined in .cc)

  /// Topology binding (null for decoded states): the simulator owns the
  /// attachment table and the Internet graph the walk reads.
  const Simulator* sim_ = nullptr;
  std::uint64_t run_nonce_ = 0;
  std::uint64_t prefix_key_ = 0;
  std::size_t as_count_ = 0;
  std::size_t unique_paths_ = 0;

  // --- RIB slot table (CSR over ASes; persisted). ---
  std::vector<std::uint32_t> slot_begin_;  ///< size as_count+1
  std::vector<std::uint32_t> adj_count_;   ///< neighbor slots per AS
  std::vector<std::uint8_t> present_;      ///< per slot
  std::vector<std::uint32_t> neighbor_;    ///< AsId raw value per slot
  std::vector<std::uint8_t> prepend_;      ///< per slot
  std::vector<std::uint32_t> med_;         ///< per slot
  std::vector<std::uint32_t> attachment_;  ///< AttachmentIndex per slot
  std::vector<std::uint32_t> path_off_;    ///< per slot, into path_pool_
  std::vector<std::uint16_t> path_len_;    ///< per slot
  std::vector<AsId> path_pool_;            ///< interned path arena

  // --- Best-route state (persisted). ---
  std::vector<std::int32_t> best_;          ///< best slot per AS, -1 = none
  std::vector<std::uint32_t> equal_begin_;  ///< size as_count+1
  std::vector<int> equal_;                  ///< multipath-eligible slots

  // --- Frozen walk environment (run-local; not persisted). ---
  std::vector<std::uint32_t> adj_begin_;      ///< size as_count+1
  std::vector<geo::Coordinates> link_where_;  ///< per neighbor slot
  std::vector<std::uint32_t> host_begin_;     ///< size as_count+1
  std::vector<AttachmentIndex> host_pool_;

  /// Movable relaxed counter: `CompactState` is returned by value from
  /// `freeze`, and the parallel resolve pass (measure's `resolve_pool`)
  /// bumps the tallies from several workers at once — a plain uint64 would
  /// be a data race, a bare std::atomic would delete the move.
  struct RelaxedCount {
    std::atomic<std::uint64_t> n{0};
    RelaxedCount() = default;
    RelaxedCount(RelaxedCount&& o) noexcept
        : n(o.n.load(std::memory_order_relaxed)) {}
    RelaxedCount& operator=(RelaxedCount&& o) noexcept {
      n.store(o.n.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  // --- Walk memoization (mutable; per-AS cache slots have one writer —
  //     the parallel resolve pass never splits an AS run across workers —
  //     and the tallies are relaxed atomics; see resolve). ---
  mutable std::vector<CachedWalk> cache_;
  mutable RelaxedCount cache_hits_;
  mutable RelaxedCount cache_misses_;
};

}  // namespace anyopt::bgp
