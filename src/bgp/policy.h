#pragma once
// Import and export policy (Gao-Rexford with optional deviations).
//
// Import assigns LOCAL_PREF.  Conforming ASes use the uniform bands
// customer(300) > peer(200) > provider(100); *deviant* ASes additionally
// rank routes by the tier-1 network they transit (cold-potato traffic
// engineering), which is the realistic mechanism by which the paper's
// sufficient conditions (§4.1) fail and preference cycles appear.
//
// Export follows valley-free rules: customer-learned routes go to all
// neighbors; peer- and provider-learned routes go to customers only.

#include <vector>

#include "bgp/route.h"
#include "netbase/ids.h"
#include "topo/builder.h"

namespace anyopt::bgp {

/// Policy evaluation context shared by all ASes in a run.
class PolicyEngine {
 public:
  explicit PolicyEngine(const topo::Internet& net);

  /// LOCAL_PREF assigned by `receiver` to a route learned from a neighbor
  /// with the given relationship, carrying `as_path` (sender first, origin
  /// elided).  Deviant ASes add a bounded, tier-1-dependent bonus that never
  /// crosses relationship bands.
  [[nodiscard]] int import_local_pref(AsId receiver,
                                      topo::Relation learned_from,
                                      const std::vector<AsId>& as_path) const;

  /// Whether `owner` may export a route learned from `learned_from` to a
  /// neighbor that is `target_is` to it (valley-free export rule).
  [[nodiscard]] static bool may_export(topo::Relation learned_from,
                                       topo::Relation target_is);

  /// The tier-1 AS closest to the origin on `as_path`, or -1 if none.
  /// (For tier-1-only anycast announcements this is the hosting provider.)
  [[nodiscard]] int origin_side_tier1_index(
      const std::vector<AsId>& as_path) const;

 private:
  const topo::Internet& net_;
  std::vector<int> tier1_index_;  ///< AsId -> tier-1 slot, or -1
};

}  // namespace anyopt::bgp
