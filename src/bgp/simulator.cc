#include "bgp/simulator.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "netbase/telemetry.h"

namespace anyopt::bgp {

namespace {

/// Pre-resolved simulator metrics (one registry lookup per process).
/// Decision-step tallies count, per route comparison run by the decision
/// process, the step that produced the verdict — the paper's §4.2 story
/// (how often the vendor arrival-order step was load-bearing) read straight
/// off a campaign.
struct SimMetrics {
  telemetry::Counter* runs;
  telemetry::Counter* events;
  telemetry::Counter* withdraws;
  telemetry::Counter* scratch_reuse;
  telemetry::Gauge* queue_peak;
  telemetry::Histogram* convergence_s;
  telemetry::Histogram* events_per_run;
  std::array<telemetry::Counter*, 10> decision_step;

  static const SimMetrics& get() {
    static const SimMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      SimMetrics out{&reg.counter("bgp.sim.runs"),
                     &reg.counter("bgp.sim.events"),
                     &reg.counter("bgp.sim.withdraw_events"),
                     &reg.counter("sim.scratch_reuse"),
                     &reg.gauge("bgp.sim.queue_peak"),
                     &reg.histogram("bgp.sim.convergence_s"),
                     &reg.histogram("bgp.sim.events_per_run"),
                     {}};
      constexpr const char* kStepNames[10] = {
          nullptr,
          "bgp.decision.local_pref",
          "bgp.decision.as_path_length",
          "bgp.decision.origin",
          "bgp.decision.med",
          "bgp.decision.ebgp_over_ibgp",
          "bgp.decision.igp_cost",
          "bgp.decision.oldest_route",
          "bgp.decision.router_id",
          "bgp.decision.neighbor_address",
      };
      out.decision_step[0] = nullptr;
      for (int s = 1; s < 10; ++s) {
        out.decision_step[s] = &reg.counter(kStepNames[s]);
      }
      return out;
    }();
    return m;
  }
};

/// Pre-resolved forwarding-cache metrics (one registry lookup per process).
struct ResolveMetrics {
  telemetry::Counter* cache_hit;
  telemetry::Counter* cache_miss;

  static const ResolveMetrics& get() {
    static const ResolveMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return ResolveMetrics{&reg.counter("bgp.resolve.cache_hit"),
                            &reg.counter("bgp.resolve.cache_miss")};
    }();
    return m;
  }
};

/// Pre-resolved overlay metrics (one registry lookup per process).
struct OverlayMetrics {
  telemetry::Counter* forks;
  telemetry::Counter* copied_as;
  telemetry::Counter* delta_events;

  static const OverlayMetrics& get() {
    static const OverlayMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return OverlayMetrics{&reg.counter("sim.overlay.forks"),
                            &reg.counter("sim.overlay.copied_as"),
                            &reg.counter("sim.overlay.delta_events")};
    }();
    return m;
  }
};

/// Pre-resolved retained-bytes gauge for recycled scratch arenas (see
/// netbase/resmon.h for the `bytes.*` family the sampler exports).
telemetry::Gauge& scratch_bytes_gauge() {
  static telemetry::Gauge& g =
      telemetry::Registry::global().gauge("bytes.sim_scratch");
  return g;
}

}  // namespace

struct Simulator::Event {
  double time_s = 0;
  std::uint64_t seq = 0;  ///< FIFO tie-break for equal timestamps
  AsId to;
  UpdateMsg msg;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

/// Last advertisement sent per (AS, neighbor slot); `valid == false` = none.
struct Simulator::Advertised {
  bool valid = false;
  std::vector<AsId> path;
  std::uint8_t prepend = 0;
};

/// The recycled buffers behind a SimScratch.  Everything here is storage
/// only — each run resets whatever it borrows before reading it, so a
/// scratch can hop between simulators (even differently sized worlds).
struct SimScratch::Impl {
  std::vector<RoutingState::AsState> as_state;          ///< per-AS RIBs
  std::vector<RoutingState::CachedWalk> walks;          ///< forwarding cache
  std::vector<Simulator::Event> events;                 ///< queue container
  std::vector<double> session_clock;
  std::vector<std::vector<Simulator::Advertised>> advertised;
  /// Bytes last reported into the `bytes.sim_scratch` gauge; the delta
  /// discipline keeps the gauge a live total across all worker arenas.
  std::int64_t reported_bytes = 0;

  ~Impl() { report(0); }

  /// Replaces this arena's contribution to the retained-bytes gauge.
  void report(std::int64_t now_bytes) {
    if (now_bytes != reported_bytes) {
      scratch_bytes_gauge().add(now_bytes - reported_bytes);
      reported_bytes = now_bytes;
    }
  }

  /// Approximate heap bytes this arena currently retains (capacities of
  /// the dominant buffers; nested AS-path storage included because it is
  /// the bulk of a recycled RIB).
  [[nodiscard]] std::int64_t retained_bytes() const {
    std::size_t b = as_state.capacity() * sizeof(RoutingState::AsState) +
                    walks.capacity() * sizeof(RoutingState::CachedWalk) +
                    events.capacity() * sizeof(Simulator::Event) +
                    session_clock.capacity() * sizeof(double) +
                    advertised.capacity() * sizeof(advertised[0]);
    for (const RoutingState::AsState& s : as_state) {
      b += s.rib.capacity() * sizeof(RibEntry) +
           s.best.equal_best.capacity() * sizeof(int);
      for (const RibEntry& e : s.rib) {
        b += e.as_path.capacity() * sizeof(AsId);
      }
    }
    for (const RoutingState::CachedWalk& w : walks) {
      b += w.as_path.capacity() * sizeof(AsId) +
           w.hop_ms.capacity() * sizeof(double);
    }
    for (const std::vector<Simulator::Advertised>& row : advertised) {
      b += row.capacity() * sizeof(Simulator::Advertised);
      for (const Simulator::Advertised& adv : row) {
        b += adv.path.capacity() * sizeof(AsId);
      }
    }
    return static_cast<std::int64_t>(b);
  }
};

/// Run continuation: everything beyond the RIBs a resumed run needs — the
/// per-neighbor advertisement ledger (with its COW flags when the run was
/// an overlay), the per-session delivery clocks and the arrival-seq
/// high-water mark.
struct RoutingState::Cont {
  std::vector<std::vector<Simulator::Advertised>> advertised;
  std::vector<std::uint8_t> adv_copied;  ///< per-AS COW flags; empty = own
  std::vector<double> session_clock;
  std::uint64_t arrival_seq = 0;
};

RoutingState::RoutingState() = default;
RoutingState::~RoutingState() = default;
RoutingState::RoutingState(RoutingState&&) noexcept = default;
RoutingState& RoutingState::operator=(RoutingState&&) noexcept = default;

/// The frozen buffers of a campaign-shared base.  Immutable once
/// `converge_base` returns; overlays only ever read them.
struct BaseState::Impl {
  std::vector<RoutingState::AsState> as;
  std::vector<std::vector<Simulator::Advertised>> advertised;
  std::vector<double> session_clock;
  std::uint64_t arrival_seq = 0;
  double horizon_s = 0;
  std::size_t events = 0;
};

BaseState::BaseState() : impl_(std::make_unique<Impl>()) {}
BaseState::~BaseState() = default;
BaseState::BaseState(BaseState&&) noexcept = default;
BaseState& BaseState::operator=(BaseState&&) noexcept = default;

std::size_t BaseState::events() const { return impl_->events; }

double BaseState::converged_at_s() const { return impl_->horizon_s; }

SimScratch::SimScratch() : impl_(std::make_unique<Impl>()) {}
SimScratch::~SimScratch() = default;
SimScratch::SimScratch(SimScratch&&) noexcept = default;
SimScratch& SimScratch::operator=(SimScratch&&) noexcept = default;

void SimScratch::recycle(RoutingState&& state) {
  impl_->as_state = std::move(state.as_);
  impl_->walks = std::move(state.walk_cache_);
  if (state.cont_ != nullptr) {
    // A kept continuation owns its own ledger/clock storage; reclaim it too.
    impl_->advertised = std::move(state.cont_->advertised);
    impl_->session_clock = std::move(state.cont_->session_clock);
    state.cont_.reset();
  }
  state.as_.clear();
  state.walk_cache_.clear();
  state.copied_.clear();
  state.base_ = nullptr;
  state.cache_hits_ = 0;
  state.cache_misses_ = 0;
  // Retained-bytes accounting: the recycle point is where the arena's
  // footprint settles, so the walk (same order of work as the per-run
  // buffer reset) only happens when telemetry is on.
  if (telemetry::enabled()) impl_->report(impl_->retained_bytes());
}

Simulator::Simulator(const topo::Internet& net,
                     std::vector<OriginAttachment> attachments,
                     SimulatorOptions options)
    : net_(net),
      attachments_(std::move(attachments)),
      options_(options),
      policy_(net) {
  const std::size_t n = net_.graph.as_count();
  adj_.resize(n);
  host_attach_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& nbrs = net_.graph.nodes()[i].neighbors;
    auto& out = adj_[i];
    out.reserve(nbrs.size());
    for (const topo::Neighbor& nb : nbrs) {
      const bool dup = std::any_of(
          out.begin(), out.end(),
          [&](const DedupNeighbor& d) { return d.as == nb.as; });
      if (!dup) out.push_back({nb.as, nb.relation, nb.link});
    }
    std::sort(out.begin(), out.end(),
              [](const DedupNeighbor& a, const DedupNeighbor& b) {
                return a.as < b.as;
              });
  }
  for (AttachmentIndex i = 0; i < attachments_.size(); ++i) {
    host_attach_[attachments_[i].neighbor.value()].push_back(i);
  }
}

int Simulator::neighbor_slot(AsId as, AsId neighbor) const {
  const auto& out = adj_[as.value()];
  const auto it = std::lower_bound(
      out.begin(), out.end(), neighbor,
      [](const DedupNeighbor& d, AsId target) { return d.as < target; });
  if (it == out.end() || it->as != neighbor) return -1;
  return static_cast<int>(it - out.begin());
}

int Simulator::attachment_slot(AsId as, AttachmentIndex idx) const {
  const auto& list = host_attach_[as.value()];
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i] == idx) {
      return static_cast<int>(adj_[as.value()].size() + i);
    }
  }
  return -1;
}

/// Mode descriptor for one engine run: exactly one of clean (both `base`
/// null and `resuming` false), forked overlay (`base` set), or resumed
/// continuation (`resuming`, `resume` holds the prior state).
struct Simulator::OverlayRun {
  const BaseState* base = nullptr;  ///< fork source; null unless forking
  RoutingState resume;              ///< moved-in prior state when resuming
  bool resuming = false;
  std::span<const AttachmentIndex> reage;
  bool keep_continuation = false;
  OverlayStats* stats = nullptr;
};

RoutingState Simulator::run(std::span<const Injection> injections,
                            std::uint64_t run_nonce,
                            SimScratch* scratch) const {
  return run_impl(injections, run_nonce, scratch, nullptr);
}

RoutingState Simulator::run_impl(std::span<const Injection> injections,
                                 std::uint64_t run_nonce, SimScratch* scratch,
                                 OverlayRun* overlay) const {
  // One relaxed load up front; every instrumentation site below branches on
  // this cached bool, so the disabled path adds no clocks and no atomics.
  const bool telem = telemetry::enabled();
  telemetry::ScopedTimer span(
      "bgp.sim.run", "bgp", nullptr,
      telem && telemetry::tracing()
          ? telemetry::make_args("nonce", run_nonce)
          : std::string{});
  std::size_t queue_peak = 0;
  std::array<std::uint64_t, 10> step_tally{};

  const std::size_t n = net_.graph.as_count();
  SimScratch::Impl* sc = scratch != nullptr ? scratch->impl_.get() : nullptr;

  const bool fork = overlay != nullptr && overlay->base != nullptr;
  const bool resuming = overlay != nullptr && overlay->resuming;
  const bool keep = overlay != nullptr && overlay->keep_continuation;

  RoutingState state;
  const BaseState::Impl* bs = nullptr;
  if (resuming) {
    state = std::move(overlay->resume);
    if (state.cont_ == nullptr) {
      throw std::logic_error(
          "resume_overlay: prior state was not built with keep_continuation");
    }
    bs = state.base_ != nullptr ? state.base_->impl_.get() : nullptr;
  } else if (fork) {
    bs = overlay->base->impl_.get();
    state.base_ = overlay->base;
  }
  state.sim_ = this;
  state.run_nonce_ = run_nonce;
  state.events_ = 0;  // counts THIS phase's events (delta-only for overlays)
  state.cache_hits_ = 0;  // per-state tallies restart with the new tables
  state.cache_misses_ = 0;
  // Overlay deltas are scheduled relative to where the prior phase left off.
  const double t_base = resuming ? state.last_event_s_
                        : fork   ? bs->horizon_s
                                 : 0.0;
  if (fork) state.last_event_s_ = t_base;

  // Seed per-AS RIB storage from the scratch when one is supplied.  Reused
  // entries keep their heap blocks (the AS-path vectors are the dominant
  // allocation of a clean run) but are reset to the not-present state the
  // engine expects; nothing below ever reads a field of a non-present
  // entry, so stale bytes cannot leak into results.  A forked overlay also
  // borrows the recycled pages but leaves them stale: each page is either
  // copy-assigned from the base on first write or never read at all.
  const bool reused = !resuming && sc != nullptr && !sc->as_state.empty();
  if (reused) {
    state.as_ = std::move(sc->as_state);
    sc->as_state.clear();
  }
  if (!resuming) state.as_.resize(n);
  if (fork) {
    state.copied_.assign(n, 0);
  } else if (!resuming) {
    state.copied_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      auto& as_state = state.as_[i];
      as_state.rib.resize(adj_[i].size() + host_attach_[i].size());
      if (reused) {
        for (RibEntry& entry : as_state.rib) {
          entry.present = false;
          entry.as_path.clear();
        }
        as_state.best.best = -1;
        as_state.best.equal_best.clear();
      }
    }
  }
  if (options_.resolution_cache) {
    // A resumed state resets its own cache in place (the converged tables
    // are about to change); other modes borrow the scratch's.
    if (!resuming && sc != nullptr) {
      state.walk_cache_ = std::move(sc->walks);
      sc->walks.clear();
    }
    state.walk_cache_.resize(n);
    for (RoutingState::CachedWalk& walk : state.walk_cache_) {
      walk.state = RoutingState::CachedWalk::State::kUnknown;
      walk.crossed = false;
      walk.as_path.clear();
      walk.hop_ms.clear();
    }
  }
  if (telem && reused) SimMetrics::get().scratch_reuse->add(1);

  Rng rng{options_.seed ^ (0x9e3779b97f4a7c15ULL * (run_nonce + 1))};
  // Deterministic per-session processing delay: stable across runs so BGP
  // races resolve consistently between repeated experiments.
  const auto session_delay_ms = [this](std::uint64_t key) {
    std::uint64_t h = (key + 1) * 0x9e3779b97f4a7c15ULL ^ options_.seed;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
    const double u =
        (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;  // (0, 1]
    return -options_.processing_delay_mean_ms * std::log(u);
  };
  std::uint64_t event_seq = 0;
  // Arrival sequencing continues across fork/resume so the oldest-route
  // tie-break stays bit-exact: every route installed by an overlay delta is
  // strictly newer than every base route, exactly as if the delta had been
  // injected at the end of one long clean run.
  std::uint64_t arrival_seq = fork       ? bs->arrival_seq
                              : resuming ? state.cont_->arrival_seq
                                         : 0;
  // The queue adapter exposes its container so a scratch can reclaim the
  // storage once the run drains it.
  struct EventQueue
      : std::priority_queue<Event, std::vector<Event>, std::greater<>> {
    explicit EventQueue(std::vector<Event>&& storage) {
      storage.clear();
      c = std::move(storage);
    }
    [[nodiscard]] std::vector<Event> reclaim() && { return std::move(c); }
  };
  EventQueue queue(sc != nullptr ? std::move(sc->events)
                                 : std::vector<Event>{});
  if (sc != nullptr) sc->events.clear();

  // BGP runs over TCP: updates on one session are delivered IN ORDER.
  // Each directed session keeps a delivery clock; a later update can never
  // arrive before an earlier one, or a stale announcement could overwrite
  // its own replacement at the receiver.
  std::vector<double> session_clock_local;
  std::vector<double>& session_clock =
      (sc != nullptr && !keep) ? sc->session_clock : session_clock_local;
  if (fork) {
    session_clock = bs->session_clock;  // FIFO continuity across the fork
  } else if (resuming) {
    session_clock = std::move(state.cont_->session_clock);
  } else {
    session_clock.assign(net_.graph.link_count() * 2 + attachments_.size(),
                         -1.0);
  }
  const auto fifo = [&session_clock](std::size_t session, double t) {
    if (t <= session_clock[session]) t = session_clock[session] + 1e-9;
    session_clock[session] = t;
    return t;
  };

  // Last advertisement sent per (AS, neighbor slot); `valid` false = none.
  // advertised[as][slot] holds the as_path sent, with a validity flag.
  std::vector<std::vector<Advertised>> advertised_local;
  std::vector<std::vector<Advertised>>& advertised =
      (sc != nullptr && !keep) ? sc->advertised : advertised_local;
  std::vector<std::uint8_t> adv_copied;  // ledger COW flags (bs != nullptr)
  if (fork) {
    // Rows are copy-assigned from the base ledger on first write; stale
    // recycled contents are never read (adv_copied gates every access).
    advertised.resize(n);
    adv_copied.assign(n, 0);
  } else if (resuming) {
    advertised = std::move(state.cont_->advertised);
    adv_copied = std::move(state.cont_->adv_copied);
  } else {
    advertised.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      advertised[i].resize(adj_[i].size());
      for (Advertised& adv : advertised[i]) {
        adv.valid = false;
        adv.path.clear();
      }
    }
  }

  std::size_t copied_now = 0;
  // Copy-on-write page accessors: reads of untouched ASes go to the base,
  // the first write deep-copies the page (reusing any recycled capacity).
  // With no base (`bs == nullptr`) both are plain pass-throughs.
  const auto state_page = [&](std::size_t i) -> RoutingState::AsState& {
    if (bs != nullptr && state.copied_[i] == 0) {
      state.as_[i] = bs->as[i];
      state.copied_[i] = 1;
      ++copied_now;
    }
    return state.as_[i];
  };
  const auto adv_page = [&](std::size_t i) -> std::vector<Advertised>& {
    if (bs != nullptr && adv_copied[i] == 0) {
      advertised[i] = bs->advertised[i];
      adv_copied[i] = 1;
    }
    return advertised[i];
  };

  // Re-runs best-path selection at `u` and exports the diff owed to each
  // neighbor against what was last sent, scheduling updates/withdraws at
  // `now_s`.  Shared by the event loop and the re-aging pass.
  const auto redecide_and_export = [&](AsId u, double now_s) {
    const topo::AsNode& node = net_.graph.node(u);
    auto& as_state = state_page(u.value());

    // --- Re-run the decision process. ---
    DecisionOptions dopts;
    dopts.prefer_oldest =
        options_.arrival_order_tiebreak && node.prefers_oldest;
    BestSet new_best;
    DecisionStep decided_at = DecisionStep::kLocalPref;
    for (int i = 0; i < static_cast<int>(as_state.rib.size()); ++i) {
      if (!as_state.rib[i].present) continue;
      if (new_best.best < 0) {
        new_best.best = i;
        continue;
      }
      if (compare_routes(as_state.rib[i], as_state.rib[new_best.best], dopts,
                         telem ? &decided_at : nullptr) < 0) {
        new_best.best = i;
      }
      if (telem) ++step_tally[static_cast<int>(decided_at)];
    }
    if (new_best.best >= 0) {
      for (int i = 0; i < static_cast<int>(as_state.rib.size()); ++i) {
        if (as_state.rib[i].present &&
            multipath_equal(as_state.rib[i], as_state.rib[new_best.best])) {
          new_best.equal_best.push_back(i);
        }
      }
    }
    as_state.best = std::move(new_best);

    // --- Export: diff the advertisement owed to each neighbor against
    // what was last sent, and schedule updates/withdraws. ---
    const RibEntry* best =
        as_state.best.best >= 0 ? &as_state.rib[as_state.best.best] : nullptr;
    auto& adv_row = adv_page(u.value());
    for (std::size_t i = 0; i < adj_[u.value()].size(); ++i) {
      const DedupNeighbor& nb = adj_[u.value()][i];
      bool send_path = false;
      std::vector<AsId> path;
      if (best != nullptr &&
          PolicyEngine::may_export(best->learned_from, nb.relation) &&
          nb.as != best->neighbor) {  // split horizon toward the sender
        path.reserve(best->as_path.size() + 1);
        path.push_back(u);
        path.insert(path.end(), best->as_path.begin(), best->as_path.end());
        send_path = true;
      }
      Advertised& adv = adv_row[i];
      if (send_path) {
        if (adv.valid && adv.path == path &&
            adv.prepend == best->origin_prepend) {
          continue;  // no change
        }
        adv.valid = true;
        adv.path = path;
        adv.prepend = best->origin_prepend;
      } else {
        if (!adv.valid) continue;  // nothing to withdraw
        adv.valid = false;
        adv.path.clear();
      }
      const topo::AsLink& link = net_.graph.link(nb.link);
      // Update propagation across the AS from where the route entered to
      // this egress.  iBGP rides the backbone at line rate, so only a
      // fraction of the geodesic delay differentiates egress ports — large
      // enough that changing the injection PoP shifts a few downstream
      // races (the §4.3 representative-site effect), small enough that
      // same-AS announcement order has no catchment impact (§4.2).
      constexpr double kIbgpPropagationScale = 0.15;
      const double intra_ms =
          best != nullptr
              ? kIbgpPropagationScale *
                    geo::one_way_latency_ms(best->at, link.where)
              : 0.0;
      Event out;
      out.time_s = fifo(
          std::size_t{nb.link.value()} * 2 +
              (net_.graph.link(nb.link).a == u ? 0 : 1),
          now_s +
              (intra_ms + link.latency_ms +
               session_delay_ms((std::uint64_t{nb.link.value()} << 20) ^
                                u.value()) +
               rng.exponential(options_.run_jitter_mean_ms)) /
                  1e3);
      out.seq = event_seq++;
      out.to = nb.as;
      out.msg.withdraw = !send_path;
      out.msg.sender = u;
      // Route lineage: receivers record which origin session the path
      // descends from, which is what lets an overlay find every route
      // affected by re-aging an attachment.  The decision process only
      // consults `attachment` between same-address (origin) entries, so
      // propagating it changes no clean-run outcome.
      out.msg.attachment = send_path ? best->attachment : kNoAttachment;
      if (send_path) {
        out.msg.as_path = std::move(path);
        out.msg.origin_prepend = best->origin_prepend;
      }
      out.msg.sender_router_id = node.router_id;
      out.msg.at = link.where;
      queue.push(std::move(out));
      if (telem && queue.size() > queue_peak) queue_peak = queue.size();
    }
  };

  // Schedule origin injections.
  double last_time = -1;
  for (const Injection& inj : injections) {
    if (inj.time_s < last_time) {
      throw std::invalid_argument("injections must be sorted by time");
    }
    last_time = inj.time_s;
    assert(inj.attachment < attachments_.size());
    const OriginAttachment& at = attachments_[inj.attachment];
    if (at.filtered && !inj.withdraw) continue;  // dropped by their import policy
    Event ev;
    ev.time_s = fifo(net_.graph.link_count() * 2 + inj.attachment,
                     (t_base + inj.time_s) +
                         (at.latency_ms +
                          session_delay_ms(0xA77AC4ULL + inj.attachment) +
                          rng.exponential(options_.run_jitter_mean_ms)) /
                             1e3);
    ev.seq = event_seq++;
    ev.to = at.neighbor;
    ev.msg.withdraw = inj.withdraw;
    ev.msg.sender = AsId{};  // invalid => origin
    ev.msg.attachment = inj.attachment;
    ev.msg.origin_prepend = inj.prepend;
    ev.msg.sender_router_id = 0;
    ev.msg.at = at.where;
    queue.push(std::move(ev));
    if (telem && queue.size() > queue_peak) queue_peak = queue.size();
  }

  // --- Re-aging pass (overlay order-leg derivation). ---
  if (overlay != nullptr && !overlay->reage.empty()) {
    // Give every installed route descending from the listed attachments a
    // fresh arrival_seq — preserving their relative order but making them
    // globally newest, exactly what those routes would carry had their
    // attachments announced LAST.  Each rewritten entry's AS then re-runs
    // its decision process; only genuine best-path flips export, so the
    // cascade that follows is the true propagation cost of the order
    // change, not a replay of the whole schedule.
    std::vector<std::uint8_t> in_set(attachments_.size(), 0);
    for (const AttachmentIndex a : overlay->reage) in_set[a] = 1;
    struct Reaged {
      std::uint64_t old_seq;
      std::uint32_t as;
      std::uint32_t slot;
    };
    std::vector<Reaged> refs;
    std::vector<std::uint8_t> affected(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const RoutingState::AsState& s =
          (bs != nullptr && state.copied_[i] == 0) ? bs->as[i] : state.as_[i];
      for (std::size_t j = 0; j < s.rib.size(); ++j) {
        const RibEntry& e = s.rib[j];
        if (e.present && e.attachment != kNoAttachment &&
            in_set[e.attachment] != 0) {
          refs.push_back({e.arrival_seq, static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j)});
          affected[i] = 1;
        }
      }
    }
    std::sort(refs.begin(), refs.end(),
              [](const Reaged& a, const Reaged& b) {
                return a.old_seq < b.old_seq;  // install seqs are unique
              });
    for (const Reaged& r : refs) {
      RibEntry& e = state_page(r.as).rib[r.slot];
      e.arrival_seq = ++arrival_seq;
      e.arrival_time_s = t_base;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (affected[i] != 0) {
        redecide_and_export(AsId{static_cast<std::uint32_t>(i)}, t_base);
      }
    }
  }

  const std::size_t max_events =
      options_.max_events != 0
          ? options_.max_events
          : 500 * std::max<std::size_t>(net_.graph.link_count(), 1);

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (++state.events_ > max_events) {
      // Diagnostics go through the event sink, never stdio (library code).
      if (telem) {
        telemetry::Registry::global().instant(
            "bgp.sim.event_budget_exceeded", "bgp",
            telemetry::make_args("max_events", max_events));
      }
      throw std::runtime_error("BGP simulation exceeded event budget — "
                               "policy oscillation?");
    }
    state.last_event_s_ = ev.time_s;
    const AsId u = ev.to;
    const topo::AsNode& node = net_.graph.node(u);
    auto& as_state = state_page(u.value());

    // --- Install / withdraw into the right Adj-RIB-In slot. ---
    int slot = -1;
    topo::Relation learned_from = topo::Relation::kProvider;
    if (!ev.msg.sender.valid()) {
      slot = attachment_slot(u, ev.msg.attachment);
      assert(slot >= 0);
      // The origin is this AS's customer (transit attachment) or peer.
      const OriginAttachment& at = attachments_[ev.msg.attachment];
      learned_from = at.neighbor_is == topo::Relation::kProvider
                         ? topo::Relation::kCustomer
                         : topo::Relation::kPeer;
    } else {
      slot = neighbor_slot(u, ev.msg.sender);
      assert(slot >= 0);
      learned_from = adj_[u.value()][slot].relation;
    }

    RibEntry& entry = as_state.rib[slot];
    if (ev.msg.withdraw) {
      if (!entry.present) continue;  // stale withdraw
      entry.present = false;
      // A processed withdrawal re-runs best-path selection below; a later
      // re-advertisement of the same session then re-enters with a NEW
      // arrival_seq, which is what lets a flap permanently change
      // arrival-order ties (§4.2).
      if (telem) SimMetrics::get().withdraws->add(1);
    } else {
      // Loop prevention: drop announcements already carrying us.
      if (std::find(ev.msg.as_path.begin(), ev.msg.as_path.end(), u) !=
          ev.msg.as_path.end()) {
        continue;
      }
      const bool same_content = entry.present &&
                                entry.as_path == ev.msg.as_path &&
                                entry.origin_prepend == ev.msg.origin_prepend;
      entry.present = true;
      entry.neighbor = ev.msg.sender;
      entry.learned_from = learned_from;
      entry.attachment = ev.msg.attachment;
      entry.as_path = ev.msg.as_path;
      entry.origin_prepend = ev.msg.origin_prepend;
      // MED is non-transitive: it is only seen by the AS the origin
      // session terminates in, never re-advertised.
      entry.med = ev.msg.sender.valid()
                      ? 0
                      : attachments_[ev.msg.attachment].med;
      entry.local_pref =
          policy_.import_local_pref(u, learned_from, ev.msg.as_path);
      // Interior (hot-potato) cost to this next hop: stable per session,
      // deterministically derived so re-runs and reversed-order experiments
      // see identical costs (only genuine cost ties reach the arrival-order
      // step, §4.2).
      entry.nexthop_igp_cost = 0;
      if (node.igp_spread > 0) {
        std::uint64_t h = 0x9e3779b97f4a7c15ULL * (u.value() + 1);
        h ^= ev.msg.sender.valid()
                 ? 0xbf58476d1ce4e5b9ULL * (ev.msg.sender.value() + 2)
                 : 0x94d049bb133111ebULL * (ev.msg.attachment + 2);
        h ^= h >> 31;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        entry.nexthop_igp_cost =
            static_cast<int>(h % static_cast<std::uint64_t>(
                                     node.igp_spread + 1));
      }
      if (!same_content) {
        entry.arrival_seq = ++arrival_seq;
        entry.arrival_time_s = ev.time_s;
      }
      entry.neighbor_router_id = ev.msg.sender_router_id;
      entry.at = ev.msg.at;
    }

    redecide_and_export(u, ev.time_s);
  }
  // Hand the drained queue container back to the scratch for the next run.
  if (sc != nullptr) sc->events = std::move(queue).reclaim();
  if (keep) {
    state.cont_ = std::make_unique<RoutingState::Cont>();
    state.cont_->advertised = std::move(advertised);
    state.cont_->adv_copied = std::move(adv_copied);
    state.cont_->session_clock = std::move(session_clock);
    state.cont_->arrival_seq = arrival_seq;
  } else {
    if (resuming) state.cont_.reset();  // consumed
    if (sc != nullptr) {
      // Overlay phases keep their ledger/clock storage local (the scratch's
      // copies must survive the run); donate it back instead of freeing.
      if (&advertised == &advertised_local) {
        sc->advertised = std::move(advertised_local);
      }
      if (&session_clock == &session_clock_local) {
        sc->session_clock = std::move(session_clock_local);
      }
    }
  }
  if (telem) {
    const SimMetrics& m = SimMetrics::get();
    m.runs->add(1);
    m.events->add(state.events_);
    m.events_per_run->record(static_cast<double>(state.events_));
    m.queue_peak->update_max(static_cast<std::int64_t>(queue_peak));
    m.convergence_s->record(state.last_event_s_);
    for (int s = 1; s < 10; ++s) {
      if (step_tally[s] != 0) m.decision_step[s]->add(step_tally[s]);
    }
  }
  if (fork || resuming) {
    if (overlay->stats != nullptr) {
      overlay->stats->copied_as += copied_now;
      overlay->stats->delta_events += state.events_;
    }
    if (telem) {
      const OverlayMetrics& om = OverlayMetrics::get();
      om.forks->add(1);
      om.copied_as->add(copied_now);
      om.delta_events->add(state.events_);
    }
  }
  return state;
}

RoutingState Simulator::announce_sequence(
    std::span<const AttachmentIndex> order, double spacing_s,
    std::uint64_t run_nonce, SimScratch* scratch) const {
  std::vector<Injection> schedule;
  schedule.reserve(order.size());
  double t = 0;
  for (const AttachmentIndex a : order) {
    schedule.push_back(Injection{t, a, false});
    t += spacing_s;
  }
  return run(schedule, run_nonce, scratch);
}

BaseState Simulator::converge_base(std::span<const Injection> injections,
                                   std::uint64_t run_nonce) const {
  OverlayRun overlay;
  overlay.keep_continuation = true;
  RoutingState state = run_impl(injections, run_nonce, nullptr, &overlay);
  BaseState base;
  BaseState::Impl& b = *base.impl_;
  b.as = std::move(state.as_);
  b.advertised = std::move(state.cont_->advertised);
  b.session_clock = std::move(state.cont_->session_clock);
  b.arrival_seq = state.cont_->arrival_seq;
  b.horizon_s = state.last_event_s_;
  b.events = state.events_;
  return base;
}

RoutingState Simulator::run_overlay(const BaseState& base,
                                    std::span<const Injection> delta,
                                    std::uint64_t run_nonce,
                                    SimScratch* scratch,
                                    std::span<const AttachmentIndex> reage,
                                    bool keep_continuation,
                                    OverlayStats* stats) const {
  OverlayRun overlay;
  overlay.base = &base;
  overlay.reage = reage;
  overlay.keep_continuation = keep_continuation;
  overlay.stats = stats;
  return run_impl(delta, run_nonce, scratch, &overlay);
}

RoutingState Simulator::resume_overlay(RoutingState&& prior,
                                       std::span<const Injection> delta,
                                       std::uint64_t run_nonce,
                                       SimScratch* scratch,
                                       std::span<const AttachmentIndex> reage,
                                       bool keep_continuation,
                                       OverlayStats* stats) const {
  OverlayRun overlay;
  overlay.resume = std::move(prior);
  overlay.resuming = true;
  overlay.reage = reage;
  overlay.keep_continuation = keep_continuation;
  overlay.stats = stats;
  return run_impl(delta, run_nonce, scratch, &overlay);
}

std::size_t RoutingState::resolve_cache_bytes() const {
  std::size_t b = walk_cache_.capacity() * sizeof(CachedWalk);
  for (const CachedWalk& w : walk_cache_) {
    b += w.as_path.capacity() * sizeof(AsId) +
         w.hop_ms.capacity() * sizeof(double);
  }
  return b;
}

std::size_t RoutingState::overlay_copied_bytes() const {
  if (base_ == nullptr) return 0;
  std::size_t b = copied_.capacity() * sizeof(std::uint8_t) +
                  as_.capacity() * sizeof(AsState);
  for (std::size_t i = 0; i < copied_.size(); ++i) {
    if (copied_[i] == 0) continue;
    b += as_[i].rib.capacity() * sizeof(RibEntry) +
         as_[i].best.equal_best.capacity() * sizeof(int);
    for (const RibEntry& e : as_[i].rib) {
      b += e.as_path.capacity() * sizeof(AsId);
    }
  }
  return b;
}

const RoutingState::AsState& RoutingState::state_of(AsId as) const {
  const std::size_t i = as.value();
  if (base_ == nullptr || copied_[i] != 0) return as_[i];
  return base_->impl_->as[i];
}

const RibEntry* RoutingState::best(AsId as) const {
  const auto& s = state_of(as);
  return s.best.best >= 0 ? &s.rib[s.best.best] : nullptr;
}

std::span<const RibEntry> RoutingState::rib(AsId as) const {
  return state_of(as).rib;
}

const BestSet& RoutingState::best_set(AsId as) const {
  return state_of(as).best;
}

ResolvedPath RoutingState::resolve(AsId from, const geo::Coordinates& from_loc,
                                   std::uint64_t flow_hash) const {
  if (from.value() >= as_.size()) {
    // Client AS id beyond the converged range (sparse id spaces at
    // Internet scale, external ASNs, AsId{}): unreachable, never an
    // out-of-bounds index — mirrored by CompactState::resolve.
    return ResolvedPath{};
  }
  if (walk_cache_.empty() || from.value() >= walk_cache_.size()) {
    // Cache disabled for this run — or the client AS id lies beyond the
    // dense cache range (sparse id spaces at Internet scale must not index
    // out of bounds): plain walk, no memoization.
    return resolve_walk(from, from_loc, flow_hash, nullptr);
  }
  CachedWalk& walk = walk_cache_[from.value()];
  const bool telem = telemetry::enabled();
  switch (walk.state) {
    case CachedWalk::State::kCached:
      ++cache_hits_;
      if (telem) ResolveMetrics::get().cache_hit->add(1);
      return walk_replay(walk, from_loc);
    case CachedWalk::State::kUncached:
      // Flow- or location-dependent walk: recompute per call, keyed by the
      // caller's flow hash exactly as the uncached path would.
      ++cache_misses_;
      if (telem) ResolveMetrics::get().cache_miss->add(1);
      return resolve_walk(from, from_loc, flow_hash, nullptr);
    case CachedWalk::State::kUnknown:
      break;
  }
  ++cache_misses_;
  if (telem) ResolveMetrics::get().cache_miss->add(1);
  return resolve_walk(from, from_loc, flow_hash, &walk);
}

ResolvedPath RoutingState::resolve_walk(AsId from,
                                        const geo::Coordinates& from_loc,
                                        std::uint64_t flow_hash,
                                        CachedWalk* record) const {
  // The array-of-structs view over this state's per-AS RIBs, feeding the
  // one shared walk implementation (bgp/walk.h) both layouts instantiate.
  struct View {
    const RoutingState* st;
    const Simulator* sim;
    [[nodiscard]] const topo::Internet& net() const { return sim->net_; }
    [[nodiscard]] int best(AsId as) const {
      return st->state_of(as).best.best;
    }
    [[nodiscard]] std::span<const int> equal_best(AsId as) const {
      return st->state_of(as).best.equal_best;
    }
    [[nodiscard]] bool slot_present(AsId as, std::size_t slot) const {
      return st->state_of(as).rib[slot].present;
    }
    [[nodiscard]] AsId slot_neighbor(AsId as, std::size_t slot) const {
      return st->state_of(as).rib[slot].neighbor;
    }
    [[nodiscard]] std::uint8_t slot_prepend(AsId as, std::size_t slot) const {
      return st->state_of(as).rib[slot].origin_prepend;
    }
    [[nodiscard]] std::uint32_t slot_med(AsId as, std::size_t slot) const {
      return st->state_of(as).rib[slot].med;
    }
    [[nodiscard]] std::size_t adj_count(AsId as) const {
      return sim->adj_[as.value()].size();
    }
    [[nodiscard]] std::span<const AttachmentIndex> host_slots(AsId as) const {
      return sim->host_attach_[as.value()];
    }
    [[nodiscard]] const OriginAttachment& attachment(
        AttachmentIndex idx) const {
      return sim->attachments_[idx];
    }
    [[nodiscard]] geo::Coordinates crossing_where(AsId as, std::size_t /*slot*/,
                                                  AsId neighbor) const {
      const int at = sim->neighbor_slot(as, neighbor);
      assert(at >= 0);
      return net().graph.link(sim->adj_[as.value()][at].link).where;
    }
  };
  return walk_resolve(View{this, sim_}, run_nonce_, from, from_loc, flow_hash,
                      record);
}

}  // namespace anyopt::bgp
