#include "bgp/decision.h"

namespace anyopt::bgp {
namespace {

int decide(DecisionStep step, int result, DecisionStep* decided_at) {
  if (decided_at != nullptr) *decided_at = step;
  return result;
}

}  // namespace

int compare_routes(const RibEntry& a, const RibEntry& b,
                   const DecisionOptions& opts, DecisionStep* decided_at) {
  // 1. Highest LOCAL_PREF.
  if (a.local_pref != b.local_pref) {
    return decide(DecisionStep::kLocalPref, b.local_pref - a.local_pref,
                  decided_at);
  }
  // 2. Shortest AS_PATH.
  if (a.path_length() != b.path_length()) {
    return decide(DecisionStep::kAsPathLength,
                  static_cast<int>(a.path_length()) -
                      static_cast<int>(b.path_length()),
                  decided_at);
  }
  // 3. Lowest ORIGIN code — all announcements here are IGP-origin: tie.
  // 4. Lowest MED — compared only between routes from the same neighbor
  //    AS (for a host AS: between its anycast attachments).
  if (a.neighbor == b.neighbor && a.med != b.med) {
    return decide(DecisionStep::kMed, a.med < b.med ? -1 : 1, decided_at);
  }
  // 5. eBGP over iBGP — the AS-level model sees only eBGP sessions: tie.
  // 6. Lowest IGP cost to next hop.
  if (a.nexthop_igp_cost != b.nexthop_igp_cost) {
    return decide(DecisionStep::kIgpCost,
                  a.nexthop_igp_cost - b.nexthop_igp_cost, decided_at);
  }
  // 7. Oldest route — NOT in RFC 4271, but implemented by deployed routers
  //    (the paper's key empirical finding).
  if (opts.prefer_oldest && a.arrival_seq != b.arrival_seq) {
    return decide(DecisionStep::kOldestRoute,
                  a.arrival_seq < b.arrival_seq ? -1 : 1, decided_at);
  }
  // 8. Lowest router id of the advertising router.
  if (a.neighbor_router_id != b.neighbor_router_id) {
    return decide(DecisionStep::kRouterId,
                  a.neighbor_router_id < b.neighbor_router_id ? -1 : 1,
                  decided_at);
  }
  // 9. Lowest neighbor address — modelled by neighbor AS id, with the
  //    origin (invalid id) ranking last deterministically.
  const auto addr = [](const RibEntry& e) {
    return e.neighbor.valid() ? e.neighbor.value()
                              : AsId::kInvalid;
  };
  if (addr(a) == addr(b)) {
    // Same neighbor (possible for parallel origin attachments): break the
    // tie by attachment index, which is stable and unique.
    return decide(DecisionStep::kNeighborAddress,
                  a.attachment < b.attachment ? -1 : 1, decided_at);
  }
  return decide(DecisionStep::kNeighborAddress,
                addr(a) < addr(b) ? -1 : 1, decided_at);
}

bool multipath_equal(const RibEntry& a, const RibEntry& b) {
  return a.local_pref == b.local_pref &&
         a.path_length() == b.path_length() &&
         a.nexthop_igp_cost == b.nexthop_igp_cost;
}

}  // namespace anyopt::bgp
