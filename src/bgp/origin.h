#pragma once
// Origin-side description of the anycast deployment as the BGP layer sees
// it: one attachment per (site, neighbor AS) BGP session.  The anycast
// origin AS itself is *not* a node of the Internet graph — its announcement
// behaviour is fully controlled by the experiment driver, exactly like the
// testbed's GoBGP orchestrator (§3.1).

#include <vector>

#include "netbase/geo.h"
#include "netbase/ids.h"
#include "topo/relationship.h"

namespace anyopt::bgp {

/// One BGP session from an anycast site to a neighboring AS.
struct OriginAttachment {
  SiteId site;                  ///< the anycast site terminating the session
  AsId neighbor;                ///< the AS the prefix is announced to
  topo::Relation neighbor_is;   ///< provider (transit) or peer, from origin's view
  geo::Coordinates where;       ///< physical interconnection point
  double latency_ms = 0.3;      ///< one-way latency site <-> neighbor edge
  /// The neighbor silently filters our announcement (import policy on
  /// their side — §5.4 observed 32 of 104 peers never delivering a ping
  /// target).  The operator cannot see this flag; the one-pass experiments
  /// discover it as an empty catchment.
  bool filtered = false;
  /// Multi-Exit Discriminator advertised on this session (§2.3 lists MED
  /// among the announcement attributes an operator can vary).  Compared
  /// only between sessions to the same neighbor AS — i.e. between two
  /// sites attached to the same transit provider — where a lower MED
  /// attracts that provider's traffic before interior cost is consulted.
  /// The paper's experiments leave it at the default.
  std::uint32_t med = 0;
};

/// Index of an attachment within the deployment's attachment table.
using AttachmentIndex = std::uint32_t;
inline constexpr AttachmentIndex kNoAttachment = ~AttachmentIndex{0};

/// A timed announcement (or withdrawal) of the anycast prefix on one
/// attachment.  A BGP experiment is a list of these.
struct Injection {
  double time_s = 0;                  ///< simulated wall-clock seconds
  AttachmentIndex attachment = kNoAttachment;
  bool withdraw = false;
  /// AS-path prepending: the origin AS number is repeated this many extra
  /// times in the announcement, lengthening the AS path seen everywhere
  /// downstream — the catchment-shaping control knob of §6.
  std::uint8_t prepend = 0;
};

}  // namespace anyopt::bgp
