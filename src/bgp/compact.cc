#include "bgp/compact.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <utility>

#include "netbase/telemetry.h"

namespace anyopt::bgp {

namespace {

/// Pre-resolved forwarding-cache metrics — the SAME registry counters the
/// array-of-structs resolve feeds, so campaign-wide cache telemetry is
/// layout-independent.
struct ResolveMetrics {
  telemetry::Counter* cache_hit;
  telemetry::Counter* cache_miss;

  static const ResolveMetrics& get() {
    static const ResolveMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return ResolveMetrics{&reg.counter("bgp.resolve.cache_hit"),
                            &reg.counter("bgp.resolve.cache_miss")};
    }();
    return m;
  }
};

/// FNV-1a over an AS path's id values (interning bucket key).
[[nodiscard]] std::uint64_t path_hash(std::span<const AsId> path) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const AsId as : path) {
    h ^= as.value();
    h *= 1099511628211ULL;
  }
  return h;
}

/// Section tags of the persisted table encoding (see `encode`).  Tags
/// start at 2: the result store frames payload records as
/// `[tag-1 key][body sections]`, so a RIB record's body can be these
/// sections verbatim without colliding with the key tag.
enum CompactTag : std::uint64_t {
  kTagMeta = 2,    ///< counts + prefix key
  kTagSlots = 3,   ///< per-AS slot/adjacency CSR
  kTagFields = 4,  ///< per-slot field columns
  kTagPaths = 5,   ///< interned path pool + per-slot (offset, length)
  kTagBest = 6,    ///< best slot per AS
  kTagEquals = 7,  ///< multipath-eligible set (equal-best CSR)
};

}  // namespace

/// The structure-of-arrays view bgp/walk.h's shared walk reads — the SoA
/// twin of the view inside `RoutingState::resolve_walk`.
struct CompactState::View {
  const CompactState* cs;
  [[nodiscard]] const topo::Internet& net() const {
    return cs->sim_->internet();
  }
  [[nodiscard]] int best(AsId as) const { return cs->best_[as.value()]; }
  [[nodiscard]] std::span<const int> equal_best(AsId as) const {
    const std::uint32_t begin = cs->equal_begin_[as.value()];
    const std::uint32_t end = cs->equal_begin_[as.value() + 1];
    return {cs->equal_.data() + begin, end - begin};
  }
  [[nodiscard]] std::size_t slot_at(AsId as, std::size_t slot) const {
    return cs->slot_begin_[as.value()] + slot;
  }
  [[nodiscard]] bool slot_present(AsId as, std::size_t slot) const {
    return cs->present_[slot_at(as, slot)] != 0;
  }
  [[nodiscard]] AsId slot_neighbor(AsId as, std::size_t slot) const {
    return AsId{cs->neighbor_[slot_at(as, slot)]};
  }
  [[nodiscard]] std::uint8_t slot_prepend(AsId as, std::size_t slot) const {
    return cs->prepend_[slot_at(as, slot)];
  }
  [[nodiscard]] std::uint32_t slot_med(AsId as, std::size_t slot) const {
    return cs->med_[slot_at(as, slot)];
  }
  [[nodiscard]] std::size_t adj_count(AsId as) const {
    return cs->adj_count_[as.value()];
  }
  [[nodiscard]] std::span<const AttachmentIndex> host_slots(AsId as) const {
    const std::uint32_t begin = cs->host_begin_[as.value()];
    const std::uint32_t end = cs->host_begin_[as.value() + 1];
    return {cs->host_pool_.data() + begin, end - begin};
  }
  [[nodiscard]] const OriginAttachment& attachment(AttachmentIndex idx) const {
    return cs->sim_->attachments()[idx];
  }
  [[nodiscard]] geo::Coordinates crossing_where(AsId as, std::size_t slot,
                                                AsId /*neighbor*/) const {
    // Slot order mirrors the engine's sorted, deduplicated adjacency, so
    // the chosen slot IS the neighbor's slot — no lookup needed.
    return cs->link_where_[cs->adj_begin_[as.value()] + slot];
  }
};

CompactState CompactState::freeze(const Simulator& sim,
                                  const RoutingState& state) {
  CompactState out;
  out.sim_ = &sim;
  out.run_nonce_ = state.run_nonce_;
  const std::size_t n = sim.adj_.size();
  out.as_count_ = n;

  // Sizing pass: the three CSR tables (all slots, neighbor slots, host
  // attachments) are exact, so every column below is a single allocation.
  out.slot_begin_.resize(n + 1);
  out.adj_begin_.resize(n + 1);
  out.host_begin_.resize(n + 1);
  out.adj_count_.resize(n);
  std::uint32_t slots = 0;
  std::uint32_t adjs = 0;
  std::uint32_t hosts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.slot_begin_[i] = slots;
    out.adj_begin_[i] = adjs;
    out.host_begin_[i] = hosts;
    const auto adj = static_cast<std::uint32_t>(sim.adj_[i].size());
    const auto host = static_cast<std::uint32_t>(sim.host_attach_[i].size());
    out.adj_count_[i] = adj;
    slots += adj + host;
    adjs += adj;
    hosts += host;
  }
  out.slot_begin_[n] = slots;
  out.adj_begin_[n] = adjs;
  out.host_begin_[n] = hosts;

  out.present_.resize(slots);
  out.neighbor_.assign(slots, AsId::kInvalid);
  out.prepend_.resize(slots);
  out.med_.resize(slots);
  out.attachment_.assign(slots, kNoAttachment);
  out.path_off_.resize(slots);
  out.path_len_.resize(slots);
  out.link_where_.resize(adjs);
  out.host_pool_.reserve(hosts);
  out.best_.resize(n);
  out.equal_begin_.resize(n + 1);

  // Interning index: path hash -> candidate (offset, length) pairs in the
  // pool (chained on the rare collisions).
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      interned;
  const auto intern = [&](std::span<const AsId> path) {
    auto& candidates = interned[path_hash(path)];
    for (const auto& [off, len] : candidates) {
      if (len == path.size() &&
          std::equal(path.begin(), path.end(), out.path_pool_.begin() + off)) {
        return std::pair<std::uint32_t, std::uint32_t>{off, len};
      }
    }
    const auto off = static_cast<std::uint32_t>(out.path_pool_.size());
    const auto len = static_cast<std::uint32_t>(path.size());
    out.path_pool_.insert(out.path_pool_.end(), path.begin(), path.end());
    candidates.emplace_back(off, len);
    ++out.unique_paths_;
    return std::pair<std::uint32_t, std::uint32_t>{off, len};
  };

  std::uint32_t equal_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const AsId as{static_cast<std::uint32_t>(i)};
    const std::span<const RibEntry> rib = state.rib(as);
    const std::uint32_t base = out.slot_begin_[i];
    assert(rib.size() == out.slot_begin_[i + 1] - base);
    for (std::size_t s = 0; s < rib.size(); ++s) {
      const RibEntry& entry = rib[s];
      if (!entry.present) continue;  // non-present slots stay normalized
      const std::uint32_t at = base + static_cast<std::uint32_t>(s);
      out.present_[at] = 1;
      out.neighbor_[at] = entry.neighbor.value();
      out.prepend_[at] = entry.origin_prepend;
      out.med_[at] = entry.med;
      out.attachment_[at] = entry.attachment;
      if (!entry.as_path.empty()) {
        const auto [off, len] = intern(entry.as_path);
        out.path_off_[at] = off;
        out.path_len_[at] = static_cast<std::uint16_t>(len);
      }
    }
    for (std::size_t j = 0; j < sim.adj_[i].size(); ++j) {
      out.link_where_[out.adj_begin_[i] + j] =
          sim.net_.graph.link(sim.adj_[i][j].link).where;
    }
    out.host_pool_.insert(out.host_pool_.end(), sim.host_attach_[i].begin(),
                          sim.host_attach_[i].end());
    const BestSet& bs = state.best_set(as);
    out.best_[i] = bs.best;
    out.equal_begin_[i] = equal_total;
    equal_total += static_cast<std::uint32_t>(bs.equal_best.size());
  }
  out.equal_begin_[n] = equal_total;
  out.equal_.reserve(equal_total);
  for (std::size_t i = 0; i < n; ++i) {
    const BestSet& bs = state.best_set(AsId{static_cast<std::uint32_t>(i)});
    out.equal_.insert(out.equal_.end(), bs.equal_best.begin(),
                      bs.equal_best.end());
  }

  if (sim.options().resolution_cache) out.cache_.resize(n);
  return out;
}

ResolvedPath CompactState::resolve(AsId from, const geo::Coordinates& from_loc,
                                   std::uint64_t flow_hash) const {
  if (sim_ == nullptr || from.value() >= as_count_) {
    // Decoded (table-only) state, or a client AS id beyond the frozen
    // range (sparse id spaces must not index out of bounds): unreachable.
    return ResolvedPath{};
  }
  if (cache_.empty() || from.value() >= cache_.size()) {
    // Cache disabled, or the id lies beyond the (possibly budget-capped)
    // cache range: plain walk, no memoization.
    return walk_resolve(View{this}, run_nonce_, from, from_loc, flow_hash,
                        nullptr);
  }
  CachedWalk& walk = cache_[from.value()];
  const bool telem = telemetry::enabled();
  switch (walk.state) {
    case CachedWalk::State::kCached:
      cache_hits_.n.fetch_add(1, std::memory_order_relaxed);
      if (telem) ResolveMetrics::get().cache_hit->add(1);
      return walk_replay(walk, from_loc);
    case CachedWalk::State::kUncached:
      cache_misses_.n.fetch_add(1, std::memory_order_relaxed);
      if (telem) ResolveMetrics::get().cache_miss->add(1);
      return walk_resolve(View{this}, run_nonce_, from, from_loc, flow_hash,
                          nullptr);
    case CachedWalk::State::kUnknown:
      break;
  }
  cache_misses_.n.fetch_add(1, std::memory_order_relaxed);
  if (telem) ResolveMetrics::get().cache_miss->add(1);
  return walk_resolve(View{this}, run_nonce_, from, from_loc, flow_hash,
                      &walk);
}

std::size_t CompactState::retained_bytes() const {
  return slot_begin_.capacity() * sizeof(std::uint32_t) +
         adj_count_.capacity() * sizeof(std::uint32_t) +
         present_.capacity() * sizeof(std::uint8_t) +
         neighbor_.capacity() * sizeof(std::uint32_t) +
         prepend_.capacity() * sizeof(std::uint8_t) +
         med_.capacity() * sizeof(std::uint32_t) +
         attachment_.capacity() * sizeof(std::uint32_t) +
         path_off_.capacity() * sizeof(std::uint32_t) +
         path_len_.capacity() * sizeof(std::uint16_t) +
         path_pool_.capacity() * sizeof(AsId) +
         best_.capacity() * sizeof(std::int32_t) +
         equal_begin_.capacity() * sizeof(std::uint32_t) +
         equal_.capacity() * sizeof(int) +
         adj_begin_.capacity() * sizeof(std::uint32_t) +
         link_where_.capacity() * sizeof(geo::Coordinates) +
         host_begin_.capacity() * sizeof(std::uint32_t) +
         host_pool_.capacity() * sizeof(AttachmentIndex);
}

std::size_t CompactState::resolve_cache_bytes() const {
  std::size_t b = cache_.capacity() * sizeof(CachedWalk);
  for (const CachedWalk& w : cache_) {
    b += w.as_path.capacity() * sizeof(AsId) +
         w.hop_ms.capacity() * sizeof(double);
  }
  return b;
}

void CompactState::set_cache_capacity(std::size_t capacity) {
  if (capacity >= cache_.size()) return;
  // Rebuild rather than resize: resize keeps the old capacity alive, and
  // the whole point of the cap is returning the memory.
  std::vector<CachedWalk> capped(cache_.begin(),
                                 cache_.begin() +
                                     static_cast<std::ptrdiff_t>(capacity));
  cache_ = std::move(capped);
}

void CompactState::encode(codec::Writer& out) const {
  codec::Writer meta;
  meta.put_varint(as_count_);
  meta.put_varint(present_.size());
  meta.put_u64le(prefix_key_);
  meta.put_varint(unique_paths_);
  out.put_section(kTagMeta, meta);

  codec::Writer csr;  // per-AS slot counts + neighbor-slot counts
  for (std::size_t i = 0; i < as_count_; ++i) {
    csr.put_varint(slot_begin_[i + 1] - slot_begin_[i]);
    csr.put_varint(adj_count_[i]);
  }
  out.put_section(kTagSlots, csr);

  codec::Writer fields;
  for (const std::uint8_t p : present_) fields.put_u8(p);
  // +1-shifted so the invalid sentinel encodes as one byte, not ten.
  for (const std::uint32_t v : neighbor_) {
    fields.put_varint(v == AsId::kInvalid ? 0 : std::uint64_t{v} + 1);
  }
  for (const std::uint8_t p : prepend_) fields.put_u8(p);
  for (const std::uint32_t m : med_) fields.put_varint(m);
  for (const std::uint32_t a : attachment_) {
    fields.put_varint(a == kNoAttachment ? 0 : std::uint64_t{a} + 1);
  }
  out.put_section(kTagFields, fields);

  codec::Writer paths;
  paths.put_varint(path_pool_.size());
  for (const AsId as : path_pool_) paths.put_varint(as.value());
  for (std::size_t s = 0; s < path_off_.size(); ++s) {
    paths.put_varint(path_off_[s]);
    paths.put_varint(path_len_[s]);
  }
  out.put_section(kTagPaths, paths);

  codec::Writer bests;
  for (const std::int32_t b : best_) bests.put_svarint(b);
  codec::Writer equals;
  for (std::size_t i = 0; i < as_count_; ++i) {
    equals.put_varint(equal_begin_[i + 1] - equal_begin_[i]);
  }
  for (const int e : equal_) equals.put_varint(static_cast<std::uint64_t>(e));
  out.put_section(kTagBest, bests);
  out.put_section(kTagEquals, equals);
}

Result<CompactState> CompactState::decode(
    std::span<const std::uint8_t> payload) {
  CompactState out;
  codec::Reader reader(payload);
  std::size_t slot_count = 0;
  bool saw_meta = false;
  while (!reader.at_end()) {
    Result<codec::Section> section = reader.read_section();
    if (!section.ok()) return section.error();
    codec::Reader body(section.value().body);
    switch (section.value().tag) {
      case kTagMeta: {
        auto n = body.read_varint();
        auto slots = body.read_varint();
        auto prefix = body.read_u64le();
        auto uniq = body.read_varint();
        if (!n.ok()) return n.error();
        if (!slots.ok()) return slots.error();
        if (!prefix.ok()) return prefix.error();
        if (!uniq.ok()) return uniq.error();
        out.as_count_ = n.value();
        slot_count = slots.value();
        out.prefix_key_ = prefix.value();
        out.unique_paths_ = uniq.value();
        saw_meta = true;
        break;
      }
      case kTagSlots: {
        if (!saw_meta) return Error::parse("compact rib: CSR before meta");
        out.slot_begin_.resize(out.as_count_ + 1);
        out.adj_begin_.resize(out.as_count_ + 1);
        out.adj_count_.resize(out.as_count_);
        std::uint32_t slots = 0;
        std::uint32_t adjs = 0;
        for (std::size_t i = 0; i < out.as_count_; ++i) {
          auto width = body.read_varint();
          auto adj = body.read_varint();
          if (!width.ok()) return width.error();
          if (!adj.ok()) return adj.error();
          if (adj.value() > width.value()) {
            return Error::parse("compact rib: neighbor slots exceed slots");
          }
          out.slot_begin_[i] = slots;
          out.adj_begin_[i] = adjs;
          out.adj_count_[i] = static_cast<std::uint32_t>(adj.value());
          slots += static_cast<std::uint32_t>(width.value());
          adjs += static_cast<std::uint32_t>(adj.value());
        }
        out.slot_begin_[out.as_count_] = slots;
        out.adj_begin_[out.as_count_] = adjs;
        if (slots != slot_count) {
          return Error::parse("compact rib: CSR total != slot count");
        }
        break;
      }
      case kTagFields: {
        out.present_.resize(slot_count);
        out.neighbor_.resize(slot_count);
        out.prepend_.resize(slot_count);
        out.med_.resize(slot_count);
        out.attachment_.resize(slot_count);
        for (auto& p : out.present_) {
          auto v = body.read_u8();
          if (!v.ok()) return v.error();
          p = v.value();
        }
        for (auto& nb : out.neighbor_) {
          auto v = body.read_varint();
          if (!v.ok()) return v.error();
          nb = v.value() == 0 ? AsId::kInvalid
                              : static_cast<std::uint32_t>(v.value() - 1);
        }
        for (auto& p : out.prepend_) {
          auto v = body.read_u8();
          if (!v.ok()) return v.error();
          p = v.value();
        }
        for (auto& m : out.med_) {
          auto v = body.read_varint();
          if (!v.ok()) return v.error();
          m = static_cast<std::uint32_t>(v.value());
        }
        for (auto& a : out.attachment_) {
          auto v = body.read_varint();
          if (!v.ok()) return v.error();
          a = v.value() == 0 ? kNoAttachment
                             : static_cast<std::uint32_t>(v.value() - 1);
        }
        break;
      }
      case kTagPaths: {
        auto pool = body.read_varint();
        if (!pool.ok()) return pool.error();
        out.path_pool_.resize(pool.value());
        for (auto& as : out.path_pool_) {
          auto v = body.read_varint();
          if (!v.ok()) return v.error();
          as = AsId{static_cast<std::uint32_t>(v.value())};
        }
        out.path_off_.resize(slot_count);
        out.path_len_.resize(slot_count);
        for (std::size_t s = 0; s < slot_count; ++s) {
          auto off = body.read_varint();
          auto len = body.read_varint();
          if (!off.ok()) return off.error();
          if (!len.ok()) return len.error();
          if (off.value() + len.value() > out.path_pool_.size()) {
            return Error::parse("compact rib: path reference out of pool");
          }
          out.path_off_[s] = static_cast<std::uint32_t>(off.value());
          out.path_len_[s] = static_cast<std::uint16_t>(len.value());
        }
        break;
      }
      case kTagBest: {
        out.best_.resize(out.as_count_);
        for (std::size_t i = 0; i < out.as_count_; ++i) {
          auto v = body.read_svarint();
          if (!v.ok()) return v.error();
          out.best_[i] = static_cast<std::int32_t>(v.value());
        }
        break;
      }
      case kTagEquals: {
        out.equal_begin_.resize(out.as_count_ + 1);
        std::uint32_t total = 0;
        for (std::size_t i = 0; i < out.as_count_; ++i) {
          auto width = body.read_varint();
          if (!width.ok()) return width.error();
          out.equal_begin_[i] = total;
          total += static_cast<std::uint32_t>(width.value());
        }
        out.equal_begin_[out.as_count_] = total;
        out.equal_.resize(total);
        for (auto& e : out.equal_) {
          auto v = body.read_varint();
          if (!v.ok()) return v.error();
          e = static_cast<int>(v.value());
        }
        break;
      }
      default:
        break;  // forward compatibility: skip unknown sections
    }
  }
  if (!saw_meta) return Error::parse("compact rib: missing meta section");
  return out;
}

bool CompactState::rib_equals(const CompactState& other) const {
  return as_count_ == other.as_count_ && prefix_key_ == other.prefix_key_ &&
         unique_paths_ == other.unique_paths_ &&
         slot_begin_ == other.slot_begin_ && adj_count_ == other.adj_count_ &&
         present_ == other.present_ && neighbor_ == other.neighbor_ &&
         prepend_ == other.prepend_ && med_ == other.med_ &&
         attachment_ == other.attachment_ && path_off_ == other.path_off_ &&
         path_len_ == other.path_len_ && path_pool_ == other.path_pool_ &&
         best_ == other.best_ && equal_begin_ == other.equal_begin_ &&
         equal_ == other.equal_;
}

}  // namespace anyopt::bgp
