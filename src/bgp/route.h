#pragma once
// Route state kept by the simulator: adjacency-RIB-in entries and the
// best-path sets derived from them.

#include <cstdint>
#include <vector>

#include "bgp/origin.h"
#include "netbase/geo.h"
#include "netbase/ids.h"
#include "topo/relationship.h"

namespace anyopt::bgp {

/// An update message travelling on the wire between two ASes (or from the
/// anycast origin into its first-hop AS).
struct UpdateMsg {
  bool withdraw = false;
  AsId sender;                    ///< advertising AS; invalid => origin
  AttachmentIndex attachment = kNoAttachment;  ///< origin session it stems from
  std::vector<AsId> as_path;      ///< [sender, ..., first-hop AS]; origin elided
  std::uint8_t origin_prepend = 0;  ///< extra origin-AS repetitions
  std::uint32_t sender_router_id = 0;
  geo::Coordinates at;            ///< where the route entered the receiver
};

/// One entry of an AS's Adj-RIB-In (one per neighbor AS).
struct RibEntry {
  bool present = false;
  AsId neighbor;                  ///< who advertised it (invalid => origin)
  topo::Relation learned_from = topo::Relation::kProvider;
  AttachmentIndex attachment = kNoAttachment;
  std::vector<AsId> as_path;      ///< as advertised (sender first); the
                                  ///< receiving AS is NOT included
  int local_pref = 0;
  int nexthop_igp_cost = 0;       ///< modelled as uniform (see DESIGN.md)
  std::uint32_t med = 0;          ///< MED; compared between same-neighbor routes
  std::uint8_t origin_prepend = 0;  ///< extra origin-AS repetitions
  std::uint64_t arrival_seq = 0;  ///< global install counter (oldest = least)
  double arrival_time_s = 0;
  std::uint32_t neighbor_router_id = 0;
  geo::Coordinates at;            ///< ingress point of this route into the AS

  /// AS-path length *including* the anycast origin hop and any prepending.
  [[nodiscard]] std::size_t path_length() const {
    return as_path.size() + 1 + origin_prepend;
  }
};

/// Result of the decision process at one AS: the single advertised best
/// and the multipath-eligible equal set (ties through the IGP-cost step).
struct BestSet {
  int best = -1;                   ///< index into the AS's rib entries; -1 = unreachable
  std::vector<int> equal_best;     ///< indices tied through step 6 (incl. best)
};

}  // namespace anyopt::bgp
