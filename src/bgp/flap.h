#pragma once
// Session-flap expansion: turns a `fault::SessionFlap` schedule into the
// explicit withdrawal / re-advertisement injections the simulator replays.
//
// A flap is not a no-op even when the final topology is identical: the
// re-advertisement re-enters every router's decision process with a NEW
// arrival time, and deployed routers tie-break on arrival order ("oldest
// route", §4.2).  A session that flaps therefore loses every arrival-order
// tie it used to win — the winner can change permanently.  The regression
// suite pins this behaviour (flap_test.cc).

#include <span>
#include <vector>

#include "bgp/origin.h"
#include "netbase/fault.h"

namespace anyopt::bgp {

/// \brief Expands session flaps into a simulator injection schedule.
///
/// For each flap whose attachment has an announcement in `schedule`, this
/// appends `cycles` (withdraw at t_down, re-advertise at t_down +
/// down_dwell) pairs starting `first_down_s` after that announcement,
/// preserving the announcement's prepend, then re-sorts the whole schedule
/// by time (the simulator requires time-ordered injections).  Flaps whose
/// attachment never announces are ignored.
/// \param schedule the base announcement schedule (consumed).
/// \param flaps the flaps to expand.
/// \return the merged, time-sorted schedule.
[[nodiscard]] std::vector<Injection> apply_flaps(
    std::vector<Injection> schedule,
    std::span<const fault::SessionFlap> flaps);

}  // namespace anyopt::bgp
