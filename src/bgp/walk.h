#pragma once
// The data-plane walk, shared between RIB layouts.
//
// `walk_resolve` is the one implementation of "follow the converged best
// routes from a client AS to its catchment site".  It is a template over a
// *RIB view* so that the array-of-structs `RoutingState` (the layout the
// propagation engine mutates) and the structure-of-arrays `CompactState`
// (the frozen layout the measurement plane resolves against at Internet
// scale) execute the exact same instruction sequence — every floating-point
// operation in the same order — which is what makes the two layouts
// bit-identical by construction rather than by test alone (the
// layout-invariance suite then enforces it end to end).
//
// A view `v` must provide, for every AS `a` reachable from the walk:
//   const topo::Internet&            v.net()
//   int                              v.best(a)          best rib slot, -1 = none
//   std::span<const int>             v.equal_best(a)    multipath-eligible slots
//   bool                             v.slot_present(a, slot)
//   AsId                             v.slot_neighbor(a, slot)  invalid = origin
//   std::uint8_t                     v.slot_prepend(a, slot)
//   std::uint32_t                    v.slot_med(a, slot)
//   std::size_t                      v.adj_count(a)     host slots start here
//   std::span<const AttachmentIndex> v.host_slots(a)
//   const OriginAttachment&          v.attachment(idx)
//   geo::Coordinates                 v.crossing_where(a, slot, neighbor)
// `crossing_where` is the ingress point of the link behind rib slot `slot`
// (whose advertised route came from `neighbor`).

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/origin.h"
#include "netbase/geo.h"
#include "netbase/ids.h"
#include "topo/builder.h"

namespace anyopt::bgp {

/// Forwarding resolution result for one client network.
struct ResolvedPath {
  bool reachable = false;
  SiteId site;                       ///< catchment site
  AttachmentIndex attachment = kNoAttachment;
  std::vector<AsId> as_path;         ///< client AS ... host AS
  double one_way_ms = 0;             ///< client location -> site
};

/// One memoized data-plane walk, keyed by the client AS it starts from.
/// A walk is cacheable only when no hop's choice depended on the flow
/// hash (no live multipath split) or on the caller's location (the
/// host-AS hot-potato cost when the client AS itself hosts attachments);
/// such walks stay `kUncached` and are re-walked per flow.  Replay
/// re-adds the recorded per-hop latencies in the original order, so the
/// floating-point result is bit-identical to the uncached walk.
struct CachedWalk {
  enum class State : std::uint8_t { kUnknown, kCached, kUncached };
  State state = State::kUnknown;
  bool reachable = false;
  bool crossed = false;  ///< at least one inter-AS crossing on the walk
  SiteId site;
  AttachmentIndex attachment = kNoAttachment;
  geo::Coordinates first_link_where;  ///< ingress of the first crossing
  double terminal_ms = 0;  ///< host-AS hot-potato cost + session latency
  std::vector<AsId> as_path;
  std::vector<double> hop_ms;  ///< crossings after the first, in order
};

/// \brief Replays a kCached walk for a client at `from_loc`.
///
/// The latency sum re-adds the recorded per-hop terms in the original
/// left-to-right order (only the first-hop geodesic depends on the client's
/// location), so the result is bit-identical to the walk that recorded it.
[[nodiscard]] inline ResolvedPath walk_replay(const CachedWalk& walk,
                                              const geo::Coordinates& from_loc) {
  ResolvedPath out;
  out.as_path = walk.as_path;
  if (walk.crossed) {
    out.one_way_ms +=
        geo::one_way_latency_ms(from_loc, walk.first_link_where);
    for (const double hop : walk.hop_ms) out.one_way_ms += hop;
  }
  if (!walk.reachable) return out;
  out.reachable = true;
  out.site = walk.site;
  out.attachment = walk.attachment;
  out.one_way_ms += walk.terminal_ms;
  return out;
}

/// \brief The uncached walk over any RIB view.
///
/// If `record` is non-null the walk is captured into it (or marked
/// kUncached when a flow/location-dependent hop is met).  `run_nonce` must
/// be the nonce of the run that converged the RIBs: it individualizes the
/// per-flow multipath split exactly as the engine's own resolve does.
/// \param v the RIB view (see the header comment for the contract).
/// \param run_nonce nonce of the converged run.
/// \param from client AS the walk starts at.
/// \param from_loc client location (first-hop geodesic).
/// \param flow_hash seeds per-flow multipath splitting.
/// \param record walk-capture slot, or nullptr for a plain walk.
/// \return the resolved forwarding path (unreachable on dead ends).
template <class Rib>
[[nodiscard]] ResolvedPath walk_resolve(const Rib& v, std::uint64_t run_nonce,
                                        AsId from,
                                        const geo::Coordinates& from_loc,
                                        std::uint64_t flow_hash,
                                        CachedWalk* record) {
  ResolvedPath out;
  const topo::Internet& net = v.net();
  AsId cur = from;
  geo::Coordinates cur_loc = from_loc;
  out.as_path.push_back(cur);
  if (record != nullptr) {
    record->as_path.clear();
    record->hop_ms.clear();
    record->crossed = false;
    record->as_path.push_back(cur);
  }

  for (std::size_t hops = 0; hops < 64; ++hops) {
    const int best = v.best(cur);
    if (best < 0) {
      // Dead end: flow-independent, so the (unreachable) walk is cacheable.
      if (record != nullptr) {
        record->state = CachedWalk::State::kCached;
        record->reachable = false;
      }
      return out;  // unreachable
    }

    // Per-flow multipath split across equal-best entries.
    int chosen = best;
    const topo::AsNode& node = net.graph.node(cur);
    const std::span<const int> equal = v.equal_best(cur);
    if (node.multipath && equal.size() > 1) {
      // The choice below depends on the flow hash: walks through this AS
      // belong to per-flow classes and must not be shared across targets.
      if (record != nullptr) {
        record->state = CachedWalk::State::kUncached;
        record = nullptr;
      }
      std::uint64_t h = flow_hash ^ (0x9e3779b97f4a7c15ULL * (cur.value() + 1)) ^
                        (run_nonce * 0xbf58476d1ce4e5b9ULL);
      h ^= h >> 29;
      h *= 0x94d049bb133111ebULL;
      h ^= h >> 32;
      chosen = equal[h % equal.size()];
    }
    const AsId next = v.slot_neighbor(cur, static_cast<std::size_t>(chosen));

    if (!next.valid()) {
      // `cur` is a host AS: traffic exits to the anycast origin here.
      // Hot-potato: among the attachments to this AS that are currently
      // announced, pick the one closest (by IGP, if this AS has a PoP
      // network) to where the traffic entered the AS.
      if (record != nullptr && hops == 0) {
        // The client AS itself hosts the attachments: the hot-potato cost
        // below starts from the client's own location, so the outcome is
        // per-target, not per-AS.
        record->state = CachedWalk::State::kUncached;
        record = nullptr;
      }
      const std::span<const AttachmentIndex> slots = v.host_slots(cur);
      const std::size_t base = v.adj_count(cur);
      // iBGP best-path inside the host AS: AS-path length (prepending!)
      // then MED (same-neighbor sessions) are compared before interior
      // cost, so a prepended or MED-penalized session loses to its
      // sibling everywhere in the AS.
      std::uint8_t best_prepend = 255;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (v.slot_present(cur, base + i) &&
            v.slot_prepend(cur, base + i) < best_prepend) {
          best_prepend = v.slot_prepend(cur, base + i);
        }
      }
      std::uint32_t best_med = ~std::uint32_t{0};
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (v.slot_present(cur, base + i) &&
            v.slot_prepend(cur, base + i) == best_prepend &&
            v.slot_med(cur, base + i) < best_med) {
          best_med = v.slot_med(cur, base + i);
        }
      }
      double best_cost = 1e18;
      double best_intra = 0;
      AttachmentIndex best_at = kNoAttachment;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!v.slot_present(cur, base + i) ||
            v.slot_prepend(cur, base + i) != best_prepend ||
            v.slot_med(cur, base + i) != best_med) {
          continue;
        }
        const OriginAttachment& at = v.attachment(slots[i]);
        double cost = 0;
        if (net.pops.has(cur)) {
          const topo::PopNetwork& pn = net.pops.network(cur);
          const std::size_t ingress = pn.nearest_pop(cur_loc);
          const std::size_t egress = pn.nearest_pop(at.where);
          cost = pn.igp_cost(ingress, egress);
        } else {
          cost = geo::one_way_latency_ms(cur_loc, at.where);
        }
        if (cost < best_cost ||
            (cost == best_cost && slots[i] < best_at)) {
          best_cost = cost;
          best_intra = cost;
          best_at = slots[i];
        }
      }
      if (best_at == kNoAttachment) {
        // Raced withdraw: no announced attachment survived — a pure
        // function of the converged RIBs, so cacheable as unreachable.
        if (record != nullptr) {
          record->state = CachedWalk::State::kCached;
          record->reachable = false;
        }
        return out;
      }
      const OriginAttachment& at = v.attachment(best_at);
      out.reachable = true;
      out.site = at.site;
      out.attachment = best_at;
      out.one_way_ms += best_intra + at.latency_ms;
      if (record != nullptr) {
        record->state = CachedWalk::State::kCached;
        record->reachable = true;
        record->site = at.site;
        record->attachment = best_at;
        record->terminal_ms = best_intra + at.latency_ms;
      }
      return out;
    }

    // Cross into the advertising neighbor at the route's ingress point.
    const geo::Coordinates where =
        v.crossing_where(cur, static_cast<std::size_t>(chosen), next);
    const double cross_ms = geo::one_way_latency_ms(cur_loc, where);
    out.one_way_ms += cross_ms;
    cur = next;
    cur_loc = where;
    out.as_path.push_back(cur);
    if (record != nullptr) {
      if (!record->crossed) {
        // First crossing: its latency depends on the caller's location and
        // is recomputed per replay from this recorded ingress point.
        record->crossed = true;
        record->first_link_where = where;
      } else {
        record->hop_ms.push_back(cross_ms);
      }
      record->as_path.push_back(cur);
    }
  }
  // Exceeded the hop budget: flow-independent (no split was met, or
  // recording would have stopped), so cacheable as unreachable.
  if (record != nullptr) {
    record->state = CachedWalk::State::kCached;
    record->reachable = false;
  }
  return out;  // treat as unreachable
}

}  // namespace anyopt::bgp
