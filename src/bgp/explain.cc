#include <algorithm>
#include <sstream>

#include "bgp/simulator.h"

namespace anyopt::bgp {
namespace {

const char* step_name(DecisionStep step) {
  switch (step) {
    case DecisionStep::kLocalPref: return "LOCAL_PREF";
    case DecisionStep::kAsPathLength: return "AS_PATH length";
    case DecisionStep::kOrigin: return "ORIGIN";
    case DecisionStep::kMed: return "MED";
    case DecisionStep::kEbgpOverIbgp: return "eBGP>iBGP";
    case DecisionStep::kIgpCost: return "IGP cost";
    case DecisionStep::kOldestRoute: return "oldest route (arrival order)";
    case DecisionStep::kRouterId: return "router id";
    case DecisionStep::kNeighborAddress: return "neighbor address";
  }
  return "?";
}

}  // namespace

bool Explanation::order_dependent() const {
  return std::any_of(hops.begin(), hops.end(), [](const ExplainedHop& h) {
    return h.hardest_step == DecisionStep::kOldestRoute;
  });
}

std::string Explanation::to_string(const topo::Internet& net) const {
  std::ostringstream out;
  if (!reachable) {
    out << "unreachable (no route to the anycast prefix)\n";
    return out.str();
  }
  out << "catchment site " << site.value() + 1 << "\n";
  for (const ExplainedHop& hop : hops) {
    out << "  AS" << net.graph.node(hop.as).asn;
    if (!net.graph.node(hop.as).name.empty()) {
      out << " (" << net.graph.node(hop.as).name << ")";
    }
    if (hop.next.valid()) {
      out << " -> AS" << net.graph.node(hop.next).asn;
    } else {
      out << " -> anycast origin";
    }
    out << "  [" << hop.candidates << " candidate route"
        << (hop.candidates == 1 ? "" : "s");
    if (hop.candidates > 1) {
      out << ", decided by " << step_name(hop.hardest_step);
    }
    if (hop.multipath_split) out << ", multipath split";
    out << "]\n";
  }
  return out.str();
}

Explanation RoutingState::explain(AsId from, const geo::Coordinates& from_loc,
                                  std::uint64_t flow_hash) const {
  Explanation out;
  if (from.value() >= as_.size()) return out;  // sparse id: unreachable
  const topo::Internet& net = sim_->internet();
  AsId cur = from;
  geo::Coordinates cur_loc = from_loc;

  for (std::size_t guard = 0; guard < 64; ++guard) {
    const auto& s = state_of(cur);
    if (s.best.best < 0) return out;  // unreachable

    int chosen = s.best.best;
    const topo::AsNode& node = net.graph.node(cur);
    bool split = false;
    if (node.multipath && s.best.equal_best.size() > 1) {
      std::uint64_t h = flow_hash ^
                        (0x9e3779b97f4a7c15ULL * (cur.value() + 1)) ^
                        (run_nonce_ * 0xbf58476d1ce4e5b9ULL);
      h ^= h >> 29;
      h *= 0x94d049bb133111ebULL;
      h ^= h >> 32;
      chosen = s.best.equal_best[h % s.best.equal_best.size()];
      split = true;
    }
    const RibEntry& entry = s.rib[chosen];

    ExplainedHop hop;
    hop.as = cur;
    hop.chosen_path = entry.as_path;
    hop.next = entry.neighbor;
    hop.multipath_split = split;
    DecisionOptions opts;
    opts.prefer_oldest =
        sim_->options().arrival_order_tiebreak && node.prefers_oldest;
    for (const RibEntry& rival : s.rib) {
      if (!rival.present) continue;
      ++hop.candidates;
      if (&rival == &entry) continue;
      DecisionStep step{};
      (void)compare_routes(s.rib[s.best.best], rival, opts, &step);
      if (static_cast<int>(step) > static_cast<int>(hop.hardest_step)) {
        hop.hardest_step = step;
      }
    }
    out.hops.push_back(std::move(hop));

    if (!entry.neighbor.valid()) {
      // Delegate the final intra-AS attachment choice to the uncached walk
      // so the two code paths cannot drift apart.  explain() deliberately
      // bypasses the forwarding cache end to end: a diagnostic trace must
      // reflect the ground-truth walk, never a (hypothetically buggy)
      // memoized one — the cache-invariance suite compares the two.
      const ResolvedPath path = resolve_walk(cur, cur_loc, flow_hash, nullptr);
      out.reachable = path.reachable;
      out.site = path.site;
      return out;
    }
    const int slot = sim_->neighbor_slot(cur, entry.neighbor);
    const topo::AsLink& link =
        net.graph.link(sim_->adj_[cur.value()][slot].link);
    cur = entry.neighbor;
    cur_loc = link.where;
  }
  return out;
}

}  // namespace anyopt::bgp
