#include "bgp/policy.h"

namespace anyopt::bgp {

PolicyEngine::PolicyEngine(const topo::Internet& net) : net_(net) {
  tier1_index_.assign(net.graph.as_count(), -1);
  for (std::size_t i = 0; i < net.tier1s.size(); ++i) {
    tier1_index_[net.tier1s[i].value()] = static_cast<int>(i);
  }
}

int PolicyEngine::origin_side_tier1_index(
    const std::vector<AsId>& as_path) const {
  // as_path is [sender, ..., first-hop AS adjacent to origin]; scan from the
  // origin side so that for tier-1-only announcements we find the host.
  for (auto it = as_path.rbegin(); it != as_path.rend(); ++it) {
    const int idx = tier1_index_[it->value()];
    if (idx >= 0) return idx;
  }
  return -1;
}

int PolicyEngine::import_local_pref(AsId receiver,
                                    topo::Relation learned_from,
                                    const std::vector<AsId>& as_path) const {
  int pref = topo::default_local_pref(learned_from);
  const auto& rank = net_.deviant_rank[receiver.value()];
  if (!rank.empty()) {
    const int t1 = origin_side_tier1_index(as_path);
    if (t1 >= 0 && t1 < static_cast<int>(rank.size())) {
      // Bonus in [4, 4*T]: enough to override AS-path length within a band,
      // never enough to jump to the next relationship band.
      pref += 4 * (static_cast<int>(rank.size()) - rank[t1]);
    }
  }
  return pref;
}

bool PolicyEngine::may_export(topo::Relation learned_from,
                              topo::Relation target_is) {
  // Routes from customers are exported to everyone; routes from peers or
  // providers only to customers.
  if (learned_from == topo::Relation::kCustomer) return true;
  return target_is == topo::Relation::kCustomer;
}

}  // namespace anyopt::bgp
