#pragma once
// The mitigation search: "which knob sequence restores the SLO fastest?"
//
// Given a deployed configuration whose SLO an attack pulse breaks, the
// engine enumerates candidate playbooks (prepend / withdraw / re-announce
// sequences), evaluates each through the copy-on-write overlay path — one
// shared converged base, one delta re-convergence per step — and scores
// survivors by time-to-mitigate, then post-mitigation mean RTT.
//
// Search discipline:
//  * Depth-first by step count.  Time-to-mitigate is monotone in the
//    number of knobs applied (each knob costs `knob_delay_s` of operator
//    clock), so if ANY single step restores the SLO no two-step playbook
//    can beat it and deeper enumeration is skipped entirely.
//  * Pruning: a candidate's next step must plausibly help — shed load from
//    a currently-overloaded site (withdraw/prepend it) or add capacity
//    (re-announce a disabled site).  Valid-but-aimless steps are counted in
//    `MitigationResult::pruned` and never simulated.
//  * Determinism: every simulation nonce is a content hash of the playbook
//    prefix it evaluates (never of thread or enumeration order), candidate
//    evaluations write indexed slots, and winner selection is a serial
//    total order — results are bit-identical at any thread count, and the
//    overlay path is bit-identical to classic per-step re-convergence
//    because a shared base is interchangeable with a freshly converged
//    private one (the documented `converge_base` contract; the agility
//    invariance suite enforces both).
//
// Fault composition: the engine inherits the orchestrator's FaultInjector.
// Steps whose schedule the fault layer would rewrite fall back to classic
// measurement inside `measure_overlay` transparently; attacks therefore
// compose with session flaps and loss storms exactly as campaigns do.

#include <cstdint>
#include <limits>
#include <vector>

#include "agility/playbook.h"
#include "agility/workload.h"
#include "measure/orchestrator.h"
#include "netbase/thread_pool.h"

namespace anyopt::agility {

/// \brief Search parameters.
struct AgilityOptions {
  SloPolicy slo;               ///< the objective to restore
  /// Operator clock per knob applied (config push + BGP propagation);
  /// step i of a playbook lands at (i+1) * knob_delay_s.
  double knob_delay_s = 60.0;
  /// Settle time after the last knob before the SLO is re-assessed; the
  /// time-to-mitigate of a k-step playbook is k*knob_delay_s + settle_s.
  double settle_s = 60.0;
  std::size_t max_steps = 2;       ///< deepest playbook examined
  std::uint8_t prepend_levels = 2; ///< prepend depths 1..levels per site
  std::uint64_t seed = 0xA61;      ///< roots every content-derived nonce
  /// Candidate-parallel evaluation pool (not owned; nullptr = serial).
  /// Must NOT be a pool the calling task itself runs on, and must not be
  /// shared with `OrchestratorOptions::resolve_pool` — nested parallel_for
  /// on one pool can deadlock.
  ThreadPool* pool = nullptr;
  /// Evaluate steps over one shared converged base (copy-on-write
  /// overlays).  `false` re-converges a private base per step — the classic
  /// path; results are bit-identical, only the event counts differ.
  bool use_overlays = true;
  /// Model-clock instant the SLO is assessed at (attack pulses active at
  /// this time apply).
  double attack_time_s = 0.0;
};

/// \brief One evaluated step of a playbook.
struct StepOutcome {
  SloState slo;               ///< SLO state after this step settled
  double at_s = 0;            ///< operator clock when the knob applied
  std::size_t sim_events = 0; ///< simulation events this step cost
};

/// \brief One fully scored candidate playbook.
struct PlaybookOutcome {
  Playbook playbook;
  bool mitigated = false;
  /// Operator clock from attack detection to a passing SLO assessment;
  /// infinity when the playbook never restores the SLO.
  double time_to_mitigate_s = std::numeric_limits<double>::infinity();
  /// Demand-weighted mean RTT after the final evaluated step.
  double post_mean_rtt_ms = std::numeric_limits<double>::infinity();
  std::size_t steps_needed = 0;   ///< steps applied when the SLO passed
  std::size_t sim_events = 0;     ///< summed events across evaluated steps
  std::vector<StepOutcome> steps; ///< per-step trail (prefix-shared runs)
};

/// \brief Search result.
struct MitigationResult {
  SloState baseline;        ///< SLO state of the deployed config under attack
  bool slo_violated = false;///< baseline verdict (false = nothing to do)
  PlaybookOutcome best;     ///< winning playbook (empty "hold" when none)
  std::size_t candidates = 0;      ///< playbooks actually simulated
  std::size_t pruned = 0;          ///< valid steps pruned unsimulated
  std::size_t base_events = 0;     ///< events converging the shared base
  /// Total simulation events the search issued (base + baseline + every
  /// step run) — the overlay-vs-classic savings counter the bench records.
  std::size_t total_sim_events = 0;
};

/// \brief The playbook search engine.
class AgilityEngine {
 public:
  /// \brief Binds the engine to a measurement plane and a demand model.
  /// \param orchestrator the measurement orchestrator (must outlive this).
  /// \param demand per-target demand plus attack pulses.
  /// \param options search parameters; see `AgilityOptions`.
  AgilityEngine(const measure::Orchestrator& orchestrator, DemandModel demand,
                AgilityOptions options = {});

  /// \brief Runs the mitigation search for `deployed`.
  ///
  /// Converges the deployed schedule once, assesses the baseline SLO under
  /// the attack, and — when violated — searches playbooks up to
  /// `max_steps` deep.  Deterministic: the result is a pure function of
  /// (world, deployed, demand, options), bit-identical at any pool size
  /// and between the overlay and classic paths.
  /// \param deployed the configuration currently announced.
  /// \return the search result.
  [[nodiscard]] MitigationResult mitigate(
      const anycast::AnycastConfig& deployed) const;

  [[nodiscard]] const DemandModel& demand() const { return demand_; }
  [[nodiscard]] const AgilityOptions& options() const { return options_; }

 private:
  const measure::Orchestrator& orchestrator_;
  DemandModel demand_;
  AgilityOptions options_;
};

}  // namespace anyopt::agility
