#pragma once
// Playbooks: timed sequences of the traffic-engineering knobs the repo
// already simulates — AS-path prepend, site withdraw, site re-announce —
// expressed as `AnycastConfig` rewrites plus `bgp::Injection` deltas.
//
// A playbook is DATA, not behavior: `config_after` yields the configuration
// deployed after the first k steps (what the fault layer and SLO assessment
// see), and `append_step_delta` emits the injections one step adds on top
// of the already-deployed base — which is exactly the shape the
// copy-on-write overlay path (`Orchestrator::measure_overlay`) consumes, so
// evaluating a candidate step costs a delta re-convergence rather than a
// full simulation.  Every derived quantity (content keys, description) is a
// pure function of the step list, which is what makes playbook evaluation
// bit-identical across thread counts and between the overlay and classic
// paths (the agility invariance suite enforces both).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "anycast/config.h"
#include "anycast/deployment.h"
#include "bgp/origin.h"
#include "netbase/ids.h"

namespace anyopt::agility {

/// \brief The three mitigation knobs (§6 catchment shaping + withdraw).
enum class Knob : std::uint8_t {
  kPrepend,     ///< re-announce `site` with `prepend` extra origin hops
  kWithdraw,    ///< withdraw `site`'s transit announcement
  kReannounce,  ///< announce a currently-disabled `site`
};

/// \brief One knob application.
struct PlaybookStep {
  Knob knob = Knob::kPrepend;
  SiteId site;
  std::uint8_t prepend = 0;  ///< kPrepend only: extra origin-AS repeats

  [[nodiscard]] bool operator==(const PlaybookStep&) const = default;
};

/// \brief An ordered knob sequence.
struct Playbook {
  std::vector<PlaybookStep> steps;

  /// \brief Human-readable summary ("prepend 3x2 > withdraw 7").
  [[nodiscard]] std::string describe() const;

  /// \brief Content-derived key chain: element i is a pure hash of `seed`
  ///        and steps[0..i].  Prefix-sharing playbooks share prefix keys,
  ///        so a two-step candidate reuses its one-step parent's first
  ///        evaluation bit for bit (and nonces never depend on enumeration
  ///        or thread order).
  [[nodiscard]] std::vector<std::uint64_t> prefix_keys(
      std::uint64_t seed) const;
};

/// \brief Whether `step` can legally apply to `config` (withdraw needs the
///        site announced and not the last one standing; prepend needs the
///        site announced at a different depth; re-announce needs it absent).
[[nodiscard]] bool step_valid(const anycast::AnycastConfig& config,
                              const PlaybookStep& step);

/// \brief The configuration deployed after the first `count` steps of
///        `playbook` applied to `deployed`.  Steps must be valid in
///        sequence (`step_valid` against each intermediate config).
[[nodiscard]] anycast::AnycastConfig config_after(
    const anycast::AnycastConfig& deployed, const Playbook& playbook,
    std::size_t count);

/// \brief Appends the injections one step adds at model time `at_s`
///        (relative to the overlay base's convergence horizon).
///
/// Withdraw emits one withdraw injection; re-announce one announce;
/// prepend a withdraw at `at_s` plus a re-announcement `kPrependGapS`
/// later carrying the new prepend depth (the two-message reality of
/// changing an announcement's path attributes).  Appending steps at
/// increasing `at_s` keeps the cumulative delta time-sorted.
/// \param delta the cumulative delta being built (appended to).
/// \param deployment maps sites to transit attachments.
/// \param step the knob to apply.
/// \param at_s when the operator applies it (overlay-relative seconds).
void append_step_delta(std::vector<bgp::Injection>& delta,
                       const anycast::Deployment& deployment,
                       const PlaybookStep& step, double at_s);

/// Gap between a prepend step's withdraw and its re-announcement; must stay
/// below any knob spacing so cumulative deltas remain time-sorted.
inline constexpr double kPrependGapS = 30.0;

}  // namespace anyopt::agility
