#include "agility/engine.h"

#include <algorithm>
#include <optional>

#include "agility/metrics.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"

namespace anyopt::agility {

namespace {

/// Every step legally applicable to `config`, in a deterministic order
/// (per site ascending: withdraw, prepend depths 1..levels, re-announce).
std::vector<PlaybookStep> all_valid_steps(const anycast::AnycastConfig& config,
                                          std::size_t site_count,
                                          std::uint8_t prepend_levels) {
  std::vector<PlaybookStep> steps;
  for (std::size_t s = 0; s < site_count; ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    PlaybookStep withdraw{Knob::kWithdraw, site, 0};
    if (step_valid(config, withdraw)) steps.push_back(withdraw);
    for (std::uint8_t k = 1; k <= prepend_levels; ++k) {
      PlaybookStep prepend{Knob::kPrepend, site, k};
      if (step_valid(config, prepend)) steps.push_back(prepend);
    }
    PlaybookStep reannounce{Knob::kReannounce, site, 0};
    if (step_valid(config, reannounce)) steps.push_back(reannounce);
  }
  return steps;
}

/// Whether `step` can plausibly help against `slo`'s violation: shed load
/// from an overloaded site, or add capacity by enabling a site.
bool helpful(const PlaybookStep& step, const SloState& slo) {
  if (step.knob == Knob::kReannounce) return true;
  return std::find(slo.overloaded.begin(), slo.overloaded.end(), step.site) !=
         slo.overloaded.end();
}

/// mitigated > lower time-to-mitigate > lower residual excess > lower
/// post RTT > fewer steps > lexicographic description — a serial total
/// order, so the winner never depends on evaluation order.
bool better(const PlaybookOutcome& a, const PlaybookOutcome& b) {
  if (a.mitigated != b.mitigated) return a.mitigated;
  if (a.time_to_mitigate_s != b.time_to_mitigate_s) {
    return a.time_to_mitigate_s < b.time_to_mitigate_s;
  }
  const double excess_a = a.steps.empty() ? 0 : a.steps.back().slo.worst_excess;
  const double excess_b = b.steps.empty() ? 0 : b.steps.back().slo.worst_excess;
  if (excess_a != excess_b) return excess_a < excess_b;
  if (a.post_mean_rtt_ms != b.post_mean_rtt_ms) {
    return a.post_mean_rtt_ms < b.post_mean_rtt_ms;
  }
  if (a.playbook.steps.size() != b.playbook.steps.size()) {
    return a.playbook.steps.size() < b.playbook.steps.size();
  }
  return a.playbook.describe() < b.playbook.describe();
}

}  // namespace

AgilityEngine::AgilityEngine(const measure::Orchestrator& orchestrator,
                             DemandModel demand, AgilityOptions options)
    : orchestrator_(orchestrator),
      demand_(std::move(demand)),
      options_(std::move(options)) {}

MitigationResult AgilityEngine::mitigate(
    const anycast::AnycastConfig& deployed) const {
  const bool telem = telemetry::enabled();
  const std::size_t site_count =
      orchestrator_.world().deployment().site_count();
  const anycast::Deployment& deployment = orchestrator_.world().deployment();
  const std::uint64_t base_nonce = mix64(options_.seed, 0xBA5EULL);

  MitigationResult result;

  // The shared base: converged once, forked by every overlay evaluation.
  // The classic path converges an interchangeable private base per run
  // instead (same nonce, bit-identical tables — the converge_base
  // contract), paying the convergence cost every step.
  std::optional<bgp::BaseState> shared;
  if (options_.use_overlays) {
    shared.emplace(orchestrator_.converge_base(deployed, base_nonce));
    result.base_events = shared->events();
    result.total_sim_events += result.base_events;
  }

  /// Runs one playbook prefix's final step: the cumulative delta of
  /// `steps[0..count)` over the deployed base, measured, assessed at the
  /// attack instant.  Pure in (playbook prefix, options) — the nonce is
  /// the prefix's content key.
  const auto run_step = [&](const Playbook& playbook, std::size_t count,
                            const std::vector<std::uint64_t>& keys) {
    const anycast::AnycastConfig config =
        config_after(deployed, playbook, count);
    std::vector<bgp::Injection> delta;
    for (std::size_t i = 0; i < count; ++i) {
      append_step_delta(delta, deployment, playbook.steps[i],
                        (static_cast<double>(i) + 1.0) * options_.knob_delay_s);
    }
    const std::uint64_t nonce =
        count == 0 ? mix64(options_.seed, 0xBA5E11E0ULL) : keys[count - 1];
    thread_local bgp::SimScratch scratch;
    StepOutcome outcome;
    outcome.at_s = static_cast<double>(count) * options_.knob_delay_s;
    std::size_t events = 0;
    measure::Census census;
    if (options_.use_overlays) {
      census = orchestrator_.measure_overlay(*shared, config, delta, nonce,
                                             &scratch, {}, &events);
      if (telem) AgilityMetrics::get().overlay_steps->add(1);
    } else {
      const bgp::BaseState priv =
          orchestrator_.converge_base(deployed, base_nonce);
      census = orchestrator_.measure_overlay(priv, config, delta, nonce,
                                             &scratch, {}, &events);
      events += priv.events();
      if (telem) AgilityMetrics::get().classic_steps->add(1);
    }
    if (telem) AgilityMetrics::get().evaluations->add(1);
    outcome.sim_events = events;
    outcome.slo = assess(census, demand_, options_.slo, site_count,
                         options_.attack_time_s);
    return outcome;
  };

  // --- Baseline: the deployed configuration under the attack. ---
  const Playbook hold;
  const StepOutcome baseline = run_step(hold, 0, {});
  result.total_sim_events += baseline.sim_events;
  result.baseline = baseline.slo;
  result.slo_violated = !baseline.slo.ok;
  if (telem) {
    const AgilityMetrics& m = AgilityMetrics::get();
    m.overloaded_sites->set(
        static_cast<std::int64_t>(baseline.slo.overloaded.size()));
    m.worst_excess_weight->set(
        static_cast<std::int64_t>(baseline.slo.worst_excess * 1000.0));
    if (result.slo_violated) m.slo_violations->add(1);
  }
  if (!result.slo_violated) {
    // Nothing to mitigate: hold wins with a zero time-to-mitigate.
    result.best.mitigated = true;
    result.best.time_to_mitigate_s = 0;
    result.best.post_mean_rtt_ms = baseline.slo.mean_rtt_ms;
    return result;
  }

  /// Evaluates a batch of candidate playbooks (each extending a shared,
  /// already-evaluated prefix by one step) into indexed slots — parallel
  /// when a pool is configured, bit-identical either way.
  const auto evaluate_batch = [&](std::vector<PlaybookOutcome>& batch) {
    const auto evaluate_one = [&](std::size_t i) {
      PlaybookOutcome& candidate = batch[i];
      const std::size_t depth = candidate.playbook.steps.size();
      const std::vector<std::uint64_t> keys =
          candidate.playbook.prefix_keys(options_.seed);
      StepOutcome step = run_step(candidate.playbook, depth, keys);
      candidate.sim_events += step.sim_events;
      if (step.slo.ok) {
        candidate.mitigated = true;
        candidate.steps_needed = depth;
        candidate.time_to_mitigate_s =
            static_cast<double>(depth) * options_.knob_delay_s +
            options_.settle_s;
      }
      candidate.post_mean_rtt_ms = step.slo.mean_rtt_ms;
      candidate.steps.push_back(std::move(step));
    };
    if (options_.pool != nullptr && options_.pool->size() > 1) {
      options_.pool->parallel_for(batch.size(), evaluate_one);
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) evaluate_one(i);
    }
    for (const PlaybookOutcome& candidate : batch) {
      result.total_sim_events += candidate.steps.back().sim_events;
    }
    result.candidates += batch.size();
  };

  // --- Depth 1: every helpful single step. ---
  std::vector<PlaybookOutcome> scored;
  std::vector<PlaybookOutcome> frontier;
  {
    const std::vector<PlaybookStep> valid =
        all_valid_steps(deployed, site_count, options_.prepend_levels);
    for (const PlaybookStep& step : valid) {
      if (!helpful(step, baseline.slo)) {
        ++result.pruned;
        continue;
      }
      PlaybookOutcome candidate;
      candidate.playbook.steps = {step};
      frontier.push_back(std::move(candidate));
    }
    evaluate_batch(frontier);
    scored.insert(scored.end(), frontier.begin(), frontier.end());
  }

  // --- Deeper only while nothing shallower mitigated (time-to-mitigate is
  // monotone in step count, so a shallow win closes the search). ---
  for (std::size_t depth = 2;
       depth <= options_.max_steps &&
       std::none_of(frontier.begin(), frontier.end(),
                    [](const PlaybookOutcome& c) { return c.mitigated; });
       ++depth) {
    std::vector<PlaybookOutcome> next;
    for (const PlaybookOutcome& parent : frontier) {
      const anycast::AnycastConfig after = config_after(
          deployed, parent.playbook, parent.playbook.steps.size());
      const SloState& after_slo = parent.steps.back().slo;
      for (const PlaybookStep& step :
           all_valid_steps(after, site_count, options_.prepend_levels)) {
        if (!helpful(step, after_slo)) {
          ++result.pruned;
          continue;
        }
        PlaybookOutcome candidate;
        candidate.playbook.steps = parent.playbook.steps;
        candidate.playbook.steps.push_back(step);
        // The prefix's evaluation is reused bit for bit: its nonce is the
        // prefix content key, independent of which candidate carries it.
        candidate.steps = parent.steps;
        candidate.sim_events = parent.sim_events;
        next.push_back(std::move(candidate));
      }
    }
    if (next.empty()) break;
    evaluate_batch(next);
    scored.insert(scored.end(), next.begin(), next.end());
    frontier = std::move(next);
  }

  // --- Serial winner selection over everything evaluated. ---
  if (scored.empty()) {
    result.best.post_mean_rtt_ms = baseline.slo.mean_rtt_ms;
    return result;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < scored.size(); ++i) {
    if (better(scored[i], scored[best])) best = i;
  }
  result.best = std::move(scored[best]);
  if (telem) {
    const AgilityMetrics& m = AgilityMetrics::get();
    m.candidates->add(result.candidates);
    m.pruned->add(result.pruned);
    if (result.best.mitigated) m.mitigations->add(1);
  }
  return result;
}

}  // namespace anyopt::agility
