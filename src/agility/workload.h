#pragma once
// Traffic/attack workload model (the agility engine's demand side).
//
// The optimizer's Appendix-B Eq. 7 capacity gate compares a site's summed
// catchment weight against its capacity at one instant; this header gives
// those weights a TIME AXIS.  A `DemandModel` is a per-target base demand
// plus attack pulses — windows during which an attacker multiplies the
// demand of a target set (the volumetric-DDoS model of the *Anycast
// Agility* playbook paper).  `assess` folds a measured census and a demand
// model into per-site loads and an SLO verdict, using EXACTLY the Eq. 7
// comparison the optimizer enforces: a site is overloaded iff
// `load > capacity`, a strict comparison that never divides — so a site
// with capacity 0 whose catchment weight sums to 0 is compliant, the same
// defined edge the optimizer documents (core/optimizer.h).

#include <cstdint>
#include <limits>
#include <vector>

#include "measure/orchestrator.h"
#include "netbase/ids.h"

namespace anyopt::agility {

/// \brief One attack window: while active, the demand of every target in
///        `targets` is multiplied by `intensity`.
struct AttackPulse {
  double start_s = 0;  ///< activation time (model clock)
  /// Window length; the default (infinity) models a sustained attack.
  double duration_s = std::numeric_limits<double>::infinity();
  /// Demand multiplier while active (2.0 = the attacked targets double
  /// their weight).  Multiple overlapping pulses multiply.
  double intensity = 2.0;
  /// Attacked target ids, SORTED ascending (membership is binary-searched).
  /// Empty = every target (a fully distributed volumetric attack).
  std::vector<std::uint32_t> targets;

  /// \brief Whether the pulse is active at `time_s` (half-open window).
  [[nodiscard]] bool active_at(double time_s) const {
    return time_s >= start_s && time_s < start_s + duration_s;
  }
};

/// \brief Per-target demand over time: base weights times active pulses.
struct DemandModel {
  /// Base per-target demand weight; empty = uniform 1.0 (the optimizer's
  /// own uncapacitated default).
  std::vector<double> base_weight;
  std::vector<AttackPulse> pulses;

  /// \brief Demand weight of `target` at `time_s`.
  [[nodiscard]] double weight(std::size_t target, double time_s) const;
  /// \brief Summed demand over `target_count` targets at `time_s`.
  [[nodiscard]] double total_weight(std::size_t target_count,
                                    double time_s) const;
};

/// \brief The service-level objective the playbook engine restores.
struct SloPolicy {
  /// Per-site capacity in summed demand weight (Eq. 7 units); empty =
  /// uncapacitated.  Sites beyond the vector are uncapacitated.
  std::vector<double> site_capacity;
  /// Upper bound on the demand-weighted mean RTT; infinity = latency
  /// unconstrained (capacity-only SLO).
  double max_mean_rtt_ms = std::numeric_limits<double>::infinity();
};

/// \brief One SLO evaluation: per-site loads plus the verdict.
struct SloState {
  bool ok = true;                  ///< SLO met (no overload, RTT in bound)
  std::vector<double> load;        ///< summed catchment weight per site
  double mean_rtt_ms = 0;          ///< demand-weighted mean measured RTT
  std::vector<SiteId> overloaded;  ///< sites with load > capacity
  /// Largest load-minus-capacity excess across sites (0 when none) — the
  /// severity gauge the engine exports.
  double worst_excess = 0;
};

/// \brief Folds a measured census and the demand at `time_s` into per-site
///        loads and the SLO verdict (Eq. 7 semantics; strict `>`, no
///        division, capacity 0 + load 0 is compliant).
/// \param census the measured catchments/RTTs (unreachable targets carry
///        no load — their traffic is blackholed, not queued).
/// \param demand the demand model (attack pulses applied at `time_s`).
/// \param policy capacities and the RTT bound.
/// \param site_count sites in the deployment (sizes `SloState::load`).
/// \param time_s the model-clock instant to evaluate demand at.
[[nodiscard]] SloState assess(const measure::Census& census,
                              const DemandModel& demand,
                              const SloPolicy& policy, std::size_t site_count,
                              double time_s);

}  // namespace anyopt::agility
