#pragma once
// Telemetry names of the agility engine, listed once so the docs suite can
// enforce that every `agility.*` counter/gauge is documented in DESIGN.md
// (the same single-source pattern as `resmon.h`'s kByteGauges).

#include "netbase/telemetry.h"

namespace anyopt::agility {

/// Every telemetry name the agility engine emits.  docs_test parses this
/// initializer and requires each name to appear (backticked) in DESIGN.md;
/// add entries here and document them, or the build's test suite fails.
inline constexpr const char* kAgilityMetrics[] = {
    "agility.evaluations",        // counter: playbook step simulations run
    "agility.overlay_steps",      // counter: steps run over the shared base
    "agility.classic_steps",      // counter: steps run over private bases
    "agility.candidates",         // counter: playbooks scored by a search
    "agility.pruned",             // counter: valid steps pruned unscored
    "agility.mitigations",        // counter: searches that restored the SLO
    "agility.slo_violations",     // counter: searches that began violated
    "agility.overloaded_sites",   // gauge: overloaded sites at baseline
    "agility.worst_excess_weight" // gauge: max load-over-capacity, millis
};

/// Pre-resolved agility metrics (one registry lookup per process).
struct AgilityMetrics {
  telemetry::Counter* evaluations;
  telemetry::Counter* overlay_steps;
  telemetry::Counter* classic_steps;
  telemetry::Counter* candidates;
  telemetry::Counter* pruned;
  telemetry::Counter* mitigations;
  telemetry::Counter* slo_violations;
  telemetry::Gauge* overloaded_sites;
  telemetry::Gauge* worst_excess_weight;

  static const AgilityMetrics& get() {
    static const AgilityMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return AgilityMetrics{&reg.counter("agility.evaluations"),
                            &reg.counter("agility.overlay_steps"),
                            &reg.counter("agility.classic_steps"),
                            &reg.counter("agility.candidates"),
                            &reg.counter("agility.pruned"),
                            &reg.counter("agility.mitigations"),
                            &reg.counter("agility.slo_violations"),
                            &reg.gauge("agility.overloaded_sites"),
                            &reg.gauge("agility.worst_excess_weight")};
    }();
    return m;
  }
};

}  // namespace anyopt::agility
