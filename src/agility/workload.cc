#include "agility/workload.h"

#include <algorithm>

namespace anyopt::agility {

double DemandModel::weight(std::size_t target, double time_s) const {
  double w = base_weight.empty() ? 1.0 : base_weight[target];
  for (const AttackPulse& pulse : pulses) {
    if (!pulse.active_at(time_s)) continue;
    if (pulse.targets.empty() ||
        std::binary_search(pulse.targets.begin(), pulse.targets.end(),
                           static_cast<std::uint32_t>(target))) {
      w *= pulse.intensity;
    }
  }
  return w;
}

double DemandModel::total_weight(std::size_t target_count,
                                 double time_s) const {
  double total = 0;
  for (std::size_t t = 0; t < target_count; ++t) total += weight(t, time_s);
  return total;
}

SloState assess(const measure::Census& census, const DemandModel& demand,
                const SloPolicy& policy, std::size_t site_count,
                double time_s) {
  SloState state;
  state.load.assign(site_count, 0.0);
  double rtt_sum = 0;
  double rtt_weight = 0;
  for (std::size_t t = 0; t < census.site_of_target.size(); ++t) {
    const SiteId site = census.site_of_target[t];
    if (!site.valid()) continue;  // unreachable: blackholed, never queued
    const double w = demand.weight(t, time_s);
    if (site.value() < site_count) state.load[site.value()] += w;
    if (census.rtt_ms[t] >= 0 && w > 0) {
      rtt_sum += w * census.rtt_ms[t];
      rtt_weight += w;
    }
  }
  if (rtt_weight > 0) state.mean_rtt_ms = rtt_sum / rtt_weight;

  // Eq. 7, verbatim: strict comparison, never a division — capacity 0 with
  // load 0 passes, any strictly positive excess fails.
  for (std::size_t s = 0; s < site_count; ++s) {
    const double capacity = s < policy.site_capacity.size()
                                ? policy.site_capacity[s]
                                : std::numeric_limits<double>::infinity();
    if (state.load[s] > capacity) {
      state.overloaded.push_back(
          SiteId{static_cast<SiteId::underlying_type>(s)});
      state.worst_excess = std::max(state.worst_excess, state.load[s] - capacity);
    }
  }
  state.ok = state.overloaded.empty() && state.mean_rtt_ms <= policy.max_mean_rtt_ms;
  return state;
}

}  // namespace anyopt::agility
