#include "agility/playbook.h"

#include <algorithm>

#include "netbase/rng.h"

namespace anyopt::agility {

namespace {

/// Position of `site` in the announce order, or npos.
std::size_t position_of(const anycast::AnycastConfig& config, SiteId site) {
  for (std::size_t i = 0; i < config.announce_order.size(); ++i) {
    if (config.announce_order[i] == site) return i;
  }
  return static_cast<std::size_t>(-1);
}

/// Current prepend depth of the announcement at `pos` (0 when the prepend
/// vector is shorter — absent slots mean "no prepend").
std::uint8_t prepend_at(const anycast::AnycastConfig& config,
                        std::size_t pos) {
  return pos < config.prepend.size() ? config.prepend[pos] : 0;
}

/// One step folded into a 64-bit word for the content-key chain.
std::uint64_t encode(const PlaybookStep& step) {
  return (static_cast<std::uint64_t>(step.knob) << 40) |
         (static_cast<std::uint64_t>(step.site.value()) << 8) |
         static_cast<std::uint64_t>(step.prepend);
}

void apply_step(anycast::AnycastConfig& config, const PlaybookStep& step) {
  const std::size_t pos = position_of(config, step.site);
  switch (step.knob) {
    case Knob::kWithdraw:
      config.announce_order.erase(config.announce_order.begin() +
                                  static_cast<std::ptrdiff_t>(pos));
      if (!config.prepend.empty()) {
        config.prepend.resize(config.announce_order.size() + 1, 0);
        config.prepend.erase(config.prepend.begin() +
                             static_cast<std::ptrdiff_t>(pos));
      }
      break;
    case Knob::kPrepend:
      if (config.prepend.size() < config.announce_order.size()) {
        config.prepend.resize(config.announce_order.size(), 0);
      }
      config.prepend[pos] = step.prepend;
      break;
    case Knob::kReannounce:
      config.announce_order.push_back(step.site);
      if (!config.prepend.empty()) config.prepend.push_back(0);
      break;
  }
}

}  // namespace

std::string Playbook::describe() const {
  if (steps.empty()) return "hold";
  std::string out;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += " > ";
    const PlaybookStep& step = steps[i];
    switch (step.knob) {
      case Knob::kPrepend:
        out += "prepend " + std::to_string(step.site.value()) + "x" +
               std::to_string(step.prepend);
        break;
      case Knob::kWithdraw:
        out += "withdraw " + std::to_string(step.site.value());
        break;
      case Knob::kReannounce:
        out += "reannounce " + std::to_string(step.site.value());
        break;
    }
  }
  return out;
}

std::vector<std::uint64_t> Playbook::prefix_keys(std::uint64_t seed) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(steps.size());
  std::uint64_t key = mix64(seed, 0xA6111DULL);
  for (const PlaybookStep& step : steps) {
    key = mix64(key, encode(step));
    keys.push_back(key);
  }
  return keys;
}

bool step_valid(const anycast::AnycastConfig& config,
                const PlaybookStep& step) {
  const std::size_t pos = position_of(config, step.site);
  const bool announced = pos != static_cast<std::size_t>(-1);
  switch (step.knob) {
    case Knob::kWithdraw:
      // Never withdraw the last announcement: an empty deployment is not a
      // mitigation, it is an outage.
      return announced && config.announce_order.size() > 1;
    case Knob::kPrepend:
      return announced && step.prepend > 0 &&
             prepend_at(config, pos) != step.prepend;
    case Knob::kReannounce:
      return !announced;
  }
  return false;
}

anycast::AnycastConfig config_after(const anycast::AnycastConfig& deployed,
                                    const Playbook& playbook,
                                    std::size_t count) {
  anycast::AnycastConfig config = deployed;
  for (std::size_t i = 0; i < count && i < playbook.steps.size(); ++i) {
    apply_step(config, playbook.steps[i]);
  }
  return config;
}

void append_step_delta(std::vector<bgp::Injection>& delta,
                       const anycast::Deployment& deployment,
                       const PlaybookStep& step, double at_s) {
  const bgp::AttachmentIndex attachment =
      deployment.transit_attachment(step.site);
  switch (step.knob) {
    case Knob::kWithdraw: {
      bgp::Injection inj;
      inj.time_s = at_s;
      inj.attachment = attachment;
      inj.withdraw = true;
      delta.push_back(inj);
      break;
    }
    case Knob::kPrepend: {
      // Changing path attributes is withdraw + re-announce on the wire; the
      // re-announcement arrives with a fresh arrival seq, exactly as a real
      // session would deliver it.
      bgp::Injection down;
      down.time_s = at_s;
      down.attachment = attachment;
      down.withdraw = true;
      delta.push_back(down);
      bgp::Injection up;
      up.time_s = at_s + kPrependGapS;
      up.attachment = attachment;
      up.prepend = step.prepend;
      delta.push_back(up);
      break;
    }
    case Knob::kReannounce: {
      bgp::Injection inj;
      inj.time_s = at_s;
      inj.attachment = attachment;
      delta.push_back(inj);
      break;
    }
  }
}

}  // namespace anyopt::agility
