#include "measure/orchestrator.h"

#include <algorithm>

#include "bgp/compact.h"
#include "bgp/flap.h"
#include "measure/census_shards.h"
#include "netbase/resmon.h"
#include "netbase/stats.h"
#include "netbase/telemetry.h"
#include "netbase/thread_pool.h"

namespace anyopt::measure {

namespace {

/// Pre-resolved census metrics (one registry lookup per process).
struct CensusMetrics {
  telemetry::Counter* censuses;
  telemetry::Counter* probes_sent;
  telemetry::Counter* probes_lost;
  telemetry::Counter* probe_retries;
  telemetry::Counter* targets_unreachable;
  telemetry::Histogram* census_ms;

  static const CensusMetrics& get() {
    static const CensusMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return CensusMetrics{&reg.counter("measure.censuses"),
                           &reg.counter("measure.probes.sent"),
                           &reg.counter("measure.probes.lost"),
                           &reg.counter("probe.retries"),
                           &reg.counter("measure.targets_unreachable"),
                           &reg.histogram("measure.census_ms")};
    }();
    return m;
  }
};

/// Pre-resolved fault-injection metrics (one registry lookup per process).
struct FaultMetrics {
  telemetry::Counter* round_failures;
  telemetry::Counter* announce_suppressed;
  telemetry::Counter* flaps;
  telemetry::Counter* degraded_rounds;
  telemetry::Counter* targets_dropped;
  telemetry::Counter* storm_rounds;

  static const FaultMetrics& get() {
    static const FaultMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return FaultMetrics{&reg.counter("fault.injected.round_failures"),
                          &reg.counter("fault.injected.announce_suppressed"),
                          &reg.counter("fault.injected.flaps"),
                          &reg.counter("fault.injected.degraded_rounds"),
                          &reg.counter("fault.injected.targets_dropped"),
                          &reg.counter("fault.injected.storm_rounds")};
    }();
    return m;
  }
};

}  // namespace

std::size_t Census::reachable_count() const {
  std::size_t n = 0;
  for (const SiteId s : site_of_target) {
    if (s.valid()) ++n;
  }
  return n;
}

double Census::mean_rtt() const {
  stats::Online acc;
  for (const double r : rtt_ms) {
    if (r >= 0) acc.add(r);
  }
  // Empty-census contract: 0.0 when nothing was measured (acc.mean() and
  // stats::median both honour it, but the contract lives HERE — callers
  // rely on this header's promise, not on the accumulator's internals).
  return acc.count() == 0 ? 0.0 : acc.mean();
}

double Census::median_rtt() const {
  std::vector<double> valid = valid_rtts();
  return valid.empty() ? 0.0 : stats::median(std::move(valid));
}

std::size_t Census::catchment_size(SiteId site) const {
  std::size_t n = 0;
  for (const SiteId s : site_of_target) {
    if (s == site) ++n;
  }
  return n;
}

std::size_t Census::attachment_catchment_size(bgp::AttachmentIndex at) const {
  std::size_t n = 0;
  for (const bgp::AttachmentIndex a : attachment_of_target) {
    if (a == at) ++n;
  }
  return n;
}

std::vector<double> Census::valid_rtts() const {
  std::vector<double> out;
  out.reserve(rtt_ms.size());
  for (const double r : rtt_ms) {
    if (r >= 0) out.push_back(r);
  }
  return out;
}

Orchestrator::Orchestrator(const anycast::World& world,
                           OrchestratorOptions options)
    : world_(world), options_(options) {
  const auto& targets = world_.targets();
  resolve_order_.resize(targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    resolve_order_[t] = static_cast<std::uint32_t>(t);
  }
  std::stable_sort(resolve_order_.begin(), resolve_order_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return targets.target(TargetId{a}).as.value() <
                            targets.target(TargetId{b}).as.value();
                   });
}

double Orchestrator::tunnel_rtt_ms(SiteId site) const {
  const anycast::Site& s = world_.deployment().site(site);
  // GRE adds encapsulation and the tunnel is pinned through the CDN
  // backbone; a small constant overhead on top of geodesic propagation.
  return 2.0 * geo::one_way_latency_ms(options_.location, s.where) + 1.5;
}

Census Orchestrator::measure(const anycast::AnycastConfig& config,
                             std::uint64_t experiment_nonce) const {
  return measure(config, experiment_nonce, ExperimentAt{});
}

Census Orchestrator::measure(const anycast::AnycastConfig& config,
                             std::uint64_t experiment_nonce,
                             ExperimentAt at) const {
  if (!options_.reuse_scratch) {
    return measure(config, experiment_nonce, nullptr, at);
  }
  // One scratch per thread: `measure` is const and may be called from
  // several campaign workers at once, but each call runs on one thread and
  // consecutive censuses on that thread recycle the same buffers.
  thread_local bgp::SimScratch scratch;
  return measure(config, experiment_nonce, &scratch, at);
}

Census Orchestrator::measure(const anycast::AnycastConfig& config,
                             std::uint64_t experiment_nonce,
                             bgp::SimScratch* scratch) const {
  return measure(config, experiment_nonce, scratch, ExperimentAt{});
}

Census Orchestrator::measure(const anycast::AnycastConfig& config,
                             std::uint64_t experiment_nonce,
                             bgp::SimScratch* scratch, ExperimentAt at) const {
  const bool telem = telemetry::enabled();
  const bool tracing = provenance::active();
  const double t0_us = tracing ? telemetry::now_us() : 0.0;
  provenance::ExperimentTrace trace;
  trace.nonce = experiment_nonce;
  trace.ordinal = at.ordinal;
  trace.attempt = at.attempt;
  trace.path = "classic";
  telemetry::ScopedTimer span(
      "measure.census", "measure",
      telem ? CensusMetrics::get().census_ms : nullptr,
      telem && telemetry::tracing()
          ? telemetry::make_args("nonce", experiment_nonce)
          : std::string{});
  // --- Fault layer (off when no injector is configured). ---
  const fault::FaultInjector* faults = options_.faults;
  fault::RoundFaults round_faults;
  if (faults != nullptr) {
    round_faults = faults->round(at.ordinal, at.attempt);
    if (round_faults.fail_round) {
      // The whole round is lost (orchestrator outage / withdrawn
      // measurement prefix): an entirely empty census, the same shape an
      // unreachable deployment produces.  Callers detect it via
      // reachable_count() == 0 and may re-enqueue with attempt + 1.
      if (telem) FaultMetrics::get().round_failures->add(1);
      if (tracing) {
        trace.round_failed = true;
        trace.targets = world_.targets().size();
        trace.duration_ms = (telemetry::now_us() - t0_us) / 1e3;
        provenance::FlightLog::global().record(trace);
      }
      return empty_census();
    }
  }

  auto schedule = config.schedule(world_.deployment());
  if (faults != nullptr) {
    // Hard site failures: a failed site's announcement never happens.
    std::size_t suppressed = 0;
    std::erase_if(schedule, [&](const bgp::Injection& inj) {
      if (inj.withdraw) return false;
      const SiteId site =
          world_.deployment().attachments()[inj.attachment].site;
      if (!faults->site_failed(site, at.ordinal)) return false;
      ++suppressed;
      return true;
    });
    // Session flaps: withdraw + re-advertise cycles merged into the
    // schedule; the re-advertisement arrives with a fresh arrival_seq, so
    // the oldest-route tie-break can flip permanently (§4.2).
    if (!faults->flaps().empty()) {
      const std::size_t before = schedule.size();
      schedule = bgp::apply_flaps(std::move(schedule), faults->flaps());
      const std::size_t flap_events = (schedule.size() - before) / 2;
      if (telem && flap_events != 0) {
        FaultMetrics::get().flaps->add(flap_events);
      }
      trace.flap_events = flap_events;
    }
    if (telem) {
      const FaultMetrics& m = FaultMetrics::get();
      if (suppressed != 0) m.announce_suppressed->add(suppressed);
      if (round_faults.degraded) m.degraded_rounds->add(1);
      if (round_faults.extra_loss_rate > 0.0) m.storm_rounds->add(1);
    }
    trace.announce_suppressed = suppressed;
    trace.degraded = round_faults.degraded;
    trace.storm = round_faults.extra_loss_rate > 0.0;
  }
  bgp::RoutingState state =
      world_.simulator().run(schedule, experiment_nonce, scratch);
  Census census = census_from_state(state, experiment_nonce, round_faults, at,
                                    tracing ? &trace : nullptr, scratch);
  if (tracing) {
    trace.duration_ms = (telemetry::now_us() - t0_us) / 1e3;
    provenance::FlightLog::global().record(trace);
  }
  return census;
}

Census Orchestrator::empty_census() const {
  const auto& targets = world_.targets();
  Census census;
  census.site_of_target.assign(targets.size(), SiteId{});
  census.attachment_of_target.assign(targets.size(), bgp::kNoAttachment);
  census.rtt_ms.assign(targets.size(), -1.0);
  return census;
}

Census Orchestrator::census_from_state(bgp::RoutingState& state,
                                       std::uint64_t experiment_nonce,
                                       const fault::RoundFaults& round_faults,
                                       ExperimentAt at,
                                       provenance::ExperimentTrace* trace,
                                       bgp::SimScratch* scratch) const {
  const bool telem = telemetry::enabled();
  const fault::FaultInjector* faults = options_.faults;
  const auto& targets = world_.targets();
  Census census = empty_census();

  // Engine-side stats, captured before the state may recycle below.
  const std::size_t sim_events = state.events_processed();
  const std::size_t overlay_copied = state.overlay_copied_bytes();

  // Pass 1 — resolve every target's forwarding path into the sharded
  // aggregation plane, visiting targets grouped by client AS so each AS's
  // memoized walk is built once and replayed while hot.  Resolution is a
  // pure function of the converged state, so visiting order cannot change
  // any result; only reachable targets write (unwritten = unreachable).
  CensusShards resolved(targets.size());
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t rib_bytes = 0;
  std::size_t cache_bytes = 0;
  if (options_.compact_resolve) {
    bgp::CompactState rib =
        bgp::CompactState::freeze(world_.simulator(), state);
    // The engine layout is dead from here on: recycle its arena before the
    // resolve pass, so at Internet scale the two layouts never coexist.
    // Over the memory budget the arena must not be PARKED either — skip
    // the recycle and let the caller's state free on scope exit instead —
    // and the frozen walk cache degrades to uncached (results are
    // bit-identical at any cache capacity).
    if (scratch != nullptr && !resmon::over_mem_budget()) {
      scratch->recycle(std::move(state));
    } else if (resmon::over_mem_budget()) {
      rib.set_cache_capacity(0);
    }
    ThreadPool* pool = options_.resolve_pool;
    if (pool != nullptr && pool->size() > 1 && !resolve_order_.empty()) {
      // Parallel resolve (the ROADMAP item-2 headroom): workers take
      // contiguous chunks of the AS-grouped order, each chunk's end pushed
      // forward so a client AS's run never splits.  That gives every AS
      // exactly one resolving worker — the frozen walk cache's per-AS slots
      // have a single writer, and the serial pass's hit/miss pattern (one
      // miss then hot replays per AS) is reproduced exactly.  Workers write
      // private CensusShards planes (chunk targets are scattered in id
      // space, so planes interleave within shards entry-disjointly) and the
      // planes merge order-invariantly — censuses are bit-identical to the
      // serial pass at any pool size.
      const std::size_t n = resolve_order_.size();
      const std::size_t workers = pool->size();
      std::vector<std::pair<std::size_t, std::size_t>> ranges;
      std::size_t begin = 0;
      for (std::size_t w = 0; w < workers && begin < n; ++w) {
        std::size_t end =
            w + 1 == workers ? n : begin + (n - begin) / (workers - w);
        if (end <= begin) end = begin + 1;
        while (end < n && targets.target(TargetId{resolve_order_[end]}).as ==
                              targets.target(TargetId{resolve_order_[end - 1]})
                                  .as) {
          ++end;
        }
        ranges.emplace_back(begin, std::min(end, n));
        begin = end;
      }
      std::vector<CensusShards> planes;
      planes.reserve(ranges.size());
      for (std::size_t r = 0; r < ranges.size(); ++r) {
        planes.emplace_back(targets.size());
      }
      pool->parallel_for(ranges.size(), [&](std::size_t r) {
        for (std::size_t i = ranges[r].first; i < ranges[r].second; ++i) {
          const std::uint32_t t = resolve_order_[i];
          const anycast::Target& tgt = targets.target(TargetId{t});
          const bgp::ResolvedPath path = rib.resolve(tgt.as, tgt.where, t);
          if (path.reachable) {
            planes[r].set(t, path.site, path.attachment, path.one_way_ms);
          }
        }
      });
      for (CensusShards& plane : planes) resolved.merge(std::move(plane));
    } else {
      for (const std::uint32_t t : resolve_order_) {
        const anycast::Target& tgt = targets.target(TargetId{t});
        const bgp::ResolvedPath path = rib.resolve(tgt.as, tgt.where, t);
        if (path.reachable) {
          resolved.set(t, path.site, path.attachment, path.one_way_ms);
        }
      }
    }
    cache_hits = rib.cache_hits();
    cache_misses = rib.cache_misses();
    rib_bytes = rib.retained_bytes();
    cache_bytes = rib.resolve_cache_bytes();
  } else {
    for (const std::uint32_t t : resolve_order_) {
      const anycast::Target& tgt = targets.target(TargetId{t});
      const bgp::ResolvedPath path = state.resolve(tgt.as, tgt.where, t);
      if (path.reachable) {
        resolved.set(t, path.site, path.attachment, path.one_way_ms);
      }
    }
    cache_hits = state.cache_hits();
    cache_misses = state.cache_misses();
    cache_bytes = state.resolve_cache_bytes();
    if (scratch != nullptr && !resmon::over_mem_budget()) {
      scratch->recycle(std::move(state));
    }
  }
  const std::size_t shard_bytes = resolved.retained_bytes();

  // Pass 2 — probe in target order.  The prober draws its noise stream in
  // this exact order, so the census is bit-identical to the historical
  // single-pass implementation.  The cursor releases each aggregation
  // shard as it drains (streaming: census memory peaks at pass 1's
  // footprint, not pass 1's plus the census under construction).
  Rng noise_root{options_.seed ^ (experiment_nonce * 0x9e3779b97f4a7c15ULL)};
  Prober prober{options_.probe, noise_root.fork("census-probes")};

  std::size_t faulted_drops = 0;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (t != 0 && t % CensusShards::kShardWidth == 0) {
      resolved.release_through(t - 1);
    }
    if (!resolved.written(t)) continue;
    if (round_faults.degraded &&
        faults->target_dropped(at.ordinal, at.attempt,
                               static_cast<std::uint32_t>(t))) {
      // Degraded round: this target's measurement silently never arrives
      // (the partial-census failure mode real measurement rounds exhibit).
      ++faulted_drops;
      continue;
    }

    // The reply's tunnel identifies the catchment (site + session).
    const SiteId site = resolved.site(t);
    const double true_rtt = 2.0 * resolved.one_way_ms(t);
    const auto sample = prober.measure(tunnel_rtt_ms(site) + true_rtt,
                                       round_faults.extra_loss_rate);
    // nullopt = fewer than ProbeModel::min_valid of the probes answered
    // (after any configured retries) — NOT necessarily "every probe lost".
    // The target stays unmeasured and the census honours the empty-census
    // contract documented at Census::mean_rtt(): downstream consumers see
    // rtt_ms[t] < 0 and an invalid site, and must never treat a fully
    // empty census's 0.0 mean as a latency.
    if (!sample.has_value()) continue;
    census.site_of_target[t] = site;
    census.attachment_of_target[t] = resolved.attachment(t);
    census.rtt_ms[t] = std::max(0.05, *sample - tunnel_rtt_ms(site));
  }
  if (telem) {
    const CensusMetrics& m = CensusMetrics::get();
    m.censuses->add(1);
    m.probes_sent->add(prober.probes_sent());
    m.probes_lost->add(prober.probes_lost());
    if (prober.retries() != 0) m.probe_retries->add(prober.retries());
    m.targets_unreachable->add(targets.size() - census.reachable_count());
    if (faulted_drops != 0) {
      FaultMetrics::get().targets_dropped->add(faulted_drops);
    }
    // Per-subsystem retained-bytes gauges the resmon sampler exports
    // (`last` = this census, `peak` = campaign high-water mark).
    static telemetry::Gauge& cache_bytes_gauge =
        telemetry::Registry::global().gauge("bytes.resolve_cache");
    static telemetry::Gauge& overlay_bytes_gauge =
        telemetry::Registry::global().gauge("bytes.overlay_pages");
    static telemetry::Gauge& rib_bytes_gauge =
        telemetry::Registry::global().gauge("bytes.rib");
    static telemetry::Gauge& shard_bytes_gauge =
        telemetry::Registry::global().gauge("bytes.census_shards");
    cache_bytes_gauge.set(static_cast<std::int64_t>(cache_bytes));
    shard_bytes_gauge.set(static_cast<std::int64_t>(shard_bytes));
    if (rib_bytes != 0) {
      rib_bytes_gauge.set(static_cast<std::int64_t>(rib_bytes));
    }
    if (overlay_copied != 0) {
      overlay_bytes_gauge.set(static_cast<std::int64_t>(overlay_copied));
    }
  }
  if (trace != nullptr) {
    trace->sim_events = sim_events;
    trace->cache_hits = cache_hits;
    trace->cache_misses = cache_misses;
    trace->probes_sent = prober.probes_sent();
    trace->probes_lost = prober.probes_lost();
    trace->retries = prober.retries();
    trace->targets = targets.size();
    trace->reachable = census.reachable_count();
    trace->targets_dropped = faulted_drops;
  }
  return census;
}

bgp::BaseState Orchestrator::converge_base(const anycast::AnycastConfig& config,
                                           std::uint64_t base_nonce) const {
  const auto schedule = config.schedule(world_.deployment());
  return world_.simulator().converge_base(schedule, base_nonce);
}

bool Orchestrator::schedule_faults_apply(const anycast::AnycastConfig& config,
                                         std::size_t ordinal) const {
  const fault::FaultInjector* faults = options_.faults;
  if (faults == nullptr) return false;
  // Any planned flap rewrites schedules wholesale; be conservative and
  // treat it as incompatible with the base + delta decomposition.
  if (!faults->flaps().empty()) return true;
  for (const bgp::Injection& inj : config.schedule(world_.deployment())) {
    if (inj.withdraw) continue;
    const SiteId site = world_.deployment().attachments()[inj.attachment].site;
    if (faults->site_failed(site, ordinal)) return true;
  }
  return false;
}

Census Orchestrator::measure_overlay(const bgp::BaseState& base,
                                     const anycast::AnycastConfig& config,
                                     std::span<const bgp::Injection> delta,
                                     std::uint64_t experiment_nonce,
                                     bgp::SimScratch* scratch,
                                     ExperimentAt at,
                                     std::size_t* sim_events) const {
  // Fallback/failed-round contract: 0, never a stale count (header doc).
  if (sim_events != nullptr) *sim_events = 0;
  if (schedule_faults_apply(config, at.ordinal)) {
    // The classic fallback records its own provenance line (path
    // "classic"), which is exactly the truth of what ran.
    return measure(config, experiment_nonce, scratch, at);
  }
  const bool telem = telemetry::enabled();
  const bool tracing = provenance::active();
  const double t0_us = tracing ? telemetry::now_us() : 0.0;
  provenance::ExperimentTrace trace;
  trace.nonce = experiment_nonce;
  trace.ordinal = at.ordinal;
  trace.attempt = at.attempt;
  trace.path = "overlay";
  const fault::FaultInjector* faults = options_.faults;
  fault::RoundFaults round_faults;
  if (faults != nullptr) {
    round_faults = faults->round(at.ordinal, at.attempt);
    if (round_faults.fail_round) {
      if (telem) FaultMetrics::get().round_failures->add(1);
      if (tracing) {
        trace.round_failed = true;
        trace.targets = world_.targets().size();
        trace.duration_ms = (telemetry::now_us() - t0_us) / 1e3;
        provenance::FlightLog::global().record(trace);
      }
      return empty_census();
    }
    trace.degraded = round_faults.degraded;
    trace.storm = round_faults.extra_loss_rate > 0.0;
  }
  telemetry::ScopedTimer span(
      "measure.census", "measure",
      telem ? CensusMetrics::get().census_ms : nullptr,
      telem && telemetry::tracing()
          ? telemetry::make_args("nonce", experiment_nonce)
          : std::string{});
  bgp::RoutingState state =
      world_.simulator().run_overlay(base, delta, experiment_nonce, scratch);
  // Captured here, not inside census_from_state: the census pass may
  // consume the state (arena recycle) before returning.
  if (sim_events != nullptr) *sim_events = state.events_processed();
  Census census = census_from_state(state, experiment_nonce, round_faults, at,
                                    tracing ? &trace : nullptr, scratch);
  if (tracing) {
    trace.duration_ms = (telemetry::now_us() - t0_us) / 1e3;
    provenance::FlightLog::global().record(trace);
  }
  return census;
}

Orchestrator::OverlayPairCensus Orchestrator::measure_overlay_pair(
    const bgp::BaseState& base, const anycast::AnycastConfig& config0,
    const anycast::AnycastConfig& config1,
    std::span<const bgp::Injection> delta,
    std::span<const bgp::AttachmentIndex> reage, std::uint64_t nonce0,
    std::uint64_t nonce1, bgp::SimScratch* scratch, ExperimentAt at0,
    ExperimentAt at1) const {
  const bool telem = telemetry::enabled();
  const fault::FaultInjector* faults = options_.faults;
  OverlayPairCensus out;
  if (schedule_faults_apply(config0, at0.ordinal) ||
      schedule_faults_apply(config1, at1.ordinal)) {
    // The injected faults rewrite at least one leg's schedule, so the
    // base + delta decomposition no longer describes the experiment pair;
    // run both legs classically (classic handles every fault kind).
    out.leg0 = measure(config0, nonce0, scratch, at0);
    out.leg1 = measure(config1, nonce1, scratch, at1);
    return out;
  }
  fault::RoundFaults rf0;
  fault::RoundFaults rf1;
  if (faults != nullptr) {
    rf0 = faults->round(at0.ordinal, at0.attempt);
    rf1 = faults->round(at1.ordinal, at1.attempt);
  }
  const bool tracing = provenance::active();
  provenance::ExperimentTrace tr0;
  tr0.nonce = nonce0;
  tr0.ordinal = at0.ordinal;
  tr0.attempt = at0.attempt;
  tr0.path = "overlay";
  tr0.degraded = rf0.degraded;
  tr0.storm = rf0.extra_loss_rate > 0.0;
  provenance::ExperimentTrace tr1;
  tr1.nonce = nonce1;
  tr1.ordinal = at1.ordinal;
  tr1.attempt = at1.attempt;
  tr1.path = "overlay-resume";
  tr1.degraded = rf1.degraded;
  tr1.storm = rf1.extra_loss_rate > 0.0;
  {
    const double t0_us = tracing ? telemetry::now_us() : 0.0;
    telemetry::ScopedTimer span(
        "measure.census", "measure",
        telem ? CensusMetrics::get().census_ms : nullptr,
        telem && telemetry::tracing() ? telemetry::make_args("nonce", nonce0)
                                      : std::string{});
    bgp::RoutingState leg0 = world_.simulator().run_overlay(
        base, delta, nonce0, scratch, {}, /*keep_continuation=*/true);
    if (rf0.fail_round) {
      // A failed round loses the CENSUS, not the announcements: leg 0's
      // routes still converged (leg 1 resumes that state normally), the
      // measurement round just came back empty.  A later retry of the
      // pair therefore reproduces the fault-free legs bit for bit.
      if (telem) FaultMetrics::get().round_failures->add(1);
      out.leg0 = empty_census();
      tr0.round_failed = true;
      tr0.targets = world_.targets().size();
    } else {
      // No scratch: leg 0's state must survive the census — leg 1 resumes
      // it below.
      out.leg0 = census_from_state(leg0, nonce0, rf0, at0,
                                   tracing ? &tr0 : nullptr, nullptr);
    }
    span.finish();
    if (tracing) {
      tr0.duration_ms = (telemetry::now_us() - t0_us) / 1e3;
      provenance::FlightLog::global().record(tr0);
    }
    const double t1_us = tracing ? telemetry::now_us() : 0.0;
    if (rf1.fail_round) {
      if (telem) FaultMetrics::get().round_failures->add(1);
      out.leg1 = empty_census();
      if (scratch != nullptr) scratch->recycle(std::move(leg0));
      if (tracing) {
        tr1.round_failed = true;
        tr1.targets = world_.targets().size();
        tr1.duration_ms = (telemetry::now_us() - t1_us) / 1e3;
        provenance::FlightLog::global().record(tr1);
      }
      return out;
    }
    telemetry::ScopedTimer span1(
        "measure.census", "measure",
        telem ? CensusMetrics::get().census_ms : nullptr,
        telem && telemetry::tracing() ? telemetry::make_args("nonce", nonce1)
                                      : std::string{});
    bgp::RoutingState leg1 = world_.simulator().resume_overlay(
        std::move(leg0), {}, nonce1, scratch, reage);
    out.leg1 = census_from_state(leg1, nonce1, rf1, at1,
                                 tracing ? &tr1 : nullptr, scratch);
    if (tracing) {
      tr1.duration_ms = (telemetry::now_us() - t1_us) / 1e3;
      provenance::FlightLog::global().record(tr1);
    }
  }
  return out;
}

std::vector<double> Orchestrator::unicast_rtts(
    SiteId site, std::uint64_t experiment_nonce) const {
  anycast::AnycastConfig single;
  single.announce_order = {site};
  const Census census = measure(single, experiment_nonce);
  return census.rtt_ms;
}

}  // namespace anyopt::measure
