#pragma once
// Persistent result store: append-only, CRC-framed record log of measurement
// results, keyed by content-derived identity.
//
// AnyOpt's discovery phase is an O(n²) campaign of BGP-convergence
// experiments, yet every experiment's identity is self-contained: the
// (configuration, nonce) pair fully determines its census.  The store turns
// that identity into a durable cache key, so a census computed once —
// by any bench, test or campaign — can be replayed by every later run
// against the same topology:
//
//   * Records are appended as they complete (`CampaignRunner` flushes each
//     census the moment its experiment finishes), so a killed campaign
//     loses at most the in-flight experiment: reopening the store and
//     re-running skips every persisted census and re-runs only the missing
//     work, bit-identical to an uninterrupted run.
//   * The file header carries a topology fingerprint
//     (`topo::topology_fingerprint` of the world's canonical serialization);
//     opening a store against a different topology is an error, never a
//     silent wrong-cache hit.
//   * Censuses are delta-encoded against the store's base census (the first
//     one appended): catchments change for few clients between experiments,
//     so the per-record cost is the RTT noise plus a short change list.
//   * Every record is CRC32C-framed (see netbase/codec.h): corruption is a
//     decode error, and a torn tail (crash mid-append) recovers every
//     complete record.
//
// Thread safety (concurrent-reader audit): every public method takes the
// store's single internal mutex, so any mix of readers and writers on ONE
// ResultStore object is safe — readers serialize on the lock rather than
// racing it.  The serve layer therefore does NOT query the store on its
// hot path: a snapshot load reads everything out of the store once (under
// the lock), and queries run against the immutable snapshot.  Two
// *processes* must never share one writable store file (two appenders
// interleave frames); `open_read_only` exists for exactly that case —
// any number of read-only opens of one file are safe alongside each other
// because a read-only store never touches the file after loading it.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/compact.h"
#include "measure/orchestrator.h"
#include "netbase/codec.h"
#include "netbase/result.h"

namespace anyopt::anycast {
struct AnycastConfig;
}  // namespace anyopt::anycast

namespace anyopt::measure {

/// \brief Record types the store persists.
enum class RecordKind : std::uint8_t {
  kCensus = 1,  ///< one experiment's catchment + RTT census
  kRttRow = 2,  ///< one site's unicast RTT row (the RTT matrix, row-wise)
  kTable = 3,   ///< an opaque table blob (encoded by core/store_io)
  kRib = 4,     ///< a frozen compact RIB snapshot (bgp::CompactState tables)
};

/// \brief Index entry of one persisted record.
struct RecordInfo {
  RecordKind kind = RecordKind::kCensus;
  std::uint64_t key = 0;
  std::size_t offset = 0;         ///< frame start within the file
  std::size_t payload_bytes = 0;  ///< framed payload size
};

/// \brief Append-only persistent store of measurement results.
class ResultStore {
 public:
  /// On-disk schema version written into the file header.
  static constexpr std::uint32_t kSchemaVersion = 1;

  /// \brief Opens (or creates) a store bound to one topology.
  ///
  /// An existing file is validated — magic, header CRC, schema version —
  /// and its record log scanned to rebuild the in-memory index.  A torn
  /// tail (crash mid-append) is truncated away, keeping every complete
  /// record; any other corruption is an error.  A fingerprint mismatch
  /// (store written against a different topology) is an error.
  /// \param path the store file.
  /// \param topology_fingerprint the world's compatibility key
  ///        (`topo::topology_fingerprint`).
  /// \return the opened store, or a diagnostic.
  [[nodiscard]] static Result<std::unique_ptr<ResultStore>> open(
      const std::string& path, std::uint64_t topology_fingerprint);

  /// \brief Opens an existing store, adopting whatever fingerprint its
  ///        header carries (the CLI's mode; campaigns use `open`).
  /// \param path the store file (must exist).
  /// \return the opened store, or a diagnostic.
  [[nodiscard]] static Result<std::unique_ptr<ResultStore>> open_existing(
      const std::string& path);

  /// \brief Opens an existing store without ever writing to it (the serve
  ///        layer's mode: many daemons may share one store file).
  ///
  /// Like `open_existing` — the fingerprint is adopted from the header —
  /// but the file is never reopened for writing: every `put_*` fails with
  /// a state error, and a torn tail is dropped from the in-memory view
  /// only, leaving the file on disk byte-for-byte untouched (a concurrent
  /// writer may still be appending the very record this reader sees as
  /// torn).
  /// \param path the store file (must exist and be non-empty).
  /// \return the opened read-only store, or a diagnostic.
  [[nodiscard]] static Result<std::unique_ptr<ResultStore>> open_read_only(
      const std::string& path);

  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// \brief The content-derived store key of one experiment.
  ///
  /// Hashes the full configuration (announce order, prepends, peers,
  /// spacing) together with the experiment nonce: two experiments share a
  /// key only when they would produce the same census.  The nonce alone is
  /// NOT sufficient — e.g. the naive and order-accounting discovery modes
  /// derive the same nonce for a pair but announce with different spacing.
  /// \param config the experiment's configuration.
  /// \param nonce its content-derived noise identity.
  /// \return the 64-bit store key.
  [[nodiscard]] static std::uint64_t census_key(
      const anycast::AnycastConfig& config, std::uint64_t nonce);

  /// \brief Looks up a persisted census (latest record wins).
  /// \param key the experiment's `census_key`.
  /// \return the census, or nullopt on a miss.  Counts `store.hits` /
  ///         `store.misses`.
  [[nodiscard]] std::optional<Census> find_census(std::uint64_t key) const;

  /// \brief Appends (and flushes) one census record.
  ///
  /// The first census ever appended becomes the store's delta base; later
  /// censuses of the same shape persist only their catchment changes
  /// against it (plus full RTTs — probe noise differs per experiment).
  /// Re-putting a key appends a new record that supersedes the old one.
  /// \param key the experiment's `census_key`.
  /// \param census the census to persist.
  /// \return ok, or the I/O error.
  Status put_census(std::uint64_t key, const Census& census);

  /// \brief Looks up a persisted unicast RTT row.
  /// \param key the row's content-derived key.
  /// \return the per-target RTTs, or nullopt on a miss.
  [[nodiscard]] std::optional<std::vector<double>> find_rtt_row(
      std::uint64_t key) const;

  /// \brief Appends (and flushes) one unicast RTT row.
  /// \param key the row's content-derived key.
  /// \param rtts per-target RTTs (negative = unreachable).
  /// \return ok, or the I/O error.
  Status put_rtt_row(std::uint64_t key, const std::vector<double>& rtts);

  /// \brief Looks up an opaque payload record (e.g. an encoded preference
  ///        table; see core/store_io).
  /// \param kind the record type.
  /// \param key the record's key.
  /// \return the payload body (sections after the key), or nullopt.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> find_payload(
      RecordKind kind, std::uint64_t key) const;

  /// \brief Appends (and flushes) an opaque payload record.
  /// \param kind the record type.
  /// \param key the record's key.
  /// \param body the payload sections (tags ≥ 2; tag 1 is the key).
  /// \return ok, or the I/O error.
  Status put_payload(RecordKind kind, std::uint64_t key,
                     const codec::Writer& body);

  /// \brief Looks up a persisted compact RIB snapshot (see
  ///        `bgp::CompactState`).  The returned state is a table artifact
  ///        — RIB diffs, audits, round-trip checks — not bound to a
  ///        topology and unable to resolve.
  /// \param key the snapshot's content-derived key (a RIB is identified by
  ///        the experiment that converged it, same keying as its census).
  /// \return the decoded tables, or nullopt on a miss or decode failure.
  [[nodiscard]] std::optional<bgp::CompactState> find_rib(
      std::uint64_t key) const;

  /// \brief Appends (and flushes) one frozen compact RIB snapshot.
  /// \param key the snapshot's content-derived key.
  /// \param rib the frozen tables to persist.
  /// \return ok, or the I/O error.
  Status put_rib(std::uint64_t key, const bgp::CompactState& rib);

  /// \brief Decodes the census stored at a specific record (CLI plumbing:
  ///        diff and compact walk records directly).
  /// \param info a record of kind `kCensus` from `records()`.
  /// \return the census, or a diagnostic.
  [[nodiscard]] Result<Census> read_census_at(const RecordInfo& info) const;

  /// \brief Every persisted record, in log (append) order.  Superseded
  ///        records are included; the index itself is latest-wins.
  [[nodiscard]] std::vector<RecordInfo> records() const;

  /// \brief Number of live (latest-wins) records.
  [[nodiscard]] std::size_t size() const;

  /// \brief The store's topology compatibility key.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
  /// \brief The backing file path.
  [[nodiscard]] const std::string& path() const { return path_; }
  /// \brief True when opened via `open_read_only` (every put fails).
  [[nodiscard]] bool read_only() const { return read_only_; }
  /// \brief Bytes dropped by torn-tail recovery when the store was opened
  ///        (0 for a cleanly closed store).
  [[nodiscard]] std::size_t recovered_tail_bytes() const {
    return recovered_tail_bytes_;
  }

  /// \brief Outcome of a full-file integrity scan (see `verify_file`).
  struct VerifyReport {
    std::size_t records = 0;        ///< complete, CRC-valid records
    std::size_t bad_crc = 0;        ///< complete records failing their CRC
    std::size_t torn_tail_bytes = 0;  ///< trailing bytes of a torn record
    std::vector<std::string> problems;  ///< human-readable findings
    [[nodiscard]] bool clean() const {
      return bad_crc == 0 && torn_tail_bytes == 0 && problems.empty();
    }
  };

  /// \brief Scans a store file end to end, checking the header and every
  ///        record CRC (`anyopt_store verify`).  Unlike `open`, a torn
  ///        tail is reported, not silently recovered.
  /// \param path the store file.
  /// \return the report, or the error that prevented scanning at all.
  [[nodiscard]] static Result<VerifyReport> verify_file(
      const std::string& path);

 private:
  ResultStore() = default;

  [[nodiscard]] static Result<std::unique_ptr<ResultStore>> open_impl(
      const std::string& path, std::uint64_t topology_fingerprint,
      bool adopt_fingerprint, bool read_only);

  /// Appends one framed record to the buffer and the file; updates the
  /// index.  Caller holds `mutex_`.
  Status append_locked(RecordKind kind, std::uint64_t key,
                       std::span<const std::uint8_t> payload);
  /// Encodes a census payload (delta against `base_census_` when
  /// possible).  Caller holds `mutex_`.
  void encode_census_locked(std::uint64_t key, const Census& census,
                            codec::Writer& out) const;
  [[nodiscard]] Result<Census> decode_census_locked(
      std::span<const std::uint8_t> payload) const;
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> payload_locked(
      RecordKind kind, std::uint64_t key) const;
  /// Feeds the `bytes.store_index` gauge with the mirror buffer + index +
  /// log footprint (no-op when telemetry is off).  Caller holds `mutex_`.
  void note_index_bytes_locked() const;

  mutable std::mutex mutex_;
  std::string path_;
  std::uint64_t fingerprint_ = 0;
  std::FILE* file_ = nullptr;
  /// The whole file, mirrored in memory: lookups never seek, and the index
  /// stores offsets into this buffer.
  std::vector<std::uint8_t> buffer_;
  /// Latest record per (kind, key): offset of the frame in `buffer_`.
  std::unordered_map<std::uint64_t, std::size_t> index_;
  /// Log-order record directory (includes superseded records).
  std::vector<RecordInfo> log_;
  /// Delta base: the first census appended/loaded, decoded.
  std::optional<Census> base_census_;
  std::uint64_t base_key_ = 0;
  std::size_t recovered_tail_bytes_ = 0;
  bool read_only_ = false;
};

}  // namespace anyopt::measure
