#pragma once
// Per-experiment provenance: the "why does this census look like this?"
// flight recorder.
//
// Every measured experiment — classic, overlay, overlay-resume or a
// checkpoint-store replay — emits exactly one structured line into a JSONL
// flight log keyed by the experiment's content-derived nonce: the execution
// path taken, the simulation work done (events, resolve-cache behaviour),
// the probe outcome (sent/lost/retries/reachable) and every fault the
// injector applied.  `anyopt_bench explain <nonce>` reconstructs an
// experiment's history from these lines after the fact, which is the
// operational debugging loop the paper's long-lived testbed setting needs.
//
// Cost model mirrors netbase/telemetry: the log is OFF by default and the
// per-experiment guard is one relaxed atomic load (`active()`).  Recording
// never touches an experiment RNG and only ever *reads* measurement
// results, so an enabled flight log cannot change a census (enforced by
// the observability invariance test).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace anyopt::measure::provenance {

/// One experiment's provenance record.  `path` names the execution route:
/// "classic" (full clean-state simulation), "overlay" (copy-on-write fork
/// of a shared base), "overlay-resume" (second order-leg resumed from the
/// first), or "store-hit" (census replayed from the result store — no
/// simulation ran).
struct ExperimentTrace {
  std::uint64_t nonce = 0;
  std::uint64_t ordinal = 0;
  std::uint32_t attempt = 0;
  const char* path = "classic";
  std::uint64_t sim_events = 0;       ///< update events this experiment ran
  std::uint64_t cache_hits = 0;       ///< resolve-cache replays (this census)
  std::uint64_t cache_misses = 0;     ///< resolve-cache walks (this census)
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_lost = 0;
  std::uint64_t retries = 0;          ///< probe retry attempts
  std::uint64_t targets = 0;          ///< census width
  std::uint64_t reachable = 0;        ///< targets that produced a measurement
  bool round_failed = false;          ///< fault layer killed the round
  bool degraded = false;              ///< fault layer dropped targets
  bool storm = false;                 ///< loss storm active
  std::uint64_t announce_suppressed = 0;  ///< site-failure suppressions
  std::uint64_t flap_events = 0;      ///< flap cycles merged into the schedule
  std::uint64_t targets_dropped = 0;  ///< degraded-round silent drops
  double duration_ms = 0.0;           ///< wall time of the experiment
};

/// The process-wide JSONL sink.  Thread-safe: records from concurrent
/// campaign workers serialize on an internal mutex and each line is
/// flushed whole, so a crash loses at most the line being written.
class FlightLog {
 public:
  static FlightLog& global();

  /// Opens (truncates) `path` and starts recording.  Returns false — and
  /// stays inactive — when the file cannot be created.
  bool open(const std::string& path);

  /// Stops recording and closes the sink (idempotent).
  void close();

  /// The per-experiment guard: one relaxed atomic load when the log is off.
  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Appends one record as a single JSON line (no-op when inactive).
  void record(const ExperimentTrace& trace);

  /// Lines written since `open` (for tests and the bench summary).
  [[nodiscard]] std::uint64_t records() const;

 private:
  FlightLog() = default;

  std::atomic<bool> active_{false};
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
};

/// Convenience guard mirroring `telemetry::enabled()`.
inline bool active() { return FlightLog::global().active(); }

}  // namespace anyopt::measure::provenance
