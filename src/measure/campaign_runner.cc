#include "measure/campaign_runner.h"

namespace anyopt::measure {

CampaignRunner::CampaignRunner(const Orchestrator& orchestrator,
                               CampaignRunnerOptions options)
    : orchestrator_(orchestrator) {
  if (options.threads != 1) {
    pool_ = std::make_unique<ThreadPool>(options.threads);
  }
}

std::vector<Census> CampaignRunner::run(
    std::span<const ExperimentSpec> specs) const {
  std::vector<Census> censuses(specs.size());
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      censuses[i] = orchestrator_.measure(specs[i].config, specs[i].nonce);
    }
    return censuses;
  }
  pool_->parallel_for(specs.size(), [&](std::size_t i) {
    censuses[i] = orchestrator_.measure(specs[i].config, specs[i].nonce);
  });
  return censuses;
}

}  // namespace anyopt::measure
