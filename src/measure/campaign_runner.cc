#include "measure/campaign_runner.h"

#include "measure/provenance.h"
#include "measure/store.h"
#include "netbase/telemetry.h"

namespace anyopt::measure {

namespace {

/// Pre-resolved campaign metrics (one registry lookup per process).
struct CampaignMetrics {
  telemetry::Counter* batches;
  telemetry::Counter* experiments;
  telemetry::Histogram* experiment_ms;

  static const CampaignMetrics& get() {
    static const CampaignMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return CampaignMetrics{&reg.counter("campaign.batches"),
                             &reg.counter("campaign.experiments"),
                             &reg.histogram("campaign.experiment_ms")};
    }();
    return m;
  }
};

/// One provenance line for a census replayed from the result store: no
/// simulation ran, so only the identity and outcome fields apply.  The
/// orchestrator records every simulated path; store hits bypass it, so the
/// runner is the only place that knows they happened.
void record_store_hit(std::uint64_t nonce, std::size_t ordinal,
                      const Census& census, double t0_us) {
  provenance::ExperimentTrace trace;
  trace.nonce = nonce;
  trace.ordinal = ordinal;
  trace.path = "store-hit";
  trace.targets = census.site_of_target.size();
  trace.reachable = census.reachable_count();
  trace.duration_ms = (telemetry::now_us() - t0_us) / 1e3;
  provenance::FlightLog::global().record(trace);
}

}  // namespace

CampaignRunner::CampaignRunner(const Orchestrator& orchestrator,
                               CampaignRunnerOptions options)
    : orchestrator_(orchestrator),
      reuse_scratch_(options.reuse_scratch),
      store_(options.store) {
  if (options.threads != 1) {
    pool_ = std::make_unique<ThreadPool>(options.threads);
    if (reuse_scratch_) {
      worker_scratch_ = std::vector<bgp::SimScratch>(pool_->size());
    }
  }
}

std::vector<Census> CampaignRunner::run(
    std::span<const ExperimentSpec> specs) const {
  const bool telem = telemetry::enabled();
  telemetry::ScopedTimer batch_span(
      "campaign.batch", "campaign", nullptr,
      telem && telemetry::tracing()
          ? telemetry::make_args("experiments", specs.size(), "threads",
                                 threads())
          : std::string{});
  if (telem) {
    const CampaignMetrics& m = CampaignMetrics::get();
    m.batches->add(1);
    m.experiments->add(specs.size());
  }
  const auto measure_one = [&](std::size_t i) {
    // Store hits replay a persisted census without simulating.  Retried
    // specs (attempt > 0) never take this path: a retry exists to replace
    // the stored result, not to re-read it.
    if (store_ != nullptr && specs[i].attempt == 0) {
      const double t0_us =
          provenance::active() ? telemetry::now_us() : 0.0;
      const std::uint64_t key =
          ResultStore::census_key(specs[i].config, specs[i].nonce);
      if (std::optional<Census> cached = store_->find_census(key);
          cached.has_value()) {
        if (provenance::active()) {
          record_store_hit(specs[i].nonce, specs[i].ordinal, *cached, t0_us);
        }
        return *std::move(cached);
      }
    }
    telemetry::ScopedTimer span(
        "campaign.experiment", "campaign",
        telemetry::enabled() ? CampaignMetrics::get().experiment_ms : nullptr,
        telemetry::enabled() && telemetry::tracing()
            ? telemetry::make_args("index", i, "nonce", specs[i].nonce)
            : std::string{});
    const ExperimentAt at{specs[i].ordinal, specs[i].attempt};
    const auto simulate = [&] {
      if (!reuse_scratch_) {
        return orchestrator_.measure(specs[i].config, specs[i].nonce, nullptr,
                                     at);
      }
      // Pooled: index the per-worker arena by the executing worker.  Serial
      // (or any non-worker caller): fall back to the orchestrator's
      // thread-local scratch.
      const std::size_t worker = ThreadPool::current_worker();
      if (worker < worker_scratch_.size()) {
        return orchestrator_.measure(specs[i].config, specs[i].nonce,
                                     &worker_scratch_[worker], at);
      }
      return orchestrator_.measure(specs[i].config, specs[i].nonce, at);
    };
    Census census = simulate();
    // Flush the moment the experiment finishes: an interrupted campaign
    // loses at most its in-flight experiments.  A write failure only costs
    // the checkpoint, never the campaign.
    if (store_ != nullptr) {
      const Status flushed = store_->put_census(
          ResultStore::census_key(specs[i].config, specs[i].nonce), census);
      (void)flushed;
    }
    return census;
  };

  std::vector<Census> censuses(specs.size());
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      censuses[i] = measure_one(i);
    }
    return censuses;
  }
  pool_->parallel_for(specs.size(), [&](std::size_t i) {
    censuses[i] = measure_one(i);
  });
  return censuses;
}

std::vector<Census> CampaignRunner::run_overlays(
    std::span<const OverlaySpec> specs) const {
  const bool telem = telemetry::enabled();
  telemetry::ScopedTimer batch_span(
      "campaign.batch", "campaign", nullptr,
      telem && telemetry::tracing()
          ? telemetry::make_args("experiments", specs.size(), "threads",
                                 threads())
          : std::string{});
  if (telem) {
    const CampaignMetrics& m = CampaignMetrics::get();
    m.batches->add(1);
    m.experiments->add(specs.size());
  }
  const auto measure_one = [&](std::size_t i) {
    const OverlaySpec& spec = specs[i];
    const std::uint64_t key = ResultStore::census_key(spec.config, spec.nonce);
    // Same store policy as `run`: replay persisted censuses, never serve a
    // stored result to a retry.
    if (store_ != nullptr && spec.attempt == 0) {
      const double t0_us =
          provenance::active() ? telemetry::now_us() : 0.0;
      if (std::optional<Census> cached = store_->find_census(key);
          cached.has_value()) {
        if (provenance::active()) {
          record_store_hit(spec.nonce, spec.ordinal, *cached, t0_us);
        }
        return *std::move(cached);
      }
    }
    telemetry::ScopedTimer span(
        "campaign.experiment", "campaign",
        telemetry::enabled() ? CampaignMetrics::get().experiment_ms : nullptr,
        telemetry::enabled() && telemetry::tracing()
            ? telemetry::make_args("index", i, "nonce", spec.nonce)
            : std::string{});
    const ExperimentAt at{spec.ordinal, spec.attempt};
    bgp::SimScratch* scratch = nullptr;
    if (reuse_scratch_) {
      const std::size_t worker = ThreadPool::current_worker();
      if (worker < worker_scratch_.size()) {
        scratch = &worker_scratch_[worker];
      } else {
        thread_local bgp::SimScratch serial_scratch;
        scratch = &serial_scratch;
      }
    }
    Census census = orchestrator_.measure_overlay(*spec.base, spec.config,
                                                  spec.delta, spec.nonce,
                                                  scratch, at);
    if (store_ != nullptr) {
      (void)store_->put_census(key, census);
    }
    return census;
  };

  std::vector<Census> censuses(specs.size());
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      censuses[i] = measure_one(i);
    }
    return censuses;
  }
  pool_->parallel_for(specs.size(), [&](std::size_t i) {
    censuses[i] = measure_one(i);
  });
  return censuses;
}

std::vector<Census> CampaignRunner::run_overlay_pairs(
    std::span<const OverlayPairSpec> specs) const {
  const bool telem = telemetry::enabled();
  telemetry::ScopedTimer batch_span(
      "campaign.batch", "campaign", nullptr,
      telem && telemetry::tracing()
          ? telemetry::make_args("experiments", specs.size() * 2, "threads",
                                 threads())
          : std::string{});
  if (telem) {
    const CampaignMetrics& m = CampaignMetrics::get();
    m.batches->add(1);
    m.experiments->add(specs.size() * 2);
  }
  std::vector<Census> censuses(specs.size() * 2);
  const auto measure_pair = [&](std::size_t i) {
    const OverlayPairSpec& spec = specs[i];
    const std::uint64_t key0 = ResultStore::census_key(spec.config0, spec.nonce0);
    const std::uint64_t key1 = ResultStore::census_key(spec.config1, spec.nonce1);
    // The pair simulates as a unit (leg 1 resumes leg 0's state), so the
    // store shortcut needs BOTH legs persisted; retries (attempt > 0)
    // always re-run, as in `run`.
    if (store_ != nullptr && spec.attempt == 0) {
      const double t0_us =
          provenance::active() ? telemetry::now_us() : 0.0;
      std::optional<Census> cached0 = store_->find_census(key0);
      std::optional<Census> cached1 =
          cached0.has_value() ? store_->find_census(key1) : std::nullopt;
      if (cached0.has_value() && cached1.has_value()) {
        if (provenance::active()) {
          record_store_hit(spec.nonce0, spec.ordinal0, *cached0, t0_us);
          record_store_hit(spec.nonce1, spec.ordinal1, *cached1, t0_us);
        }
        censuses[2 * i] = *std::move(cached0);
        censuses[2 * i + 1] = *std::move(cached1);
        return;
      }
    }
    telemetry::ScopedTimer span(
        "campaign.experiment", "campaign",
        telemetry::enabled() ? CampaignMetrics::get().experiment_ms : nullptr,
        telemetry::enabled() && telemetry::tracing()
            ? telemetry::make_args("index", i, "nonce", spec.nonce0)
            : std::string{});
    const ExperimentAt at0{spec.ordinal0, spec.attempt};
    const ExperimentAt at1{spec.ordinal1, spec.attempt};
    bgp::SimScratch* scratch = nullptr;
    if (reuse_scratch_) {
      const std::size_t worker = ThreadPool::current_worker();
      if (worker < worker_scratch_.size()) {
        scratch = &worker_scratch_[worker];
      } else {
        // Serial (or any non-worker caller): same thread-local amortization
        // the orchestrator's plain `measure` path uses.
        thread_local bgp::SimScratch serial_scratch;
        scratch = &serial_scratch;
      }
    }
    Orchestrator::OverlayPairCensus pair = orchestrator_.measure_overlay_pair(
        *spec.base, spec.config0, spec.config1, spec.delta, spec.reage,
        spec.nonce0, spec.nonce1, scratch, at0, at1);
    if (store_ != nullptr) {
      // Same flush-as-you-go policy as `run`; a write failure only costs
      // the checkpoint.
      (void)store_->put_census(key0, pair.leg0);
      (void)store_->put_census(key1, pair.leg1);
    }
    censuses[2 * i] = std::move(pair.leg0);
    censuses[2 * i + 1] = std::move(pair.leg1);
  };
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < specs.size(); ++i) measure_pair(i);
    return censuses;
  }
  pool_->parallel_for(specs.size(),
                      [&](std::size_t i) { measure_pair(i); });
  return censuses;
}

}  // namespace anyopt::measure
