#pragma once
// Sharded census aggregation — the Internet-scale replacement for the
// whole-census intermediate vector.
//
// A census at paper scale resolves millions of targets; the historical
// implementation materialized one `std::vector` of per-target resolution
// records up front (size × 24 bytes resident for the whole census), then a
// second full-size pass consumed it.  `CensusShards` stores the same
// records in fixed-width shards that are
//
//   * allocated lazily — a shard exists only once a target in its range
//     resolves as reachable, so sparse catchments cost proportionally,
//   * released eagerly — the probe pass drains targets in ascending order
//     and can return each fully-consumed shard to the allocator while the
//     census is still being taken (the `--mem-budget-mb` streaming
//     degradation; see netbase/resmon.h),
//   * merge-combinable — disjoint shard sets produced by independent
//     resolve workers merge in any order into byte-identical state, which
//     is what makes a future parallel resolve pass a pure scheduling
//     change (enforced by the tsan-labelled merge-order test).
//
// Unwritten targets are unreachable by construction: resolution only
// writes reachable paths, so "no shard" and "written flag clear" both mean
// the probe pass skips the target — exactly the old vector's semantics.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bgp/origin.h"
#include "netbase/ids.h"

namespace anyopt::measure {

/// \brief Lazily-sharded per-target resolution records for one census.
///
/// Single-writer per shard; `merge` combines disjoint writers.  Not
/// thread-safe for concurrent writes to the SAME shard (resolve workers
/// own disjoint target ranges, so shard ownership is disjoint too).
class CensusShards {
 public:
  /// Targets per shard.  4096 × 24 B ≈ 96 KiB per shard: big enough that
  /// shard bookkeeping vanishes, small enough that eager release tracks
  /// the probe cursor closely (see docs/SCALING.md).
  static constexpr std::size_t kShardWidth = 4096;

  /// \brief An aggregation plane over `target_count` targets; allocates
  ///        only the shard directory (8 bytes per shard).
  explicit CensusShards(std::size_t target_count);

  /// \brief Records target `t`'s resolved catchment (reachable targets
  ///        only — unreachable targets are simply never written).
  void set(std::size_t t, SiteId site, bgp::AttachmentIndex attachment,
           double one_way_ms);

  /// \brief True when `t` was written (and its shard not yet released).
  [[nodiscard]] bool written(std::size_t t) const;
  /// \brief Resolved site of a written target.
  [[nodiscard]] SiteId site(std::size_t t) const;
  /// \brief Resolved attachment of a written target.
  [[nodiscard]] bgp::AttachmentIndex attachment(std::size_t t) const;
  /// \brief Resolved one-way latency (ms) of a written target.
  [[nodiscard]] double one_way_ms(std::size_t t) const;

  /// \brief Steals `other`'s shards into this plane.  Writes must be
  ///        disjoint per target; the merged state is byte-identical for
  ///        every merge order (the order-invariance contract).
  void merge(CensusShards&& other);

  /// \brief Releases every shard that ends at or before target `t` — the
  ///        streaming hook: the probe pass calls this as its cursor
  ///        crosses shard boundaries, so fully-drained shards return to
  ///        the allocator mid-census.  Released targets read as
  ///        unwritten.
  void release_through(std::size_t t);

  /// \brief Targets this plane spans.
  [[nodiscard]] std::size_t target_count() const { return target_count_; }
  /// \brief Currently allocated (not yet released) shards.
  [[nodiscard]] std::size_t allocated_shards() const;
  /// \brief Heap bytes retained by live shards + the shard directory
  ///        (feeds the `bytes.census_shards` gauge).
  [[nodiscard]] std::size_t retained_bytes() const;

 private:
  /// One shard: parallel columns over kShardWidth consecutive targets.
  struct Shard {
    std::vector<std::uint8_t> written;      ///< per target in range
    std::vector<std::uint32_t> site;        ///< SiteId raw values
    std::vector<std::uint32_t> attachment;  ///< AttachmentIndex values
    std::vector<double> one_way_ms;
  };

  [[nodiscard]] Shard& shard_for(std::size_t t);
  [[nodiscard]] const Shard* shard_of(std::size_t t) const;

  std::size_t target_count_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace anyopt::measure
