#pragma once
// ICMP probe simulation: each probe of a path with true RTT `rtt_ms`
// returns a noisy sample or is lost.  The orchestrator repeats probes and
// keeps the median, exactly as the paper's measurement tool does (§3.1:
// "we repeat the ICMP requests seven times and use the median value").

#include <cstdint>
#include <optional>

#include "netbase/rng.h"

namespace anyopt::measure {

/// \brief Noise and resilience characteristics of the probe channel.
///
/// The retry knobs (`max_retries`, `backoff_base_ms`, `round_loss_budget`)
/// default to "off": `max_retries = 0` runs exactly one round per target and
/// reproduces the pre-retry behaviour bit for bit.
struct ProbeModel {
  double loss_rate = 0.01;           ///< per-probe loss probability
  double jitter_frac = 0.02;         ///< multiplicative RTT jitter (stddev)
  double jitter_floor_ms = 0.10;     ///< additive jitter floor (stddev)
  double spike_prob = 0.01;          ///< occasional queueing spike...
  double spike_ms = 40.0;            ///< ...of this magnitude (exponential)
  int repeats = 7;                   ///< probes per measurement
  int min_valid = 3;                 ///< minimum responses for a median
  int max_retries = 0;               ///< extra rounds when min_valid missed
  double backoff_base_ms = 100.0;    ///< simulated backoff before retry r is
                                     ///< backoff_base_ms * 2^r
  /// Per-measurement loss budget: once more than this fraction of all probes
  /// sent for one target (across retries) has been lost, the prober stops
  /// retrying and reports the target unmeasurable instead of burning more
  /// rounds.  The default of 1.0 can never be exceeded (a fraction is ≤ 1).
  double round_loss_budget = 1.0;
};

/// \brief Simulated probe engine: repeats, medians, losses, retries.
class Prober {
 public:
  /// \brief Builds a prober over a noise model and a private RNG stream.
  /// \param model the probe channel's noise/resilience parameters.
  /// \param rng the prober's own random stream (forked by the caller; a
  ///        Prober is single-owner and advances it on every probe).
  explicit Prober(ProbeModel model, Rng rng)
      : model_(model), rng_(rng) {}

  /// \brief One ICMP round trip.
  /// \param true_rtt_ms the path's noiseless RTT.
  /// \param extra_loss_rate additional independent loss probability
  ///        (injected fault), combined with the model's base rate as
  ///        `p + e - p*e`; 0 leaves the RNG stream untouched relative to a
  ///        build without the parameter.
  /// \return the noisy RTT sample, or nullopt if the probe was lost.
  [[nodiscard]] std::optional<double> probe_once(double true_rtt_ms,
                                                 double extra_loss_rate = 0.0);

  /// \brief Measures one target: `repeats` probes, median of the survivors.
  ///
  /// If fewer than `min_valid` probes survive the round, the prober retries
  /// up to `max_retries` more rounds with exponential backoff (simulated:
  /// the wait is accumulated in `backoff_ms()`, not slept), stopping early
  /// once the `round_loss_budget` is exhausted.
  /// \param true_rtt_ms the path's noiseless RTT.
  /// \param extra_loss_rate additional per-probe loss probability, see
  ///        `probe_once`.
  /// \return the median of the first round that yields at least `min_valid`
  ///         responses; nullopt if every permitted round came back under
  ///         budget — note nullopt means "fewer than `min_valid` responses",
  ///         NOT "every probe lost" (a round with 1–2 survivors still
  ///         reports unmeasurable).
  [[nodiscard]] std::optional<double> measure(double true_rtt_ms,
                                              double extra_loss_rate = 0.0);

  /// \brief The noise model this prober applies.
  /// \return the model passed at construction.
  [[nodiscard]] const ProbeModel& model() const { return model_; }

  /// Lifetime probe tallies (plain counters, no atomics: a Prober is owned
  /// by one census).  The orchestrator flushes them into telemetry.
  /// \brief Total probes sent, including retry rounds.
  [[nodiscard]] std::uint64_t probes_sent() const { return sent_; }
  /// \brief Total probes lost, including retry rounds.
  [[nodiscard]] std::uint64_t probes_lost() const { return lost_; }
  /// \brief Retry rounds executed (0 unless `max_retries > 0` and a round
  ///        missed `min_valid`).  Flushed into the `probe.retries` counter.
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// \brief Simulated exponential-backoff wait accumulated across retries.
  [[nodiscard]] double backoff_ms() const { return backoff_ms_; }

 private:
  ProbeModel model_;
  Rng rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t retries_ = 0;
  double backoff_ms_ = 0.0;
};

}  // namespace anyopt::measure
