#pragma once
// ICMP probe simulation: each probe of a path with true RTT `rtt_ms`
// returns a noisy sample or is lost.  The orchestrator repeats probes and
// keeps the median, exactly as the paper's measurement tool does (§3.1:
// "we repeat the ICMP requests seven times and use the median value").

#include <cstdint>
#include <optional>

#include "netbase/rng.h"

namespace anyopt::measure {

/// Noise characteristics of the probe channel.
struct ProbeModel {
  double loss_rate = 0.01;           ///< per-probe loss probability
  double jitter_frac = 0.02;         ///< multiplicative RTT jitter (stddev)
  double jitter_floor_ms = 0.10;     ///< additive jitter floor (stddev)
  double spike_prob = 0.01;          ///< occasional queueing spike...
  double spike_ms = 40.0;            ///< ...of this magnitude (exponential)
  int repeats = 7;                   ///< probes per measurement
  int min_valid = 3;                 ///< minimum responses for a median
};

/// Simulated probe engine.
class Prober {
 public:
  explicit Prober(ProbeModel model, Rng rng)
      : model_(model), rng_(rng) {}

  /// One ICMP round trip; nullopt = lost.
  [[nodiscard]] std::optional<double> probe_once(double true_rtt_ms);

  /// `repeats` probes, median of valid responses; nullopt if fewer than
  /// `min_valid` probes survived (link too lossy this round).
  [[nodiscard]] std::optional<double> measure(double true_rtt_ms);

  [[nodiscard]] const ProbeModel& model() const { return model_; }

  /// Lifetime probe tallies (plain counters, no atomics: a Prober is owned
  /// by one census).  The orchestrator flushes them into telemetry.
  [[nodiscard]] std::uint64_t probes_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t probes_lost() const { return lost_; }

 private:
  ProbeModel model_;
  Rng rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace anyopt::measure
