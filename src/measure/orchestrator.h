#pragma once
// The measurement orchestrator (§3.1): deploys anycast configurations on
// the simulated Internet and measures catchments and RTTs the way the
// paper's Verfploeter-style tool does.
//
//  * Catchments: a spoofed-source ICMP reply from a target returns to its
//    catchment site and is tunnelled to the orchestrator; the tunnel that
//    delivered it identifies the site.
//  * RTTs: announce from a single site, time the echo, subtract the
//    orchestrator<->site tunnel RTT, repeat seven times, take the median.

#include <cstdint>
#include <vector>

#include "anycast/config.h"
#include "anycast/world.h"
#include "measure/prober.h"
#include "netbase/fault.h"
#include "netbase/geo.h"
#include "netbase/ids.h"

namespace anyopt::measure {

/// \brief Orchestrator configuration.
struct OrchestratorOptions {
  /// Where the GoBGP orchestrator host lives (tunnel endpoints fan out
  /// from here).  Default: Cambridge, MA.
  geo::Coordinates location{42.373, -71.110};
  ProbeModel probe;              ///< probe-channel noise & retry model
  std::uint64_t seed = 0x0BC;    ///< root of every census noise stream
  /// Amortize simulator allocations across censuses: `measure()` without an
  /// explicit scratch borrows a thread-local `bgp::SimScratch` so repeated
  /// experiments reuse RIB/event-queue storage.  Results are bit-identical
  /// either way; disable to force fresh allocations per census (used by the
  /// cache-invariance suite).
  bool reuse_scratch = true;
  /// Fault injector shared by every census (not owned; must outlive the
  /// orchestrator).  nullptr — the default — disables the fault layer
  /// entirely and leaves every measurement bit-identical to a build
  /// without it.
  const fault::FaultInjector* faults = nullptr;
};

/// \brief Fault-plan coordinates of one census within its campaign.
///
/// The fault layer keys every stochastic decision on these (plus the plan
/// seed) so that faulted campaigns replay identically at any thread count,
/// and a retry (`attempt` + 1) re-rolls only the fault decisions — the
/// census noise itself is keyed on the experiment nonce and unchanged.
struct ExperimentAt {
  std::size_t ordinal = 0;   ///< position in the campaign's spec enumeration
  std::uint32_t attempt = 0; ///< retry attempt, 0 = first run
};

/// \brief Result of one catchment + RTT census under a deployed
///        configuration.
struct Census {
  /// Catchment site per target; invalid id = unreachable or fewer than
  /// `ProbeModel::min_valid` probes answered.
  std::vector<SiteId> site_of_target;
  /// Attachment (BGP session) whose tunnel delivered each reply; identifies
  /// peer catchments.  kNoAttachment when unreachable.
  std::vector<bgp::AttachmentIndex> attachment_of_target;
  /// Site<->target RTT estimate per target (tunnel RTT already subtracted);
  /// negative = no measurement.
  std::vector<double> rtt_ms;

  /// \brief Targets that produced a measurement.
  /// \return number of targets with a valid catchment site.
  [[nodiscard]] std::size_t reachable_count() const;
  /// Mean / median over the targets with a valid RTT measurement.  Empty
  /// census contract: when no target produced a measurement (deployment
  /// unreachable, all probes lost, round killed by fault injection), both
  /// return 0.0 — callers that must distinguish "no data" from "zero
  /// latency" check `reachable_count()` (equivalently
  /// `valid_rtts().empty()`) first.
  /// \brief Mean RTT over measured targets; 0.0 for an empty census.
  [[nodiscard]] double mean_rtt() const;
  /// \brief Median RTT over measured targets; 0.0 for an empty census.
  [[nodiscard]] double median_rtt() const;
  /// \brief Targets mapped to `site`.
  /// \param site the catchment site to count.
  /// \return number of targets whose reply identified `site`.
  [[nodiscard]] std::size_t catchment_size(SiteId site) const;
  /// \brief Targets whose reply came in via attachment `at`.
  /// \param at the BGP session (attachment index) to count.
  /// \return number of targets delivered through that session's tunnel.
  [[nodiscard]] std::size_t attachment_catchment_size(
      bgp::AttachmentIndex at) const;
  /// \brief All valid per-target RTTs (for CDFs).
  /// \return the RTTs of every measured target, in target order.
  [[nodiscard]] std::vector<double> valid_rtts() const;
};

/// \brief Deploys configurations on the simulated Internet and measures
///        them the way the paper's Verfploeter-style tool does (§3.1).
class Orchestrator {
 public:
  /// \brief Binds the orchestrator to a world.
  /// \param world the immutable simulated Internet (must outlive this).
  /// \param options measurement model, seed, scratch & fault settings.
  Orchestrator(const anycast::World& world, OrchestratorOptions options = {});

  /// \brief Deploys `config` (full announcement schedule, §2.3) and
  ///        measures each site's catchment and each target's RTT.
  /// \param config the anycast configuration to announce.
  /// \param experiment_nonce individualizes BGP jitter and probe noise:
  ///        re-running with a different nonce is a fresh real-world
  ///        experiment; the same nonce reproduces the census bit for bit.
  /// \return the census (one catchment + RTT row per target).
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce) const;

  /// \brief Like the two-argument overload (same scratch policy), with
  ///        fault-plan coordinates for the fault layer.
  /// \param config the anycast configuration to announce.
  /// \param experiment_nonce see the two-argument overload.
  /// \param at the census's campaign ordinal and retry attempt.
  /// \return the census.
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce,
                               ExperimentAt at) const;

  /// \brief Like the two-argument overload, but runs the BGP experiment
  ///        through an explicit allocation scratch (see `bgp::SimScratch`)
  ///        instead of the thread-local default.
  ///
  /// `CampaignRunner` passes its per-worker scratch here; `nullptr`
  /// disables amortization for this census.  Results are bit-identical
  /// across all variants.
  /// \param config the anycast configuration to announce.
  /// \param experiment_nonce see the two-argument overload.
  /// \param scratch recycled simulator buffers, or nullptr for none.
  /// \return the census.
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce,
                               bgp::SimScratch* scratch) const;

  /// \brief Full overload: additionally locates the census inside its
  ///        campaign for the fault layer.
  ///
  /// When `OrchestratorOptions::faults` is set, the injector's decisions
  /// for (`at.ordinal`, `at.attempt`) apply to this census: the round can
  /// be lost outright (empty census), degraded (a fraction of targets
  /// silently dropped), announced without failed sites, subjected to
  /// session flaps, or probed under a loss storm.  With no injector the
  /// coordinates are ignored.
  /// \param config the anycast configuration to announce.
  /// \param experiment_nonce see the two-argument overload.
  /// \param scratch recycled simulator buffers, or nullptr for none.
  /// \param at the census's campaign ordinal and retry attempt.
  /// \return the census (empty when the fault layer killed the round).
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce,
                               bgp::SimScratch* scratch,
                               ExperimentAt at) const;

  /// \brief The paper's single-site RTT procedure: announce only `site`,
  ///        measure every target's RTT to it via the site tunnel.
  /// \param site the site to announce alone.
  /// \param experiment_nonce see `measure`.
  /// \return per-target RTTs; row `t` < 0 means target `t` was unreachable.
  [[nodiscard]] std::vector<double> unicast_rtts(
      SiteId site, std::uint64_t experiment_nonce) const;

  /// \brief Tunnel RTT between the orchestrator and a site (periodically
  ///        measured in the paper; modelled as geodesic + encapsulation
  ///        overhead).
  /// \param site the tunnel's site end.
  /// \return round-trip milliseconds orchestrator <-> site.
  [[nodiscard]] double tunnel_rtt_ms(SiteId site) const;

  /// \brief The world this orchestrator measures.
  /// \return the bound world.
  [[nodiscard]] const anycast::World& world() const { return world_; }

 private:
  const anycast::World& world_;
  OrchestratorOptions options_;
  /// Target ids stable-sorted by client AS (ties keep census/target order):
  /// the resolution pass walks targets in this order so every target of a
  /// client AS resolves while that AS's memoized walk is hot.  Probing still
  /// happens in target order, keeping the prober's RNG stream — and thus
  /// every census — bit-identical to the ungrouped implementation.
  std::vector<std::uint32_t> resolve_order_;
};

}  // namespace anyopt::measure
