#pragma once
// The measurement orchestrator (§3.1): deploys anycast configurations on
// the simulated Internet and measures catchments and RTTs the way the
// paper's Verfploeter-style tool does.
//
//  * Catchments: a spoofed-source ICMP reply from a target returns to its
//    catchment site and is tunnelled to the orchestrator; the tunnel that
//    delivered it identifies the site.
//  * RTTs: announce from a single site, time the echo, subtract the
//    orchestrator<->site tunnel RTT, repeat seven times, take the median.

#include <cstdint>
#include <vector>

#include "anycast/config.h"
#include "anycast/world.h"
#include "measure/prober.h"
#include "netbase/geo.h"
#include "netbase/ids.h"

namespace anyopt::measure {

/// Orchestrator configuration.
struct OrchestratorOptions {
  /// Where the GoBGP orchestrator host lives (tunnel endpoints fan out
  /// from here).  Default: Cambridge, MA.
  geo::Coordinates location{42.373, -71.110};
  ProbeModel probe;
  std::uint64_t seed = 0x0BC;
  /// Amortize simulator allocations across censuses: `measure()` without an
  /// explicit scratch borrows a thread-local `bgp::SimScratch` so repeated
  /// experiments reuse RIB/event-queue storage.  Results are bit-identical
  /// either way; disable to force fresh allocations per census (used by the
  /// cache-invariance suite).
  bool reuse_scratch = true;
};

/// Result of one catchment + RTT census under a deployed configuration.
struct Census {
  /// Catchment site per target; invalid id = unreachable or all probes lost.
  std::vector<SiteId> site_of_target;
  /// Attachment (BGP session) whose tunnel delivered each reply; identifies
  /// peer catchments.  kNoAttachment when unreachable.
  std::vector<bgp::AttachmentIndex> attachment_of_target;
  /// Site<->target RTT estimate per target (tunnel RTT already subtracted);
  /// negative = no measurement.
  std::vector<double> rtt_ms;

  [[nodiscard]] std::size_t reachable_count() const;
  /// Mean / median over the targets with a valid RTT measurement.  Empty
  /// census contract: when no target produced a measurement (deployment
  /// unreachable, all probes lost), both return 0.0 — callers that must
  /// distinguish "no data" from "zero latency" check `reachable_count()`
  /// (equivalently `valid_rtts().empty()`) first.
  [[nodiscard]] double mean_rtt() const;
  [[nodiscard]] double median_rtt() const;
  /// Targets mapped to `site`.
  [[nodiscard]] std::size_t catchment_size(SiteId site) const;
  /// Targets whose reply came in via attachment `at`.
  [[nodiscard]] std::size_t attachment_catchment_size(
      bgp::AttachmentIndex at) const;
  /// All valid per-target RTTs (for CDFs).
  [[nodiscard]] std::vector<double> valid_rtts() const;
};

class Orchestrator {
 public:
  Orchestrator(const anycast::World& world, OrchestratorOptions options = {});

  /// Deploys `config` (full announcement schedule, §2.3) and measures each
  /// site's catchment and each target's RTT.  `experiment_nonce`
  /// individualizes BGP jitter and probe noise: re-running with a different
  /// nonce is a fresh real-world experiment.
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce) const;

  /// Like the two-argument overload, but runs the BGP experiment through an
  /// explicit allocation scratch (see `bgp::SimScratch`) instead of the
  /// thread-local default.  `CampaignRunner` passes its per-worker scratch
  /// here; `nullptr` disables amortization for this census.  Results are
  /// bit-identical across all three variants.
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce,
                               bgp::SimScratch* scratch) const;

  /// The paper's single-site RTT procedure: announce only `site`, measure
  /// every target's RTT to it via the site tunnel.  Row `t` < 0 means the
  /// target was unreachable.
  [[nodiscard]] std::vector<double> unicast_rtts(
      SiteId site, std::uint64_t experiment_nonce) const;

  /// Tunnel RTT between the orchestrator and a site (periodically measured
  /// in the paper; modelled as geodesic + encapsulation overhead).
  [[nodiscard]] double tunnel_rtt_ms(SiteId site) const;

  [[nodiscard]] const anycast::World& world() const { return world_; }

 private:
  const anycast::World& world_;
  OrchestratorOptions options_;
  /// Target ids stable-sorted by client AS (ties keep census/target order):
  /// the resolution pass walks targets in this order so every target of a
  /// client AS resolves while that AS's memoized walk is hot.  Probing still
  /// happens in target order, keeping the prober's RNG stream — and thus
  /// every census — bit-identical to the ungrouped implementation.
  std::vector<std::uint32_t> resolve_order_;
};

}  // namespace anyopt::measure
