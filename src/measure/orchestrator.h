#pragma once
// The measurement orchestrator (§3.1): deploys anycast configurations on
// the simulated Internet and measures catchments and RTTs the way the
// paper's Verfploeter-style tool does.
//
//  * Catchments: a spoofed-source ICMP reply from a target returns to its
//    catchment site and is tunnelled to the orchestrator; the tunnel that
//    delivered it identifies the site.
//  * RTTs: announce from a single site, time the echo, subtract the
//    orchestrator<->site tunnel RTT, repeat seven times, take the median.

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/config.h"
#include "anycast/world.h"
#include "bgp/simulator.h"
#include "measure/prober.h"
#include "measure/provenance.h"
#include "netbase/fault.h"
#include "netbase/geo.h"
#include "netbase/ids.h"

namespace anyopt {
class ThreadPool;
}

namespace anyopt::measure {

/// \brief Orchestrator configuration.
struct OrchestratorOptions {
  /// Where the GoBGP orchestrator host lives (tunnel endpoints fan out
  /// from here).  Default: Cambridge, MA.
  geo::Coordinates location{42.373, -71.110};
  ProbeModel probe;              ///< probe-channel noise & retry model
  std::uint64_t seed = 0x0BC;    ///< root of every census noise stream
  /// Amortize simulator allocations across censuses: `measure()` without an
  /// explicit scratch borrows a thread-local `bgp::SimScratch` so repeated
  /// experiments reuse RIB/event-queue storage.  Results are bit-identical
  /// either way; disable to force fresh allocations per census (used by the
  /// cache-invariance suite).
  bool reuse_scratch = true;
  /// Fault injector shared by every census (not owned; must outlive the
  /// orchestrator).  nullptr — the default — disables the fault layer
  /// entirely and leaves every measurement bit-identical to a build
  /// without it.
  const fault::FaultInjector* faults = nullptr;
  /// Resolve censuses against the frozen structure-of-arrays RIB
  /// (`bgp::CompactState`) instead of the engine's array-of-structs state.
  /// Freezing lets the simulation arena recycle BEFORE the resolve pass
  /// runs — at Internet scale the engine layout and the resolve layout
  /// never coexist — and the SoA walk is a pure array scan.  Censuses are
  /// bit-identical either way (the walk implementation is literally shared;
  /// the layout-invariance suite enforces it end to end); disable to
  /// resolve directly against the engine layout.
  bool compact_resolve = true;
  /// Worker pool for the census resolve pass (not owned; nullptr — the
  /// default — resolves serially).  Workers take contiguous chunks of the
  /// AS-grouped resolve order, never splitting a client-AS run, resolve
  /// into private `CensusShards` planes and merge them order-invariantly —
  /// censuses AND the frozen RIB's cache hit/miss counts are bit-identical
  /// to the serial pass at any pool size (census_shards_test +
  /// layout_invariance_test enforce it).  Only the `compact_resolve` path
  /// parallelizes (the engine-layout cache is single-threaded by design).
  /// The pool must NOT be one the calling task itself runs on (nested
  /// parallel_for can deadlock), so campaign workers leave this null.
  ThreadPool* resolve_pool = nullptr;
};

/// \brief Fault-plan coordinates of one census within its campaign.
///
/// The fault layer keys every stochastic decision on these (plus the plan
/// seed) so that faulted campaigns replay identically at any thread count,
/// and a retry (`attempt` + 1) re-rolls only the fault decisions — the
/// census noise itself is keyed on the experiment nonce and unchanged.
struct ExperimentAt {
  std::size_t ordinal = 0;   ///< position in the campaign's spec enumeration
  std::uint32_t attempt = 0; ///< retry attempt, 0 = first run
};

/// \brief Result of one catchment + RTT census under a deployed
///        configuration.
struct Census {
  /// Catchment site per target; invalid id = unreachable or fewer than
  /// `ProbeModel::min_valid` probes answered.
  std::vector<SiteId> site_of_target;
  /// Attachment (BGP session) whose tunnel delivered each reply; identifies
  /// peer catchments.  kNoAttachment when unreachable.
  std::vector<bgp::AttachmentIndex> attachment_of_target;
  /// Site<->target RTT estimate per target (tunnel RTT already subtracted);
  /// negative = no measurement.
  std::vector<double> rtt_ms;

  /// \brief Targets that produced a measurement.
  /// \return number of targets with a valid catchment site.
  [[nodiscard]] std::size_t reachable_count() const;
  /// Mean / median over the targets with a valid RTT measurement.  Empty
  /// census contract: when no target produced a measurement (deployment
  /// unreachable, all probes lost, round killed by fault injection), both
  /// return 0.0 — callers that must distinguish "no data" from "zero
  /// latency" check `reachable_count()` (equivalently
  /// `valid_rtts().empty()`) first.
  /// \brief Mean RTT over measured targets; 0.0 for an empty census.
  [[nodiscard]] double mean_rtt() const;
  /// \brief Median RTT over measured targets; 0.0 for an empty census.
  [[nodiscard]] double median_rtt() const;
  /// \brief Targets mapped to `site`.
  /// \param site the catchment site to count.
  /// \return number of targets whose reply identified `site`.
  [[nodiscard]] std::size_t catchment_size(SiteId site) const;
  /// \brief Targets whose reply came in via attachment `at`.
  /// \param at the BGP session (attachment index) to count.
  /// \return number of targets delivered through that session's tunnel.
  [[nodiscard]] std::size_t attachment_catchment_size(
      bgp::AttachmentIndex at) const;
  /// \brief All valid per-target RTTs (for CDFs).
  /// \return the RTTs of every measured target, in target order.
  [[nodiscard]] std::vector<double> valid_rtts() const;
};

/// \brief Deploys configurations on the simulated Internet and measures
///        them the way the paper's Verfploeter-style tool does (§3.1).
class Orchestrator {
 public:
  /// \brief Binds the orchestrator to a world.
  /// \param world the immutable simulated Internet (must outlive this).
  /// \param options measurement model, seed, scratch & fault settings.
  Orchestrator(const anycast::World& world, OrchestratorOptions options = {});

  /// \brief Deploys `config` (full announcement schedule, §2.3) and
  ///        measures each site's catchment and each target's RTT.
  /// \param config the anycast configuration to announce.
  /// \param experiment_nonce individualizes BGP jitter and probe noise:
  ///        re-running with a different nonce is a fresh real-world
  ///        experiment; the same nonce reproduces the census bit for bit.
  /// \return the census (one catchment + RTT row per target).
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce) const;

  /// \brief Like the two-argument overload (same scratch policy), with
  ///        fault-plan coordinates for the fault layer.
  /// \param config the anycast configuration to announce.
  /// \param experiment_nonce see the two-argument overload.
  /// \param at the census's campaign ordinal and retry attempt.
  /// \return the census.
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce,
                               ExperimentAt at) const;

  /// \brief Like the two-argument overload, but runs the BGP experiment
  ///        through an explicit allocation scratch (see `bgp::SimScratch`)
  ///        instead of the thread-local default.
  ///
  /// `CampaignRunner` passes its per-worker scratch here; `nullptr`
  /// disables amortization for this census.  Results are bit-identical
  /// across all variants.
  /// \param config the anycast configuration to announce.
  /// \param experiment_nonce see the two-argument overload.
  /// \param scratch recycled simulator buffers, or nullptr for none.
  /// \return the census.
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce,
                               bgp::SimScratch* scratch) const;

  /// \brief Full overload: additionally locates the census inside its
  ///        campaign for the fault layer.
  ///
  /// When `OrchestratorOptions::faults` is set, the injector's decisions
  /// for (`at.ordinal`, `at.attempt`) apply to this census: the round can
  /// be lost outright (empty census), degraded (a fraction of targets
  /// silently dropped), announced without failed sites, subjected to
  /// session flaps, or probed under a loss storm.  With no injector the
  /// coordinates are ignored.
  /// \param config the anycast configuration to announce.
  /// \param experiment_nonce see the two-argument overload.
  /// \param scratch recycled simulator buffers, or nullptr for none.
  /// \param at the census's campaign ordinal and retry attempt.
  /// \return the census (empty when the fault layer killed the round).
  [[nodiscard]] Census measure(const anycast::AnycastConfig& config,
                               std::uint64_t experiment_nonce,
                               bgp::SimScratch* scratch,
                               ExperimentAt at) const;

  /// \brief Converges `config`'s announcement schedule once into a
  ///        campaign-shared base state (incremental re-convergence).
  ///
  /// The base is a pure simulation artifact — no census is taken and the
  /// fault layer does not apply (faults attach to *measured experiments*;
  /// an experiment whose faults would alter the base schedule falls back to
  /// a classic run inside `measure_overlay`/`measure_overlay_pair`).  The
  /// result depends only on (schedule, base_nonce), so a shared base is
  /// interchangeable with a freshly converged private one, bit for bit.
  /// \param config the configuration whose schedule to converge.
  /// \param base_nonce individualizes the base's jitter (content-derive it).
  /// \return the frozen base; overlays forked from it must not outlive it.
  [[nodiscard]] bgp::BaseState converge_base(
      const anycast::AnycastConfig& config, std::uint64_t base_nonce) const;

  /// \brief Measures one experiment as a copy-on-write overlay over `base`:
  ///        only `delta` is propagated, then the census is taken exactly as
  ///        `measure` would.
  ///
  /// `config` must describe the FULL experiment (base schedule + delta) —
  /// it is consulted for fault-layer decisions: when the injector plans
  /// session flaps or a site failure that touches `config`'s announcements,
  /// the schedule no longer decomposes into base + delta and this method
  /// transparently falls back to the classic `measure` path.  Round
  /// failures, degraded rounds and loss storms compose with overlays.
  /// \param base the shared converged base (see `converge_base`).
  /// \param config the full experiment configuration (fault decisions).
  /// \param delta injections beyond the base schedule (times relative to
  ///        the base's convergence horizon).
  /// \param experiment_nonce jitter/noise identity, as in `measure`.
  /// \param scratch recycled simulator buffers, or nullptr.
  /// \param at the census's campaign ordinal and retry attempt.
  /// \param sim_events when non-null, receives the update events the
  ///        overlay's delta propagation processed (the incremental cost of
  ///        this experiment; the shared base's events are not included).
  ///        Set to 0 when the fault layer forces the classic fallback or
  ///        kills the round — callers comparing overlay against classic
  ///        costs (the agility engine) must not count a fallback as a
  ///        delta re-convergence.
  /// \return the census.
  [[nodiscard]] Census measure_overlay(const bgp::BaseState& base,
                                       const anycast::AnycastConfig& config,
                                       std::span<const bgp::Injection> delta,
                                       std::uint64_t experiment_nonce,
                                       bgp::SimScratch* scratch,
                                       ExperimentAt at,
                                       std::size_t* sim_events =
                                           nullptr) const;

  /// \brief Both censuses of a two-leg order experiment, measured
  ///        incrementally.
  struct OverlayPairCensus {
    Census leg0;  ///< the (first, second) announcement order
    Census leg1;  ///< the (second, first) order, via seniority inversion
  };

  /// \brief Measures a pairwise order experiment as two overlay legs over
  ///        one shared base.
  ///
  /// Leg 0 forks `base` and propagates `delta` (the second item's
  /// announcement).  Leg 1 resumes leg 0's converged state and re-ages the
  /// `reage` attachments — the base item's routes take fresh arrival-seq
  /// values exactly as a re-advertisement would, which is precisely "the
  /// second item was announced first" under the oldest-route tie-break —
  /// and propagates only the resulting decision flips.  `config0`/`config1`
  /// describe the two FULL experiments for the fault layer; any fault that
  /// would alter either leg's schedule (flaps, announced-site failures)
  /// falls both legs back to classic `measure` runs.  A failed measurement
  /// round empties only that leg's census — the routes still converged, so
  /// leg 1 resumes leg 0's state either way and a retried pair reproduces
  /// the fault-free censuses bit for bit.
  /// \param base the shared base with the pair's first item announced.
  /// \param config0 full leg-0 configuration (first, second).
  /// \param config1 full leg-1 configuration (second, first).
  /// \param delta the second item's announcement over the base.
  /// \param reage the first item's attachments (re-aged for leg 1).
  /// \param nonce0 leg-0 jitter/noise identity.
  /// \param nonce1 leg-1 jitter/noise identity.
  /// \param scratch recycled simulator buffers, or nullptr.
  /// \param at0 leg-0 campaign coordinates.
  /// \param at1 leg-1 campaign coordinates.
  /// \return both legs' censuses.
  [[nodiscard]] OverlayPairCensus measure_overlay_pair(
      const bgp::BaseState& base, const anycast::AnycastConfig& config0,
      const anycast::AnycastConfig& config1,
      std::span<const bgp::Injection> delta,
      std::span<const bgp::AttachmentIndex> reage, std::uint64_t nonce0,
      std::uint64_t nonce1, bgp::SimScratch* scratch, ExperimentAt at0,
      ExperimentAt at1) const;

  /// \brief The paper's single-site RTT procedure: announce only `site`,
  ///        measure every target's RTT to it via the site tunnel.
  /// \param site the site to announce alone.
  /// \param experiment_nonce see `measure`.
  /// \return per-target RTTs; row `t` < 0 means target `t` was unreachable.
  [[nodiscard]] std::vector<double> unicast_rtts(
      SiteId site, std::uint64_t experiment_nonce) const;

  /// \brief Tunnel RTT between the orchestrator and a site (periodically
  ///        measured in the paper; modelled as geodesic + encapsulation
  ///        overhead).
  /// \param site the tunnel's site end.
  /// \return round-trip milliseconds orchestrator <-> site.
  [[nodiscard]] double tunnel_rtt_ms(SiteId site) const;

  /// \brief The world this orchestrator measures.
  /// \return the bound world.
  [[nodiscard]] const anycast::World& world() const { return world_; }

  /// \brief The fault injector every census consults.
  /// \return the injector from the options, or nullptr when the fault
  ///         layer is disabled.  Campaign layers use this to decide up
  ///         front whether incremental overlays can express a schedule
  ///         (session flaps rewrite the base schedule itself).
  [[nodiscard]] const fault::FaultInjector* faults() const {
    return options_.faults;
  }

 private:
  /// An all-unreachable census in the world's target shape.
  [[nodiscard]] Census empty_census() const;
  /// Passes 1+2 over an already converged state: resolve every target's
  /// forwarding path (against the frozen SoA RIB when `compact_resolve` is
  /// on), then probe, aggregating through release-as-drained census shards.
  /// Shared by the classic and overlay paths.  When `scratch` is non-null
  /// the state is CONSUMED: its arena recycles as soon as the engine layout
  /// is no longer needed (immediately after the freeze on the compact path)
  /// and the caller must not touch or recycle it again.  With a null
  /// `scratch` the state is only read and stays the caller's to keep — the
  /// overlay-pair leg-0 path relies on this to resume the state afterwards.
  /// When `trace` is non-null its simulation/probe fields are filled for the
  /// provenance flight log (the caller owns path/fault fields and the
  /// record itself).
  [[nodiscard]] Census census_from_state(bgp::RoutingState& state,
                                         std::uint64_t experiment_nonce,
                                         const fault::RoundFaults& round_faults,
                                         ExperimentAt at,
                                         provenance::ExperimentTrace* trace =
                                             nullptr,
                                         bgp::SimScratch* scratch =
                                             nullptr) const;
  /// True when the fault layer would alter this experiment's announcement
  /// schedule at `ordinal` (flap plan, or a failed announced site) — the
  /// overlay decomposition no longer matches and classic `measure` must run.
  [[nodiscard]] bool schedule_faults_apply(const anycast::AnycastConfig& config,
                                           std::size_t ordinal) const;

  const anycast::World& world_;
  OrchestratorOptions options_;
  /// Target ids stable-sorted by client AS (ties keep census/target order):
  /// the resolution pass walks targets in this order so every target of a
  /// client AS resolves while that AS's memoized walk is hot.  Probing still
  /// happens in target order, keeping the prober's RNG stream — and thus
  /// every census — bit-identical to the ungrouped implementation.
  std::vector<std::uint32_t> resolve_order_;
};

}  // namespace anyopt::measure
