#include "measure/store.h"

#include <bit>
#include <cerrno>
#include <cstring>

#include "anycast/config.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"

namespace anyopt::measure {

namespace {

constexpr std::string_view kMagic = "AOPTSTOR";

/// Census payload section tags.  New writers may add tags; old readers
/// skip unknown ones (codec section framing).
enum CensusTag : std::uint64_t {
  kTagKey = 1,        ///< u64le store key (every record kind starts with it)
  kTagMeta = 2,       ///< varint target count + u8 flags
  kTagSitesFull = 3,  ///< per-target varint site+1 (0 = unreachable)
  kTagAttsFull = 4,   ///< per-target varint attachment+1 (0 = none)
  kTagRtts = 5,       ///< per-target f64le RTT (negative = unmeasured)
  kTagBaseKey = 6,    ///< u64le key of the delta base census
  kTagSitesDelta = 7, ///< change list vs the base's sites
  kTagAttsDelta = 8,  ///< change list vs the base's attachments
};

enum CensusFlags : std::uint8_t {
  kFlagBase = 1,        ///< this record is the store's delta base
  kFlagSitesDelta = 2,  ///< sites come as a change list (needs base)
  kFlagAttsDelta = 4,   ///< attachments come as a change list (needs base)
};

/// Pre-resolved store metrics (one registry lookup per process).
struct StoreMetrics {
  telemetry::Counter* hits;
  telemetry::Counter* misses;
  telemetry::Counter* records_written;
  telemetry::Counter* bytes_written;
  telemetry::Counter* delta_entries;
  telemetry::Counter* delta_slots;

  static const StoreMetrics& get() {
    static const StoreMetrics m = [] {
      auto& reg = telemetry::Registry::global();
      return StoreMetrics{&reg.counter("store.hits"),
                          &reg.counter("store.misses"),
                          &reg.counter("store.records_written"),
                          &reg.counter("store.bytes_written"),
                          &reg.counter("store.delta_entries"),
                          &reg.counter("store.delta_slots")};
    }();
    return m;
  }
};

/// One map key for the (kind, key) index.
std::uint64_t index_key(RecordKind kind, std::uint64_t key) {
  return mix64(static_cast<std::uint64_t>(kind), key);
}

std::uint64_t encode_site(SiteId site) {
  return site.valid() ? static_cast<std::uint64_t>(site.value()) + 1 : 0;
}
SiteId decode_site(std::uint64_t v) {
  return v == 0 ? SiteId{}
                : SiteId{static_cast<SiteId::underlying_type>(v - 1)};
}
std::uint64_t encode_att(bgp::AttachmentIndex att) {
  return att == bgp::kNoAttachment ? 0 : static_cast<std::uint64_t>(att) + 1;
}
bgp::AttachmentIndex decode_att(std::uint64_t v) {
  return v == 0 ? bgp::kNoAttachment
                : static_cast<bgp::AttachmentIndex>(v - 1);
}

/// Encodes a change list (index gaps + zigzag value deltas) of `now` vs
/// `base` under `encode`.  Returns the number of changed slots.
template <class T, class Encode>
std::size_t put_delta(codec::Writer& out, const std::vector<T>& now,
                      const std::vector<T>& base, Encode encode) {
  std::size_t changed = 0;
  for (std::size_t i = 0; i < now.size(); ++i) {
    if (!(now[i] == base[i])) ++changed;
  }
  out.put_varint(changed);
  std::size_t previous = 0;
  for (std::size_t i = 0; i < now.size(); ++i) {
    if (now[i] == base[i]) continue;
    out.put_varint(i - previous);
    out.put_svarint(static_cast<std::int64_t>(encode(now[i])) -
                    static_cast<std::int64_t>(encode(base[i])));
    previous = i;
  }
  return changed;
}

/// Applies a change list over a copy of the base values.
template <class T, class Encode, class Decode>
Status apply_delta(codec::Reader& in, std::vector<T>& values, Encode encode,
                   Decode decode) {
  Result<std::uint64_t> count = in.read_varint();
  if (!count.ok()) return count.error();
  std::size_t at = 0;
  for (std::uint64_t k = 0; k < count.value(); ++k) {
    Result<std::uint64_t> gap = in.read_varint();
    if (!gap.ok()) return gap.error();
    Result<std::int64_t> diff = in.read_svarint();
    if (!diff.ok()) return diff.error();
    at += static_cast<std::size_t>(gap.value());
    if (at >= values.size()) {
      return Error::parse("census delta index out of range");
    }
    const std::int64_t decoded =
        static_cast<std::int64_t>(encode(values[at])) + diff.value();
    if (decoded < 0) return Error::parse("census delta underflows");
    values[at] = decode(static_cast<std::uint64_t>(decoded));
  }
  return {};
}

}  // namespace

std::uint64_t ResultStore::census_key(const anycast::AnycastConfig& config,
                                      std::uint64_t nonce) {
  std::uint64_t k = mix64(0x57E0ECA5ULL, nonce);
  k = mix64(k, config.announce_order.size());
  for (const SiteId site : config.announce_order) {
    k = mix64(k, encode_site(site));
  }
  k = mix64(k, config.prepend.size());
  for (const std::uint8_t p : config.prepend) k = mix64(k, p);
  k = mix64(k, config.enabled_peers.size());
  for (const bgp::AttachmentIndex peer : config.enabled_peers) {
    k = mix64(k, encode_att(peer));
  }
  return mix64(k, std::bit_cast<std::uint64_t>(config.spacing_s));
}

Result<std::unique_ptr<ResultStore>> ResultStore::open(
    const std::string& path, std::uint64_t topology_fingerprint) {
  return open_impl(path, topology_fingerprint, /*adopt_fingerprint=*/false,
                   /*read_only=*/false);
}

Result<std::unique_ptr<ResultStore>> ResultStore::open_existing(
    const std::string& path) {
  return open_impl(path, 0, /*adopt_fingerprint=*/true, /*read_only=*/false);
}

Result<std::unique_ptr<ResultStore>> ResultStore::open_read_only(
    const std::string& path) {
  return open_impl(path, 0, /*adopt_fingerprint=*/true, /*read_only=*/true);
}

Result<std::unique_ptr<ResultStore>> ResultStore::open_impl(
    const std::string& path, std::uint64_t topology_fingerprint,
    bool adopt_fingerprint, bool read_only) {
  auto store = std::unique_ptr<ResultStore>(new ResultStore());
  store->path_ = path;
  store->read_only_ = read_only;

  std::vector<std::uint8_t> bytes;
  if (std::FILE* f = std::fopen(path.c_str(), "rb"); f != nullptr) {
    std::uint8_t chunk[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
      bytes.insert(bytes.end(), chunk, chunk + n);
    }
    std::fclose(f);
  } else if (adopt_fingerprint) {
    return Error::not_found("no store at " + path);
  }

  if (bytes.empty()) {
    if (read_only) {
      return Error::state("store " + path +
                          " is empty; a read-only open never creates one");
    }
    // Fresh store: header only.
    store->fingerprint_ = topology_fingerprint;
    store->buffer_ = codec::encode_header(kMagic, kSchemaVersion,
                                          topology_fingerprint);
    store->file_ = std::fopen(path.c_str(), "wb");
    if (store->file_ == nullptr) {
      return Error::state("cannot create store " + path + ": " +
                          std::strerror(errno));
    }
    std::fwrite(store->buffer_.data(), 1, store->buffer_.size(),
                store->file_);
    std::fflush(store->file_);
    return store;
  }

  Result<codec::FileHeader> header = codec::decode_header(bytes, kMagic);
  if (!header.ok()) {
    return Error::parse(path + ": " + header.error().message);
  }
  if (header.value().version != kSchemaVersion) {
    return Error::parse(path + ": schema version " +
                        std::to_string(header.value().version) +
                        " (this build reads version " +
                        std::to_string(kSchemaVersion) + ")");
  }
  if (!adopt_fingerprint &&
      header.value().app_word != topology_fingerprint) {
    return Error::state(path + ": topology fingerprint mismatch (store " +
                        std::to_string(header.value().app_word) +
                        ", world " + std::to_string(topology_fingerprint) +
                        ") — this store was written against a different "
                        "topology");
  }
  store->fingerprint_ = header.value().app_word;

  // Rebuild the index by scanning the record log.  A torn tail —
  // interrupted append — is truncated away; anything else is corruption.
  std::size_t offset = codec::kHeaderSize;
  while (offset < bytes.size()) {
    codec::FrameView frame;
    const codec::FrameScan scan = codec::scan_frame(bytes, offset, &frame);
    if (scan == codec::FrameScan::kTruncated) {
      store->recovered_tail_bytes_ = bytes.size() - offset;
      break;
    }
    if (scan == codec::FrameScan::kBadCrc) {
      return Error::parse(path + ": record fails its CRC at offset " +
                          std::to_string(offset));
    }
    codec::Reader reader(frame.payload);
    Result<codec::Section> key_section = reader.read_section();
    if (!key_section.ok() || key_section.value().tag != kTagKey ||
        key_section.value().body.size() != 8) {
      return Error::parse(path + ": record at offset " +
                          std::to_string(offset) + " has no key section");
    }
    codec::Reader key_reader(key_section.value().body);
    const std::uint64_t key = key_reader.read_u64le().value();
    const auto kind = static_cast<RecordKind>(frame.kind);
    store->index_[index_key(kind, key)] = offset;
    store->log_.push_back(
        {kind, key, offset, frame.payload.size()});
    offset = frame.next_offset;
  }
  store->buffer_.assign(bytes.begin(),
                        bytes.begin() + static_cast<std::ptrdiff_t>(offset));

  // The first census in log order is the delta base every later census
  // references; decode it up front.
  for (const RecordInfo& info : store->log_) {
    if (info.kind != RecordKind::kCensus) continue;
    Result<codec::FrameView> frame =
        codec::read_frame(store->buffer_, info.offset);
    Result<Census> base = store->decode_census_locked(frame.value().payload);
    if (!base.ok()) {
      return Error::parse(path + ": base census undecodable: " +
                          base.error().message);
    }
    store->base_census_ = std::move(base).value();
    store->base_key_ = info.key;
    break;
  }

  if (read_only) {
    // Never touch the file: a torn tail stays on disk (a concurrent writer
    // may be mid-append of that very record), and `file_` stays null so
    // every put fails with "is not writable".
  } else if (store->recovered_tail_bytes_ > 0) {
    // Drop the torn tail on disk by rewriting the valid prefix.
    store->file_ = std::fopen(path.c_str(), "wb");
    if (store->file_ == nullptr) {
      return Error::state("cannot rewrite store " + path + ": " +
                          std::strerror(errno));
    }
    std::fwrite(store->buffer_.data(), 1, store->buffer_.size(),
                store->file_);
    std::fflush(store->file_);
  } else {
    store->file_ = std::fopen(path.c_str(), "ab");
    if (store->file_ == nullptr) {
      return Error::state("cannot append to store " + path + ": " +
                          std::strerror(errno));
    }
  }
  store->note_index_bytes_locked();
  return store;
}

ResultStore::~ResultStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ResultStore::append_locked(RecordKind kind, std::uint64_t key,
                                  std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  codec::frame_record(static_cast<std::uint8_t>(kind), payload, frame);
  if (file_ == nullptr) {
    return Error::state("store " + path_ + " is not writable");
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    return Error::state("write to store " + path_ + " failed: " +
                        std::strerror(errno));
  }
  const std::size_t offset = buffer_.size();
  buffer_.insert(buffer_.end(), frame.begin(), frame.end());
  index_[index_key(kind, key)] = offset;
  log_.push_back({kind, key, offset, payload.size()});
  if (telemetry::enabled()) {
    const StoreMetrics& m = StoreMetrics::get();
    m.records_written->add(1);
    m.bytes_written->add(frame.size());
    note_index_bytes_locked();
  }
  return {};
}

void ResultStore::note_index_bytes_locked() const {
  if (!telemetry::enabled()) return;
  static telemetry::Gauge& bytes =
      telemetry::Registry::global().gauge("bytes.store_index");
  // Buffer mirror plus hash-map nodes (key+offset+bucket pointer is a fair
  // libstdc++ node estimate) plus the log directory.
  const std::size_t node =
      sizeof(std::uint64_t) + sizeof(std::size_t) + 2 * sizeof(void*);
  bytes.set(static_cast<std::int64_t>(buffer_.capacity() +
                                      index_.size() * node +
                                      log_.capacity() * sizeof(RecordInfo)));
}

void ResultStore::encode_census_locked(std::uint64_t key,
                                       const Census& census,
                                       codec::Writer& out) const {
  codec::Writer key_section;
  key_section.put_u64le(key);
  out.put_section(kTagKey, key_section);

  const std::size_t targets = census.site_of_target.size();
  const bool is_base = !base_census_.has_value();
  // Delta-encode against the base when shapes match and the change list is
  // actually shorter than a full array (an empty census — every slot
  // "changed" — stays full-encoded).
  const bool delta_shape =
      !is_base && base_census_->site_of_target.size() == targets;
  std::size_t site_changes = 0;
  std::size_t att_changes = 0;
  if (delta_shape) {
    for (std::size_t t = 0; t < targets; ++t) {
      if (census.site_of_target[t] != base_census_->site_of_target[t]) {
        ++site_changes;
      }
      if (census.attachment_of_target[t] !=
          base_census_->attachment_of_target[t]) {
        ++att_changes;
      }
    }
  }
  const bool sites_delta = delta_shape && site_changes <= targets / 2;
  const bool atts_delta = delta_shape && att_changes <= targets / 2;

  codec::Writer meta;
  meta.put_varint(targets);
  meta.put_u8(static_cast<std::uint8_t>((is_base ? kFlagBase : 0) |
                                        (sites_delta ? kFlagSitesDelta : 0) |
                                        (atts_delta ? kFlagAttsDelta : 0)));
  out.put_section(kTagMeta, meta);

  if (sites_delta || atts_delta) {
    codec::Writer base_key;
    base_key.put_u64le(base_key_);
    out.put_section(kTagBaseKey, base_key);
  }

  if (sites_delta) {
    codec::Writer body;
    put_delta(body, census.site_of_target, base_census_->site_of_target,
              encode_site);
    out.put_section(kTagSitesDelta, body);
  } else {
    codec::Writer body;
    for (const SiteId site : census.site_of_target) {
      body.put_varint(encode_site(site));
    }
    out.put_section(kTagSitesFull, body);
  }

  if (atts_delta) {
    codec::Writer body;
    put_delta(body, census.attachment_of_target,
              base_census_->attachment_of_target, encode_att);
    out.put_section(kTagAttsDelta, body);
  } else {
    codec::Writer body;
    for (const bgp::AttachmentIndex att : census.attachment_of_target) {
      body.put_varint(encode_att(att));
    }
    out.put_section(kTagAttsFull, body);
  }

  // RTTs carry per-experiment probe noise: they differ for essentially
  // every reachable target, so they are always stored in full.
  codec::Writer rtts;
  for (const double rtt : census.rtt_ms) rtts.put_double(rtt);
  out.put_section(kTagRtts, rtts);

  if (telemetry::enabled() && (sites_delta || atts_delta)) {
    const StoreMetrics& m = StoreMetrics::get();
    m.delta_entries->add((sites_delta ? site_changes : 0) +
                         (atts_delta ? att_changes : 0));
    m.delta_slots->add((sites_delta ? targets : 0) +
                       (atts_delta ? targets : 0));
  }
}

Result<Census> ResultStore::decode_census_locked(
    std::span<const std::uint8_t> payload) const {
  codec::Reader reader(payload);
  std::size_t targets = 0;
  std::uint8_t flags = 0;
  bool saw_meta = false;
  std::uint64_t base_key = 0;
  std::span<const std::uint8_t> sites_body;
  std::span<const std::uint8_t> atts_body;
  std::span<const std::uint8_t> rtts_body;
  bool saw_sites = false;
  bool saw_atts = false;
  bool saw_rtts = false;

  while (!reader.at_end()) {
    Result<codec::Section> section = reader.read_section();
    if (!section.ok()) return section.error();
    codec::Reader body(section.value().body);
    switch (section.value().tag) {
      case kTagMeta: {
        Result<std::uint64_t> count = body.read_varint();
        if (!count.ok()) return count.error();
        Result<std::uint8_t> f = body.read_u8();
        if (!f.ok()) return f.error();
        targets = static_cast<std::size_t>(count.value());
        flags = f.value();
        saw_meta = true;
        break;
      }
      case kTagBaseKey: {
        Result<std::uint64_t> k = body.read_u64le();
        if (!k.ok()) return k.error();
        base_key = k.value();
        break;
      }
      case kTagSitesFull:
      case kTagSitesDelta:
        sites_body = section.value().body;
        saw_sites = true;
        break;
      case kTagAttsFull:
      case kTagAttsDelta:
        atts_body = section.value().body;
        saw_atts = true;
        break;
      case kTagRtts:
        rtts_body = section.value().body;
        saw_rtts = true;
        break;
      default:
        break;  // forward compatibility: skip sections we do not know
    }
  }
  if (!saw_meta || !saw_sites || !saw_atts || !saw_rtts) {
    return Error::parse("census record is missing a required section");
  }

  Census census;
  census.site_of_target.resize(targets);
  census.attachment_of_target.resize(targets);
  census.rtt_ms.resize(targets);

  const bool sites_delta = (flags & kFlagSitesDelta) != 0;
  const bool atts_delta = (flags & kFlagAttsDelta) != 0;
  if (sites_delta || atts_delta) {
    if (!base_census_.has_value() || base_key != base_key_ ||
        base_census_->site_of_target.size() != targets) {
      return Error::parse("census delta references an unknown base census");
    }
  }

  if (sites_delta) {
    census.site_of_target = base_census_->site_of_target;
    codec::Reader body(sites_body);
    const Status applied =
        apply_delta(body, census.site_of_target, encode_site, decode_site);
    if (!applied.ok()) return applied.error();
  } else {
    codec::Reader body(sites_body);
    for (std::size_t t = 0; t < targets; ++t) {
      Result<std::uint64_t> v = body.read_varint();
      if (!v.ok()) return v.error();
      census.site_of_target[t] = decode_site(v.value());
    }
  }

  if (atts_delta) {
    census.attachment_of_target = base_census_->attachment_of_target;
    codec::Reader body(atts_body);
    const Status applied = apply_delta(body, census.attachment_of_target,
                                       encode_att, decode_att);
    if (!applied.ok()) return applied.error();
  } else {
    codec::Reader body(atts_body);
    for (std::size_t t = 0; t < targets; ++t) {
      Result<std::uint64_t> v = body.read_varint();
      if (!v.ok()) return v.error();
      census.attachment_of_target[t] = decode_att(v.value());
    }
  }

  if (rtts_body.size() != targets * 8) {
    return Error::parse("census RTT section has wrong arity");
  }
  codec::Reader body(rtts_body);
  for (std::size_t t = 0; t < targets; ++t) {
    census.rtt_ms[t] = body.read_double().value();
  }
  return census;
}

std::optional<std::span<const std::uint8_t>> ResultStore::payload_locked(
    RecordKind kind, std::uint64_t key) const {
  const auto it = index_.find(index_key(kind, key));
  if (it == index_.end()) return std::nullopt;
  codec::FrameView frame;
  if (codec::scan_frame(buffer_, it->second, &frame) !=
      codec::FrameScan::kOk) {
    return std::nullopt;  // cannot happen: buffer holds only verified frames
  }
  return frame.payload;
}

std::optional<Census> ResultStore::find_census(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto payload = payload_locked(RecordKind::kCensus, key);
  const bool telem = telemetry::enabled();
  if (!payload.has_value()) {
    if (telem) StoreMetrics::get().misses->add(1);
    return std::nullopt;
  }
  Result<Census> census = decode_census_locked(*payload);
  if (!census.ok()) {
    if (telem) StoreMetrics::get().misses->add(1);
    return std::nullopt;
  }
  if (telem) StoreMetrics::get().hits->add(1);
  return std::move(census).value();
}

Status ResultStore::put_census(std::uint64_t key, const Census& census) {
  const std::lock_guard<std::mutex> lock(mutex_);
  codec::Writer payload;
  encode_census_locked(key, census, payload);
  const Status appended =
      append_locked(RecordKind::kCensus, key, payload.bytes());
  if (!appended.ok()) return appended;
  if (!base_census_.has_value()) {
    base_census_ = census;
    base_key_ = key;
  }
  return {};
}

std::optional<std::vector<double>> ResultStore::find_rtt_row(
    std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto payload = payload_locked(RecordKind::kRttRow, key);
  const bool telem = telemetry::enabled();
  if (!payload.has_value()) {
    if (telem) StoreMetrics::get().misses->add(1);
    return std::nullopt;
  }
  codec::Reader reader(*payload);
  std::optional<std::vector<double>> out;
  while (!reader.at_end()) {
    Result<codec::Section> section = reader.read_section();
    if (!section.ok()) break;
    if (section.value().tag != kTagRtts) continue;
    if (section.value().body.size() % 8 != 0) break;
    codec::Reader body(section.value().body);
    std::vector<double> rtts(section.value().body.size() / 8);
    for (double& rtt : rtts) rtt = body.read_double().value();
    out = std::move(rtts);
    break;
  }
  if (telem) {
    (out.has_value() ? StoreMetrics::get().hits : StoreMetrics::get().misses)
        ->add(1);
  }
  return out;
}

Status ResultStore::put_rtt_row(std::uint64_t key,
                                const std::vector<double>& rtts) {
  const std::lock_guard<std::mutex> lock(mutex_);
  codec::Writer payload;
  codec::Writer key_section;
  key_section.put_u64le(key);
  payload.put_section(kTagKey, key_section);
  codec::Writer body;
  for (const double rtt : rtts) body.put_double(rtt);
  payload.put_section(kTagRtts, body);
  return append_locked(RecordKind::kRttRow, key, payload.bytes());
}

std::optional<std::vector<std::uint8_t>> ResultStore::find_payload(
    RecordKind kind, std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto payload = payload_locked(kind, key);
  const bool telem = telemetry::enabled();
  if (!payload.has_value()) {
    if (telem) StoreMetrics::get().misses->add(1);
    return std::nullopt;
  }
  // Skip the leading key section; the caller owns everything after it.
  codec::Reader reader(*payload);
  Result<codec::Section> key_section = reader.read_section();
  if (!key_section.ok()) {
    if (telem) StoreMetrics::get().misses->add(1);
    return std::nullopt;
  }
  if (telem) StoreMetrics::get().hits->add(1);
  return std::vector<std::uint8_t>(payload->begin() + reader.offset(),
                                   payload->end());
}

Status ResultStore::put_payload(RecordKind kind, std::uint64_t key,
                                const codec::Writer& body) {
  const std::lock_guard<std::mutex> lock(mutex_);
  codec::Writer payload;
  codec::Writer key_section;
  key_section.put_u64le(key);
  payload.put_section(kTagKey, key_section);
  payload.put_bytes(body.bytes());
  return append_locked(kind, key, payload.bytes());
}

std::optional<bgp::CompactState> ResultStore::find_rib(
    std::uint64_t key) const {
  const auto body = find_payload(RecordKind::kRib, key);
  if (!body.has_value()) return std::nullopt;
  Result<bgp::CompactState> decoded = bgp::CompactState::decode(*body);
  // A decode failure on a CRC-valid record means a schema skew, not
  // corruption; treat it as a miss so callers re-freeze and re-put.
  if (!decoded.ok()) return std::nullopt;
  return std::move(decoded).value();
}

Status ResultStore::put_rib(std::uint64_t key, const bgp::CompactState& rib) {
  codec::Writer body;
  rib.encode(body);
  return put_payload(RecordKind::kRib, key, body);
}

Result<Census> ResultStore::read_census_at(const RecordInfo& info) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Result<codec::FrameView> frame = codec::read_frame(buffer_, info.offset);
  if (!frame.ok()) return frame.error();
  if (static_cast<RecordKind>(frame.value().kind) != RecordKind::kCensus) {
    return Error::invalid("record at offset " + std::to_string(info.offset) +
                          " is not a census");
  }
  return decode_census_locked(frame.value().payload);
}

std::vector<RecordInfo> ResultStore::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

Result<ResultStore::VerifyReport> ResultStore::verify_file(
    const std::string& path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error::not_found("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::uint8_t chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);

  Result<codec::FileHeader> header = codec::decode_header(bytes, kMagic);
  if (!header.ok()) return header.error();
  if (header.value().version != kSchemaVersion) {
    return Error::parse("schema version " +
                        std::to_string(header.value().version) +
                        " (this build reads version " +
                        std::to_string(kSchemaVersion) + ")");
  }

  VerifyReport report;
  std::size_t offset = codec::kHeaderSize;
  while (offset < bytes.size()) {
    codec::FrameView frame;
    switch (codec::scan_frame(bytes, offset, &frame)) {
      case codec::FrameScan::kOk:
        ++report.records;
        offset = frame.next_offset;
        continue;
      case codec::FrameScan::kTruncated:
        report.torn_tail_bytes = bytes.size() - offset;
        report.problems.push_back("torn record at offset " +
                                  std::to_string(offset) + " (" +
                                  std::to_string(report.torn_tail_bytes) +
                                  " trailing bytes)");
        offset = bytes.size();
        continue;
      case codec::FrameScan::kBadCrc:
        ++report.bad_crc;
        report.problems.push_back("record fails its CRC at offset " +
                                  std::to_string(offset));
        // Best effort: step over the claimed frame and keep scanning.
        offset += 9 + static_cast<std::size_t>(bytes[offset + 1]) +
                  (static_cast<std::size_t>(bytes[offset + 2]) << 8) +
                  (static_cast<std::size_t>(bytes[offset + 3]) << 16) +
                  (static_cast<std::size_t>(bytes[offset + 4]) << 24);
        continue;
    }
  }
  return report;
}

}  // namespace anyopt::measure
