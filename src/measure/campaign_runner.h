#pragma once
// Parallel experiment execution engine.
//
// Discovery is the dominant cost of AnyOpt: a campaign is O(providers²) +
// Σ O(sites_p²) *independent* BGP experiments (§4.5), each a clean-state
// `bgp::Simulator::run` over shared immutable topology.  The runner takes a
// batch of fully specified experiments — an `AnycastConfig` plus the
// content-derived nonce that fixes its jitter — and fans them out over a
// worker pool.  Because every experiment's identity is self-contained,
// results are returned in spec order and are bit-identical to the serial
// path regardless of thread count or completion order.

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/config.h"
#include "measure/orchestrator.h"
#include "netbase/thread_pool.h"

namespace anyopt::measure {

/// One fully specified BGP experiment: a deployable configuration plus the
/// nonce that individualizes its jitter.  Two specs with the same content
/// produce the same census wherever and whenever they run.
struct ExperimentSpec {
  anycast::AnycastConfig config;
  std::uint64_t nonce = 0;
};

struct CampaignRunnerOptions {
  /// Worker threads; 1 = run serially on the calling thread (no pool),
  /// 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Keep one `bgp::SimScratch` per pool worker so consecutive experiments
  /// on a worker recycle simulator allocations.  Never changes results;
  /// disable to force fresh allocations per experiment.
  bool reuse_scratch = true;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(const Orchestrator& orchestrator,
                          CampaignRunnerOptions options = {});

  /// Measures every spec and returns the censuses in spec order.
  [[nodiscard]] std::vector<Census> run(
      std::span<const ExperimentSpec> specs) const;

  /// Effective worker count (1 when running serially).
  [[nodiscard]] std::size_t threads() const {
    return pool_ ? pool_->size() : 1;
  }

  [[nodiscard]] const Orchestrator& orchestrator() const {
    return orchestrator_;
  }

 private:
  const Orchestrator& orchestrator_;
  bool reuse_scratch_ = true;
  // The pool is internally synchronized; dispatching through it from a
  // const `run` leaves the runner's observable state untouched.
  std::unique_ptr<ThreadPool> pool_;
  // One allocation arena per pool worker (empty when serial — the serial
  // path uses the orchestrator's thread-local scratch).  Mutable for the
  // same reason the pool dispatch is const: recycled buffers are invisible
  // to callers, results are bit-identical with or without them.  Each arena
  // is touched only by its own worker thread, so no locking is needed.
  mutable std::vector<bgp::SimScratch> worker_scratch_;
};

}  // namespace anyopt::measure
