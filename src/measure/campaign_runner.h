#pragma once
// Parallel experiment execution engine.
//
// Discovery is the dominant cost of AnyOpt: a campaign is O(providers²) +
// Σ O(sites_p²) *independent* BGP experiments (§4.5), each a clean-state
// `bgp::Simulator::run` over shared immutable topology.  The runner takes a
// batch of fully specified experiments — an `AnycastConfig` plus the
// content-derived nonce that fixes its jitter — and fans them out over a
// worker pool.  Because every experiment's identity is self-contained,
// results are returned in spec order and are bit-identical to the serial
// path regardless of thread count or completion order.

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/config.h"
#include "measure/orchestrator.h"
#include "netbase/thread_pool.h"

namespace anyopt::measure {

/// \brief One fully specified BGP experiment: a deployable configuration
///        plus the nonce that individualizes its jitter.
///
/// Two specs with the same content produce the same census wherever and
/// whenever they run.  The fault coordinates (`ordinal`, `attempt`) only
/// matter when the orchestrator carries a `fault::FaultInjector`: they
/// locate the experiment inside its campaign so injected failures replay
/// deterministically; a re-enqueued (retried) spec keeps its nonce — and
/// therefore its census noise — and bumps only `attempt`.
struct ExperimentSpec {
  anycast::AnycastConfig config;  ///< what to announce
  std::uint64_t nonce = 0;        ///< content-derived jitter/noise identity
  std::size_t ordinal = 0;        ///< campaign position, for the fault layer
  std::uint32_t attempt = 0;      ///< retry attempt, 0 = first run
};

/// \brief One experiment expressed incrementally: a shared converged base
///        plus the announcement delta that turns it into the experiment.
///
/// `config` must describe the FULL experiment (base schedule plus delta):
/// it keys the result store and drives the fault layer's classic fallback
/// (see `Orchestrator::measure_overlay`).  The base is not owned and must
/// outlive the batch; many specs may share one base across threads (it is
/// read-only during overlay runs).
struct OverlaySpec {
  const bgp::BaseState* base = nullptr;  ///< shared converged base
  anycast::AnycastConfig config;         ///< the full experiment's config
  std::vector<bgp::Injection> delta;     ///< events beyond the base schedule
  std::uint64_t nonce = 0;               ///< jitter/noise identity
  std::size_t ordinal = 0;               ///< campaign position (fault layer)
  std::uint32_t attempt = 0;             ///< retry attempt, 0 = first run
};

/// \brief One pairwise order experiment expressed incrementally: a shared
///        converged base plus the second item's announcement delta.
///
/// Expands to TWO censuses — leg 0 forks the base and propagates `delta`;
/// leg 1 resumes leg 0 and re-ages the `reage` attachments (seniority
/// inversion), so the pair costs one wave-2 propagation and one flip
/// cascade instead of two full re-convergences.  `config0`/`config1` must
/// describe the two full experiments: they key the result store and drive
/// the fault layer's classic fallbacks (see
/// `Orchestrator::measure_overlay_pair`).  The base is not owned and must
/// outlive the batch; many specs may share one base across threads (it is
/// read-only during overlay runs).
struct OverlayPairSpec {
  const bgp::BaseState* base = nullptr;     ///< shared converged base
  anycast::AnycastConfig config0;           ///< full (first, second) config
  anycast::AnycastConfig config1;           ///< full (second, first) config
  std::vector<bgp::Injection> delta;        ///< second item over the base
  std::vector<bgp::AttachmentIndex> reage;  ///< first item's sessions (leg 1)
  std::uint64_t nonce0 = 0;                 ///< leg-0 jitter/noise identity
  std::uint64_t nonce1 = 0;                 ///< leg-1 jitter/noise identity
  std::size_t ordinal0 = 0;                 ///< leg-0 campaign position
  std::size_t ordinal1 = 0;                 ///< leg-1 campaign position
  std::uint32_t attempt = 0;                ///< retry attempt, 0 = first run
};

class ResultStore;

/// \brief Campaign engine configuration.
struct CampaignRunnerOptions {
  /// Worker threads; 1 = run serially on the calling thread (no pool),
  /// 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Keep one `bgp::SimScratch` per pool worker so consecutive experiments
  /// on a worker recycle simulator allocations.  Never changes results;
  /// disable to force fresh allocations per experiment.
  bool reuse_scratch = true;
  /// Optional persistent result store (checkpoint/resume and warm starts).
  /// Each spec is looked up by `ResultStore::census_key` before running —
  /// a hit replays the persisted census without simulating — and every
  /// freshly measured census is flushed the moment it completes, so an
  /// interrupted campaign loses at most its in-flight experiments.
  /// Retried specs (`attempt > 0`) always re-run: serving a stored census
  /// to a retry would replay the very result the retry exists to replace.
  /// Not owned; must outlive the runner.
  ResultStore* store = nullptr;
};

/// \brief Fans a batch of independent experiments over a worker pool.
///
/// Results are returned in spec order and are bit-identical to the serial
/// path regardless of thread count or completion order.
class CampaignRunner {
 public:
  /// \brief Builds a runner over an orchestrator.
  /// \param orchestrator the measurement engine (must outlive the runner).
  /// \param options worker count and scratch policy.
  explicit CampaignRunner(const Orchestrator& orchestrator,
                          CampaignRunnerOptions options = {});

  /// \brief Measures every spec.
  /// \param specs the batch of experiments to run.
  /// \return one census per spec, in spec order.
  [[nodiscard]] std::vector<Census> run(
      std::span<const ExperimentSpec> specs) const;

  /// \brief Measures every overlay spec (incremental re-convergence).
  ///
  /// Fans out over the worker pool exactly like `run`; each worker forks a
  /// read-only overlay off the spec's shared base.  Store policy matches
  /// `run`: persisted censuses replay without simulating, fresh censuses
  /// flush as they complete, retries always re-run.
  /// \param specs the batch of overlay experiments.
  /// \return one census per spec, in spec order.
  [[nodiscard]] std::vector<Census> run_overlays(
      std::span<const OverlaySpec> specs) const;

  /// \brief Measures every overlay pair (incremental re-convergence).
  ///
  /// Pairs fan out over the worker pool exactly like `run`; each worker
  /// forks read-only overlays off the specs' shared bases.  Store policy
  /// matches `run`: a pair whose BOTH legs are persisted replays without
  /// simulating (a pair simulates as a unit — leg 1 resumes leg 0), and
  /// every freshly measured leg is flushed as it completes.
  /// \param specs the batch of overlay pairs.
  /// \return two censuses per spec, in spec order: [leg0 of spec 0, leg1 of
  ///         spec 0, leg0 of spec 1, ...].
  [[nodiscard]] std::vector<Census> run_overlay_pairs(
      std::span<const OverlayPairSpec> specs) const;

  /// \brief Effective worker count (1 when running serially).
  /// \return number of threads experiments are fanned over.
  [[nodiscard]] std::size_t threads() const {
    return pool_ ? pool_->size() : 1;
  }

  /// \brief The orchestrator this runner drives.
  /// \return the orchestrator passed at construction.
  [[nodiscard]] const Orchestrator& orchestrator() const {
    return orchestrator_;
  }

 private:
  const Orchestrator& orchestrator_;
  bool reuse_scratch_ = true;
  ResultStore* store_ = nullptr;
  // The pool is internally synchronized; dispatching through it from a
  // const `run` leaves the runner's observable state untouched.
  std::unique_ptr<ThreadPool> pool_;
  // One allocation arena per pool worker (empty when serial — the serial
  // path uses the orchestrator's thread-local scratch).  Mutable for the
  // same reason the pool dispatch is const: recycled buffers are invisible
  // to callers, results are bit-identical with or without them.  Each arena
  // is touched only by its own worker thread, so no locking is needed.
  mutable std::vector<bgp::SimScratch> worker_scratch_;
};

}  // namespace anyopt::measure
