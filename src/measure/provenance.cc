#include "measure/provenance.h"

#include <cinttypes>

namespace anyopt::measure::provenance {

FlightLog& FlightLog::global() {
  static FlightLog instance;
  return instance;
}

bool FlightLog::open(const std::string& path) {
  const std::lock_guard lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "w");
  records_ = 0;
  active_.store(file_ != nullptr, std::memory_order_relaxed);
  return file_ != nullptr;
}

void FlightLog::close() {
  const std::lock_guard lock(mutex_);
  active_.store(false, std::memory_order_relaxed);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::uint64_t FlightLog::records() const {
  const std::lock_guard lock(mutex_);
  return records_;
}

void FlightLog::record(const ExperimentTrace& trace) {
  if (!active()) return;
  const std::lock_guard lock(mutex_);
  if (file_ == nullptr) return;
  // Nonces are full 64-bit values; JSON numbers only carry 53 bits of
  // integer precision, so the trace id travels as a hex string.  The line
  // is built in a buffer (string formatting, not stream output — see
  // stdio_hygiene_test) and written in one fwrite so a line is never
  // interleaved even if the FILE* ends up shared.
  char line[1024];
  const int n = std::snprintf(
      line, sizeof line,
      "{\"nonce\":\"%016" PRIx64 "\",\"ordinal\":%" PRIu64
      ",\"attempt\":%u,\"path\":\"%s\",\"sim_events\":%" PRIu64
      ",\"cache_hits\":%" PRIu64 ",\"cache_misses\":%" PRIu64
      ",\"probes_sent\":%" PRIu64 ",\"probes_lost\":%" PRIu64
      ",\"retries\":%" PRIu64 ",\"targets\":%" PRIu64
      ",\"reachable\":%" PRIu64
      ",\"round_failed\":%s,\"degraded\":%s,\"storm\":%s"
      ",\"announce_suppressed\":%" PRIu64 ",\"flap_events\":%" PRIu64
      ",\"targets_dropped\":%" PRIu64 ",\"duration_ms\":%.3f}\n",
      trace.nonce, trace.ordinal, trace.attempt, trace.path,
      trace.sim_events, trace.cache_hits, trace.cache_misses,
      trace.probes_sent, trace.probes_lost, trace.retries, trace.targets,
      trace.reachable, trace.round_failed ? "true" : "false",
      trace.degraded ? "true" : "false", trace.storm ? "true" : "false",
      trace.announce_suppressed, trace.flap_events, trace.targets_dropped,
      trace.duration_ms);
  if (n <= 0 || static_cast<std::size_t>(n) >= sizeof line) return;
  std::fwrite(line, 1, static_cast<std::size_t>(n), file_);
  // Flush per line: a killed campaign keeps every completed experiment's
  // provenance, mirroring the result store's flush-per-experiment policy.
  std::fflush(file_);
  ++records_;
}

}  // namespace anyopt::measure::provenance
