#include "measure/prober.h"

#include <algorithm>
#include <vector>

#include "netbase/stats.h"

namespace anyopt::measure {

std::optional<double> Prober::probe_once(double true_rtt_ms,
                                         double extra_loss_rate) {
  ++sent_;
  // Base loss and injected loss are independent Bernoullis; their union is
  // a single trial at p + e - p*e, which keeps this at exactly one RNG draw
  // (the stream is unchanged when extra_loss_rate == 0).
  const double loss = model_.loss_rate + extra_loss_rate -
                      model_.loss_rate * extra_loss_rate;
  if (rng_.chance(loss)) {
    ++lost_;
    return std::nullopt;
  }
  // A queueing-delay multiplier cannot be negative: a raw normal draw with
  // large `jitter_frac` can push 1 + frac*N(0,1) below zero, and clamping
  // the resulting negative RTT to 0.05 ms would silently bias medians for
  // low-RTT targets.  Resample the factor instead (rejection sampling from
  // the truncated normal); the bounded retry keeps the draw count finite
  // even for absurd jitter_frac.  At the default jitter_frac (0.02) a
  // negative factor is a >50-sigma event, so the RNG stream — and every
  // existing census — is unchanged.
  double factor = 1.0 + model_.jitter_frac * rng_.normal();
  for (int tries = 0; factor < 0.0 && tries < 16; ++tries) {
    factor = 1.0 + model_.jitter_frac * rng_.normal();
  }
  if (factor < 0.0) factor = 0.0;
  double sample = true_rtt_ms * factor;
  sample += model_.jitter_floor_ms * std::abs(rng_.normal());
  if (rng_.chance(model_.spike_prob)) {
    sample += rng_.exponential(model_.spike_ms);
  }
  return std::max(0.05, sample);
}

std::optional<double> Prober::measure(double true_rtt_ms,
                                      double extra_loss_rate) {
  std::uint64_t round_sent = 0;
  std::uint64_t round_lost = 0;
  for (int attempt = 0; attempt <= model_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff before each retry.  The wait is simulated (the
      // whole measurement layer is virtual time), so it is accumulated for
      // inspection rather than slept.
      ++retries_;
      // Saturate the doubling: shifting a 64-bit one by >= 64 is UB, and a
      // backoff beyond 2^63 base units is indistinguishable from "forever"
      // anyway.  Identical to the unchecked shift for attempt <= 64.
      const int shift = std::min(attempt - 1, 63);
      backoff_ms_ += model_.backoff_base_ms *
                     static_cast<double>(std::uint64_t{1} << shift);
    }
    std::vector<double> valid;
    valid.reserve(model_.repeats);
    for (int i = 0; i < model_.repeats; ++i) {
      ++round_sent;
      if (const auto s = probe_once(true_rtt_ms, extra_loss_rate)) {
        valid.push_back(*s);
      } else {
        ++round_lost;
      }
    }
    if (static_cast<int>(valid.size()) >= model_.min_valid) {
      return stats::median(std::move(valid));
    }
    // Per-measurement loss budget: once more than this fraction of the
    // probes aimed at the target has been lost, further retries are judged
    // futile (the default budget of 1.0 can never be exceeded).
    if (static_cast<double>(round_lost) >
        model_.round_loss_budget * static_cast<double>(round_sent)) {
      break;
    }
  }
  return std::nullopt;
}

}  // namespace anyopt::measure
