#include "measure/prober.h"

#include <algorithm>
#include <vector>

#include "netbase/stats.h"

namespace anyopt::measure {

std::optional<double> Prober::probe_once(double true_rtt_ms) {
  ++sent_;
  if (rng_.chance(model_.loss_rate)) {
    ++lost_;
    return std::nullopt;
  }
  double sample = true_rtt_ms * (1.0 + model_.jitter_frac * rng_.normal());
  sample += model_.jitter_floor_ms * std::abs(rng_.normal());
  if (rng_.chance(model_.spike_prob)) {
    sample += rng_.exponential(model_.spike_ms);
  }
  return std::max(0.05, sample);
}

std::optional<double> Prober::measure(double true_rtt_ms) {
  std::vector<double> valid;
  valid.reserve(model_.repeats);
  for (int i = 0; i < model_.repeats; ++i) {
    if (const auto s = probe_once(true_rtt_ms)) valid.push_back(*s);
  }
  if (static_cast<int>(valid.size()) < model_.min_valid) return std::nullopt;
  return stats::median(std::move(valid));
}

}  // namespace anyopt::measure
