#include "measure/prober.h"

#include <algorithm>
#include <vector>

#include "netbase/stats.h"

namespace anyopt::measure {

std::optional<double> Prober::probe_once(double true_rtt_ms) {
  ++sent_;
  if (rng_.chance(model_.loss_rate)) {
    ++lost_;
    return std::nullopt;
  }
  // A queueing-delay multiplier cannot be negative: a raw normal draw with
  // large `jitter_frac` can push 1 + frac*N(0,1) below zero, and clamping
  // the resulting negative RTT to 0.05 ms would silently bias medians for
  // low-RTT targets.  Resample the factor instead (rejection sampling from
  // the truncated normal); the bounded retry keeps the draw count finite
  // even for absurd jitter_frac.  At the default jitter_frac (0.02) a
  // negative factor is a >50-sigma event, so the RNG stream — and every
  // existing census — is unchanged.
  double factor = 1.0 + model_.jitter_frac * rng_.normal();
  for (int tries = 0; factor < 0.0 && tries < 16; ++tries) {
    factor = 1.0 + model_.jitter_frac * rng_.normal();
  }
  if (factor < 0.0) factor = 0.0;
  double sample = true_rtt_ms * factor;
  sample += model_.jitter_floor_ms * std::abs(rng_.normal());
  if (rng_.chance(model_.spike_prob)) {
    sample += rng_.exponential(model_.spike_ms);
  }
  return std::max(0.05, sample);
}

std::optional<double> Prober::measure(double true_rtt_ms) {
  std::vector<double> valid;
  valid.reserve(model_.repeats);
  for (int i = 0; i < model_.repeats; ++i) {
    if (const auto s = probe_once(true_rtt_ms)) valid.push_back(*s);
  }
  if (static_cast<int>(valid.size()) < model_.min_valid) return std::nullopt;
  return stats::median(std::move(valid));
}

}  // namespace anyopt::measure
