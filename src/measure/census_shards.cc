#include "measure/census_shards.h"

#include <cassert>
#include <utility>

namespace anyopt::measure {

CensusShards::CensusShards(std::size_t target_count)
    : target_count_(target_count),
      shards_((target_count + kShardWidth - 1) / kShardWidth) {}

CensusShards::Shard& CensusShards::shard_for(std::size_t t) {
  assert(t < target_count_);
  std::unique_ptr<Shard>& slot = shards_[t / kShardWidth];
  if (slot == nullptr) {
    slot = std::make_unique<Shard>();
    slot->written.resize(kShardWidth);
    slot->site.resize(kShardWidth);
    slot->attachment.resize(kShardWidth);
    slot->one_way_ms.resize(kShardWidth);
  }
  return *slot;
}

const CensusShards::Shard* CensusShards::shard_of(std::size_t t) const {
  assert(t < target_count_);
  return shards_[t / kShardWidth].get();
}

void CensusShards::set(std::size_t t, SiteId site,
                       bgp::AttachmentIndex attachment, double one_way_ms) {
  Shard& shard = shard_for(t);
  const std::size_t i = t % kShardWidth;
  shard.written[i] = 1;
  shard.site[i] = site.value();
  shard.attachment[i] = attachment;
  shard.one_way_ms[i] = one_way_ms;
}

bool CensusShards::written(std::size_t t) const {
  const Shard* shard = shard_of(t);
  return shard != nullptr && shard->written[t % kShardWidth] != 0;
}

SiteId CensusShards::site(std::size_t t) const {
  assert(written(t));
  return SiteId{shard_of(t)->site[t % kShardWidth]};
}

bgp::AttachmentIndex CensusShards::attachment(std::size_t t) const {
  assert(written(t));
  return shard_of(t)->attachment[t % kShardWidth];
}

double CensusShards::one_way_ms(std::size_t t) const {
  assert(written(t));
  return shard_of(t)->one_way_ms[t % kShardWidth];
}

void CensusShards::merge(CensusShards&& other) {
  assert(other.target_count_ == target_count_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::unique_ptr<Shard>& theirs = other.shards_[s];
    if (theirs == nullptr) continue;
    std::unique_ptr<Shard>& ours = shards_[s];
    if (ours == nullptr) {
      // Whole-shard steal: the common case when writers own disjoint
      // target ranges aligned to shards.
      ours = std::move(theirs);
      continue;
    }
    // Entry-level merge of a shared shard.  Writes are disjoint per
    // target, so copying only `theirs`-written entries commutes: any
    // merge order lands on byte-identical state.
    for (std::size_t i = 0; i < kShardWidth; ++i) {
      if (theirs->written[i] == 0) continue;
      assert(ours->written[i] == 0);
      ours->written[i] = 1;
      ours->site[i] = theirs->site[i];
      ours->attachment[i] = theirs->attachment[i];
      ours->one_way_ms[i] = theirs->one_way_ms[i];
    }
    theirs.reset();
  }
}

void CensusShards::release_through(std::size_t t) {
  // Shard s covers [s*W, (s+1)*W); it is fully drained once the cursor
  // has consumed its last target.
  const std::size_t end_shard = (t + 1) / kShardWidth;
  for (std::size_t s = 0; s < end_shard && s < shards_.size(); ++s) {
    shards_[s].reset();
  }
}

std::size_t CensusShards::allocated_shards() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    if (shard != nullptr) ++n;
  }
  return n;
}

std::size_t CensusShards::retained_bytes() const {
  constexpr std::size_t kShardBytes =
      kShardWidth * (sizeof(std::uint8_t) + 2 * sizeof(std::uint32_t) +
                     sizeof(double)) +
      sizeof(Shard);
  return shards_.capacity() * sizeof(std::unique_ptr<Shard>) +
         allocated_shards() * kShardBytes;
}

}  // namespace anyopt::measure
