// The serve layer's two headline concurrency claims, run under TSan via
// `ctest -L tsan`:
//
//  1. Lock-free swap safety: N reader threads hammer queries while a
//     writer publishes a sequence of snapshots.  Every response must be
//     bytewise equal to a single-threaded execution of that query over
//     ONE of the published snapshots — a query never observes a
//     partially-loaded snapshot, a torn swap, or a blend of two.
//
//  2. Kill-and-warm-restart bit-identity: a service answering from a
//     store-backed snapshot is torn down entirely ("kill"), a new service
//     rebuilds from the same store file, and every response must come
//     back byte-identical — the store round trip loses nothing the query
//     path can see.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "netbase/telemetry.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace anyopt::serve {
namespace {

std::shared_ptr<Snapshot> build_test_snapshot(std::uint64_t seed,
                                              const std::string& store = {}) {
  SnapshotOptions options;
  options.test_scale = true;
  options.seed = seed;
  options.store_path = store;
  Result<std::shared_ptr<Snapshot>> built = Snapshot::build(options);
  EXPECT_TRUE(built.ok()) << built.error().message;
  return built.ok() ? std::move(built).value() : nullptr;
}

const std::vector<std::string>& query_set() {
  static const std::vector<std::string> queries = {
      "{\"op\":\"info\"}",
      "{\"op\":\"predict\",\"sites\":[3,1]}",
      "{\"op\":\"predict\",\"sites\":[0,4,2],\"clients\":[1,5,9,13],"
      "\"detail\":true}",
      "{\"op\":\"score\",\"sites\":[2,0]}",
  };
  return queries;
}

TEST(ServeConcurrency, ReadersNeverObserveAPartialOrTornSnapshot) {
  // Alternate two distinct worlds (different seeds → different answers)
  // across several swaps.  Each publish consumes a fresh Snapshot instance
  // because publish assigns the version — republishing a live snapshot
  // would itself be a write into data readers are using.
  constexpr std::size_t kSwaps = 6;
  constexpr std::size_t kReaders = 4;
  std::vector<std::shared_ptr<Snapshot>> snapshots;
  for (std::size_t i = 0; i < kSwaps; ++i) {
    snapshots.push_back(build_test_snapshot(i % 2 == 0 ? 1897 : 7));
    ASSERT_NE(snapshots.back(), nullptr);
  }

  Service service;
  service.publish(snapshots[0]);

  std::atomic<bool> stop{false};
  std::vector<std::vector<std::string>> seen(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::size_t q = r;  // stagger so threads hit different queries
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& line = query_set()[q % query_set().size()];
        seen[r].push_back(std::to_string(q % query_set().size()) + " " +
                          service.handle_line(line));
        ++q;
      }
    });
  }

  for (std::size_t i = 1; i < kSwaps; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.publish(snapshots[i]);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  // Single-threaded ground truth: every published snapshot's answer to
  // every query (versions were assigned at publish, snapshots immutable).
  std::vector<std::vector<std::string>> expected(query_set().size());
  for (std::size_t q = 0; q < query_set().size(); ++q) {
    for (const auto& snapshot : snapshots) {
      Result<Request> request = parse_request(query_set()[q]);
      ASSERT_TRUE(request.ok());
      expected[q].push_back(Service::execute(*snapshot, request.value()));
    }
  }

  std::size_t responses = 0;
  for (const auto& per_reader : seen) {
    responses += per_reader.size();
    for (const std::string& entry : per_reader) {
      const std::size_t space = entry.find(' ');
      const std::size_t q = std::stoul(entry.substr(0, space));
      const std::string response = entry.substr(space + 1);
      bool matched = false;
      for (const std::string& candidate : expected[q]) {
        if (response == candidate) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched)
          << "response matches no published snapshot: " << response;
      if (!matched) return;  // one counterexample is enough
    }
  }
  EXPECT_GT(responses, 0u);
}

TEST(ServeConcurrency, EpochCacheKeepsTheOutgoingSnapshotAliveUntilReread) {
  // The documented pinning caveat, pinned down: after a swap, a thread
  // that issued queries before the swap still holds the outgoing snapshot
  // in its epoch cache; the snapshot's memory must stay valid (use_count
  // proves liveness) until that thread queries again.
  std::shared_ptr<Snapshot> first = build_test_snapshot(1897);
  std::shared_ptr<Snapshot> second = build_test_snapshot(1897);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  Service service;
  service.publish(first);
  const std::weak_ptr<Snapshot> watch = first;
  ASSERT_EQ(service.handle_line("{\"op\":\"info\"}").rfind("{\"ok\":true", 0),
            0u);
  service.publish(second);
  first.reset();
  // This thread's epoch cache still pins the outgoing snapshot...
  EXPECT_FALSE(watch.expired());
  // ...until the next query re-validates and drops it.
  ASSERT_EQ(service.handle_line("{\"op\":\"info\"}").rfind("{\"ok\":true", 0),
            0u);
  EXPECT_TRUE(watch.expired());
}

TEST(ServeConcurrency, KillAndWarmRestartAnswersBitIdentically) {
  const std::string store_path =
      ::testing::TempDir() + "serve_warm_restart.aopt";
  std::remove(store_path.c_str());

  std::vector<std::string> cold_responses;
  std::size_t cold_records = 0;
  {
    Service service;
    std::shared_ptr<Snapshot> cold = build_test_snapshot(1897, store_path);
    ASSERT_NE(cold, nullptr);
    cold_records = cold->store_records();
    service.publish(std::move(cold));
    for (const std::string& line : query_set()) {
      cold_responses.push_back(service.handle_line(line));
    }
  }  // "kill": service, snapshot and store handle all torn down

  // The warm build must replay from the store, not re-measure: count the
  // store.hits delta across the rebuild (the counter only moves with
  // telemetry on).
  telemetry::Registry::global().reset();
  telemetry::set_enabled(true);
  Service restarted;
  std::shared_ptr<Snapshot> warm = build_test_snapshot(1897, store_path);
  telemetry::set_enabled(false);
  ASSERT_NE(warm, nullptr);
  EXPECT_GT(cold_records, 0u);
  EXPECT_EQ(warm->store_records(), cold_records);
  EXPECT_GT(telemetry::Registry::global().counter_value("store.hits"), 0u);
  telemetry::Registry::global().reset();
  restarted.publish(std::move(warm));
  for (std::size_t q = 0; q < query_set().size(); ++q) {
    EXPECT_EQ(restarted.handle_line(query_set()[q]), cold_responses[q])
        << query_set()[q];
  }
  std::remove(store_path.c_str());
}

}  // namespace
}  // namespace anyopt::serve
