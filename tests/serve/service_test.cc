// Service semantics over a real (test-scale) snapshot: publish/versioning,
// the epoch-cached read path, response correctness against the predictor
// and optimizer the snapshot wraps, subset/full equivalence, and reload.

#include "serve/service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/snapshot.h"

namespace anyopt::serve {
namespace {

/// One shared test-scale snapshot: building takes ~100 ms, so the suite
/// builds it once.  Tests must treat it as immutable (it is).
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SnapshotOptions options;
    options.test_scale = true;
    Result<std::shared_ptr<Snapshot>> built = Snapshot::build(options);
    ASSERT_TRUE(built.ok()) << built.error().message;
    snapshot_ = std::move(built).value();
  }
  static void TearDownTestSuite() { snapshot_.reset(); }

  static std::shared_ptr<Snapshot> snapshot_;
};

std::shared_ptr<Snapshot> ServiceTest::snapshot_;

Request parse_ok(const std::string& line) {
  Result<Request> request = parse_request(line);
  EXPECT_TRUE(request.ok()) << line;
  return std::move(request).value();
}

TEST_F(ServiceTest, QueriesBeforeFirstPublishFailCleanly) {
  Service service;
  EXPECT_EQ(service.version(), 0u);
  EXPECT_EQ(service.current(), nullptr);
  const std::string response = service.handle_line("{\"op\":\"info\"}");
  EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u) << response;
}

TEST_F(ServiceTest, PublishAssignsMonotoneVersions) {
  Service service;
  service.publish(snapshot_);
  EXPECT_EQ(service.version(), 1u);
  EXPECT_EQ(service.current()->version(), 1u);
  // The epoch cache must hand back the same snapshot without re-reading
  // the atomic slot (same pointer, same version).
  EXPECT_EQ(service.current().get(), snapshot_.get());
}

TEST_F(ServiceTest, InfoReportsTheSnapshotShape) {
  Service service;
  service.publish(snapshot_);
  const std::string response = service.handle_line("{\"op\":\"info\"}");
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.find("\"scale\":\"test\""), std::string::npos);
  EXPECT_NE(response.find("\"sites\":" +
                          std::to_string(snapshot_->site_count())),
            std::string::npos);
  EXPECT_NE(response.find("\"targets\":" +
                          std::to_string(snapshot_->target_count())),
            std::string::npos);
}

TEST_F(ServiceTest, InfoReportsSiteLoadCapacityAndSloState) {
  Service service;
  service.publish(snapshot_);
  const std::string response = service.handle_line("{\"op\":\"info\"}");
  EXPECT_NE(response.find("\"site_load\":["), std::string::npos) << response;
  EXPECT_NE(response.find("\"site_capacity\":["), std::string::npos)
      << response;
  // The modeled capacities carry headroom over the baseline, so the quiet
  // deployment is compliant by construction.
  EXPECT_NE(response.find("\"slo_ok\":true"), std::string::npos) << response;
  ASSERT_EQ(snapshot_->site_load().size(), snapshot_->site_count());
  ASSERT_EQ(snapshot_->site_capacity().size(), snapshot_->site_count());
  double total = 0;
  for (std::size_t s = 0; s < snapshot_->site_count(); ++s) {
    EXPECT_GE(snapshot_->site_capacity()[s], snapshot_->site_load()[s]);
    total += snapshot_->site_load()[s];
  }
  // The all-sites baseline serves (almost) the whole population.
  EXPECT_GT(total, 0.0);
  EXPECT_LE(total, static_cast<double>(snapshot_->target_count()));
}

TEST_F(ServiceTest, MitigateSearchesPlaybooksAndIsDeterministic) {
  Service service;
  service.publish(snapshot_);
  // A strong attack on a mid-size deployment: the response must carry the
  // full mitigation block and repeat bit for bit.
  const std::string line =
      "{\"op\":\"mitigate\",\"sites\":[0,1,2,3,4,5,6,7],\"intensity\":8}";
  const std::string first = service.handle_line(line);
  ASSERT_EQ(first.rfind("{\"ok\":true", 0), 0u) << first;
  for (const char* field :
       {"\"intensity\":8", "\"attacked_site\":", "\"attacked_clients\":",
        "\"slo_violated\":", "\"overloaded_sites\":[", "\"mitigated\":",
        "\"time_to_mitigate_s\":", "\"post_mean_rtt_ms\":", "\"playbook\":\"",
        "\"steps\":", "\"candidates\":", "\"pruned\":", "\"sim_events\":"}) {
    EXPECT_NE(first.find(field), std::string::npos) << field;
  }
  EXPECT_EQ(service.handle_line(line), first);

  // Sites defaults to the full deployment; intensity to 2.
  const std::string bare = service.handle_line("{\"op\":\"mitigate\"}");
  EXPECT_EQ(bare.rfind("{\"ok\":true", 0), 0u) << bare;
  EXPECT_NE(bare.find("\"intensity\":2"), std::string::npos) << bare;

  // Out-of-range sites are query errors, not crashes.
  const std::string err =
      service.handle_line("{\"op\":\"mitigate\",\"sites\":[999999]}");
  EXPECT_EQ(err.rfind("{\"ok\":false", 0), 0u) << err;
}

TEST_F(ServiceTest, PredictMatchesThePredictorBitForBit) {
  // The response's detail arrays must restate Predictor::predict exactly:
  // same catchment site per client, same RTT rendered through the one
  // deterministic formatter.
  const Request request =
      parse_ok("{\"op\":\"predict\",\"sites\":[2,0,5],\"detail\":true}");
  const std::string response = Service::execute(*snapshot_, request);
  ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;

  const core::Prediction prediction = snapshot_->predictor().predict(
      anycast::AnycastConfig::of_sites({SiteId{2}, SiteId{0}, SiteId{5}}));
  std::string catchment = "\"catchment\":[";
  std::string rtts = "\"rtt_ms\":[";
  for (std::size_t t = 0; t < snapshot_->target_count(); ++t) {
    if (t > 0) {
      catchment += ",";
      rtts += ",";
    }
    const SiteId site = prediction.site_of_target[t];
    catchment += site.valid() ? std::to_string(site.value()) : "-1";
    append_double(rtts, prediction.rtt_ms[t]);
  }
  catchment += "]";
  rtts += "]";
  EXPECT_NE(response.find(catchment), std::string::npos);
  EXPECT_NE(response.find(rtts), std::string::npos);
}

TEST_F(ServiceTest, SubsetPredictEqualsMaskedFullPredict) {
  // Listing every client explicitly routes through predict_subset; leaving
  // clients absent routes through the full predict.  Same clients, same
  // bytes — the subset walk must be bit-identical to the full walk.
  std::string all_clients = "[";
  for (std::size_t t = 0; t < snapshot_->target_count(); ++t) {
    if (t > 0) all_clients += ",";
    all_clients += std::to_string(t);
  }
  all_clients += "]";
  const std::string full = Service::execute(
      *snapshot_,
      parse_ok("{\"op\":\"predict\",\"sites\":[1,4],\"detail\":true}"));
  const std::string subset = Service::execute(
      *snapshot_, parse_ok("{\"op\":\"predict\",\"sites\":[1,4],\"clients\":" +
                           all_clients + ",\"detail\":true}"));
  EXPECT_EQ(full, subset);
}

TEST_F(ServiceTest, ScoreMatchesTheUncachedEvaluator) {
  const std::string response = Service::execute(
      *snapshot_, parse_ok("{\"op\":\"score\",\"sites\":[3,1,0]}"));
  ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;
  const core::EvaluatedConfig scored = snapshot_->optimizer().evaluate_uncached(
      anycast::AnycastConfig::of_sites({SiteId{3}, SiteId{1}, SiteId{0}}));
  std::string expected = "\"predicted_mean_rtt_ms\":";
  append_double(expected, scored.predicted_mean_rtt);
  EXPECT_NE(response.find(expected), std::string::npos) << response;
}

TEST_F(ServiceTest, RepeatedQueriesAreBitIdentical) {
  Service service;
  service.publish(snapshot_);
  const std::string line =
      "{\"op\":\"predict\",\"sites\":[4,2],\"clients\":[1,3,5,7]}";
  const std::string first = service.handle_line(line);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(service.handle_line(line), first);
  }
}

TEST_F(ServiceTest, OutOfRangeIdsAreQueryErrorsNotCrashes) {
  Service service;
  service.publish(snapshot_);
  const std::string site_err = service.handle_line(
      "{\"op\":\"predict\",\"sites\":[999999]}");
  EXPECT_EQ(site_err.rfind("{\"ok\":false", 0), 0u) << site_err;
  const std::string client_err = service.handle_line(
      "{\"op\":\"predict\",\"sites\":[0],\"clients\":[999999]}");
  EXPECT_EQ(client_err.rfind("{\"ok\":false", 0), 0u) << client_err;
  // The service must still answer after an error.
  EXPECT_EQ(service.handle_line("{\"op\":\"info\"}").rfind("{\"ok\":true", 0),
            0u);
}

TEST_F(ServiceTest, ReloadSwapsInAFreshSnapshotAtTheNextVersion) {
  Service service;
  service.publish(snapshot_);
  int rebuilds = 0;
  service.set_reloader([&rebuilds]() -> Result<std::shared_ptr<Snapshot>> {
    ++rebuilds;
    SnapshotOptions options;
    options.test_scale = true;
    return Snapshot::build(options);
  });
  const std::string response = service.handle_line("{\"op\":\"reload\"}");
  EXPECT_EQ(response, "{\"ok\":true,\"snapshot\":2,\"op\":\"reload\"}");
  EXPECT_EQ(rebuilds, 1);
  EXPECT_EQ(service.version(), 2u);
  EXPECT_NE(service.current().get(), snapshot_.get());

  // Without a reloader installed, reload is a clean error.
  Service fixed;
  fixed.publish(snapshot_);
  const std::string refused = fixed.handle_line("{\"op\":\"reload\"}");
  EXPECT_EQ(refused.rfind("{\"ok\":false", 0), 0u) << refused;
}

TEST_F(ServiceTest, RebuildFromTheSameSeedAnswersIdentically) {
  // Determinism across builds: two snapshots built from the same options
  // must answer every query with the same bytes (only the version differs,
  // so compare via Service instances that both assign version 1).
  SnapshotOptions options;
  options.test_scale = true;
  Result<std::shared_ptr<Snapshot>> rebuilt = Snapshot::build(options);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().message;
  Service a;
  Service b;
  a.publish(snapshot_);
  b.publish(std::move(rebuilt).value());
  for (const char* line :
       {"{\"op\":\"info\"}", "{\"op\":\"predict\",\"sites\":[5,3,1]}",
        "{\"op\":\"predict\",\"sites\":[2],\"clients\":[0,9,42],"
        "\"detail\":true}",
        "{\"op\":\"score\",\"sites\":[0,1,2,3]}"}) {
    EXPECT_EQ(a.handle_line(line), b.handle_line(line)) << line;
  }
}

}  // namespace
}  // namespace anyopt::serve
