// Wire-protocol unit tests: strict request parsing (a typoed key must fail
// loudly, never silently predict something else), deterministic rendering,
// and the median helper the predict responses report.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace anyopt::serve {
namespace {

TEST(Protocol, ParsesEveryOp) {
  Result<Request> info = parse_request("{\"op\":\"info\"}");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().op, Op::kInfo);
  EXPECT_TRUE(info.value().sites.empty());

  Result<Request> reload = parse_request("{\"op\":\"reload\"}");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload.value().op, Op::kReload);

  Result<Request> score = parse_request("{\"op\":\"score\",\"sites\":[3,1]}");
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(score.value().op, Op::kScore);
  EXPECT_EQ(score.value().sites, (std::vector<std::uint32_t>{3, 1}));

  Result<Request> predict = parse_request(
      "{\"op\":\"predict\",\"sites\":[2,0],\"clients\":[5,7,9],"
      "\"detail\":true}");
  ASSERT_TRUE(predict.ok());
  EXPECT_EQ(predict.value().op, Op::kPredict);
  EXPECT_EQ(predict.value().sites, (std::vector<std::uint32_t>{2, 0}));
  EXPECT_EQ(predict.value().clients, (std::vector<std::uint32_t>{5, 7, 9}));
  EXPECT_TRUE(predict.value().detail);

  Result<Request> mitigate =
      parse_request("{\"op\":\"mitigate\",\"sites\":[4,2],\"intensity\":3.5}");
  ASSERT_TRUE(mitigate.ok());
  EXPECT_EQ(mitigate.value().op, Op::kMitigate);
  EXPECT_EQ(mitigate.value().sites, (std::vector<std::uint32_t>{4, 2}));
  EXPECT_DOUBLE_EQ(mitigate.value().intensity, 3.5);

  // Both mitigate fields are optional: sites defaults to every site,
  // intensity to 2.
  Result<Request> bare = parse_request("{\"op\":\"mitigate\"}");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare.value().sites.empty());
  EXPECT_DOUBLE_EQ(bare.value().intensity, 2.0);
}

TEST(Protocol, SiteOrderIsPreservedVerbatim) {
  // Announcement order matters (§4.2): the parser must not sort or dedup.
  Result<Request> r = parse_request("{\"op\":\"predict\",\"sites\":[9,2,4]}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().sites, (std::vector<std::uint32_t>{9, 2, 4}));
}

TEST(Protocol, RejectsMalformedRequests) {
  const char* bad[] = {
      "",                                          // empty line
      "not json",                                  // not JSON at all
      "[1,2,3]",                                   // not an object
      "{\"sites\":[1]}",                           // no op
      "{\"op\":\"frobnicate\"}",                   // unknown op
      "{\"op\":42}",                               // op not a string
      "{\"op\":\"info\",\"stes\":[1]}",            // typoed key
      "{\"op\":\"predict\"}",                      // predict without sites
      "{\"op\":\"predict\",\"sites\":[]}",         // empty sites
      "{\"op\":\"score\",\"sites\":[1,1]}",        // duplicate site
      "{\"op\":\"predict\",\"sites\":7}",          // sites not an array
      "{\"op\":\"predict\",\"sites\":[1.5]}",      // non-integer id
      "{\"op\":\"predict\",\"sites\":[-1]}",       // negative id
      "{\"op\":\"predict\",\"sites\":[4294967296]}",  // > uint32 max
      "{\"op\":\"info\",\"sites\":[1]}",           // sites on a config-less op
      "{\"op\":\"score\",\"sites\":[1],\"clients\":[2]}",  // clients on score
      "{\"op\":\"score\",\"sites\":[1],\"detail\":true}",  // detail on score
      "{\"op\":\"predict\",\"sites\":[1],\"detail\":1}",   // detail not bool
      "{\"op\":\"mitigate\",\"sites\":[]}",                // empty sites
      "{\"op\":\"mitigate\",\"sites\":[1,1]}",             // duplicate site
      "{\"op\":\"mitigate\",\"intensity\":1}",        // no added demand
      "{\"op\":\"mitigate\",\"intensity\":0.5}",      // below baseline
      "{\"op\":\"mitigate\",\"intensity\":\"high\"}",  // not a number
      "{\"op\":\"score\",\"sites\":[1],\"intensity\":2}",  // not mitigate
      "{\"op\":\"mitigate\",\"clients\":[1]}",        // clients on mitigate
      "{\"op\":\"mitigate\",\"detail\":true}",        // detail on mitigate
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse_request(line).ok()) << line;
  }
}

TEST(Protocol, RenderErrorEscapesTheMessage) {
  const std::string out = render_error("bad \"key\"\n");
  EXPECT_EQ(out, "{\"ok\":false,\"error\":\"bad \\\"key\\\"\\n\"}");
}

TEST(Protocol, AppendDoubleIsDeterministic) {
  // Equal doubles must render to equal bytes — the contract the
  // bit-identity tests compare response lines under.
  std::string a;
  std::string b;
  append_double(a, 0.1 + 0.2);
  append_double(b, 0.1 + 0.2);
  EXPECT_EQ(a, b);
  // %.17g round-trips any double exactly.
  std::string rendered;
  append_double(rendered, 123.456789012345678);
  EXPECT_EQ(std::strtod(rendered.c_str(), nullptr), 123.456789012345678);
}

TEST(Protocol, MedianContract) {
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(median({7.0}), 7.0);
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);          // sorts internally
  EXPECT_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);     // even: middle average
}

}  // namespace
}  // namespace anyopt::serve
